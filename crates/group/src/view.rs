//! Group identities and membership views.

use groupview_sim::{NodeId, Sim};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a process group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(u64);

impl GroupId {
    /// Reconstructs a group id from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        GroupId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A numbered membership view of a group.
///
/// Views change when members join, leave, or are detected crashed; the view
/// number increases monotonically. Members are kept in joining order, which
/// also serves as the deterministic delivery order for the total-order
/// multicast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// Monotonically increasing view number.
    pub id: u64,
    /// Current members, in joining order.
    pub members: Vec<NodeId>,
}

impl View {
    /// An empty initial view.
    pub fn empty() -> View {
        View {
            id: 0,
            members: Vec::new(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `node` is in the view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Members of the view that are currently functioning.
    pub fn live_members(&self, sim: &Sim) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|&n| sim.is_up(n))
            .collect()
    }

    /// Elects a coordinator: the lowest-id functioning member.
    ///
    /// Used by coordinator-cohort replication when the previous coordinator
    /// fails ("the cohorts elect one of them as the new coordinator",
    /// §2.3(2)(ii)). Deterministic, so every survivor elects the same node
    /// without extra rounds.
    pub fn elect(&self, sim: &Sim) -> Option<NodeId> {
        self.live_members(sim).into_iter().min()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}{{", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::SimConfig;

    #[test]
    fn group_id_roundtrip() {
        assert_eq!(GroupId::from_raw(4).raw(), 4);
        assert_eq!(GroupId::from_raw(4).to_string(), "g4");
    }

    #[test]
    fn view_membership_queries() {
        let v = View {
            id: 1,
            members: vec![NodeId::new(2), NodeId::new(0)],
        };
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert!(v.contains(NodeId::new(0)));
        assert!(!v.contains(NodeId::new(1)));
        assert_eq!(v.to_string(), "view#1{n2,n0}");
        assert!(View::empty().is_empty());
    }

    #[test]
    fn election_prefers_lowest_live_id() {
        let sim = Sim::new(SimConfig::new(1).with_nodes(3));
        let v = View {
            id: 1,
            members: vec![NodeId::new(2), NodeId::new(0), NodeId::new(1)],
        };
        assert_eq!(v.elect(&sim), Some(NodeId::new(0)));
        sim.crash(NodeId::new(0));
        assert_eq!(v.elect(&sim), Some(NodeId::new(1)));
        sim.crash(NodeId::new(1));
        sim.crash(NodeId::new(2));
        assert_eq!(v.elect(&sim), None);
    }

    #[test]
    fn live_members_filters_crashed() {
        let sim = Sim::new(SimConfig::new(1).with_nodes(3));
        let v = View {
            id: 1,
            members: vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        };
        sim.crash(NodeId::new(1));
        assert_eq!(v.live_members(&sim), vec![NodeId::new(0), NodeId::new(2)]);
    }
}
