//! The receiving side of group communication.

/// A process that receives group multicasts.
///
/// Implementors are typically object replicas: `deliver` applies the
/// operation carried by `msg` and returns the reply bytes. The `seq`
/// argument is the group's total-order sequence number — every member
/// receives the same messages with the same sequence numbers, which
/// implementors may assert to validate ordering.
///
/// `deliver` must not call back into [`crate::GroupComms`] for the same
/// group (the membership table is not re-entrant); sending *new* multicasts
/// from a delivery should be done after the delivery completes.
pub trait GroupMember {
    /// Handles one delivered message, returning reply bytes.
    fn deliver(&mut self, seq: u64, msg: &[u8]) -> Vec<u8>;
}

/// A trivial member that records what it saw; useful in tests and examples.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecordingMember {
    /// `(seq, msg)` pairs in delivery order.
    pub log: Vec<(u64, Vec<u8>)>,
}

impl GroupMember for RecordingMember {
    fn deliver(&mut self, seq: u64, msg: &[u8]) -> Vec<u8> {
        self.log.push((seq, msg.to_vec()));
        format!("ack{seq}").into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_member_logs_in_order() {
        let mut m = RecordingMember::default();
        assert_eq!(m.deliver(1, b"a"), b"ack1");
        assert_eq!(m.deliver(2, b"b"), b"ack2");
        assert_eq!(m.log, vec![(1, b"a".to_vec()), (2, b"b".to_vec())]);
    }
}
