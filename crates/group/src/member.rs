//! The receiving side of group communication.

use groupview_sim::Bytes;

/// A process that receives group multicasts.
///
/// Implementors are typically object replicas: `deliver` applies the
/// operation carried by `msg` and returns the reply bytes. The `seq`
/// argument is the group's total-order sequence number — every member
/// receives the same messages with the same sequence numbers, which
/// implementors may assert to validate ordering.
///
/// `msg` is a reference to the *shared* multicast buffer: the sender
/// encodes one frame and every member of the group receives the same
/// storage. Members that need to keep payload data slice it
/// ([`Bytes::slice`], reference-counted) rather than copying it out.
///
/// `deliver` must not call back into [`crate::GroupComms`] for the same
/// group (the membership table is not re-entrant); sending *new* multicasts
/// from a delivery should be done after the delivery completes.
pub trait GroupMember {
    /// Handles one delivered message, returning reply bytes.
    fn deliver(&mut self, seq: u64, msg: &Bytes) -> Bytes;
}

/// A trivial member that records what it saw; useful in tests and examples.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecordingMember {
    /// `(seq, msg)` pairs in delivery order. Messages are zero-copy slices
    /// of the multicast buffers.
    pub log: Vec<(u64, Bytes)>,
}

impl GroupMember for RecordingMember {
    fn deliver(&mut self, seq: u64, msg: &Bytes) -> Bytes {
        self.log.push((seq, msg.clone()));
        Bytes::from(format!("ack{seq}").into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_member_logs_in_order() {
        let mut m = RecordingMember::default();
        assert_eq!(m.deliver(1, &Bytes::from_static(b"a")), b"ack1");
        assert_eq!(m.deliver(2, &Bytes::from_static(b"b")), b"ack2");
        assert_eq!(m.log.len(), 2);
        assert_eq!(m.log[0], (1, Bytes::from_static(b"a")));
        assert_eq!(m.log[1], (2, Bytes::from_static(b"b")));
    }

    #[test]
    fn recording_keeps_a_zero_copy_view_of_the_message() {
        let mut m = RecordingMember::default();
        let msg = Bytes::from(b"payload".to_vec());
        let before = groupview_sim::wire::stats();
        let _ = m.deliver(1, &msg); // the ack allocates ...
        let after = groupview_sim::wire::stats().since(before);
        assert_eq!(after.bytes_copied, 0, "... but the message is not copied");
        assert_eq!(
            m.log[0].1.as_slice().as_ptr(),
            msg.as_slice().as_ptr(),
            "log aliases the multicast buffer"
        );
    }
}
