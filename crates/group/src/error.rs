//! Group-communication errors.
//!
//! Every crate in the workspace keeps its error type in an `error` module
//! with the same shape: a `Display` impl naming the failing subject, a
//! `std::error::Error` impl exposing `source()` for wrapped layers, and
//! `From` conversions so `?` composes across crate boundaries.

use crate::view::GroupId;
use groupview_sim::NodeId;
use std::error::Error;
use std::fmt;

/// Failures of group operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupError {
    /// The group id is not registered.
    UnknownGroup(GroupId),
    /// The group currently has no live members to deliver to.
    NoLiveMembers(GroupId),
    /// The sending node is down (driver bug).
    SenderDown(NodeId),
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            GroupError::NoLiveMembers(g) => write!(f, "group {g} has no live members"),
            GroupError::SenderDown(n) => write!(f, "sending node {n} is down"),
        }
    }
}

impl Error for GroupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_the_subject() {
        assert!(GroupError::UnknownGroup(GroupId::from_raw(3))
            .to_string()
            .contains("g3"));
        assert!(GroupError::NoLiveMembers(GroupId::from_raw(1))
            .to_string()
            .contains("live"));
        assert!(GroupError::SenderDown(NodeId::new(2))
            .to_string()
            .contains("n2"));
    }
}
