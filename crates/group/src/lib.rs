//! Group communication for `groupview`.
//!
//! Section 2.3(2) of the paper motivates why replica groups need stronger
//! communication guarantees than point-to-point RPC. Its Figure 1 scenario:
//! group `GA = {A1, A2}` invokes an operation on `GB = {B}`, and `B` fails
//! while delivering its reply so that `A1` receives it but `A2` does not —
//! "the subsequent action taken by A1 and A2 can diverge". The fix is
//! communication with
//!
//! * **reliability** — all correctly functioning members of a group receive
//!   messages intended for the group, and
//! * **ordering** — messages are received in an identical order at each
//!   functioning member (Schneider's state-machine requirements, ref [16]).
//!
//! This crate provides both the guaranteed flavour and the broken one:
//!
//! * [`DeliveryMode::ReliableOrdered`] — per-group total order (a sequencer
//!   number accompanies every delivery) and *survivor atomicity*: if the
//!   sender crashes mid-spray, a member that already received the message
//!   relays it to the rest, so all surviving members deliver it.
//! * [`DeliveryMode::Unreliable`] — plain per-member sends with no recovery;
//!   a sender crash mid-spray leaves the group divergent. This mode exists
//!   to *reproduce* Figure 1 (experiment E1), not to be used.
//!
//! Membership is tracked in numbered [`View`]s; [`GroupComms::refresh_view`]
//! removes crashed members, and [`View::elect`] picks a coordinator (used by
//! coordinator-cohort replication).

pub mod comms;
pub mod error;
pub mod member;
pub mod view;

pub use crate::comms::{DeliveryMode, GroupComms, MulticastOutcome, MulticastStats};
pub use crate::error::GroupError;
pub use crate::member::GroupMember;
pub use crate::view::{GroupId, View};
