//! Multicast machinery: the group table and the two delivery protocols.

use crate::error::GroupError;
use crate::member::GroupMember;
use crate::view::{GroupId, View};
use groupview_sim::{Bytes, NodeId, Sim};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Which multicast protocol a group uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// Total order + survivor atomicity (relay on sender crash). What the
    /// paper requires for replica groups.
    ReliableOrdered,
    /// Independent best-effort sends; partial delivery on failure. Exists to
    /// reproduce the paper's Figure 1 divergence (experiment E1).
    Unreliable,
}

/// Statistics for one group's multicast traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MulticastStats {
    /// Multicasts attempted.
    pub multicasts: u64,
    /// Multicasts for which at least one live member did not receive the
    /// message (possible only in [`DeliveryMode::Unreliable`], or when a
    /// member crashed concurrently).
    pub partial_deliveries: u64,
    /// Relay rounds performed by the reliable protocol.
    pub relays: u64,
    /// View changes (joins, leaves, crash evictions).
    pub view_changes: u64,
}

/// Result of one multicast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastOutcome {
    /// The total-order sequence number assigned to the message.
    pub seq: u64,
    /// Members that delivered the message, with their reply buffers
    /// (cloning an entry is a refcount bump, not a copy).
    pub replies: Vec<(NodeId, Bytes)>,
    /// Live members that did *not* deliver (divergence candidates).
    pub missed: Vec<NodeId>,
    /// Whether a relay round was needed (reliable mode only).
    pub relayed: bool,
}

impl MulticastOutcome {
    /// Reply bytes from the first member that answered.
    pub fn first_reply(&self) -> Option<&Bytes> {
        self.replies.first().map(|(_, r)| r)
    }
}

type MemberHandle = Rc<RefCell<dyn GroupMember>>;

struct GroupState {
    view: View,
    mode: DeliveryMode,
    members: HashMap<NodeId, MemberHandle>,
    next_seq: u64,
    stats: MulticastStats,
}

struct CommsInner {
    groups: HashMap<GroupId, GroupState>,
    next_group: u64,
}

/// The group-communication service.
///
/// Cloneable handle, one per world. Groups are created with a
/// [`DeliveryMode`]; members join with a [`GroupMember`] handle; senders
/// multicast by group id.
#[derive(Clone)]
pub struct GroupComms {
    sim: Sim,
    inner: Rc<RefCell<CommsInner>>,
}

impl fmt::Debug for GroupComms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupComms")
            .field("groups", &self.inner.borrow().groups.len())
            .finish()
    }
}

impl GroupComms {
    /// Creates the service for a world.
    pub fn new(sim: &Sim) -> GroupComms {
        GroupComms {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(CommsInner {
                groups: HashMap::new(),
                next_group: 1,
            })),
        }
    }

    /// Creates an empty group with the given delivery mode.
    pub fn create_group(&self, mode: DeliveryMode) -> GroupId {
        let mut inner = self.inner.borrow_mut();
        let id = GroupId::from_raw(inner.next_group);
        inner.next_group += 1;
        inner.groups.insert(
            id,
            GroupState {
                view: View::empty(),
                mode,
                members: HashMap::new(),
                next_seq: 1,
                stats: MulticastStats::default(),
            },
        );
        id
    }

    /// Destroys a group entirely (object passivation).
    pub fn destroy_group(&self, group: GroupId) {
        self.inner.borrow_mut().groups.remove(&group);
    }

    /// Adds `node` to the group, handling its deliveries with `member`.
    /// Re-joining replaces the previous handle without a view change.
    ///
    /// # Errors
    ///
    /// [`GroupError::UnknownGroup`] if the group does not exist.
    pub fn join(
        &self,
        group: GroupId,
        node: NodeId,
        member: MemberHandle,
    ) -> Result<View, GroupError> {
        let mut inner = self.inner.borrow_mut();
        let g = inner
            .groups
            .get_mut(&group)
            .ok_or(GroupError::UnknownGroup(group))?;
        if !g.view.contains(node) {
            g.view.members.push(node);
            g.view.id += 1;
            g.stats.view_changes += 1;
        }
        g.members.insert(node, member);
        Ok(g.view.clone())
    }

    /// Removes `node` from the group.
    ///
    /// # Errors
    ///
    /// [`GroupError::UnknownGroup`] if the group does not exist.
    pub fn leave(&self, group: GroupId, node: NodeId) -> Result<View, GroupError> {
        let mut inner = self.inner.borrow_mut();
        let g = inner
            .groups
            .get_mut(&group)
            .ok_or(GroupError::UnknownGroup(group))?;
        if g.view.contains(node) {
            g.view.members.retain(|&m| m != node);
            g.view.id += 1;
            g.stats.view_changes += 1;
            g.members.remove(&node);
        }
        Ok(g.view.clone())
    }

    /// The group's current view.
    ///
    /// # Errors
    ///
    /// [`GroupError::UnknownGroup`] if the group does not exist.
    pub fn view(&self, group: GroupId) -> Result<View, GroupError> {
        let inner = self.inner.borrow();
        inner
            .groups
            .get(&group)
            .map(|g| g.view.clone())
            .ok_or(GroupError::UnknownGroup(group))
    }

    /// Evicts crashed members from the view (failure-detector sweep),
    /// returning the possibly updated view.
    ///
    /// # Errors
    ///
    /// [`GroupError::UnknownGroup`] if the group does not exist.
    pub fn refresh_view(&self, group: GroupId) -> Result<View, GroupError> {
        let mut inner = self.inner.borrow_mut();
        let sim = self.sim.clone();
        let g = inner
            .groups
            .get_mut(&group)
            .ok_or(GroupError::UnknownGroup(group))?;
        let before = g.view.members.len();
        g.view.members.retain(|&m| sim.is_up(m));
        if g.view.members.len() != before {
            g.view.id += 1;
            g.stats.view_changes += 1;
            g.members.retain(|&m, _| sim.is_up(m));
        }
        Ok(g.view.clone())
    }

    /// Like [`GroupComms::refresh_view`], but for callers that only need
    /// the eviction side effect: no view clone is returned, so the
    /// per-invocation fast path allocates nothing.
    ///
    /// # Errors
    ///
    /// [`GroupError::UnknownGroup`] if the group does not exist.
    pub fn prune_dead_members(&self, group: GroupId) -> Result<(), GroupError> {
        let mut inner = self.inner.borrow_mut();
        let sim = self.sim.clone();
        let g = inner
            .groups
            .get_mut(&group)
            .ok_or(GroupError::UnknownGroup(group))?;
        let before = g.view.members.len();
        g.view.members.retain(|&m| sim.is_up(m));
        if g.view.members.len() != before {
            g.view.id += 1;
            g.stats.view_changes += 1;
            g.members.retain(|&m, _| sim.is_up(m));
        }
        Ok(())
    }

    /// Statistics for a group (zeroes for unknown groups).
    pub fn stats(&self, group: GroupId) -> MulticastStats {
        self.inner
            .borrow()
            .groups
            .get(&group)
            .map(|g| g.stats)
            .unwrap_or_default()
    }

    /// Multicasts `msg` from `from` to every member of `group`, according
    /// to the group's delivery mode. `from` need not be a member.
    ///
    /// The fan-out is zero-copy: every member's `deliver` receives a
    /// reference to the *same* shared buffer, however large the group. The
    /// simulated network charges per-member message costs as before.
    ///
    /// In reliable-ordered mode the call guarantees that every member that
    /// is still up when the call returns has delivered the message (relaying
    /// through a receiving member if `from` crashed mid-spray), all with the
    /// same sequence number. In unreliable mode each member is tried once.
    ///
    /// # Errors
    ///
    /// [`GroupError::SenderDown`] if `from` is down at call time,
    /// [`GroupError::UnknownGroup`], or [`GroupError::NoLiveMembers`] if no
    /// member is reachable.
    pub fn multicast(
        &self,
        group: GroupId,
        from: NodeId,
        msg: &Bytes,
    ) -> Result<MulticastOutcome, GroupError> {
        if !self.sim.is_up(from) {
            return Err(GroupError::SenderDown(from));
        }
        // Snapshot what we need, then release the borrow: member handlers
        // must be free to use the simulator.
        let (mode, seq, targets) = {
            let mut inner = self.inner.borrow_mut();
            let g = inner
                .groups
                .get_mut(&group)
                .ok_or(GroupError::UnknownGroup(group))?;
            let seq = g.next_seq;
            g.next_seq += 1;
            g.stats.multicasts += 1;
            let targets: Vec<(NodeId, MemberHandle)> = g
                .view
                .members
                .iter()
                .filter_map(|&n| g.members.get(&n).map(|h| (n, h.clone())))
                .collect();
            (g.mode, seq, targets)
        };

        let mut replies = Vec::new();
        let mut missed = Vec::new();
        let mut relayed = false;

        for (node, handle) in &targets {
            let delivered = match self.sim.deliver(from, *node, msg.wire_size()) {
                Ok(_) => true,
                Err(_) if mode == DeliveryMode::ReliableOrdered => {
                    // Sender may have crashed mid-spray, or the link failed.
                    // Relay through any member that already has the message.
                    if let Some(&(relay, _)) = replies
                        .iter()
                        .map(|(n, _): &(NodeId, Bytes)| n)
                        .find(|&&r| self.sim.is_up(r))
                        .map(|n| targets.iter().find(|(tn, _)| tn == n).expect("is a target"))
                    {
                        match self.sim.deliver(relay, *node, msg.wire_size()) {
                            Ok(_) => {
                                relayed = true;
                                true
                            }
                            Err(_) => false,
                        }
                    } else {
                        false
                    }
                }
                Err(_) => false,
            };
            if delivered {
                // Every member sees the same shared buffer — no per-member
                // payload clone, regardless of cohort size.
                let reply = handle.borrow_mut().deliver(seq, msg);
                // Reply/ack back to the sender; losing it does not undo the
                // delivery (that asymmetry is the whole point of Figure 1).
                let _ = self.sim.deliver(*node, from, reply.wire_size());
                replies.push((*node, reply));
            } else if self.sim.is_up(*node) {
                missed.push(*node);
            }
        }

        {
            let mut inner = self.inner.borrow_mut();
            if let Some(g) = inner.groups.get_mut(&group) {
                if !missed.is_empty() {
                    g.stats.partial_deliveries += 1;
                }
                if relayed {
                    g.stats.relays += 1;
                }
            }
        }

        if replies.is_empty() {
            return Err(GroupError::NoLiveMembers(group));
        }
        Ok(MulticastOutcome {
            seq,
            replies,
            missed,
            relayed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::RecordingMember;
    use groupview_sim::SimConfig;

    fn world() -> (Sim, GroupComms) {
        let sim = Sim::new(SimConfig::new(11).with_nodes(5));
        let comms = GroupComms::new(&sim);
        (sim, comms)
    }

    fn join_recording(
        comms: &GroupComms,
        g: GroupId,
        node: NodeId,
    ) -> Rc<RefCell<RecordingMember>> {
        let m = Rc::new(RefCell::new(RecordingMember::default()));
        comms.join(g, node, m.clone()).unwrap();
        m
    }

    #[test]
    fn reliable_multicast_reaches_all_members_in_order() {
        let (_sim, comms) = world();
        let g = comms.create_group(DeliveryMode::ReliableOrdered);
        let m1 = join_recording(&comms, g, NodeId::new(1));
        let m2 = join_recording(&comms, g, NodeId::new(2));
        let out1 = comms
            .multicast(g, NodeId::new(0), &Bytes::from_static(b"op1"))
            .unwrap();
        let out2 = comms
            .multicast(g, NodeId::new(0), &Bytes::from_static(b"op2"))
            .unwrap();
        assert_eq!(out1.seq, 1);
        assert_eq!(out2.seq, 2);
        assert_eq!(out1.replies.len(), 2);
        assert!(out1.missed.is_empty());
        assert_eq!(
            m1.borrow().log,
            m2.borrow().log,
            "identical order everywhere"
        );
        assert_eq!(m1.borrow().log.len(), 2);
    }

    #[test]
    fn figure1_unreliable_sender_crash_diverges() {
        // GA = {A1, A2}; B replies and crashes after reaching only A1.
        let (sim, comms) = world();
        let ga = comms.create_group(DeliveryMode::Unreliable);
        let a1 = join_recording(&comms, ga, NodeId::new(1));
        let a2 = join_recording(&comms, ga, NodeId::new(2));
        let b = NodeId::new(3);
        sim.crash_after_sends(b, 1);
        let out = comms
            .multicast(ga, b, &Bytes::from_static(b"reply"))
            .unwrap();
        assert_eq!(out.replies.len(), 1);
        assert_eq!(out.missed, vec![NodeId::new(2)]);
        assert_eq!(a1.borrow().log.len(), 1);
        assert_eq!(a2.borrow().log.len(), 0, "A2 diverged from A1");
        assert_eq!(comms.stats(ga).partial_deliveries, 1);
    }

    #[test]
    fn figure1_reliable_sender_crash_relays() {
        // Same scenario with the reliable protocol: A1 relays to A2.
        let (sim, comms) = world();
        let ga = comms.create_group(DeliveryMode::ReliableOrdered);
        let a1 = join_recording(&comms, ga, NodeId::new(1));
        let a2 = join_recording(&comms, ga, NodeId::new(2));
        let b = NodeId::new(3);
        sim.crash_after_sends(b, 1);
        let out = comms
            .multicast(ga, b, &Bytes::from_static(b"reply"))
            .unwrap();
        assert!(out.relayed);
        assert!(out.missed.is_empty());
        assert_eq!(a1.borrow().log, a2.borrow().log, "no divergence");
        assert_eq!(comms.stats(ga).relays, 1);
        assert_eq!(comms.stats(ga).partial_deliveries, 0);
    }

    #[test]
    fn crashed_member_is_skipped_then_evicted() {
        let (sim, comms) = world();
        let g = comms.create_group(DeliveryMode::ReliableOrdered);
        let m1 = join_recording(&comms, g, NodeId::new(1));
        let _m2 = join_recording(&comms, g, NodeId::new(2));
        sim.crash(NodeId::new(2));
        let out = comms
            .multicast(g, NodeId::new(0), &Bytes::from_static(b"x"))
            .unwrap();
        assert_eq!(out.replies.len(), 1);
        assert!(out.missed.is_empty(), "a dead member is not 'missed'");
        assert_eq!(m1.borrow().log.len(), 1);
        let v = comms.refresh_view(g).unwrap();
        assert_eq!(v.members, vec![NodeId::new(1)]);
        assert_eq!(comms.stats(g).view_changes, 3, "2 joins + 1 eviction");
    }

    #[test]
    fn no_live_members_is_an_error() {
        let (sim, comms) = world();
        let g = comms.create_group(DeliveryMode::ReliableOrdered);
        let _m = join_recording(&comms, g, NodeId::new(1));
        sim.crash(NodeId::new(1));
        assert_eq!(
            comms.multicast(g, NodeId::new(0), &Bytes::from_static(b"x")),
            Err(GroupError::NoLiveMembers(g))
        );
        // Empty group too:
        let g2 = comms.create_group(DeliveryMode::ReliableOrdered);
        assert_eq!(
            comms.multicast(g2, NodeId::new(0), &Bytes::from_static(b"x")),
            Err(GroupError::NoLiveMembers(g2))
        );
    }

    #[test]
    fn sender_down_and_unknown_group_errors() {
        let (sim, comms) = world();
        let g = comms.create_group(DeliveryMode::Unreliable);
        sim.crash(NodeId::new(0));
        assert_eq!(
            comms.multicast(g, NodeId::new(0), &Bytes::from_static(b"x")),
            Err(GroupError::SenderDown(NodeId::new(0)))
        );
        assert_eq!(
            comms.multicast(
                GroupId::from_raw(99),
                NodeId::new(1),
                &Bytes::from_static(b"x")
            ),
            Err(GroupError::UnknownGroup(GroupId::from_raw(99)))
        );
        assert!(comms.view(GroupId::from_raw(99)).is_err());
    }

    #[test]
    fn leave_and_destroy() {
        let (_sim, comms) = world();
        let g = comms.create_group(DeliveryMode::ReliableOrdered);
        join_recording(&comms, g, NodeId::new(1));
        join_recording(&comms, g, NodeId::new(2));
        let v = comms.leave(g, NodeId::new(1)).unwrap();
        assert_eq!(v.members, vec![NodeId::new(2)]);
        comms.destroy_group(g);
        assert!(comms.view(g).is_err());
    }

    #[test]
    fn rejoining_member_does_not_bump_view() {
        let (_sim, comms) = world();
        let g = comms.create_group(DeliveryMode::ReliableOrdered);
        join_recording(&comms, g, NodeId::new(1));
        let v1 = comms.view(g).unwrap();
        join_recording(&comms, g, NodeId::new(1));
        let v2 = comms.view(g).unwrap();
        assert_eq!(v1.id, v2.id);
        assert_eq!(v2.members.len(), 1);
    }

    #[test]
    fn first_reply_accessor() {
        let (_sim, comms) = world();
        let g = comms.create_group(DeliveryMode::ReliableOrdered);
        join_recording(&comms, g, NodeId::new(1));
        let out = comms
            .multicast(g, NodeId::new(0), &Bytes::from_static(b"m"))
            .unwrap();
        assert_eq!(out.first_reply().expect("one reply"), b"ack1");
    }

    #[test]
    fn fanout_shares_one_buffer_across_all_members() {
        let (_sim, comms) = world();
        let g = comms.create_group(DeliveryMode::ReliableOrdered);
        let members: Vec<_> = (1..=4u32)
            .map(|i| join_recording(&comms, g, NodeId::new(i)))
            .collect();
        let msg = Bytes::from(b"one-shared-frame".to_vec());
        let msg_ptr = msg.as_slice().as_ptr();
        let before = groupview_sim::wire::stats();
        let out = comms.multicast(g, NodeId::new(0), &msg).unwrap();
        let delta = groupview_sim::wire::stats().since(before);
        assert_eq!(out.replies.len(), 4);
        assert_eq!(
            delta.bytes_copied, 0,
            "zero payload copies on the fan-out path"
        );
        for m in &members {
            assert_eq!(
                m.borrow().log[0].1.as_slice().as_ptr(),
                msg_ptr,
                "every member aliases the sender's buffer"
            );
        }
    }
}
