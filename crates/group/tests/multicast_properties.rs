//! Property tests for reliable ordered multicast: all members that survive
//! a run delivered the same messages in the same total order, no matter
//! which crash/multicast interleaving occurred.

use groupview_group::comms::DeliveryMode;
use groupview_group::member::RecordingMember;
use groupview_group::GroupComms;
use groupview_sim::{Bytes, NodeId, Sim, SimConfig};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone)]
enum Ev {
    /// Multicast the given payload byte from the sender node.
    Cast(u8),
    /// Crash member i.
    Crash(usize),
    /// Crash the member after its next send (mid-protocol failure).
    CrashAfterSend(usize),
    /// Refresh the view (failure detector tick).
    Refresh,
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        6 => (0u8..=255).prop_map(Ev::Cast),
        1 => (0usize..4).prop_map(Ev::Crash),
        1 => (0usize..4).prop_map(Ev::CrashAfterSend),
        2 => Just(Ev::Refresh),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn survivors_agree_on_sequence_and_order(
        seed in 0u64..100_000,
        events in prop::collection::vec(ev_strategy(), 1..40),
    ) {
        let sim = Sim::new(SimConfig::new(seed).with_nodes(5));
        let comms = GroupComms::new(&sim);
        let group = comms.create_group(DeliveryMode::ReliableOrdered);
        let members: Vec<(NodeId, Rc<RefCell<RecordingMember>>)> = (1..=4u32)
            .map(|i| {
                let m = Rc::new(RefCell::new(RecordingMember::default()));
                comms.join(group, NodeId::new(i), m.clone()).unwrap();
                (NodeId::new(i), m)
            })
            .collect();
        let sender = NodeId::new(0);

        // Track which members were up for the entire run: only they are
        // guaranteed complete identical logs (a member crashed mid-run may
        // have a prefix).
        let mut always_up = [true; 4];
        for ev in &events {
            match *ev {
                Ev::Cast(payload) => {
                    let _ = comms.multicast(group, sender, &Bytes::from(vec![payload]));
                }
                Ev::Crash(i) => {
                    sim.crash(members[i].0);
                    always_up[i] = false;
                }
                Ev::CrashAfterSend(i) => {
                    if sim.is_up(members[i].0) {
                        sim.crash_after_sends(members[i].0, 1);
                        // It may or may not fire; treat as unstable.
                        always_up[i] = false;
                    }
                }
                Ev::Refresh => {
                    let _ = comms.refresh_view(group);
                }
            }
        }

        // Invariant: all always-up members have byte-identical logs — same
        // messages, same sequence numbers, same order.
        let stable_logs: Vec<_> = members
            .iter()
            .zip(always_up.iter())
            .filter(|(_, &up)| up)
            .map(|((_, m), _)| m.borrow().log.clone())
            .collect();
        for pair in stable_logs.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "stable members diverged");
        }
        // Sequence numbers strictly increase within every log (ordering),
        // including the logs of members that crashed part-way.
        for (_, m) in &members {
            let log = &m.borrow().log;
            for w in log.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "sequence went backwards");
            }
        }
    }

    /// In unreliable mode the same schedule may diverge — but never more
    /// than the reliable protocol's guarantee: this documents the contrast
    /// by checking the reliable run *with identical events* stays agreed.
    #[test]
    fn reliable_never_worse_than_unreliable(
        seed in 0u64..50_000,
        payloads in prop::collection::vec(0u8..=255, 1..20),
        crash_at in 0usize..20,
    ) {
        let run = |mode: DeliveryMode| {
            let sim = Sim::new(SimConfig::new(seed).with_nodes(4));
            let comms = GroupComms::new(&sim);
            let group = comms.create_group(mode);
            let a = Rc::new(RefCell::new(RecordingMember::default()));
            let b = Rc::new(RefCell::new(RecordingMember::default()));
            comms.join(group, NodeId::new(1), a.clone()).unwrap();
            comms.join(group, NodeId::new(2), b.clone()).unwrap();
            let sender = NodeId::new(3);
            for (i, p) in payloads.iter().enumerate() {
                if i == crash_at {
                    sim.crash_after_sends(sender, 1);
                }
                let _ = comms.multicast(group, sender, &Bytes::from(vec![*p]));
            }
            let diverged = a.borrow().log != b.borrow().log;
            diverged
        };
        let reliable_diverged = run(DeliveryMode::ReliableOrdered);
        prop_assert!(!reliable_diverged, "reliable mode must never diverge");
        // (The unreliable run may or may not diverge — that is E1's metric.)
    }
}
