//! Canned scenarios: the matrix CI runs across seeds.
//!
//! Twenty-six scenarios over one base topology (7 nodes: node 0 names,
//! nodes 1–3 serve and store, nodes 4–6 host clients; the elastic family
//! grows it mid-run) covering all three
//! replication policies, all fault families (crashes, rolling crashes,
//! send-window crashes in the paper's Figure 1 window, partitions,
//! flapping partitions, message loss, client churn, recovery storms,
//! elastic membership ramps and rebalance storms),
//! three binding schemes, batched and per-op invocation, and all three
//! object classes (counters everywhere; the send-window scenarios also
//! drive a KvMap and an Account so the oracle checks every operation type
//! under mid-exchange crashes; the transfer scenarios drive two-object
//! transactions through the typed `Tx` surface over a population of
//! Accounts and additionally demand conservation of money at every commit
//! point). Every scenario demands the oracle's sequential-replay
//! equivalence and the paper's post-recovery invariants; scenarios where
//! active replication should fully mask the injected faults additionally
//! demand a zero failure-caused abort count.

use crate::nemesis;
use crate::oracle::ModelKind;
use crate::plan::{FaultPlan, PlanAction};
use crate::runner::{Checks, Scenario};
use groupview_core::BindingScheme;
use groupview_replication::ReplicationPolicy;
use groupview_sim::{NodeId, SimDuration};
use groupview_workload::WorkloadSpec;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn servers() -> Vec<NodeId> {
    vec![n(1), n(2), n(3)]
}

fn base_workload() -> WorkloadSpec {
    WorkloadSpec::new(vec![], vec![n(4), n(5), n(6)])
        .clients(3)
        .actions_per_client(4)
        .ops_per_action(2)
        .replicas(2)
}

fn base(name: &'static str, policy: ReplicationPolicy) -> Scenario {
    Scenario {
        name,
        policy,
        scheme: BindingScheme::Standard,
        nodes: 7,
        server_nodes: servers(),
        objects: vec![ModelKind::COUNTER; 2],
        workload: base_workload(),
        plan: Box::new(|_| FaultPlan::new()),
        checks: Checks::default(),
    }
}

/// The canned scenario suite (≥ 8 scenarios, all three policies).
pub fn canned_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // 1. Fault-free baseline: everything must commit-or-contend, replay
    //    exactly, and a fault-free run is trivially "masked".
    let mut sc = base("active/fault_free", ReplicationPolicy::Active);
    sc.checks.expect_crash_masked = true;
    scenarios.push(sc);

    // 2. One server crash mid-run, recovered later: active replication
    //    must mask it completely (the crash-masking flagship).
    let mut sc = base("active/masked_server_crash", ReplicationPolicy::Active);
    sc.plan = Box::new(|_| {
        FaultPlan::new()
            .at(SimDuration::from_millis(3), PlanAction::CrashNode(n(2)))
            .at(SimDuration::from_millis(45), PlanAction::RecoverNode(n(2)))
    });
    sc.checks.expect_crash_masked = true;
    scenarios.push(sc);

    // 3. Rolling crashes across the whole server set: at most one replica
    //    down at a time; recovery repeatedly re-Includes and re-Inserts.
    let mut sc = base("active/rolling_crashes", ReplicationPolicy::Active);
    sc.plan = Box::new(|seed| {
        nemesis::rolling_crashes(
            seed,
            &[n(1), n(2), n(3)],
            SimDuration::from_millis(2),
            SimDuration::from_millis(30),
            SimDuration::from_millis(12),
            3,
        )
    });
    scenarios.push(sc);

    // 4. Flapping partition between the client side and one server: missed
    //    deliveries expel the member (virtual synchrony) instead of
    //    corrupting it.
    let mut sc = base("active/flapping_partition", ReplicationPolicy::Active);
    sc.scheme = BindingScheme::NestedTopLevel;
    sc.plan = Box::new(|seed| {
        nemesis::flapping_partition(
            seed,
            &[n(4), n(5), n(6)],
            &[n(2)],
            SimDuration::from_millis(2),
            SimDuration::from_millis(16),
            3,
        )
    });
    scenarios.push(sc);

    // 5. Recovery storm: every server crashes nearly at once, then all
    //    recover in random order — the joint-fixpoint recovery drill.
    let mut sc = base("active/recovery_storm", ReplicationPolicy::Active);
    sc.plan = Box::new(|seed| {
        nemesis::recovery_storm(
            seed,
            &[n(1), n(2), n(3)],
            SimDuration::from_millis(6),
            SimDuration::from_millis(5),
        )
    });
    sc.checks.expect_commits = false; // a storm may blanket the short run
    scenarios.push(sc);

    // 6. Client churn under the use-list-updating scheme: crashed clients
    //    leak use-list entries; sweeps must reclaim every one.
    let mut sc = base("active/client_churn", ReplicationPolicy::Active);
    sc.scheme = BindingScheme::IndependentTopLevel;
    sc.workload = base_workload().clients(4).actions_per_client(4);
    sc.plan = Box::new(|seed| {
        nemesis::client_churn(
            seed,
            4,
            SimDuration::from_millis(2),
            SimDuration::from_millis(25),
            2,
            1,
        )
    });
    scenarios.push(sc);

    // 7. Passivation churn: objects passivate between actions while servers
    //    roll over, exercising activation-from-store under crashes.
    let mut sc = base("active/passivate_rolling", ReplicationPolicy::Active);
    sc.workload = base_workload().passivate_between_actions();
    sc.plan = Box::new(|seed| {
        nemesis::rolling_crashes(
            seed,
            &[n(2), n(3)],
            SimDuration::from_millis(3),
            SimDuration::from_millis(28),
            SimDuration::from_millis(10),
            2,
        )
    });
    scenarios.push(sc);

    // 8. Coordinator-cohort under a lossy window: dropped checkpoints and
    //    RPCs abort actions (failure-caused) but can never corrupt state.
    let mut sc = base("cohort/lossy_window", ReplicationPolicy::CoordinatorCohort);
    sc.plan = Box::new(|seed| {
        nemesis::lossy_window(
            seed,
            SimDuration::from_millis(2),
            SimDuration::from_millis(24),
            0.12,
            3,
        )
    });
    sc.checks.expect_commits = false; // heavy loss can abort a short run
    scenarios.push(sc);

    // 9. Coordinator-cohort with a read-heavy mix and a coordinator crash:
    //    a cohort is elected and the retried ops must not double-apply.
    let mut sc = base(
        "cohort/coordinator_crash",
        ReplicationPolicy::CoordinatorCohort,
    );
    sc.workload = base_workload().read_fraction(0.5);
    sc.plan = Box::new(|_| {
        FaultPlan::new()
            .at(SimDuration::from_millis(4), PlanAction::CrashNode(n(1)))
            .at(SimDuration::from_millis(40), PlanAction::RecoverNode(n(1)))
    });
    scenarios.push(sc);

    // 10. Single-copy passive with a server crash: in-flight actions abort
    //     (attributed to the failure), later activations fail over, and the
    //     recovered store is refreshed before re-Inclusion.
    let mut sc = base(
        "single_copy/crash_failover",
        ReplicationPolicy::SingleCopyPassive,
    );
    sc.plan = Box::new(|_| {
        FaultPlan::new()
            .at(SimDuration::from_millis(3), PlanAction::CrashNode(n(1)))
            .at(SimDuration::from_millis(40), PlanAction::RecoverNode(n(1)))
    });
    scenarios.push(sc);

    // 11. Single-copy passive under client-server partitions: binds and
    //     invokes fail fast, heal restores service, nothing goes stale.
    let mut sc = base(
        "single_copy/flapping_partition",
        ReplicationPolicy::SingleCopyPassive,
    );
    sc.plan = Box::new(|seed| {
        nemesis::flapping_partition(
            seed,
            &[n(4), n(5), n(6)],
            &[n(1), n(2)],
            SimDuration::from_millis(3),
            SimDuration::from_millis(18),
            2,
        )
    });
    sc.checks.expect_commits = false;
    scenarios.push(sc);

    // 12–14. The paper's Figure 1 window, one scenario per policy: servers
    // are armed to crash after a seeded number of send *attempts*, so the
    // crash lands mid-exchange (mid-multicast, mid-reply) — under active
    // replication mid-fan-out divergence must be masked; under
    // coordinator-cohort the cohorts must take over without replaying or
    // losing updates; under single-copy the affected actions abort but
    // must never corrupt state. Each drives a KvMap *and* an Account (plus
    // a counter), so the oracle's per-operation-type checks — previous
    // values on Put, REFUSED overdrafts — all run in the crash window.
    for (name, policy) in [
        ("active/send_window_crashes", ReplicationPolicy::Active),
        (
            "cohort/send_window_crashes",
            ReplicationPolicy::CoordinatorCohort,
        ),
        (
            "single_copy/send_window_crashes",
            ReplicationPolicy::SingleCopyPassive,
        ),
    ] {
        let mut sc = base(name, policy);
        sc.objects = vec![
            ModelKind::KvMap,
            ModelKind::Account { initial: 10 },
            ModelKind::COUNTER,
        ];
        sc.plan = Box::new(|seed| {
            // Long armed windows (20 of 24ms) and small budgets so the
            // scripted crash reliably fires inside a message exchange.
            nemesis::send_window_crashes(
                seed,
                &[n(1), n(2), n(3)],
                SimDuration::from_millis(2),
                SimDuration::from_millis(24),
                SimDuration::from_millis(20),
                3,
                3,
            )
        });
        sc.checks.expect_commits = false; // an armed coordinator can blanket a short run
        scenarios.push(sc);
    }

    // 15–17. The §4 two-phase-commit window, one scenario per policy:
    // store nodes are armed to crash right after acknowledging a prepare,
    // so the crash lands *between* the two commit phases. The committing
    // action's decision stands (the coordinator heard the ack), the store
    // is left in-doubt, and the oracle then demands that recovery resolved
    // every in-doubt transaction (I1/I2: all stores byte-identical and
    // holding the replayed model's state, St back to full strength). Under
    // active replication the co-hosted replica crash must also be fully
    // masked — the abort taxonomy may show contention, never failures.
    for (name, policy) in [
        ("active/store_crash_in_commit", ReplicationPolicy::Active),
        (
            "cohort/store_crash_in_commit",
            ReplicationPolicy::CoordinatorCohort,
        ),
        (
            "single_copy/store_crash_in_commit",
            ReplicationPolicy::SingleCopyPassive,
        ),
    ] {
        let mut sc = base(name, policy);
        sc.plan = Box::new(|seed| {
            nemesis::store_commit_crashes(
                seed,
                &[n(1), n(2), n(3)],
                SimDuration::from_millis(2),
                SimDuration::from_millis(24),
                SimDuration::from_millis(18),
                2,
            )
        });
        if policy == ReplicationPolicy::Active {
            sc.checks.expect_crash_masked = true;
        } else {
            // A mid-commit store crash can blanket a short run's window.
            sc.checks.expect_commits = false;
        }
        scenarios.push(sc);
    }

    // 18–20. Cross-object transfers under mid-2PC store crashes, one
    // scenario per policy: every mutating action is a two-object balanced
    // transfer built through the typed `Tx` surface (withdraw one account,
    // deposit another under the same action), committed one machine step
    // later so the armed store crash lands in the invoke→commit window.
    // The oracle replays each committed transaction atomically and
    // additionally checks *conservation*: the sum of all account balances
    // equals the initial total at every commit point — a lost deposit leg
    // or a half-committed transfer (one object installed, the other not)
    // breaks the sum immediately. In-doubt store states left by the
    // crashes must resolve at recovery to the same atomic outcome.
    for (name, policy) in [
        ("active/transfer_store_crash", ReplicationPolicy::Active),
        (
            "cohort/transfer_store_crash",
            ReplicationPolicy::CoordinatorCohort,
        ),
        (
            "single_copy/transfer_store_crash",
            ReplicationPolicy::SingleCopyPassive,
        ),
    ] {
        let mut sc = base(name, policy);
        sc.objects = vec![ModelKind::Account { initial: 50 }; 4];
        sc.workload = base_workload().transfers();
        sc.plan = Box::new(|seed| {
            nemesis::store_commit_crashes(
                seed,
                &[n(1), n(2), n(3)],
                SimDuration::from_millis(2),
                SimDuration::from_millis(24),
                SimDuration::from_millis(18),
                2,
            )
        });
        sc.checks.conservation = true;
        // A mid-commit store crash can blanket a short run's window.
        sc.checks.expect_commits = false;
        scenarios.push(sc);
    }

    // 21. Batched invocations under rolling crashes: ops travel as
    // multi-op wire frames (one lock, one undo snapshot, one write-back
    // per batch), the history records them as ordered per-op events, and
    // the oracle must replay the batched commits exactly like unbatched
    // ones.
    let mut sc = base("active/batched_rolling", ReplicationPolicy::Active);
    sc.workload = base_workload().ops_per_action(8).ops_per_batch(4);
    sc.plan = Box::new(|seed| {
        nemesis::rolling_crashes(
            seed,
            &[n(1), n(2), n(3)],
            SimDuration::from_millis(2),
            SimDuration::from_millis(30),
            SimDuration::from_millis(12),
            3,
        )
    });
    scenarios.push(sc);

    // 22. Batched invocations through coordinator-cohort with a
    // coordinator crash: a batch retried after failover must dedup as one
    // at-most-once unit — no partial re-execution of an already-applied
    // batch. Mixed read fraction also drives the read-only batch path.
    let mut sc = base(
        "cohort/batched_coordinator_crash",
        ReplicationPolicy::CoordinatorCohort,
    );
    sc.workload = base_workload()
        .ops_per_action(8)
        .ops_per_batch(4)
        .read_fraction(0.25);
    sc.plan = Box::new(|_| {
        FaultPlan::new()
            .at(SimDuration::from_millis(4), PlanAction::CrashNode(n(1)))
            .at(SimDuration::from_millis(40), PlanAction::RecoverNode(n(1)))
    });
    scenarios.push(sc);

    // 23–25. Elastic membership ramp, one scenario per policy: the world
    // grows by two fresh nodes mid-run, original server 2 drains — every
    // replica it hosts migrates transactionally onto the survivors and
    // newcomers — and a stats-driven rebalance then spreads placement,
    // all under a lossy network window. The oracle still demands
    // sequential-replay equivalence and the paper's invariants at full
    // strength after quiesce: the committed history must survive every
    // move, and a half-migrated replica (repointed directory without
    // state, or state without directory) would fail I1/I2 immediately.
    for (name, policy) in [
        ("active/elastic_ramp", ReplicationPolicy::Active),
        ("cohort/elastic_ramp", ReplicationPolicy::CoordinatorCohort),
        (
            "single_copy/elastic_ramp",
            ReplicationPolicy::SingleCopyPassive,
        ),
    ] {
        let mut sc = base(name, policy);
        sc.workload = base_workload().actions_per_client(5);
        sc.plan = Box::new(|seed| {
            nemesis::elastic_ramp(
                seed,
                2,
                n(2),
                SimDuration::from_millis(2),
                SimDuration::from_millis(30),
            )
            .merge(nemesis::lossy_window(
                seed,
                SimDuration::from_millis(4),
                SimDuration::from_millis(16),
                0.08,
                2,
            ))
        });
        // Loss plus a draining server can blanket a short run's window.
        sc.checks.expect_commits = false;
        scenarios.push(sc);
    }

    // 26. Rebalance storm: a fresh node joins at once, then repeated
    // stats-driven rebalances race server crashes and recoveries — every
    // migration transaction keeps running into dead state sources,
    // shrunken target sets, and freshly refreshed stores, and each move
    // must still commit atomically or abort without a trace.
    let mut sc = base("active/rebalance_storm", ReplicationPolicy::Active);
    sc.plan = Box::new(|seed| {
        FaultPlan::new()
            .at(SimDuration::from_millis(1), PlanAction::AddNode)
            .merge(nemesis::rebalance_storm(
                seed,
                &[n(2), n(3)],
                SimDuration::from_millis(3),
                SimDuration::from_millis(12),
                3,
            ))
    });
    sc.checks.expect_commits = false; // crash-heavy storms can blanket a short run
    scenarios.push(sc);

    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_policies_and_is_large_enough() {
        let scenarios = canned_scenarios();
        assert!(
            scenarios.len() >= 8,
            "the issue demands ≥8 canned scenarios"
        );
        for policy in ReplicationPolicy::ALL {
            assert!(
                scenarios.iter().any(|s| s.policy == policy),
                "no scenario covers {policy:?}"
            );
            // Every policy gets a mid-2PC store-crash scenario.
            assert!(
                scenarios
                    .iter()
                    .any(|s| s.policy == policy && s.name.ends_with("store_crash_in_commit")),
                "no store-crash scenario for {policy:?}"
            );
            // Every policy gets a Figure-1 send-window scenario driving a
            // KvMap and an Account alongside a counter.
            let sw = scenarios
                .iter()
                .find(|s| s.policy == policy && s.name.ends_with("send_window_crashes"))
                .unwrap_or_else(|| panic!("no send-window scenario for {policy:?}"));
            assert!(sw.objects.contains(&ModelKind::KvMap));
            assert!(sw
                .objects
                .iter()
                .any(|k| matches!(k, ModelKind::Account { .. })));
            // Every policy gets a typed-Tx transfer scenario over Accounts
            // with the conservation check armed.
            let tr = scenarios
                .iter()
                .find(|s| s.policy == policy && s.name.ends_with("transfer_store_crash"))
                .unwrap_or_else(|| panic!("no transfer scenario for {policy:?}"));
            assert!(tr.workload.transfers);
            assert!(tr.checks.conservation);
            assert!(tr
                .objects
                .iter()
                .all(|k| matches!(k, ModelKind::Account { .. })));
        }
        for policy in ReplicationPolicy::ALL {
            // Every policy gets an elastic-membership ramp (grow, drain,
            // rebalance) so transactional migration runs under each
            // replication discipline.
            let el = scenarios
                .iter()
                .find(|s| s.policy == policy && s.name.ends_with("elastic_ramp"))
                .unwrap_or_else(|| panic!("no elastic-ramp scenario for {policy:?}"));
            let plan = (el.plan)(1);
            let has = |want: fn(&PlanAction) -> bool| plan.events().iter().any(|e| want(&e.action));
            assert!(has(|a| *a == PlanAction::AddNode));
            assert!(has(|a| matches!(a, PlanAction::DrainNode(_))));
            assert!(has(|a| *a == PlanAction::Rebalance));
        }
        // Plus a rebalance storm racing crashes against migrations.
        assert!(
            scenarios.iter().any(|s| {
                s.name.ends_with("rebalance_storm")
                    && (s.plan)(1)
                        .events()
                        .iter()
                        .any(|e| matches!(e.action, PlanAction::CrashNode(_)))
            }),
            "no rebalance-storm scenario"
        );
        // At least one scenario drives batched invocations under a
        // nemesis, so the oracle verifies batched histories.
        assert!(
            scenarios
                .iter()
                .any(|s| s.workload.ops_per_batch > 1 && !(s.plan)(1).is_empty()),
            "no batched-workload scenario with a nemesis"
        );
        // Names are unique (reports would be ambiguous otherwise).
        let mut names: Vec<_> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len());
    }

    #[test]
    fn every_canned_plan_is_well_formed_across_seeds() {
        for scenario in canned_scenarios() {
            for seed in [1, 2, 3, 99, 1234] {
                let plan = (scenario.plan)(seed);
                plan.validate().unwrap_or_else(|e| {
                    panic!("{} seed {seed}: malformed plan: {e}", scenario.name)
                });
            }
        }
    }
}
