//! The consistency oracle: sequential-replay equivalence plus the paper's
//! post-recovery invariants.
//!
//! Two families of checks:
//!
//! 1. **History replay** ([`Oracle::verify`], part one): committed actions
//!    are replayed in commit order against a sequential model of each
//!    object. Strict two-phase locking with refusal makes commit order a
//!    serialization order, so every recorded reply must match the model's,
//!    and after quiesce every store in `St(A)` must hold the model's final
//!    snapshot (invariant I2). The model **is** a fresh instance of the
//!    real object class ([`ModelKind`] builds a [`Counter`], [`KvMap`], or
//!    [`Account`]) executed without any replication machinery — so every
//!    operation type the class supports is checked per reply, not just
//!    counter adds (Crichlow & Hartley validate replicated objects per
//!    operation type; Shapiro & Preguiça's history-checking is what catches
//!    ordering bugs a final-state check misses).
//! 2. **Paper invariants after quiesce + recovery** (part two,
//!    [`check_quiescent_invariants`]): no leaked locks (I5), use lists
//!    quiescent (I4), `St` restored to full strength, and all listed
//!    stores byte-identical (I1). This generalizes what the repo-level
//!    `tests/invariants.rs` used to hard-code.

use crate::history::{EventKind, History};
use groupview_replication::{Account, Counter, KvMap, ObjectType, ReplicaObject, System};
use groupview_sim::{Bytes, WireEncoder};
use groupview_store::Uid;
use std::collections::HashMap;
use std::fmt;

/// Dispatches once from a runtime [`ModelKind`] to its compile-time class,
/// so every per-class behaviour below is written exactly once, generically
/// over [`ObjectType`] — no parallel match arms per operation.
macro_rules! with_class {
    ($kind:expr, $C:ident => $body:expr) => {
        match $kind {
            ModelKind::Counter { .. } => {
                type $C = Counter;
                $body
            }
            ModelKind::KvMap => {
                type $C = KvMap;
                $body
            }
            ModelKind::Account { .. } => {
                type $C = Account;
                $body
            }
        }
    };
}
pub(crate) use with_class;

/// Which object class an oracle model replays, plus its initial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// A [`Counter`] starting at the given value.
    Counter {
        /// The counter's initial committed value.
        initial: i64,
    },
    /// An empty [`KvMap`].
    KvMap,
    /// An [`Account`] opened with the given balance.
    Account {
        /// The account's initial committed balance.
        initial: u64,
    },
}

impl ModelKind {
    /// A zero-valued counter model (the historical default).
    pub const COUNTER: ModelKind = ModelKind::Counter { initial: 0 };

    /// Builds a fresh live instance of the class — both the object the
    /// scenario runner registers with the system and the sequential model
    /// the oracle replays.
    pub fn fresh(&self) -> Box<dyn ReplicaObject> {
        match *self {
            ModelKind::Counter { initial } => Box::new(Counter::new(initial)),
            ModelKind::KvMap => Box::new(KvMap::new()),
            ModelKind::Account { initial } => Box::new(Account::new(initial)),
        }
    }

    /// Whether `op` decodes as an operation of this class (undecodable ops
    /// in a history are recorder bugs and flagged as violations).
    fn decodes(&self, op: &[u8]) -> bool {
        with_class!(self, C => C::decode_op(op).is_some())
    }

    /// Human-readable decode of `op` for violation messages.
    fn describe_op(&self, op: &[u8]) -> String {
        with_class!(self, C => C::describe_op(op))
    }

    /// Human-readable decode of a reply *in the context of its op* for
    /// violation messages (a `Len` reply is a count, a `Get` reply a
    /// value — only the class codec knows).
    fn describe_reply(&self, op: &[u8], reply: &[u8]) -> String {
        with_class!(self, C => match C::decode_op(op) {
            Some(decoded) => format!("{:?}", C::decode_reply(&decoded, reply)),
            None => format!("{reply:?}"),
        })
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelKind::Counter { .. } => write!(f, "counter"),
            ModelKind::KvMap => write!(f, "kv-map"),
            ModelKind::Account { .. } => write!(f, "account"),
        }
    }
}

/// What the oracle knows about one object under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectModel {
    /// The object.
    pub uid: Uid,
    /// The object's class and initial state.
    pub kind: ModelKind,
    /// `|St|` at creation — the strength recovery must restore.
    pub full_strength: usize,
}

/// The oracle's verdict over one run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Committed actions replayed.
    pub committed_actions: u64,
    /// Operations replayed inside those actions.
    pub replayed_ops: u64,
    /// The model's final snapshot per object — what every surviving store
    /// must hold after quiesce (I2).
    pub final_states: Vec<(Uid, Bytes)>,
    /// Everything that did not check out (empty means the run verified).
    pub violations: Vec<String>,
}

impl OracleReport {
    /// Whether every check passed.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(
                f,
                "ok ({} commits, {} ops replayed)",
                self.committed_actions, self.replayed_ops
            )
        } else {
            write!(
                f,
                "{} violation(s); first: {}",
                self.violations.len(),
                self.violations[0]
            )
        }
    }
}

/// Replays histories and checks invariants for a set of modeled objects.
///
/// The models are trivially sequential instances of the real classes, so
/// the *system's* behaviour — replication, locking, recovery — is the only
/// unknown under test.
#[derive(Debug, Clone)]
pub struct Oracle {
    objects: Vec<ObjectModel>,
    /// Check cross-object conservation: after every committed action's
    /// atomic replay, the sum of all account balances must equal the sum of
    /// their initial balances. Only meaningful for workloads whose account
    /// operations are balanced transfers (a deposit-only mix legitimately
    /// grows the total).
    conservation: bool,
}

impl Oracle {
    /// An oracle for the given objects.
    pub fn new(objects: Vec<ObjectModel>) -> Self {
        Oracle {
            objects,
            conservation: false,
        }
    }

    /// Enables the cross-object conservation check: the total across all
    /// account models must be invariant at every commit point. This is the
    /// atomicity oracle for transfers — a transaction that commits only one
    /// leg (a withdrawal without its deposit, or vice versa) shifts the
    /// total and is flagged at the exact action that broke it.
    pub fn with_conservation(mut self) -> Self {
        self.conservation = true;
        self
    }

    /// The objects under test.
    pub fn objects(&self) -> &[ObjectModel] {
        &self.objects
    }

    /// Runs the full verdict: history replay, final-state equivalence, and
    /// the paper's quiescence invariants. The caller must have quiesced the
    /// system first (healed partitions, recovered nodes, swept dead
    /// clients, no in-flight actions).
    pub fn verify(&self, sys: &System, history: &History) -> OracleReport {
        let mut report = self.replay(history);
        report
            .violations
            .extend(check_final_states(sys, &report.final_states));
        report
            .violations
            .extend(check_quiescent_invariants(sys, &self.objects));
        report
    }

    /// Part one only: replays the committed prefix of `history` against the
    /// sequential models and checks every recorded reply.
    pub fn replay(&self, history: &History) -> OracleReport {
        let mut report = OracleReport::default();
        // The models write replies through their own pooled encoder; each
        // expected reply is compared and dropped, so replay allocates only
        // on its cold start.
        let enc = WireEncoder::new();
        let mut model: HashMap<Uid, (ModelKind, Box<dyn ReplicaObject>)> = self
            .objects
            .iter()
            .map(|o| (o.uid, (o.kind, o.kind.fresh())))
            .collect();
        // Ops buffered per in-flight action, replayed at its commit event
        // (commit order == serialization order under strict 2PL).
        type PendingOp = (Uid, groupview_sim::Bytes, groupview_sim::Bytes);
        let mut pending: HashMap<u64, Vec<PendingOp>> = HashMap::new();
        let initial_total: u64 = self
            .objects
            .iter()
            .filter_map(|o| match o.kind {
                ModelKind::Account { initial } => Some(initial),
                _ => None,
            })
            .sum();
        for ev in history.events() {
            match &ev.kind {
                EventKind::Invoked { op, reply, .. } => {
                    // Undecodable op bytes are a recorder bug no matter how
                    // the action later ends — flag them here, where even an
                    // aborted or crashed action's events are still seen.
                    if let Some((kind, _)) = model.get(&ev.uid) {
                        if !kind.decodes(op) {
                            report
                                .violations
                                .push(format!("action {}: undecodable {kind} op", ev.action));
                            continue;
                        }
                    }
                    pending
                        .entry(ev.action)
                        .or_default()
                        .push((ev.uid, op.clone(), reply.clone()));
                }
                EventKind::Committed => {
                    report.committed_actions += 1;
                    for (uid, op, observed) in pending.remove(&ev.action).unwrap_or_default() {
                        let Some((kind, object)) = model.get_mut(&uid) else {
                            report
                                .violations
                                .push(format!("action {}: unknown object {uid}", ev.action));
                            continue;
                        };
                        report.replayed_ops += 1;
                        let expected = object.invoke(&op, &enc).reply;
                        if observed.as_slice() != expected.as_slice() {
                            report.violations.push(format!(
                                "action {} on {uid} ({kind}): {} replied {}, \
                                 sequential replay expects {}",
                                ev.action,
                                kind.describe_op(&op),
                                kind.describe_reply(&op, &observed),
                                kind.describe_reply(&op, &expected),
                            ));
                        }
                    }
                    // The commit point is where atomicity is observable:
                    // both legs of a transfer (or neither) are now in the
                    // models, so the account total must be back at par.
                    if self.conservation {
                        let total = account_total(&model, &enc);
                        if total != initial_total {
                            report.violations.push(format!(
                                "conservation violated after action {}: accounts total \
                                 {total}, expected {initial_total}",
                                ev.action
                            ));
                        }
                    }
                }
                // Aborted and crashed actions must leave no trace; their
                // buffered ops are simply dropped from the model.
                EventKind::Aborted { .. } | EventKind::CrashedMidAction => {
                    pending.remove(&ev.action);
                }
            }
        }
        report.final_states = self
            .objects
            .iter()
            .map(|o| (o.uid, model[&o.uid].1.snapshot(&enc)))
            .collect();
        report
    }
}

/// Sums the balances of every account model (an [`Account`] snapshot is its
/// balance, little-endian).
fn account_total(
    model: &HashMap<Uid, (ModelKind, Box<dyn ReplicaObject>)>,
    enc: &WireEncoder,
) -> u64 {
    model
        .values()
        .filter(|(kind, _)| matches!(kind, ModelKind::Account { .. }))
        .map(|(_, object)| {
            let snap = object.snapshot(enc);
            u64::from_le_bytes(snap.as_slice()[..8].try_into().expect("account snapshot"))
        })
        .sum()
}

/// Checks that every store listed in each object's `St` holds state bytes
/// equal to the model's `expected` snapshot (invariant I2 after quiesce:
/// committed effects survive).
pub fn check_final_states(sys: &System, expected: &[(Uid, Bytes)]) -> Vec<String> {
    let mut violations = Vec::new();
    for (uid, want) in expected {
        let Some(entry) = sys.naming().state_db.entry(*uid) else {
            violations.push(format!("{uid}: no state-db entry"));
            continue;
        };
        for &node in &entry.stores {
            match sys.stores().read_local(node, *uid) {
                Ok(state) => {
                    if state.data.as_slice() != want.as_slice() {
                        violations.push(format!(
                            "{uid} at {node}: committed state {:?} differs from the \
                             model's {:?} (I2)",
                            state.data.as_slice(),
                            want.as_slice(),
                        ));
                    }
                }
                Err(e) => {
                    violations.push(format!("{uid} at {node}: unreadable after quiesce: {e}"))
                }
            }
        }
    }
    violations
}

/// Counter-specific convenience over [`check_final_states`]: checks that
/// every store holds a counter state equal to `expected`.
pub fn check_counter_states(sys: &System, expected: &[(Uid, i64)]) -> Vec<String> {
    let enc = WireEncoder::new();
    let snapshots: Vec<(Uid, Bytes)> = expected
        .iter()
        .map(|&(uid, v)| (uid, Counter::new(v).snapshot(&enc)))
        .collect();
    check_final_states(sys, &snapshots)
}

/// Checks the paper's invariants on a quiesced, fully recovered system:
/// empty lock table (I5), quiescent use lists (I4), `St` back to full
/// strength, and byte-identical states across each `St` (I1).
pub fn check_quiescent_invariants(sys: &System, objects: &[ObjectModel]) -> Vec<String> {
    let mut violations = Vec::new();
    if !sys.tx().locks_empty() {
        violations.push("I5 violated: locks left behind after quiesce".to_string());
    }
    for obj in objects {
        let uid = obj.uid;
        match sys.naming().server_db.entry(uid) {
            Some(entry) if !entry.is_quiescent() => {
                violations.push(format!(
                    "I4 violated: {uid} use list not quiescent: {entry}"
                ));
            }
            None => violations.push(format!("{uid}: no server-db entry")),
            _ => {}
        }
        let Some(entry) = sys.naming().state_db.entry(uid) else {
            violations.push(format!("{uid}: no state-db entry"));
            continue;
        };
        if entry.len() != obj.full_strength {
            violations.push(format!(
                "{uid}: St has {} stores after recovery, expected {}",
                entry.len(),
                obj.full_strength
            ));
        }
        let mut states = Vec::new();
        for &node in &entry.stores {
            match sys.stores().read_local(node, uid) {
                Ok(state) => states.push((node, state)),
                Err(e) => violations.push(format!("{uid} at {node}: unreadable: {e}")),
            }
        }
        for pair in states.windows(2) {
            if pair[0].1 != pair[1].1 {
                violations.push(format!(
                    "I1 violated: {uid} stores {} and {} disagree",
                    pair[0].0, pair[1].0
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_replication::{AccountOp, CounterOp, KvOp, KvReply};
    use groupview_sim::{Bytes, SimTime};

    fn uid() -> Uid {
        Uid::from_raw(1)
    }

    fn oracle_for(kind: ModelKind) -> Oracle {
        Oracle::new(vec![ObjectModel {
            uid: uid(),
            kind,
            full_strength: 3,
        }])
    }

    fn oracle() -> Oracle {
        oracle_for(ModelKind::COUNTER)
    }

    fn op(o: CounterOp) -> Bytes {
        Bytes::from(Counter::op_vec(&o))
    }

    fn reply(v: i64) -> Bytes {
        Bytes::from(Counter::reply_vec(&v))
    }

    #[test]
    fn replay_accepts_a_consistent_history() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), op(CounterOp::Add(2)), reply(2), true);
        h.committed(t, 0, 1, uid());
        // An aborted action's ops must not move the model.
        h.invoked(t, 1, 2, uid(), op(CounterOp::Add(50)), reply(52), true);
        h.aborted(t, 1, 2, uid(), false);
        h.invoked(t, 0, 3, uid(), op(CounterOp::Get), reply(2), false);
        h.committed(t, 0, 3, uid());
        let report = oracle().replay(&h);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.committed_actions, 2);
        assert_eq!(report.replayed_ops, 2);
        assert_eq!(report.final_states.len(), 1);
        assert_eq!(report.final_states[0].0, uid());
        assert_eq!(report.final_states[0].1, Counter::reply_vec(&2));
        assert!(report.to_string().contains("ok"));
    }

    #[test]
    fn replay_flags_a_lost_update() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), op(CounterOp::Add(1)), reply(1), true);
        h.committed(t, 0, 1, uid());
        // A second committed Add(1) whose reply shows the first was lost.
        h.invoked(t, 1, 2, uid(), op(CounterOp::Add(1)), reply(1), true);
        h.committed(t, 1, 2, uid());
        let report = oracle().replay(&h);
        assert!(!report.is_ok());
        assert!(report.violations[0].contains("expects"), "{report}");
    }

    #[test]
    fn replay_flags_a_stale_read() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), op(CounterOp::Add(3)), reply(3), true);
        h.committed(t, 0, 1, uid());
        h.invoked(t, 1, 2, uid(), op(CounterOp::Get), reply(0), false);
        h.committed(t, 1, 2, uid());
        let report = oracle().replay(&h);
        assert!(!report.is_ok());
        assert!(report.to_string().contains("violation"));
    }

    #[test]
    fn replay_drops_crashed_actions() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), op(CounterOp::Add(7)), reply(7), true);
        h.crashed(t, 0, 1, uid());
        let report = oracle().replay(&h);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.final_states[0].1, Counter::reply_vec(&0));
    }

    #[test]
    fn replay_flags_undecodable_ops_and_unknown_objects() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), Bytes::from_static(b"\xff"), reply(0), true);
        h.invoked(
            t,
            0,
            1,
            Uid::from_raw(99),
            op(CounterOp::Add(1)),
            reply(1),
            true,
        );
        h.committed(t, 0, 1, uid());
        let report = oracle().replay(&h);
        assert_eq!(report.violations.len(), 2, "{report}");
    }

    /// Undecodable op bytes are a recorder bug even when the action never
    /// commits: the check runs at the `Invoked` event, so an aborted
    /// action's garbage is still flagged.
    #[test]
    fn replay_flags_undecodable_ops_of_aborted_actions() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), Bytes::from_static(b"\xff"), reply(0), true);
        h.aborted(t, 0, 1, uid(), false);
        let report = oracle().replay(&h);
        assert_eq!(report.violations.len(), 1, "{report}");
        assert!(report.violations[0].contains("undecodable"));
    }

    #[test]
    fn kv_replay_checks_previous_value_replies() {
        let kv = |o: KvOp| Bytes::from(KvMap::op_vec(&o));
        let kvr = |r: &str| Bytes::from(KvMap::reply_vec(&KvReply::Value(r.into())));
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(
            t,
            0,
            1,
            uid(),
            kv(KvOp::Put("k".into(), "v1".into())),
            kvr(""),
            true,
        );
        h.committed(t, 0, 1, uid());
        // The second Put must reply with the first value.
        h.invoked(
            t,
            1,
            2,
            uid(),
            kv(KvOp::Put("k".into(), "v2".into())),
            kvr("v1"),
            true,
        );
        h.invoked(t, 1, 2, uid(), kv(KvOp::Get("k".into())), kvr("v2"), false);
        h.committed(t, 1, 2, uid());
        let report = oracle_for(ModelKind::KvMap).replay(&h);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.replayed_ops, 3);
        // The final snapshot is the real KvMap encoding.
        let enc = WireEncoder::new();
        let mut model = KvMap::new();
        model.invoke(&KvMap::op_vec(&KvOp::Put("k".into(), "v2".into())), &enc);
        assert_eq!(report.final_states[0].1, model.snapshot(&enc));

        // A lost first Put shows up in the second Put's reply.
        let mut h = History::new();
        h.invoked(
            t,
            0,
            1,
            uid(),
            kv(KvOp::Put("k".into(), "v1".into())),
            kvr(""),
            true,
        );
        h.committed(t, 0, 1, uid());
        h.invoked(
            t,
            1,
            2,
            uid(),
            kv(KvOp::Put("k".into(), "v2".into())),
            kvr(""),
            true,
        );
        h.committed(t, 1, 2, uid());
        let report = oracle_for(ModelKind::KvMap).replay(&h);
        assert!(!report.is_ok(), "lost update must be flagged");
        assert!(report.violations[0].contains("Put"), "{report}");
    }

    #[test]
    fn account_replay_checks_refused_withdrawals() {
        let acct = |o: AccountOp| Bytes::from(Account::op_vec(&o));
        let r = |v: u64| Bytes::from(Account::reply_vec(&v));
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), acct(AccountOp::Deposit(50)), r(60), true);
        h.invoked(
            t,
            0,
            1,
            uid(),
            acct(AccountOp::Withdraw(100)),
            r(AccountOp::REFUSED),
            true,
        );
        h.invoked(t, 0, 1, uid(), acct(AccountOp::Balance), r(60), false);
        h.committed(t, 0, 1, uid());
        let oracle = oracle_for(ModelKind::Account { initial: 10 });
        let report = oracle.replay(&h);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.replayed_ops, 3);
        assert_eq!(report.final_states[0].1, Account::reply_vec(&60));

        // A refused withdrawal that "succeeded" in the history is flagged.
        let mut h = History::new();
        h.invoked(t, 0, 1, uid(), acct(AccountOp::Withdraw(100)), r(0), true);
        h.committed(t, 0, 1, uid());
        let report = oracle_for(ModelKind::Account { initial: 10 }).replay(&h);
        assert!(!report.is_ok(), "overdraft must be flagged");
        assert!(report.violations[0].contains("Withdraw"), "{report}");
    }

    /// The cross-object atomicity oracle: balanced transfers conserve the
    /// account total at every commit point; a commit that applied only one
    /// leg is flagged at exactly that action.
    #[test]
    fn conservation_accepts_transfers_and_flags_a_lost_leg() {
        let a = Uid::from_raw(1);
        let b = Uid::from_raw(2);
        let model = |uid| ObjectModel {
            uid,
            kind: ModelKind::Account { initial: 100 },
            full_strength: 3,
        };
        let oracle = Oracle::new(vec![model(a), model(b)]).with_conservation();
        let acct = |o: AccountOp| Bytes::from(Account::op_vec(&o));
        let r = |v: u64| Bytes::from(Account::reply_vec(&v));
        let t = SimTime::ZERO;

        // A balanced two-leg transfer conserves.
        let mut h = History::new();
        h.invoked(t, 0, 1, a, acct(AccountOp::Withdraw(10)), r(90), true);
        h.invoked(t, 0, 1, b, acct(AccountOp::Deposit(10)), r(110), true);
        h.committed(t, 0, 1, a);
        let report = oracle.replay(&h);
        assert!(report.is_ok(), "{report}");

        // A refused withdrawal whose deposit leg was skipped also conserves.
        let mut h = History::new();
        h.invoked(
            t,
            0,
            1,
            a,
            acct(AccountOp::Withdraw(1000)),
            r(AccountOp::REFUSED),
            true,
        );
        h.committed(t, 0, 1, a);
        assert!(oracle.replay(&h).is_ok());

        // A committed withdrawal without its deposit shifts the total.
        let mut h = History::new();
        h.invoked(t, 0, 1, a, acct(AccountOp::Withdraw(10)), r(90), true);
        h.committed(t, 0, 1, a);
        let report = oracle.replay(&h);
        assert!(!report.is_ok(), "one-legged transfer must be flagged");
        assert!(report.violations[0].contains("conservation"), "{report}");
        assert!(report.violations[0].contains("90"), "{report}");

        // Without the flag the same history passes (deposit-only workloads
        // legitimately change the total).
        let plain = Oracle::new(vec![model(a), model(b)]);
        assert!(plain.replay(&h).is_ok());
    }

    #[test]
    fn model_kinds_build_their_classes() {
        let enc = WireEncoder::new();
        assert_eq!(ModelKind::COUNTER.to_string(), "counter");
        assert_eq!(ModelKind::KvMap.to_string(), "kv-map");
        assert_eq!(ModelKind::Account { initial: 5 }.to_string(), "account");
        let mut c = ModelKind::Counter { initial: 3 }.fresh();
        let reply = c.invoke(&Counter::op_vec(&CounterOp::Get), &enc).reply;
        assert_eq!(Counter::decode_reply(&CounterOp::Get, &reply), Some(3));
        let a = ModelKind::Account { initial: 9 }.fresh();
        assert_eq!(a.snapshot(&enc), Account::reply_vec(&9));
        assert!(ModelKind::KvMap.fresh().snapshot(&enc).starts_with(&[0]));
    }

    #[test]
    fn per_class_dispatch_routes_through_the_trait() {
        for (kind, good, bad) in [
            (
                ModelKind::COUNTER,
                Counter::op_vec(&CounterOp::Get),
                vec![9u8],
            ),
            (ModelKind::KvMap, KvMap::op_vec(&KvOp::Len), vec![77u8]),
            (
                ModelKind::Account { initial: 0 },
                Account::op_vec(&AccountOp::Balance),
                vec![9u8],
            ),
        ] {
            assert!(kind.decodes(&good), "{kind}");
            assert!(!kind.decodes(&bad), "{kind}");
            assert!(!kind.describe_op(&good).contains("None"), "{kind}");
        }
        // Reply description decodes in op context: the same 8 bytes read as
        // a count for Len and as (non-utf8-checked) text for Get.
        let len_reply = KvMap::reply_vec(&KvReply::Len(3));
        assert!(ModelKind::KvMap
            .describe_reply(&KvMap::op_vec(&KvOp::Len), &len_reply)
            .contains("Len(3)"));
    }
}
