//! The consistency oracle: sequential-replay equivalence plus the paper's
//! post-recovery invariants.
//!
//! Two families of checks:
//!
//! 1. **History replay** ([`Oracle::verify`], part one): committed actions
//!    are replayed in commit order against a sequential counter model.
//!    Strict two-phase locking with refusal makes commit order a
//!    serialization order, so every recorded reply must match the model —
//!    `Add` replies the post-op value, `Get` replies the current value —
//!    and after quiesce every store in `St(A)` must hold the model's final
//!    value (invariant I2).
//! 2. **Paper invariants after quiesce + recovery** (part two,
//!    [`check_quiescent_invariants`]): no leaked locks (I5), use lists
//!    quiescent (I4), `St` restored to full strength, and all listed
//!    stores byte-identical (I1). This generalizes what the repo-level
//!    `tests/invariants.rs` used to hard-code.

use crate::history::{EventKind, History};
use groupview_replication::{Counter, CounterOp, System};
use groupview_store::Uid;
use std::collections::HashMap;
use std::fmt;

/// What the oracle knows about one object under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectModel {
    /// The object.
    pub uid: Uid,
    /// The counter's initial committed value.
    pub initial: i64,
    /// `|St|` at creation — the strength recovery must restore.
    pub full_strength: usize,
}

/// The oracle's verdict over one run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Committed actions replayed.
    pub committed_actions: u64,
    /// Operations replayed inside those actions.
    pub replayed_ops: u64,
    /// The model's final value per object.
    pub final_values: Vec<(Uid, i64)>,
    /// Everything that did not check out (empty means the run verified).
    pub violations: Vec<String>,
}

impl OracleReport {
    /// Whether every check passed.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(
                f,
                "ok ({} commits, {} ops replayed)",
                self.committed_actions, self.replayed_ops
            )
        } else {
            write!(
                f,
                "{} violation(s); first: {}",
                self.violations.len(),
                self.violations[0]
            )
        }
    }
}

/// Replays histories and checks invariants for a set of counter objects.
///
/// The oracle is deliberately counter-specific — like Crichlow & Hartley's
/// replicated-counter validation, a trivially modelable object makes the
/// *system's* behaviour the only unknown.
#[derive(Debug, Clone)]
pub struct Oracle {
    objects: Vec<ObjectModel>,
}

impl Oracle {
    /// An oracle for the given objects.
    pub fn new(objects: Vec<ObjectModel>) -> Self {
        Oracle { objects }
    }

    /// The objects under test.
    pub fn objects(&self) -> &[ObjectModel] {
        &self.objects
    }

    /// Runs the full verdict: history replay, final-state equivalence, and
    /// the paper's quiescence invariants. The caller must have quiesced the
    /// system first (healed partitions, recovered nodes, swept dead
    /// clients, no in-flight actions).
    pub fn verify(&self, sys: &System, history: &History) -> OracleReport {
        let mut report = self.replay(history);
        let expected: Vec<(Uid, i64)> = report.final_values.clone();
        report
            .violations
            .extend(check_counter_states(sys, &expected));
        report
            .violations
            .extend(check_quiescent_invariants(sys, &self.objects));
        report
    }

    /// Part one only: replays the committed prefix of `history` against the
    /// sequential model and checks every recorded reply.
    pub fn replay(&self, history: &History) -> OracleReport {
        let mut report = OracleReport::default();
        let mut model: HashMap<Uid, i64> =
            self.objects.iter().map(|o| (o.uid, o.initial)).collect();
        // Ops buffered per in-flight action, replayed at its commit event
        // (commit order == serialization order under strict 2PL).
        let mut pending: HashMap<u64, Vec<(Uid, CounterOp, Option<i64>)>> = HashMap::new();
        for ev in history.events() {
            match &ev.kind {
                EventKind::Invoked { op, reply, .. } => {
                    let Some(decoded) = CounterOp::decode(op) else {
                        report
                            .violations
                            .push(format!("action {}: undecodable op", ev.action));
                        continue;
                    };
                    pending.entry(ev.action).or_default().push((
                        ev.uid,
                        decoded,
                        CounterOp::decode_reply(reply),
                    ));
                }
                EventKind::Committed => {
                    report.committed_actions += 1;
                    for (uid, op, observed) in pending.remove(&ev.action).unwrap_or_default() {
                        let Some(value) = model.get_mut(&uid) else {
                            report
                                .violations
                                .push(format!("action {}: unknown object {uid}", ev.action));
                            continue;
                        };
                        report.replayed_ops += 1;
                        let expected = match op {
                            CounterOp::Add(d) => {
                                *value += d;
                                *value
                            }
                            CounterOp::Get => *value,
                        };
                        if observed != Some(expected) {
                            report.violations.push(format!(
                                "action {} on {uid}: {op:?} replied {observed:?}, \
                                 sequential replay expects {expected}",
                                ev.action
                            ));
                        }
                    }
                }
                // Aborted and crashed actions must leave no trace; their
                // buffered ops are simply dropped from the model.
                EventKind::Aborted { .. } | EventKind::CrashedMidAction => {
                    pending.remove(&ev.action);
                }
            }
        }
        report.final_values = self
            .objects
            .iter()
            .map(|o| (o.uid, model[&o.uid]))
            .collect();
        report
    }
}

/// Checks that every functioning store listed in each object's `St` holds a
/// counter state equal to `expected` (invariant I2 after quiesce: committed
/// effects survive).
pub fn check_counter_states(sys: &System, expected: &[(Uid, i64)]) -> Vec<String> {
    let mut violations = Vec::new();
    for &(uid, want) in expected {
        let Some(entry) = sys.naming().state_db.entry(uid) else {
            violations.push(format!("{uid}: no state-db entry"));
            continue;
        };
        for &node in &entry.stores {
            match sys.stores().read_local(node, uid) {
                Ok(state) => {
                    let got = Counter::decode(&state.data).value();
                    if got != want {
                        violations.push(format!(
                            "{uid} at {node}: committed value {got}, model says {want} (I2)"
                        ));
                    }
                }
                Err(e) => {
                    violations.push(format!("{uid} at {node}: unreadable after quiesce: {e}"))
                }
            }
        }
    }
    violations
}

/// Checks the paper's invariants on a quiesced, fully recovered system:
/// empty lock table (I5), quiescent use lists (I4), `St` back to full
/// strength, and byte-identical states across each `St` (I1).
pub fn check_quiescent_invariants(sys: &System, objects: &[ObjectModel]) -> Vec<String> {
    let mut violations = Vec::new();
    if !sys.tx().locks_empty() {
        violations.push("I5 violated: locks left behind after quiesce".to_string());
    }
    for obj in objects {
        let uid = obj.uid;
        match sys.naming().server_db.entry(uid) {
            Some(entry) if !entry.is_quiescent() => {
                violations.push(format!(
                    "I4 violated: {uid} use list not quiescent: {entry}"
                ));
            }
            None => violations.push(format!("{uid}: no server-db entry")),
            _ => {}
        }
        let Some(entry) = sys.naming().state_db.entry(uid) else {
            violations.push(format!("{uid}: no state-db entry"));
            continue;
        };
        if entry.len() != obj.full_strength {
            violations.push(format!(
                "{uid}: St has {} stores after recovery, expected {}",
                entry.len(),
                obj.full_strength
            ));
        }
        let mut states = Vec::new();
        for &node in &entry.stores {
            match sys.stores().read_local(node, uid) {
                Ok(state) => states.push((node, state)),
                Err(e) => violations.push(format!("{uid} at {node}: unreadable: {e}")),
            }
        }
        for pair in states.windows(2) {
            if pair[0].1 != pair[1].1 {
                violations.push(format!(
                    "I1 violated: {uid} stores {} and {} disagree",
                    pair[0].0, pair[1].0
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::{Bytes, SimTime};

    fn uid() -> Uid {
        Uid::from_raw(1)
    }

    fn oracle() -> Oracle {
        Oracle::new(vec![ObjectModel {
            uid: uid(),
            initial: 0,
            full_strength: 3,
        }])
    }

    fn op(o: CounterOp) -> Bytes {
        Bytes::from(o.encode())
    }

    fn reply(v: i64) -> Bytes {
        Bytes::from(v.to_le_bytes().to_vec())
    }

    #[test]
    fn replay_accepts_a_consistent_history() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), op(CounterOp::Add(2)), reply(2), true);
        h.committed(t, 0, 1, uid());
        // An aborted action's ops must not move the model.
        h.invoked(t, 1, 2, uid(), op(CounterOp::Add(50)), reply(52), true);
        h.aborted(t, 1, 2, uid(), false);
        h.invoked(t, 0, 3, uid(), op(CounterOp::Get), reply(2), false);
        h.committed(t, 0, 3, uid());
        let report = oracle().replay(&h);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.committed_actions, 2);
        assert_eq!(report.replayed_ops, 2);
        assert_eq!(report.final_values, vec![(uid(), 2)]);
        assert!(report.to_string().contains("ok"));
    }

    #[test]
    fn replay_flags_a_lost_update() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), op(CounterOp::Add(1)), reply(1), true);
        h.committed(t, 0, 1, uid());
        // A second committed Add(1) whose reply shows the first was lost.
        h.invoked(t, 1, 2, uid(), op(CounterOp::Add(1)), reply(1), true);
        h.committed(t, 1, 2, uid());
        let report = oracle().replay(&h);
        assert!(!report.is_ok());
        assert!(report.violations[0].contains("expects 2"), "{report}");
    }

    #[test]
    fn replay_flags_a_stale_read() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), op(CounterOp::Add(3)), reply(3), true);
        h.committed(t, 0, 1, uid());
        h.invoked(t, 1, 2, uid(), op(CounterOp::Get), reply(0), false);
        h.committed(t, 1, 2, uid());
        let report = oracle().replay(&h);
        assert!(!report.is_ok());
        assert!(report.to_string().contains("violation"));
    }

    #[test]
    fn replay_drops_crashed_actions() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), op(CounterOp::Add(7)), reply(7), true);
        h.crashed(t, 0, 1, uid());
        let report = oracle().replay(&h);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.final_values, vec![(uid(), 0)]);
    }

    #[test]
    fn replay_flags_undecodable_ops_and_unknown_objects() {
        let mut h = History::new();
        let t = SimTime::ZERO;
        h.invoked(t, 0, 1, uid(), Bytes::from_static(b"\xff"), reply(0), true);
        h.invoked(
            t,
            0,
            1,
            Uid::from_raw(99),
            op(CounterOp::Add(1)),
            reply(1),
            true,
        );
        h.committed(t, 0, 1, uid());
        let report = oracle().replay(&h);
        assert_eq!(report.violations.len(), 2, "{report}");
    }
}
