//! Deterministic chaos engineering for `groupview`: fault plans, nemeses,
//! history recording, and a consistency oracle.
//!
//! The paper's claim is that GroupView/state-database information stays
//! correct *through* failures — crashes mid-update, §4 recovery, cleanup of
//! dead clients. This crate turns that claim into a scenario factory:
//!
//! * [`FaultPlan`] (`plan`) — a deterministic fault schedule keyed by **sim
//!   time**, executed through the simulator's event queue, so faults land
//!   inside an action's message exchanges rather than only between driver
//!   steps. Legacy step-keyed
//!   [`FaultScript`](groupview_workload::FaultScript)s convert losslessly
//!   via `From`.
//! * nemeses (`nemesis`) — seeded generators ([`rolling_crashes`],
//!   [`send_window_crashes`] for the paper's Figure 1 window,
//!   [`flapping_partition`], [`lossy_window`], [`client_churn`],
//!   [`recovery_storm`]) mapping one scenario family to unbounded concrete
//!   schedules.
//! * [`History`] (`history`) — a near-zero-allocation recorder of every
//!   client invoke/commit/abort (payloads are refcounted
//!   [`Bytes`](groupview_sim::Bytes) clones).
//! * [`Oracle`] (`oracle`) — replays the committed history sequentially
//!   against real-class models ([`ModelKind`]: counter, kv map, account —
//!   every reply must match the model; final store states must equal the
//!   model's snapshot), then checks the paper's post-recovery invariants:
//!   quiescent use lists, `St` restored to full strength, byte-identical
//!   stores, no leaked locks.
//! * the runner (`runner`) — the workspace's **single workload execution
//!   engine** ([`run_plan`]/[`run_plan_typed`]; it retired
//!   `workload::Driver`, reproducing its runs bit for bit —
//!   `tests/parity.rs`). [`Scenario`] = workload × plan × checks, run as a
//!   multi-seed matrix producing [`ScenarioReport`]s; plus
//!   [`canned_scenarios`], the 22-scenario suite CI drives across seeds.
//! * soak mode (`soak`) — [`run_soak`] chains composed nemesis schedules
//!   across a seed range for the experiment harness, reporting an
//!   aggregate oracle verdict summary.
//!
//! # Example
//!
//! ```rust
//! use groupview_scenario::{canned_scenarios, run_matrix};
//!
//! let reports = run_matrix(&canned_scenarios()[..1], &[7]);
//! assert!(reports[0].passed(), "{}", reports[0]);
//! ```

pub mod export;
pub mod history;
pub mod nemesis;
pub mod oracle;
pub mod plan;
pub mod runner;
pub mod scenarios;
pub mod sharded;
pub mod soak;

pub use crate::export::{TraceBundle, TracedRun, NOTES_TID};
pub use crate::history::{Event, EventKind, History};
pub use crate::nemesis::{
    client_churn, flapping_partition, lossy_window, recovery_storm, rolling_crashes,
    send_window_crashes, store_commit_crashes,
};
pub use crate::oracle::{
    check_counter_states, check_final_states, check_quiescent_invariants, ModelKind, ObjectModel,
    Oracle, OracleReport,
};
pub use crate::plan::{FaultPlan, PlanAction, PlanError, PlanEvent, Trigger};
pub use crate::runner::{
    run_matrix, run_plan, run_plan_typed, run_scenario, run_scenario_in, run_scenario_observed,
    run_scenario_traced, Checks, PlanGenerator, RunOutcome, Scenario, ScenarioReport,
};
pub use crate::scenarios::canned_scenarios;
pub use crate::sharded::{
    run_scenario_sharded, run_scenario_sharded_observed, ShardedScenarioReport,
};
pub use crate::soak::{run_soak, SoakConfig, SoakReport};
