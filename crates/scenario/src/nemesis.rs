//! Seeded nemeses: randomized [`FaultPlan`] generators.
//!
//! Each generator maps a seed to one concrete, **well-formed** fault
//! schedule from a scenario family — same seed, same plan — so a single
//! canned scenario yields unbounded distinct schedules across a seed
//! matrix. Well-formedness (crash/recover balanced, heal only after
//! partition, times monotone) is guaranteed by construction and
//! property-tested in `tests/plan_properties.rs`.

use crate::plan::{FaultPlan, PlanAction};
use groupview_sim::{NodeId, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng_for(seed: u64, stream: u64) -> StdRng {
    // Distinct streams per nemesis family so composing two nemeses with the
    // same scenario seed still yields independent schedules.
    StdRng::seed_from_u64(seed ^ (stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Uniform jitter in `[0, bound)` microseconds (0 when `bound` is 0).
fn jitter(rng: &mut StdRng, bound: u64) -> u64 {
    if bound == 0 {
        0
    } else {
        rng.random_range(0..bound)
    }
}

/// Crashes the given nodes one at a time in rotation: node `k` goes down
/// roughly `start + k·period` after the run begins (with jitter) and
/// recovers `downtime` later,
/// so at most one node of the set is ever down.
pub fn rolling_crashes(
    seed: u64,
    nodes: &[NodeId],
    start: SimDuration,
    period: SimDuration,
    downtime: SimDuration,
    rounds: usize,
) -> FaultPlan {
    assert!(!nodes.is_empty(), "rolling_crashes needs nodes");
    assert!(
        downtime < period,
        "downtime must fit inside the rotation period"
    );
    let mut rng = rng_for(seed, 1);
    let mut plan = FaultPlan::new();
    let slack = period.as_micros() - downtime.as_micros();
    let mut t = start.as_micros();
    for round in 0..rounds {
        let node = nodes[round % nodes.len()];
        let down_at = t + jitter(&mut rng, slack / 2);
        let up_at = down_at + downtime.as_micros();
        plan = plan
            .at_micros(down_at, PlanAction::CrashNode(node))
            .at_micros(up_at, PlanAction::RecoverNode(node));
        t += period.as_micros();
    }
    plan
}

/// Repeatedly splits the world into `side_a` vs `side_b` and heals it: each
/// flap blocks all cross-side traffic for roughly half a period.
pub fn flapping_partition(
    seed: u64,
    side_a: &[NodeId],
    side_b: &[NodeId],
    start: SimDuration,
    period: SimDuration,
    flaps: usize,
) -> FaultPlan {
    assert!(
        !side_a.is_empty() && !side_b.is_empty(),
        "flapping_partition needs two non-empty sides"
    );
    let mut rng = rng_for(seed, 2);
    let mut plan = FaultPlan::new();
    let half = period.as_micros() / 2;
    let mut t = start.as_micros();
    for _ in 0..flaps {
        let cut_at = t + jitter(&mut rng, half / 2);
        let heal_at = cut_at + half / 2 + jitter(&mut rng, half / 2);
        plan = plan
            .at_micros(
                cut_at,
                PlanAction::PartitionGroups(side_a.to_vec(), side_b.to_vec()),
            )
            .at_micros(heal_at, PlanAction::HealAll);
        t += period.as_micros();
    }
    plan
}

/// Ramps the network's message-loss probability up to `peak` and back to
/// zero across `window`, in `steps` increments per side. Always ends with
/// the loss probability restored to 0.
pub fn lossy_window(
    seed: u64,
    start: SimDuration,
    window: SimDuration,
    peak: f64,
    steps: usize,
) -> FaultPlan {
    assert!((0.0..=1.0).contains(&peak), "peak must be in [0,1]");
    assert!(steps > 0, "lossy_window needs at least one step");
    let mut rng = rng_for(seed, 3);
    let mut plan = FaultPlan::new();
    let total_steps = 2 * steps; // up then down
    let stride = window.as_micros() / total_steps as u64;
    let mut t = start.as_micros();
    for i in 1..=steps {
        let p = peak * i as f64 / steps as f64;
        plan = plan.at_micros(
            t + jitter(&mut rng, stride / 2),
            PlanAction::SetDropProbability(p),
        );
        t += stride;
    }
    for i in (0..steps).rev() {
        let p = peak * i as f64 / steps as f64;
        plan = plan.at_micros(
            t + jitter(&mut rng, stride / 2),
            PlanAction::SetDropProbability(p),
        );
        t += stride;
    }
    plan
}

/// The paper's Figure 1 window, seeded: arms a
/// [`PlanAction::CrashAfterSends`] fault point on the given nodes in
/// rotation — node `k` is armed roughly `start + k·period` into the run
/// with a send budget drawn from `1..=max_budget`, and recovered (or
/// disarmed, if the budget never fired) `downtime` later. Because the
/// budget ticks on send *attempts*, the crash lands inside whatever
/// message exchange the node is in the middle of — a multicast fan-out, a
/// reply spray — even on a lossy network, which is exactly the
/// "B fails during delivery of the reply to GA" scenario.
pub fn send_window_crashes(
    seed: u64,
    nodes: &[NodeId],
    start: SimDuration,
    period: SimDuration,
    downtime: SimDuration,
    max_budget: u32,
    rounds: usize,
) -> FaultPlan {
    assert!(!nodes.is_empty(), "send_window_crashes needs nodes");
    assert!(max_budget > 0, "send budgets are drawn from 1..=max_budget");
    assert!(
        downtime < period,
        "downtime must fit inside the rotation period"
    );
    let mut rng = rng_for(seed, 6);
    let mut plan = FaultPlan::new();
    let slack = period.as_micros() - downtime.as_micros();
    let mut t = start.as_micros();
    for round in 0..rounds {
        let node = nodes[round % nodes.len()];
        let budget = 1 + rng.random_range(0..max_budget as u64) as u32;
        let arm_at = t + jitter(&mut rng, slack / 2);
        let recover_at = arm_at + downtime.as_micros();
        plan = plan
            .at_micros(arm_at, PlanAction::CrashAfterSends(node, budget))
            .at_micros(recover_at, PlanAction::RecoverNode(node));
        t += period.as_micros();
    }
    plan
}

/// The §4 two-phase-commit window, seeded: arms a
/// [`PlanAction::CrashStoreInCommit`] trap on the given store nodes in
/// rotation — node `k` is armed roughly `start + k·period` into the run and
/// recovered (or disarmed, if no prepare ever reached it) `downtime` later.
/// Because the trap fires on the store's own prepare acknowledgement, the
/// crash lands precisely *between* the prepare and commit phases of
/// whatever client action is writing back at that moment, leaving the store
/// with an in-doubt transaction that only the §4 recovery protocol (via the
/// coordinator's decision record) can resolve.
pub fn store_commit_crashes(
    seed: u64,
    nodes: &[NodeId],
    start: SimDuration,
    period: SimDuration,
    downtime: SimDuration,
    rounds: usize,
) -> FaultPlan {
    assert!(!nodes.is_empty(), "store_commit_crashes needs nodes");
    assert!(
        downtime < period,
        "downtime must fit inside the rotation period"
    );
    let mut rng = rng_for(seed, 7);
    let mut plan = FaultPlan::new();
    let slack = period.as_micros() - downtime.as_micros();
    let mut t = start.as_micros();
    for round in 0..rounds {
        let node = nodes[round % nodes.len()];
        let arm_at = t + jitter(&mut rng, slack / 2);
        let recover_at = arm_at + downtime.as_micros();
        plan = plan
            .at_micros(arm_at, PlanAction::CrashStoreInCommit(node))
            .at_micros(recover_at, PlanAction::RecoverNode(node));
        t += period.as_micros();
    }
    plan
}

/// Crashes `kills` distinct clients at random times within the window and
/// schedules periodic cleanup sweeps (plus one final sweep after the last
/// kill) so leaked use-list entries are reclaimed.
pub fn client_churn(
    seed: u64,
    clients: usize,
    start: SimDuration,
    window: SimDuration,
    kills: usize,
    sweep_every: usize,
) -> FaultPlan {
    assert!(kills <= clients, "cannot kill more clients than exist");
    assert!(sweep_every > 0, "sweep_every must be positive");
    let mut rng = rng_for(seed, 4);
    // Pick `kills` distinct victims by partial Fisher–Yates.
    let mut pool: Vec<usize> = (0..clients).collect();
    for i in 0..kills.min(clients.saturating_sub(1)) {
        let j = rng.random_range(i..clients);
        pool.swap(i, j);
    }
    let mut kill_times: Vec<u64> = (0..kills)
        .map(|_| start.as_micros() + jitter(&mut rng, window.as_micros().max(1)))
        .collect();
    kill_times.sort_unstable();
    // Strictly spaced so an interleaved sweep at `kill + 1` stays monotone.
    for i in 1..kill_times.len() {
        if kill_times[i] < kill_times[i - 1] + 2 {
            kill_times[i] = kill_times[i - 1] + 2;
        }
    }
    let mut plan = FaultPlan::new();
    let mut since_sweep = 0;
    let mut last = start.as_micros();
    for (k, &at) in kill_times.iter().enumerate() {
        plan = plan.at_micros(at, PlanAction::CrashClient(pool[k]));
        last = at;
        since_sweep += 1;
        if since_sweep == sweep_every {
            last += 1;
            plan = plan.at_micros(last, PlanAction::CleanupSweep);
            since_sweep = 0;
        }
    }
    plan.at_micros(last + 1, PlanAction::CleanupSweep)
}

/// Crashes *every* given node within `spread` of `at` (in random order),
/// then recovers them all — again in random order — within another
/// `spread`. The §4 recovery protocols then race each other: the storm the
/// paper's joint-fixpoint recovery must survive.
pub fn recovery_storm(
    seed: u64,
    nodes: &[NodeId],
    at: SimDuration,
    spread: SimDuration,
) -> FaultPlan {
    assert!(!nodes.is_empty(), "recovery_storm needs nodes");
    let mut rng = rng_for(seed, 5);
    let mut order: Vec<NodeId> = nodes.to_vec();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let spread_us = spread.as_micros().max(1);
    let mut crash_times: Vec<u64> = order
        .iter()
        .map(|_| at.as_micros() + jitter(&mut rng, spread_us))
        .collect();
    crash_times.sort_unstable();
    let mut plan = FaultPlan::new();
    for (node, t) in order.iter().zip(&crash_times) {
        plan = plan.at_micros(*t, PlanAction::CrashNode(*node));
    }
    let recover_from = at.as_micros() + spread_us;
    let mut recover_times: Vec<u64> = order
        .iter()
        .map(|_| recover_from + jitter(&mut rng, spread_us))
        .collect();
    recover_times.sort_unstable();
    // Recover in a *different* shuffle than the crash order.
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    for (node, t) in order.iter().zip(&recover_times) {
        plan = plan.at_micros(*t, PlanAction::RecoverNode(*node));
    }
    plan
}

/// Elastic-membership ramp: grows the world by `adds` fresh nodes early in
/// the window, drains `drain` mid-window — transactionally migrating every
/// replica it hosts onto the survivors and newcomers — and rebalances
/// placement near the end, once the drained replicas have landed.
/// Membership actions carry no well-formedness constraints (an add always
/// succeeds; a drain or rebalance against a busy or degraded world defers
/// and retries), so the seed only jitters *when* each step lands.
pub fn elastic_ramp(
    seed: u64,
    adds: usize,
    drain: NodeId,
    start: SimDuration,
    window: SimDuration,
) -> FaultPlan {
    assert!(
        adds > 0,
        "elastic_ramp grows the world by at least one node"
    );
    let mut rng = rng_for(seed, 8);
    let w = window.as_micros().max(8 * (adds as u64 + 2));
    let stride = w / (2 * adds as u64);
    let mut plan = FaultPlan::new();
    let mut t = start.as_micros();
    for _ in 0..adds {
        t += 1 + jitter(&mut rng, stride.max(2) - 1);
        plan = plan.at_micros(t, PlanAction::AddNode);
    }
    let drain_at = (start.as_micros() + w / 2 + jitter(&mut rng, w / 8)).max(t + 1);
    let rebalance_at = drain_at + w / 4 + jitter(&mut rng, w / 8);
    plan.at_micros(drain_at, PlanAction::DrainNode(drain))
        .at_micros(rebalance_at, PlanAction::Rebalance)
}

/// Rebalance storm: repeated placement rebalances racing node crashes.
/// Round `k` crashes one of `nodes` (seeded choice), rebalances while it
/// is down, recovers it, and rebalances again once it is back — so
/// migration transactions keep running into dead state sources, shrunken
/// target sets, and freshly refreshed stores, and every move must still
/// commit atomically or abort without a trace.
pub fn rebalance_storm(
    seed: u64,
    nodes: &[NodeId],
    start: SimDuration,
    period: SimDuration,
    rounds: usize,
) -> FaultPlan {
    assert!(!nodes.is_empty(), "rebalance_storm needs crash candidates");
    let mut rng = rng_for(seed, 9);
    let mut plan = FaultPlan::new();
    // Quarter-phase slots with jitter ≤ one slot keep each round's
    // crash → rebalance → recover → rebalance strictly ordered and the
    // recover strictly before the next round's crash.
    let p = period.as_micros().max(16);
    let q = p / 8;
    let mut t = start.as_micros();
    for _ in 0..rounds {
        let node = nodes[rng.random_range(0..nodes.len())];
        let crash_at = t + jitter(&mut rng, q);
        let mid_at = crash_at + 1 + q + jitter(&mut rng, q);
        let recover_at = mid_at + 1 + q + jitter(&mut rng, q);
        let late_at = recover_at + 1 + q + jitter(&mut rng, q);
        plan = plan
            .at_micros(crash_at, PlanAction::CrashNode(node))
            .at_micros(mid_at, PlanAction::Rebalance)
            .at_micros(recover_at, PlanAction::RecoverNode(node))
            .at_micros(late_at, PlanAction::Rebalance);
        t += p;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn trio() -> Vec<NodeId> {
        vec![n(1), n(2), n(3)]
    }

    #[test]
    fn rolling_crashes_are_balanced_and_deterministic() {
        let mk = |seed| {
            rolling_crashes(
                seed,
                &trio(),
                SimDuration::from_millis(2),
                SimDuration::from_millis(20),
                SimDuration::from_millis(8),
                5,
            )
        };
        let plan = mk(7);
        assert_eq!(plan.len(), 10, "a crash and a recover per round");
        plan.validate().expect("well-formed");
        assert_eq!(plan, mk(7), "same seed, same plan");
        assert_ne!(plan, mk(8), "different seed, different schedule");
    }

    #[test]
    fn flapping_partition_always_heals() {
        let plan = flapping_partition(
            3,
            &[n(4), n(5)],
            &[n(2)],
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            4,
        );
        plan.validate().expect("well-formed");
        assert!(matches!(
            plan.events().last().unwrap().action,
            PlanAction::HealAll
        ));
    }

    #[test]
    fn lossy_window_ends_dry() {
        let plan = lossy_window(
            9,
            SimDuration::from_millis(1),
            SimDuration::from_millis(12),
            0.4,
            3,
        );
        plan.validate().expect("well-formed");
        let last = plan.events().last().unwrap();
        assert_eq!(last.action, PlanAction::SetDropProbability(0.0));
        // Ramp reaches the peak (within float error) exactly once.
        let peak_hits = plan
            .events()
            .iter()
            .filter(
                |e| matches!(e.action, PlanAction::SetDropProbability(p) if (p - 0.4).abs() < 1e-12),
            )
            .count();
        assert_eq!(peak_hits, 1);
    }

    #[test]
    fn client_churn_kills_distinct_clients_and_sweeps() {
        let plan = client_churn(
            11,
            6,
            SimDuration::from_millis(1),
            SimDuration::from_millis(30),
            4,
            2,
        );
        plan.validate().expect("well-formed");
        let mut victims: Vec<usize> = plan
            .events()
            .iter()
            .filter_map(|e| match e.action {
                PlanAction::CrashClient(i) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(victims.len(), 4);
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 4, "victims are distinct");
        let sweeps = plan
            .events()
            .iter()
            .filter(|e| e.action == PlanAction::CleanupSweep)
            .count();
        assert_eq!(sweeps, 3, "one per two kills plus the final sweep");
    }

    #[test]
    fn send_window_crashes_arm_and_recover_in_rotation() {
        let mk = |seed| {
            send_window_crashes(
                seed,
                &trio(),
                SimDuration::from_millis(2),
                SimDuration::from_millis(20),
                SimDuration::from_millis(8),
                4,
                5,
            )
        };
        let plan = mk(7);
        assert_eq!(plan.len(), 10, "an arm and a recover per round");
        plan.validate().expect("well-formed");
        assert!(plan.is_time_sorted());
        assert_eq!(plan, mk(7), "same seed, same plan");
        assert_ne!(plan, mk(8), "different seed, different schedule");
        for ev in plan.events() {
            if let PlanAction::CrashAfterSends(_, k) = ev.action {
                assert!((1..=4).contains(&k), "budget {k} out of range");
            }
        }
    }

    #[test]
    fn store_commit_crashes_arm_and_recover_in_rotation() {
        let mk = |seed| {
            store_commit_crashes(
                seed,
                &trio(),
                SimDuration::from_millis(2),
                SimDuration::from_millis(20),
                SimDuration::from_millis(8),
                4,
            )
        };
        let plan = mk(3);
        assert_eq!(plan.len(), 8, "an arm and a recover per round");
        plan.validate().expect("well-formed");
        assert!(plan.is_time_sorted());
        assert_eq!(plan, mk(3), "same seed, same plan");
        assert_ne!(plan, mk(4), "different seed, different schedule");
        assert!(plan
            .events()
            .iter()
            .any(|e| matches!(e.action, PlanAction::CrashStoreInCommit(_))));
    }

    #[test]
    fn elastic_ramp_adds_then_drains_then_rebalances() {
        let mk = |seed| {
            elastic_ramp(
                seed,
                2,
                n(2),
                SimDuration::from_millis(2),
                SimDuration::from_millis(30),
            )
        };
        let plan = mk(7);
        plan.validate().expect("well-formed");
        assert!(plan.is_time_sorted());
        assert_eq!(plan, mk(7), "same seed, same plan");
        assert_ne!(plan, mk(8), "different seed, different schedule");
        let kinds: Vec<&PlanAction> = plan.events().iter().map(|e| &e.action).collect();
        assert_eq!(
            kinds,
            vec![
                &PlanAction::AddNode,
                &PlanAction::AddNode,
                &PlanAction::DrainNode(n(2)),
                &PlanAction::Rebalance,
            ],
            "grow, then drain, then rebalance"
        );
    }

    #[test]
    fn rebalance_storm_keeps_crashes_balanced_around_rebalances() {
        let mk = |seed| {
            rebalance_storm(
                seed,
                &trio(),
                SimDuration::from_millis(2),
                SimDuration::from_millis(10),
                4,
            )
        };
        let plan = mk(5);
        plan.validate().expect("well-formed");
        assert!(plan.is_time_sorted());
        assert_eq!(plan.len(), 16, "four events per round");
        assert_eq!(plan, mk(5), "same seed, same plan");
        assert_ne!(plan, mk(6), "different seed, different schedule");
        let rebalances = plan
            .events()
            .iter()
            .filter(|e| e.action == PlanAction::Rebalance)
            .count();
        assert_eq!(
            rebalances, 8,
            "one mid-crash and one post-recover per round"
        );
    }

    #[test]
    fn recovery_storm_downs_and_restores_everyone() {
        let plan = recovery_storm(
            5,
            &trio(),
            SimDuration::from_millis(4),
            SimDuration::from_millis(3),
        );
        plan.validate().expect("well-formed");
        let crashes = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, PlanAction::CrashNode(_)))
            .count();
        let recovers = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, PlanAction::RecoverNode(_)))
            .count();
        assert_eq!((crashes, recovers), (3, 3));
    }
}
