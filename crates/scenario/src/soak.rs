//! Scenario-driven soak mode for the experiment harness.
//!
//! A soak chains **composed** nemesis schedules across a seed range: every
//! round takes a fresh seed, merges several nemesis families into one
//! fault plan (send-window crashes in the paper's Figure 1 window riding
//! on top of a lossy window, rolling crashes over client churn, an
//! elastic grow-the-world ramp — add two nodes, drain a server,
//! rebalance — under loss), runs
//! it under every replication policy against a mixed-class object
//! population (counter + kv map + account), and demands the full oracle
//! verdict each time. `cargo run -p groupview-bench --bin experiments soak`
//! prints the per-cell reports and the aggregate verdict summary; CI runs
//! a short soak in the scenario-matrix step.

use crate::nemesis;
use crate::oracle::ModelKind;
use crate::runner::{run_scenario_observed, Checks, Scenario, ScenarioReport};
use groupview_core::BindingScheme;
use groupview_replication::ReplicationPolicy;
use groupview_sim::{NodeId, SimDuration};
use groupview_workload::WorkloadSpec;
use std::fmt;

/// Soak shape: how many rounds, from which base seed.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Seed of the first round; round `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Number of rounds. Every round runs all three policies, so the soak
    /// executes `3 × rounds` scenario cells.
    pub rounds: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            base_seed: 1,
            rounds: 3,
        }
    }
}

/// Everything a soak produced.
#[derive(Debug)]
pub struct SoakReport {
    /// One report per `round × policy` cell, in execution order.
    pub reports: Vec<ScenarioReport>,
}

impl SoakReport {
    /// Whether every cell passed.
    pub fn passed(&self) -> bool {
        self.reports.iter().all(ScenarioReport::passed)
    }

    /// Number of failed cells.
    pub fn failed_cells(&self) -> usize {
        self.reports.iter().filter(|r| !r.passed()).count()
    }

    /// The oracle verdict summary: cells, commits, replayed operations,
    /// injected crashes, masked cells, and violations — one line, fit for
    /// a CI log tail.
    pub fn summary(&self) -> String {
        let commits: u64 = self.reports.iter().map(|r| r.metrics.commits).sum();
        let replayed: u64 = self.reports.iter().map(|r| r.oracle.replayed_ops).sum();
        let crashes: u64 = self.reports.iter().map(|r| r.crashes).sum();
        let masked = self.reports.iter().filter(|r| r.masked).count();
        let violations: usize = self.reports.iter().map(|r| r.oracle.violations.len()).sum();
        format!(
            "soak: {} cells, {} commits, {} ops replayed, {} crashes injected, \
             {} cells fully masked, {} oracle violations, {} failed cells → {}",
            self.reports.len(),
            commits,
            replayed,
            crashes,
            masked,
            violations,
            self.failed_cells(),
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

impl fmt::Display for SoakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for report in &self.reports {
            writeln!(f, "{report}")?;
        }
        write!(f, "{}", self.summary())
    }
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// One soak cell: the standard 7-node topology under a chained plan.
fn soak_scenario(name: &'static str, policy: ReplicationPolicy, round: u64) -> Scenario {
    Scenario {
        name,
        policy,
        scheme: BindingScheme::Standard,
        nodes: 7,
        server_nodes: vec![n(1), n(2), n(3)],
        objects: vec![
            ModelKind::COUNTER,
            ModelKind::KvMap,
            ModelKind::Account { initial: 20 },
        ],
        workload: WorkloadSpec::new(vec![], vec![n(4), n(5), n(6)])
            .clients(3)
            .actions_per_client(5)
            .ops_per_action(2)
            .replicas(2)
            .read_fraction(0.25),
        plan: Box::new(move |seed| {
            // Chain two nemesis families per round, rotating the pair so
            // consecutive rounds stress different fault combinations.
            match round % 3 {
                0 => nemesis::send_window_crashes(
                    seed,
                    &[n(2), n(3)],
                    SimDuration::from_millis(2),
                    SimDuration::from_millis(26),
                    SimDuration::from_millis(22),
                    3,
                    2,
                )
                .merge(nemesis::lossy_window(
                    seed,
                    SimDuration::from_millis(4),
                    SimDuration::from_millis(30),
                    0.08,
                    3,
                )),
                1 => nemesis::rolling_crashes(
                    seed,
                    &[n(1), n(2)],
                    SimDuration::from_millis(3),
                    SimDuration::from_millis(28),
                    SimDuration::from_millis(11),
                    2,
                )
                .merge(nemesis::client_churn(
                    seed,
                    3,
                    SimDuration::from_millis(5),
                    SimDuration::from_millis(25),
                    1,
                    1,
                )),
                // Grow-the-world round: two fresh nodes join, server 2
                // drains (every replica transactionally migrated off), and
                // a stats-driven rebalance spreads placement — all under a
                // lossy window, so migrations race dropped messages.
                _ => nemesis::elastic_ramp(
                    seed,
                    2,
                    n(2),
                    SimDuration::from_millis(2),
                    SimDuration::from_millis(28),
                )
                .merge(nemesis::lossy_window(
                    seed,
                    SimDuration::from_millis(4),
                    SimDuration::from_millis(20),
                    0.08,
                    2,
                )),
            }
        }),
        checks: Checks {
            replay: true,
            invariants: true,
            // Heavy chained chaos can blanket a short round; the oracle
            // verdicts are the contract, not availability.
            expect_commits: false,
            expect_crash_masked: false,
            conservation: false,
        },
    }
}

/// Runs the soak: `rounds` seeds × all three replication policies, each
/// cell a chained nemesis plan over a mixed-class object population.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let mut reports = Vec::with_capacity(cfg.rounds as usize * 3);
    for round in 0..cfg.rounds {
        let seed = cfg.base_seed + round;
        for (name, policy) in [
            ("soak/active", ReplicationPolicy::Active),
            ("soak/cohort", ReplicationPolicy::CoordinatorCohort),
            ("soak/single_copy", ReplicationPolicy::SingleCopyPassive),
        ] {
            let scenario = soak_scenario(name, policy, round);
            // Soak cells run observed: the per-phase latency breakdown in
            // each report's Display is the harness's headline output.
            reports.push(run_scenario_observed(&scenario, seed));
        }
    }
    SoakReport { reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_passes_and_summarizes() {
        let report = run_soak(&SoakConfig {
            base_seed: 11,
            rounds: 2,
        });
        assert_eq!(report.reports.len(), 6, "rounds × policies");
        assert!(report.passed(), "{report}");
        assert_eq!(report.failed_cells(), 0);
        let summary = report.summary();
        assert!(summary.contains("6 cells"), "{summary}");
        assert!(summary.contains("PASS"), "{summary}");
        assert!(
            report.reports.iter().any(|r| r.crashes > 0),
            "a soak must actually inject faults"
        );
        assert!(report.to_string().contains("soak:"));
        // Soak cells run observed: every report carries a snapshot and its
        // Display appends the per-phase latency breakdown.
        assert!(report.reports.iter().all(|r| r.obs.is_some()));
        let cell = report.reports[0].to_string();
        assert!(cell.contains("invoke"), "{cell}");
        assert!(cell.contains("p95="), "{cell}");
    }

    #[test]
    fn soak_rounds_chain_distinct_nemesis_pairs() {
        // Round 0 arms send-window crashes; round 1 rolls crashes over
        // client churn; round 2 grows the world (add, drain, rebalance)
        // under loss — all three families appear across a three-round soak.
        let r0 = soak_scenario("soak/active", ReplicationPolicy::Active, 0);
        let r1 = soak_scenario("soak/active", ReplicationPolicy::Active, 1);
        let r2 = soak_scenario("soak/active", ReplicationPolicy::Active, 2);
        let p0 = (r0.plan)(1);
        let p1 = (r1.plan)(1);
        let p2 = (r2.plan)(1);
        use crate::plan::PlanAction;
        assert!(p0
            .events()
            .iter()
            .any(|e| matches!(e.action, PlanAction::CrashAfterSends(..))));
        assert!(p1
            .events()
            .iter()
            .any(|e| matches!(e.action, PlanAction::CrashClient(_))));
        assert!(p2.events().iter().any(|e| e.action == PlanAction::AddNode));
        assert!(p2
            .events()
            .iter()
            .any(|e| matches!(e.action, PlanAction::DrainNode(_))));
        assert!(p2
            .events()
            .iter()
            .any(|e| e.action == PlanAction::Rebalance));
        p0.validate().expect("well-formed");
        p1.validate().expect("well-formed");
        p2.validate().expect("well-formed");
    }

    /// The elastic acceptance drill: the grow-the-world round (two nodes
    /// added, server 2 drained, placement rebalanced, all under a lossy
    /// window) completes with zero oracle violations across every
    /// replication policy × three seeds, and every cell really migrated.
    #[test]
    fn elastic_round_passes_across_policies_and_seeds() {
        for policy in ReplicationPolicy::ALL {
            let scenario = soak_scenario("soak/elastic", policy, 2);
            for seed in [1, 2, 3] {
                let report = run_scenario_observed(&scenario, seed);
                assert!(report.passed(), "{policy:?} seed {seed}: {report}");
                assert!(
                    report.oracle.violations.is_empty(),
                    "{policy:?} seed {seed}: {report}"
                );
                assert!(
                    report.metrics.migrations > 0,
                    "{policy:?} seed {seed} moved nothing: {report}"
                );
            }
        }
    }
}
