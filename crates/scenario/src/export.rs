//! Trace exporters: turn a traced scenario run (sim [`TraceEvent`]s +
//! causal [`SpanRec`]s) into a Chrome trace-event JSON file (loads directly
//! in Perfetto or `chrome://tracing`) and a JSONL dump.
//!
//! Layout: one Perfetto "process" per shard; inside it one track per
//! simulated node carrying instant events (deliveries, losses, crashes,
//! partitions), one track per action phase carrying the causal spans, and
//! a `notes` track for free-form annotations. Message events carry the
//! raw id of the atomic action that caused them, so a lost message can be
//! attributed to the action it aborted.

use crate::runner::ScenarioReport;
use groupview_obs::{escape_json, span_jsonl, ChromeTrace, SpanRec, TraceSummary};
use groupview_sim::TraceEvent;

/// Track id for free-form [`TraceEvent::Note`] annotations (node tracks
/// use the node id; phase tracks start at
/// [`groupview_obs::PHASE_TID_BASE`]).
pub const NOTES_TID: u32 = 99;

/// One traced world's worth of observability output: the scenario verdict
/// plus the drained spans and simulation events that produced it.
#[derive(Debug)]
pub struct TracedRun {
    /// Shard index (0 for a solo run); becomes the Perfetto process id.
    pub shard: u32,
    /// Node count of the world (names the node tracks).
    pub nodes: usize,
    /// The scenario verdict (carries the metrics snapshot).
    pub report: ScenarioReport,
    /// Causal action spans, drained from the registry.
    pub spans: Vec<SpanRec>,
    /// Simulation trace events, drained from the sim's ring.
    pub events: Vec<TraceEvent>,
}

/// A set of traced runs (one per shard) renderable as one trace file.
#[derive(Debug, Default)]
pub struct TraceBundle {
    /// The per-shard runs.
    pub runs: Vec<TracedRun>,
}

impl TraceBundle {
    /// Bundle a single solo run.
    pub fn solo(run: TracedRun) -> Self {
        TraceBundle { runs: vec![run] }
    }

    /// Render the Chrome trace-event JSON file.
    pub fn chrome_json(&self) -> String {
        let mut trace = ChromeTrace::new();
        for run in &self.runs {
            let pid = run.shard;
            trace.process_name(pid, &format!("shard {pid}"));
            for node in 0..run.nodes as u32 {
                trace.thread_name(pid, node, &format!("node-{node}"));
            }
            trace.thread_name(pid, NOTES_TID, "notes");
            trace.phase_tracks(pid);
            // Ring order is virtual-time order, so each node track stays
            // monotone.
            for ev in &run.events {
                emit_event(&mut trace, pid, ev);
            }
            // Spans are recorded at completion; re-sort by phase track and
            // start time so every track's `ts` is monotone.
            let mut spans = run.spans.clone();
            spans.sort_by_key(|s| (s.phase.index(), s.start_us, s.end_us));
            for span in &spans {
                trace.phase_span(pid, span);
            }
        }
        trace.render()
    }

    /// Validate the rendered Chrome trace in-binary (well-formed JSON
    /// shape, monotone timestamps per track).
    pub fn validate(&self) -> Result<TraceSummary, String> {
        groupview_obs::validate_chrome_trace(&self.chrome_json())
    }

    /// Render the JSONL dump: one line per span, then one per sim event.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for run in &self.runs {
            for span in &run.spans {
                out.push_str(&span_jsonl(run.shard, span));
                out.push('\n');
            }
            for ev in &run.events {
                out.push_str(&event_jsonl(run.shard, ev));
                out.push('\n');
            }
        }
        out
    }

    /// Total spans across all runs.
    pub fn span_count(&self) -> usize {
        self.runs.iter().map(|r| r.spans.len()).sum()
    }

    /// Total sim events across all runs.
    pub fn event_count(&self) -> usize {
        self.runs.iter().map(|r| r.events.len()).sum()
    }
}

/// Short stable kind name for a sim event.
fn event_kind(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::Deliver { .. } => "deliver",
        TraceEvent::Lost { .. } => "lost",
        TraceEvent::Crash { .. } => "crash",
        TraceEvent::Recover { .. } => "recover",
        TraceEvent::Partition { .. } => "partition",
        TraceEvent::Heal { .. } => "heal",
        TraceEvent::Note { .. } => "note",
    }
}

/// The track an event renders on: the node it concerns, or the notes track.
fn event_tid(ev: &TraceEvent) -> u32 {
    match ev {
        // Message events render on the *receiver's* track: that is where
        // the delivery (or the hole a loss leaves) is observable.
        TraceEvent::Deliver { to, .. } | TraceEvent::Lost { to, .. } => to.raw(),
        TraceEvent::Crash { node, .. } | TraceEvent::Recover { node, .. } => node.raw(),
        TraceEvent::Partition { a, .. } | TraceEvent::Heal { a, .. } => a.raw(),
        TraceEvent::Note { .. } => NOTES_TID,
    }
}

fn emit_event(trace: &mut ChromeTrace, pid: u32, ev: &TraceEvent) {
    let detail = ev.to_string();
    trace.instant(
        pid,
        event_tid(ev),
        event_kind(ev),
        ev.at().as_micros(),
        Some(&detail),
        ev.action(),
    );
}

fn event_jsonl(shard: u32, ev: &TraceEvent) -> String {
    let mut line = format!(
        "{{\"type\":\"event\",\"shard\":{},\"at_us\":{},\"kind\":\"{}\",\"text\":\"{}\"",
        shard,
        ev.at().as_micros(),
        event_kind(ev),
        escape_json(&ev.to_string()),
    );
    if let Some(a) = ev.action() {
        line.push_str(&format!(",\"action\":{a}"));
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::canned_scenarios;

    fn traced(name: &str, seed: u64) -> TracedRun {
        let scenario = canned_scenarios()
            .into_iter()
            .find(|s| s.name == name)
            .expect("canned scenario exists");
        crate::runner::run_scenario_traced(&scenario, seed)
    }

    #[test]
    fn traced_canned_scenario_exports_a_valid_chrome_trace() {
        let run = traced("active/masked_server_crash", 7);
        assert!(run.report.passed(), "{}", run.report);
        assert!(!run.spans.is_empty(), "spans recorded");
        assert!(!run.events.is_empty(), "sim events recorded");
        assert!(
            run.report.obs.is_some(),
            "traced run carries a metrics snapshot"
        );
        let bundle = TraceBundle::solo(run);
        let summary = bundle.validate().expect("trace must validate");
        assert_eq!(summary.spans, bundle.span_count());
        assert_eq!(summary.instants, bundle.event_count());
        assert!(summary.tracks > 1);

        let jsonl = bundle.jsonl();
        assert_eq!(
            jsonl.lines().count(),
            bundle.span_count() + bundle.event_count()
        );
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn lost_messages_are_attributed_to_their_action() {
        // A store crash mid-commit loses in-flight protocol messages; each
        // loss should carry the action whose exchange it interrupted.
        let run = traced("active/store_crash_in_commit", 1);
        let attributed = run
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Lost { .. }) && e.action().is_some());
        let any_lost = run
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Lost { .. }));
        assert!(any_lost, "lossy scenario loses messages");
        assert!(
            attributed,
            "losses during action phases carry the action id"
        );
    }
}
