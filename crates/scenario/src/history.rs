//! Low-overhead recording of per-client invoke/commit/abort events.
//!
//! The recorder is what turns a chaos run into something checkable: the
//! oracle replays the recorded history against a sequential model
//! (Crichlow/Hartley-style replicated-counter validation, but over the
//! *history*, not just the end state — per Shapiro & Preguiça, checking
//! histories is what catches ordering bugs).
//!
//! Happy-path cost is deliberately near zero: operation payloads and
//! replies are stored as [`Bytes`] clones (refcount bumps of the buffers
//! the wire layer already owns), and events append to one pre-sized `Vec`.
//! The `history` bench asserts the recorder adds ≤ 2 heap
//! allocations per committed operation under a counting allocator.

use groupview_sim::{Bytes, SimTime};
use groupview_store::Uid;
use std::fmt;

/// What a recorded client event was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An operation was invoked successfully.
    Invoked {
        /// The encoded operation, shared with the wire layer (refcounted).
        op: Bytes,
        /// The reply bytes (usually a zero-copy slice of the reply frame).
        reply: Bytes,
        /// Whether the operation declared write intent.
        write: bool,
    },
    /// The enclosing action committed.
    Committed,
    /// The enclosing action aborted.
    Aborted {
        /// Whether the abort was failure-caused (crashes/partitions) as
        /// opposed to ordinary lock contention.
        failure: bool,
    },
    /// The client crashed mid-action (the action was aborted by the system;
    /// bindings may have leaked).
    CrashedMidAction,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The acting client (machine index in the workload).
    pub client: usize,
    /// The enclosing action's raw id (groups an action's events).
    pub action: u64,
    /// The object acted on.
    pub uid: Uid,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only record of everything the workload's clients did.
///
/// History order is real-time order (the simulated world is
/// single-threaded), so the order of [`EventKind::Committed`] events *is*
/// the serialization order of committed actions.
#[derive(Debug, Clone, Default)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// An empty history pre-sized for `events` entries (the runner sizes it
    /// from the workload spec so steady-state recording never reallocates).
    pub fn with_capacity(events: usize) -> Self {
        History {
            events: Vec::with_capacity(events),
        }
    }

    /// Records a successful invocation.
    #[allow(clippy::too_many_arguments)]
    pub fn invoked(
        &mut self,
        at: SimTime,
        client: usize,
        action: u64,
        uid: Uid,
        op: Bytes,
        reply: Bytes,
        write: bool,
    ) {
        self.events.push(Event {
            at,
            client,
            action,
            uid,
            kind: EventKind::Invoked { op, reply, write },
        });
    }

    /// Records a commit.
    pub fn committed(&mut self, at: SimTime, client: usize, action: u64, uid: Uid) {
        self.events.push(Event {
            at,
            client,
            action,
            uid,
            kind: EventKind::Committed,
        });
    }

    /// Records an abort.
    pub fn aborted(&mut self, at: SimTime, client: usize, action: u64, uid: Uid, failure: bool) {
        self.events.push(Event {
            at,
            client,
            action,
            uid,
            kind: EventKind::Aborted { failure },
        });
    }

    /// Records a client crash that abandoned an in-flight action.
    pub fn crashed(&mut self, at: SimTime, client: usize, action: u64, uid: Uid) {
        self.events.push(Event {
            at,
            client,
            action,
            uid,
            kind: EventKind::CrashedMidAction,
        });
    }

    /// All events in real-time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of committed actions in the history.
    pub fn commits(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Committed)
            .count()
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events ({} commits)",
            self.events.len(),
            self.commits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_counts_commits() {
        let mut h = History::with_capacity(8);
        let uid = Uid::from_raw(1);
        let op = Bytes::from_static(b"op");
        h.invoked(
            SimTime::from_micros(1),
            0,
            10,
            uid,
            op.clone(),
            op.clone(),
            true,
        );
        h.committed(SimTime::from_micros(2), 0, 10, uid);
        h.invoked(SimTime::from_micros(3), 1, 11, uid, op.clone(), op, false);
        h.aborted(SimTime::from_micros(4), 1, 11, uid, true);
        h.crashed(SimTime::from_micros(5), 2, 12, uid);
        assert_eq!(h.len(), 5);
        assert_eq!(h.commits(), 1);
        assert!(!h.is_empty());
        assert!(h.to_string().contains("5 events"));
        assert!(matches!(
            h.events()[3].kind,
            EventKind::Aborted { failure: true }
        ));
    }

    #[test]
    fn recording_shares_buffers_instead_of_copying() {
        let before = groupview_sim::wire::stats();
        let mut h = History::with_capacity(64);
        let uid = Uid::from_raw(2);
        let op = Bytes::from_static(b"payload");
        for i in 0..64 {
            h.invoked(SimTime::ZERO, 0, i, uid, op.clone(), op.clone(), true);
        }
        let delta = groupview_sim::wire::stats().since(before);
        assert_eq!(delta.buffer_allocs, 0, "clones are refcount bumps");
        assert_eq!(delta.bytes_copied, 0);
    }
}
