//! The sharded scenario runner: one [`Scenario`] fanned across N world
//! shards, each verified by its own oracle.
//!
//! A [`ShardedSystem`] owns one complete world per shard; this module
//! slices a scenario's objects round-robin across the shards (each object
//! created UID-aligned with the router, so routing and residence agree),
//! then runs the scenario's full workload/plan/quiesce/verify cycle
//! **inside every shard world concurrently** via
//! [`ShardedSystem::exec_all`]. Faults, clients, and checks are per-world:
//! a shard is an independent failure domain, exactly the paper's model of
//! unrelated object populations.
//!
//! With `shards = 1` the single shard holds every object, skips no UIDs,
//! and executes exactly [`run_scenario`]'s cycle on an identically built
//! world — the run is **bit-for-bit** the single-world run
//! (`tests/sharded_parity.rs` pins metrics and oracle verdicts across
//! seeds). See `docs/SHARDING.md`.

use crate::oracle::ModelKind;
use crate::runner::{run_scenario_in, Scenario, ScenarioReport};
use groupview_obs::MetricsSnapshot;
use groupview_replication::{HashRouter, ShardRouter, ShardedSystem, System};
use groupview_store::Uid;
use std::fmt;
use std::sync::Arc;

/// The verdicts of one `scenario × seed` run across every shard world.
#[derive(Debug)]
pub struct ShardedScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// The seed every shard world used.
    pub seed: u64,
    /// Shard count.
    pub shards: usize,
    /// One report per shard that held at least one object, in shard
    /// order. Shards left empty by the slice (more shards than objects)
    /// are skipped.
    pub per_shard: Vec<ScenarioReport>,
}

impl ShardedScenarioReport {
    /// Whether every shard's demanded checks passed.
    pub fn passed(&self) -> bool {
        !self.per_shard.is_empty() && self.per_shard.iter().all(ScenarioReport::passed)
    }

    /// Committed actions across all shards.
    pub fn total_commits(&self) -> u64 {
        self.per_shard.iter().map(|r| r.metrics.commits).sum()
    }

    /// Aborted actions across all shards.
    pub fn total_aborts(&self) -> u64 {
        self.per_shard.iter().map(|r| r.metrics.aborts).sum()
    }

    /// The merged metrics snapshot across every shard world, or `None` for
    /// an unobserved run.
    ///
    /// Each shard's snapshot is taken **on its own OS thread** at quiesce
    /// (inside [`run_scenario_in`]), which is the only place the shard's
    /// thread-local wire counters are visible — so the merge here reports
    /// true whole-system wire totals (buffer allocs, pool reuses, bytes
    /// copied), not just shard 0's.
    pub fn merged_obs(&self) -> Option<MetricsSnapshot> {
        self.per_shard
            .iter()
            .filter_map(|r| r.obs.clone())
            .reduce(|mut a, b| {
                a.merge(&b);
                a
            })
    }
}

impl fmt::Display for ShardedScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{} seed={} shards={}] commits={} aborts={} {}",
            self.name,
            self.seed,
            self.shards,
            self.total_commits(),
            self.total_aborts(),
            if self.passed() { "PASS" } else { "FAIL" }
        )?;
        for r in &self.per_shard {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// Runs one scenario under one seed across `shards` world shards (hash
/// routing) and collects every shard's verdict.
///
/// The scenario rides an [`Arc`] because each shard thread needs it for
/// the whole run ([`PlanGenerator`](crate::PlanGenerator) is `Send +
/// Sync`, so a [`Scenario`] ships whole).
///
/// # Panics
///
/// Panics if `shards` is 0 or a shard world fails object creation.
pub fn run_scenario_sharded(
    scenario: Arc<Scenario>,
    seed: u64,
    shards: usize,
) -> ShardedScenarioReport {
    run_scenario_sharded_built(scenario, seed, shards, false)
}

/// [`run_scenario_sharded`] with per-shard observability enabled: every
/// shard world records counters and causal spans, and each shard's wire
/// stats are snapshotted on its own thread so
/// [`ShardedScenarioReport::merged_obs`] reports true aggregates.
pub fn run_scenario_sharded_observed(
    scenario: Arc<Scenario>,
    seed: u64,
    shards: usize,
) -> ShardedScenarioReport {
    run_scenario_sharded_built(scenario, seed, shards, true)
}

fn run_scenario_sharded_built(
    scenario: Arc<Scenario>,
    seed: u64,
    shards: usize,
    observe: bool,
) -> ShardedScenarioReport {
    let name = scenario.name;
    let router: Arc<dyn ShardRouter> = Arc::new(HashRouter::new(shards));
    let mut builder = System::builder(seed)
        .nodes(scenario.nodes)
        .policy(scenario.policy)
        .scheme(scenario.scheme);
    if observe {
        builder = builder.observe();
    }
    let sys = ShardedSystem::launch(builder, Arc::clone(&router));
    let per_shard = sys
        .exec_all(move |world| {
            let shard = world.index();
            // Round-robin object slice: object i lives on shard i % N. The
            // shard skips every UID the router owns elsewhere before each
            // creation, so the object's UID routes home by construction.
            let kinds: Vec<ModelKind> = scenario
                .objects
                .iter()
                .enumerate()
                .filter(|(i, _)| i % shards == shard)
                .map(|(_, &kind)| kind)
                .collect();
            if kinds.is_empty() {
                return None;
            }
            let objects: Vec<(Uid, ModelKind)> = kinds
                .iter()
                .map(|kind| {
                    world
                        .sys()
                        .skip_foreign_uids(|uid| router.route(uid) == shard);
                    let uid = world
                        .sys()
                        .create_object(kind.fresh(), &scenario.server_nodes, &scenario.server_nodes)
                        .expect("object creation on a healthy shard world");
                    (uid, *kind)
                })
                .collect();
            Some(run_scenario_in(&scenario, seed, world.sys(), &objects))
        })
        .into_iter()
        .flatten()
        .collect();
    ShardedScenarioReport {
        name,
        seed,
        shards,
        per_shard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use crate::runner::Checks;
    use groupview_core::BindingScheme;
    use groupview_replication::ReplicationPolicy;
    use groupview_sim::NodeId;
    use groupview_workload::WorkloadSpec;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn scenario(objects: usize) -> Scenario {
        Scenario {
            name: "sharded/fault_free",
            policy: ReplicationPolicy::Active,
            scheme: BindingScheme::Standard,
            nodes: 7,
            server_nodes: vec![n(1), n(2), n(3)],
            objects: vec![ModelKind::COUNTER; objects],
            workload: WorkloadSpec::new(vec![], vec![n(4), n(5), n(6)])
                .clients(3)
                .actions_per_client(4)
                .ops_per_action(2),
            plan: Box::new(|_| FaultPlan::new()),
            checks: Checks::default(),
        }
    }

    #[test]
    fn every_shard_world_verifies_independently() {
        let report = run_scenario_sharded(Arc::new(scenario(6)), 11, 3);
        assert_eq!(report.per_shard.len(), 3);
        assert!(report.passed(), "{report}");
        assert!(report.total_commits() > 0);
    }

    #[test]
    fn observed_sharded_run_merges_true_wire_aggregates() {
        let observed = run_scenario_sharded_observed(Arc::new(scenario(6)), 11, 3);
        assert!(observed.passed(), "{observed}");
        let merged = observed.merged_obs().expect("observed run carries obs");
        assert_eq!(merged.worlds, 3, "one snapshot per shard world merged");
        // Every shard world moved protocol bytes; the merge must therefore
        // strictly exceed any single shard's thread-local view.
        assert!(merged.wire_bytes_copied > 0);
        for r in &observed.per_shard {
            let solo = r.obs.as_ref().expect("per-shard snapshot");
            assert!(solo.wire_bytes_copied > 0, "shard saw its own wire stats");
            assert!(merged.wire_bytes_copied > solo.wire_bytes_copied);
        }
        assert!(merged.span_count() > 0, "spans recorded across shards");

        // The unobserved runner stays obs-free (parity path untouched).
        let plain = run_scenario_sharded(Arc::new(scenario(6)), 11, 3);
        assert!(plain.merged_obs().is_none());
        assert_eq!(plain.total_commits(), observed.total_commits());
    }

    #[test]
    fn more_shards_than_objects_skips_empty_worlds() {
        let report = run_scenario_sharded(Arc::new(scenario(2)), 11, 4);
        assert_eq!(report.per_shard.len(), 2, "two shards held objects");
        assert!(report.passed(), "{report}");
    }
}
