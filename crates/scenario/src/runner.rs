//! The scenario runner: `Scenario = WorkloadSpec × FaultPlan × checks`.
//!
//! [`run_plan`] is the **single workload execution engine** of the
//! workspace: it interleaves client state machines one step at a time
//! (bind, invoke, or commit per step, in a seeded-random order), executes a
//! time-keyed [`FaultPlan`] through the simulator's event queue, and
//! records a [`History`] for the oracle. It subsumed the legacy
//! `workload::Driver` — step-keyed `FaultScript`s convert losslessly via
//! `FaultPlan::from(script)` and reproduce the old driver's runs bit for
//! bit (`tests/parity.rs` pins the recorded legacy metrics).
//!
//! [`run_scenario`] adds the full verification cycle: build the world, run
//! the plan, quiesce (heal + recover + sweep), and hand the history to the
//! [`Oracle`]. [`run_matrix`] fans a scenario list across a seed list.

use crate::history::History;
use crate::oracle::{
    check_final_states, check_quiescent_invariants, with_class, ModelKind, ObjectModel, Oracle,
    OracleReport,
};
use crate::plan::{FaultPlan, PlanAction};
use groupview_core::BindingScheme;
use groupview_membership::{Membership, Rebalancer};
use groupview_obs::MetricsSnapshot;
use groupview_replication::{
    Account, AccountOp, Client, Counter, CounterOp, KvMap, KvOp, ObjectGroup, ObjectType,
    ReplicationPolicy, System, Tx, TxOpError, TypedUid,
};
use groupview_sim::{Bytes, ClientId, NodeId, ScheduledEvent, Sim, SimDuration};
use groupview_store::Uid;
use groupview_workload::{RunMetrics, WorkloadSpec};
use std::collections::HashSet;
use std::fmt;

/// Everything [`run_plan`] produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The workload metrics (same accounting as the legacy driver).
    pub metrics: RunMetrics,
    /// The recorded per-client event history.
    pub history: History,
    /// Clients the plan crashed (still considered dead by later sweeps).
    pub dead_clients: Vec<ClientId>,
}

enum Phase {
    Idle,
    Running {
        action: groupview_actions::ActionId,
        group: Box<ObjectGroup>,
        /// Index of the acted-on object in `spec.objects` (also indexes
        /// the run's `ModelKind`s).
        object_index: usize,
        ops_left: usize,
        read_only: bool,
    },
    /// A two-object transfer built through the typed [`Tx`] surface, both
    /// legs applied; the next step commits (so fault plans can land in the
    /// invoke→commit window, including `store_commit_crashes` traps).
    Transfer {
        tx: Tx,
        /// The withdraw-side object: the history representative for the
        /// commit/abort event.
        uid: Uid,
    },
}

struct Machine {
    idx: usize,
    client: Client,
    actions_left: usize,
    phase: Phase,
    dead: bool,
}

impl Machine {
    fn is_finished(&self) -> bool {
        self.dead || (self.actions_left == 0 && matches!(self.phase, Phase::Idle))
    }
}

/// Elastic-membership state for one run, created lazily on the **first**
/// membership plan action ([`PlanAction::AddNode`], [`PlanAction::DrainNode`],
/// [`PlanAction::Rebalance`]). Plans without one never build it, so the run
/// is bit-for-bit identical to a pre-elastic runner — `tests/parity.rs`,
/// `tests/obs_parity.rs`, and `tests/sharded_parity.rs` all pin this.
struct Elastic {
    membership: Membership,
    /// Nodes whose drain still has busy or failed replicas; retried every
    /// step (like deferred recovery work) and once more after the workload
    /// ends, when every lock is released.
    draining: Vec<NodeId>,
}

impl Elastic {
    fn new(sys: &System) -> Self {
        Elastic {
            membership: Membership::new(sys),
            draining: Vec::new(),
        }
    }

    /// Folds one drain pass into the metrics and reports completion.
    fn drain_pass(&self, node: NodeId, metrics: &mut RunMetrics) -> bool {
        let report = self.membership.drain_step(node);
        metrics.migrations += report.moved.len() as u64;
        metrics.migrations_deferred += (report.busy.len() + report.failed.len()) as u64;
        report.complete
    }
}

/// Per-class workload operation generation, layered on [`ObjectType`]: the
/// class owns its op mix, and the runner reaches it through the same trait
/// the typed client surface and the oracle use — no parallel match arms.
///
/// Determinism contract: generators must draw from the seeded simulator RNG
/// in a fixed order (or not at all), and the counter generator draws
/// nothing, so the parity-pinned counter workloads consume **no extra RNG
/// draws**.
trait WorkloadOps: ObjectType {
    /// Draws a mutating operation. `seq` is a per-run monotone counter the
    /// class may bump to make successive writes distinct.
    fn gen_write(sim: &Sim, seq: &mut u64) -> Self::Op;

    /// Draws a read-only operation.
    fn gen_read(sim: &Sim) -> Self::Op;
}

/// KvMap workloads contend on this many distinct keys.
const KV_KEYS: u64 = 3;

impl WorkloadOps for Counter {
    fn gen_write(_sim: &Sim, _seq: &mut u64) -> CounterOp {
        CounterOp::Add(1)
    }

    fn gen_read(_sim: &Sim) -> CounterOp {
        CounterOp::Get
    }
}

impl WorkloadOps for KvMap {
    fn gen_write(sim: &Sim, seq: &mut u64) -> KvOp {
        let key = format!("k{}", sim.random_below(KV_KEYS));
        *seq += 1;
        if sim.chance(0.2) {
            KvOp::Delete(key)
        } else {
            // A distinct value per write, so the oracle's previous-value
            // checks bite.
            KvOp::Put(key, format!("v{seq}"))
        }
    }

    fn gen_read(sim: &Sim) -> KvOp {
        if sim.chance(0.25) {
            KvOp::Len
        } else {
            KvOp::Get(format!("k{}", sim.random_below(KV_KEYS)))
        }
    }
}

impl WorkloadOps for Account {
    fn gen_write(sim: &Sim, _seq: &mut u64) -> AccountOp {
        let amount = 1 + sim.random_below(5);
        if sim.chance(0.5) {
            AccountOp::Deposit(amount)
        } else {
            // Withdrawals overdraw sometimes: the REFUSED reply is part of
            // the per-operation-type contract under test.
            AccountOp::Withdraw(amount)
        }
    }

    fn gen_read(_sim: &Sim) -> AccountOp {
        AccountOp::Balance
    }
}

/// The runner's operation source: dispatches each object's [`ModelKind`] to
/// its class generator and encodes through the trait codec.
///
/// Counter operations are pre-encoded once and shared by every invocation
/// and history record (cloning [`Bytes`] is a refcount bump, so the counter
/// path — the parity-pinned one — stays allocation-free).
struct OpGen {
    counter_write: Bytes,
    counter_read: Bytes,
    /// Monotone sequence handed to [`WorkloadOps::gen_write`].
    write_seq: u64,
    /// Scratch kind-per-object lookup, parallel to `spec.objects`.
    kinds: Vec<ModelKind>,
}

impl OpGen {
    fn new(kinds: Vec<ModelKind>) -> Self {
        OpGen {
            counter_write: Bytes::from(Counter::op_vec(&CounterOp::Add(1))),
            counter_read: Bytes::from(Counter::op_vec(&CounterOp::Get)),
            write_seq: 0,
            kinds,
        }
    }

    fn kind_of(&self, object_index: usize) -> ModelKind {
        self.kinds[object_index]
    }

    fn write_op(&mut self, sim: &Sim, kind: ModelKind) -> Bytes {
        if matches!(kind, ModelKind::Counter { .. }) {
            // The cached frame is the same bytes `C::gen_write` + `op_vec`
            // would produce; sharing it keeps the hot path allocation-free.
            return self.counter_write.clone();
        }
        let seq = &mut self.write_seq;
        with_class!(kind, C => Bytes::from(C::op_vec(&C::gen_write(sim, seq))))
    }

    fn read_op(&mut self, sim: &Sim, kind: ModelKind) -> Bytes {
        if matches!(kind, ModelKind::Counter { .. }) {
            return self.counter_read.clone();
        }
        with_class!(kind, C => Bytes::from(C::op_vec(&C::gen_read(sim))))
    }
}

/// Runs `spec` against `sys` under `plan`, treating every object as a
/// zero-initialised counter (the historical workload; see
/// [`run_plan_typed`] for mixed object classes).
///
/// # Panics
///
/// Panics if the spec has no objects or no client nodes.
pub fn run_plan(sys: &System, spec: &WorkloadSpec, plan: &FaultPlan) -> RunOutcome {
    run_plan_typed(
        sys,
        spec,
        plan,
        &vec![ModelKind::COUNTER; spec.objects.len()],
    )
}

/// Runs `spec` against `sys` under `plan`, recording history.
///
/// `kinds[i]` names the class of `spec.objects[i]` and selects the
/// operation mix driven against it: counters invoke `Add(1)`/`Get`, kv
/// maps `Put`/`Delete`/`Get`/`Len` over a small contended key set, and
/// accounts `Deposit`/`Withdraw` (sometimes overdrawing)/`Balance`.
///
/// Timed plan entries are installed into the simulator's event queue as
/// [`ScheduledEvent::Custom`] markers before the first step; step-keyed
/// entries (the legacy-script shim) fire at the top of the matching step,
/// exactly where the retired driver applied its `FaultScript`.
///
/// # Panics
///
/// Panics if the spec has no objects or no client nodes, or if `kinds` is
/// not parallel to `spec.objects`.
pub fn run_plan_typed(
    sys: &System,
    spec: &WorkloadSpec,
    plan: &FaultPlan,
    kinds: &[ModelKind],
) -> RunOutcome {
    assert!(!spec.objects.is_empty(), "workload needs objects");
    assert!(!spec.client_nodes.is_empty(), "workload needs client nodes");
    assert_eq!(
        kinds.len(),
        spec.objects.len(),
        "one ModelKind per workload object"
    );
    let mut metrics = RunMetrics::default();
    let mut history =
        History::with_capacity(spec.total_actions() * (spec.ops_per_action + 1) + plan.len());
    let mut ops = OpGen::new(kinds.to_vec());
    let mut machines: Vec<Machine> = (0..spec.clients)
        .map(|i| {
            let node = spec.client_nodes[i % spec.client_nodes.len()];
            Machine {
                idx: i,
                client: sys.client_with_id(ClientId::new(i as u32), node),
                actions_left: spec.actions_per_client,
                phase: Phase::Idle,
                dead: false,
            }
        })
        .collect();

    // Timed plan entries are offsets from *now* (the start of the run), so
    // plans are independent of how much virtual time setup consumed.
    for (idx, offset) in plan.timed_events() {
        sys.sim()
            .schedule_in(offset, ScheduledEvent::Custom(idx as u64));
    }

    // Generous upper bound: every action takes ops+2 steps plus retries.
    let max_steps = (spec.total_actions() as u64) * (spec.ops_per_action as u64 + 3) * 4 + 1000;

    // Nodes whose recovery protocol still has deferred work; retried every
    // step like the paper's recovering node does.
    let mut recovering: Vec<NodeId> = Vec::new();

    // Lazily-built elastic membership (None until the plan asks for it).
    let mut elastic: Option<Elastic> = None;

    let mut step = 0u64;
    while step < max_steps {
        step += 1;
        // Step-keyed plan entries (legacy-script semantics).
        let due: Vec<PlanAction> = plan.due_at_step(step).cloned().collect();
        for action in due {
            apply_plan_action(
                sys,
                &action,
                &mut machines,
                &mut metrics,
                &mut recovering,
                &mut elastic,
                &mut history,
            );
        }
        // Simulator-scheduled events: native crash/recover plus the timed
        // plan entries installed above.
        for ev in sys.sim().run_due_events() {
            match ev {
                ScheduledEvent::Recover(node) => {
                    recovering.push(node);
                    sys.recovery().recover_node(node);
                }
                ScheduledEvent::Custom(idx) => {
                    if let Some(entry) = plan.events().get(idx as usize) {
                        let action = entry.action.clone();
                        apply_plan_action(
                            sys,
                            &action,
                            &mut machines,
                            &mut metrics,
                            &mut recovering,
                            &mut elastic,
                            &mut history,
                        );
                    }
                }
                ScheduledEvent::Crash(_) => {}
            }
        }
        // Retry deferred recovery work.
        recovering.retain(|&node| {
            if !sys.sim().is_up(node) {
                return false; // crashed again; a future recover re-adds it
            }
            let mut report = sys.recovery().recover_store(node);
            report.merge(sys.recovery().recover_server(node));
            !report.fully_recovered()
        });
        // Retry unfinished drains the same way: busy replicas free up as
        // their clients commit or abort.
        if let Some(el) = elastic.as_mut() {
            let pending = std::mem::take(&mut el.draining);
            for node in pending {
                if !el.drain_pass(node, &mut metrics) {
                    el.draining.push(node);
                }
            }
        }
        sys.sim().advance(SimDuration::from_micros(50));

        let mut order: Vec<usize> = machines
            .iter()
            .filter(|m| !m.is_finished())
            .map(|m| m.idx)
            .collect();
        if order.is_empty() && recovering.is_empty() {
            break;
        }
        sys.sim().shuffle(&mut order);
        for idx in order {
            step_machine(
                sys,
                spec,
                &mut ops,
                &mut machines[idx],
                &mut metrics,
                &mut history,
            );
        }
    }
    // Abort anything still in flight (only reachable at the step bound) so
    // the quiesce phase sees no held locks.
    for m in &mut machines {
        if m.dead {
            continue;
        }
        match std::mem::replace(&mut m.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::Running { action, group, .. } => {
                m.client.abort(action);
                metrics.aborts += 1;
                history.aborted(sys.sim().now(), m.idx, action.raw(), group.uid, false);
            }
            Phase::Transfer { tx, uid } => {
                let action = tx.action().raw();
                tx.abort();
                metrics.aborts += 1;
                history.aborted(sys.sim().now(), m.idx, action, uid, false);
            }
        }
    }
    // Elastic finalization: with every workload action finished, nothing
    // holds locks any more, so unfinished drains either complete now or
    // are genuinely blocked on a down node (quiesce recovers those; the
    // oracle's invariant check flags anything still stranded).
    if let Some(el) = elastic.as_mut() {
        for _ in 0..4 {
            if el.draining.is_empty() {
                break;
            }
            let pending = std::mem::take(&mut el.draining);
            for node in pending {
                if !el.drain_pass(node, &mut metrics) {
                    el.draining.push(node);
                }
            }
        }
    }
    metrics.steps = step;
    metrics.tx = sys.tx().stats();
    metrics.net = sys.sim().counters();
    sys.sim().set_active_account(None);
    RunOutcome {
        metrics,
        history,
        dead_clients: machines
            .iter()
            .filter(|m| m.dead)
            .map(|m| m.client.id())
            .collect(),
    }
}

fn apply_plan_action(
    sys: &System,
    action: &PlanAction,
    machines: &mut [Machine],
    metrics: &mut RunMetrics,
    recovering: &mut Vec<NodeId>,
    elastic: &mut Option<Elastic>,
    history: &mut History,
) {
    match action {
        PlanAction::CrashNode(node) => sys.sim().crash(*node),
        PlanAction::CrashAfterSends(node, budget) => {
            sys.sim().crash_after_sends(*node, *budget);
        }
        PlanAction::RecoverNode(node) => {
            // A recover also disarms an unfired store-commit trap, mirroring
            // how `Sim::recover` disarms an unfired send budget.
            sys.stores().disarm_crash_after_prepare(*node);
            recovering.push(*node);
            sys.recovery().recover_node(*node);
        }
        PlanAction::CrashClient(i) => {
            if let Some(m) = machines.get_mut(*i) {
                if !m.dead {
                    m.dead = true;
                    match std::mem::replace(&mut m.phase, Phase::Idle) {
                        Phase::Idle => {}
                        Phase::Running { action, group, .. } => {
                            metrics.leaked_bindings +=
                                m.client.crash_without_cleanup(action) as u64;
                            metrics.aborts += 1;
                            history.crashed(sys.sim().now(), m.idx, action.raw(), group.uid);
                        }
                        Phase::Transfer { tx, uid } => {
                            // `leak` disarms the drop-abort: a crashing
                            // client leaves its locks and bindings behind.
                            let action = tx.leak();
                            metrics.leaked_bindings +=
                                m.client.crash_without_cleanup(action) as u64;
                            metrics.aborts += 1;
                            history.crashed(sys.sim().now(), m.idx, action.raw(), uid);
                        }
                    }
                }
            }
        }
        PlanAction::CleanupSweep => {
            let dead: HashSet<ClientId> = machines
                .iter()
                .filter(|m| m.dead)
                .map(|m| m.client.id())
                .collect();
            let report = sys.cleanup().sweep(|c| !dead.contains(&c));
            metrics.cleanup_reclaimed += report.reclaimed() as u64;
        }
        PlanAction::PartitionLink(a, b) => sys.sim().partition(*a, *b),
        PlanAction::HealLink(a, b) => sys.sim().heal(*a, *b),
        PlanAction::PartitionGroups(side_a, side_b) => {
            sys.sim().partition_groups(side_a, side_b);
        }
        PlanAction::HealAll => sys.sim().heal_all(),
        PlanAction::SetDropProbability(p) => sys.sim().set_drop_probability(*p),
        PlanAction::CrashStoreInCommit(node) => sys.stores().arm_crash_after_prepare(*node),
        PlanAction::AddNode => {
            let el = elastic.get_or_insert_with(|| Elastic::new(sys));
            el.membership.add_node();
        }
        PlanAction::DrainNode(node) => {
            let el = elastic.get_or_insert_with(|| Elastic::new(sys));
            el.membership.begin_drain(*node);
            if !el.drain_pass(*node, metrics) && !el.draining.contains(node) {
                el.draining.push(*node);
            }
        }
        PlanAction::Rebalance => {
            let el = elastic.get_or_insert_with(|| Elastic::new(sys));
            let report = Rebalancer::default().rebalance(&el.membership);
            metrics.migrations += report.moved.len() as u64;
            metrics.migrations_deferred += (report.busy.len() + report.failed.len()) as u64;
        }
    }
}

fn step_machine(
    sys: &System,
    spec: &WorkloadSpec,
    ops: &mut OpGen,
    m: &mut Machine,
    metrics: &mut RunMetrics,
    history: &mut History,
) {
    if m.dead {
        return;
    }
    let sim = sys.sim();
    let account = m.idx as u64;
    sim.set_active_account(Some(account));

    match std::mem::replace(&mut m.phase, Phase::Idle) {
        Phase::Idle => {
            if m.actions_left == 0 {
                return;
            }
            m.actions_left -= 1;
            metrics.attempts += 1;
            sim.account_reset(account);
            let read_only = sim.chance(spec.read_fraction);
            if spec.transfers && !read_only && spec.objects.len() >= 2 {
                start_transfer(sys, spec, m, metrics, history);
                return;
            }
            let object_index = sim.random_below(spec.objects.len() as u64) as usize;
            let uid = spec.objects[object_index];
            let action = m.client.begin_action();
            let outcome = if read_only {
                m.client.activate_read_only(action, uid, spec.replicas)
            } else {
                m.client.activate(action, uid, spec.replicas)
            };
            match outcome {
                Ok(group) => {
                    let b = group.binding();
                    metrics.probe_failures += u64::from(b.probe_failures);
                    metrics.bind_retries += u64::from(b.retries);
                    metrics.servers_removed += b.removed.len() as u64;
                    m.phase = Phase::Running {
                        action,
                        group: Box::new(group),
                        object_index,
                        ops_left: spec.ops_per_action,
                        read_only,
                    };
                }
                Err(e) => {
                    m.client.abort(action);
                    metrics.abort_bind += 1;
                    if e.is_failure_caused() {
                        metrics.abort_bind_failure += 1;
                    } else {
                        metrics.abort_bind_contention += 1;
                    }
                    history.aborted(sim.now(), m.idx, action.raw(), uid, e.is_failure_caused());
                    finish_action(sys, m, metrics, false);
                }
            }
        }
        Phase::Running {
            action,
            group,
            object_index,
            ops_left,
            read_only,
        } => {
            if ops_left > 0 {
                let kind = ops.kind_of(object_index);
                // Batched stepping: `ops_per_batch > 1` sends up to that
                // many ops as one replicated unit per step; `1` (the
                // default) keeps the plain per-op invoke path, so existing
                // scenarios are bit-for-bit unchanged. Op generation draws
                // the same RNG sequence either way.
                let batched = spec.ops_per_batch > 1;
                let k = if batched {
                    spec.ops_per_batch.min(ops_left)
                } else {
                    1
                };
                let batch: Vec<Bytes> = (0..k)
                    .map(|_| {
                        if read_only {
                            ops.read_op(sim, kind)
                        } else {
                            ops.write_op(sim, kind)
                        }
                    })
                    .collect();
                let result = if batched {
                    let refs: Vec<&[u8]> = batch.iter().map(|b| b.as_slice()).collect();
                    if read_only {
                        m.client.invoke_batch_read(action, &group, &refs)
                    } else {
                        m.client.invoke_batch(action, &group, &refs)
                    }
                } else if read_only {
                    m.client
                        .invoke_read(action, &group, &batch[0])
                        .map(|r| vec![r])
                } else {
                    m.client.invoke(action, &group, &batch[0]).map(|r| vec![r])
                };
                match result {
                    Ok(replies) => {
                        // A batch commits as N ordered ops: the oracle
                        // replays each (op, reply) pair individually, so
                        // I1–I5 and the per-class models verify batched
                        // histories unchanged.
                        for (op, reply) in batch.into_iter().zip(replies) {
                            history.invoked(
                                sim.now(),
                                m.idx,
                                action.raw(),
                                group.uid,
                                op,
                                reply,
                                !read_only,
                            );
                        }
                        m.phase = Phase::Running {
                            action,
                            group,
                            object_index,
                            ops_left: ops_left - k,
                            read_only,
                        };
                    }
                    Err(e) => {
                        m.client.abort(action);
                        metrics.abort_invoke += 1;
                        if e.is_failure_caused() {
                            metrics.abort_failure += 1;
                        } else {
                            metrics.abort_contention += 1;
                        }
                        history.aborted(
                            sim.now(),
                            m.idx,
                            action.raw(),
                            group.uid,
                            e.is_failure_caused(),
                        );
                        finish_action(sys, m, metrics, false);
                    }
                }
            } else {
                let uid = group.uid;
                match m.client.commit(action) {
                    Ok(()) => {
                        history.committed(sim.now(), m.idx, action.raw(), uid);
                        finish_action(sys, m, metrics, true);
                    }
                    Err(e) => {
                        metrics.abort_commit += 1;
                        if e.is_failure_caused() {
                            metrics.abort_commit_failure += 1;
                        } else {
                            metrics.abort_commit_contention += 1;
                        }
                        history.aborted(sim.now(), m.idx, action.raw(), uid, e.is_failure_caused());
                        finish_action(sys, m, metrics, false);
                    }
                }
                if spec.passivate_between_actions {
                    let _ = sys.try_passivate(uid);
                }
            }
        }
        Phase::Transfer { tx, uid } => {
            let action = tx.action().raw();
            match tx.commit() {
                Ok(()) => {
                    history.committed(sim.now(), m.idx, action, uid);
                    finish_action(sys, m, metrics, true);
                }
                Err(e) => {
                    metrics.abort_commit += 1;
                    if e.is_failure_caused() {
                        metrics.abort_commit_failure += 1;
                    } else {
                        metrics.abort_commit_contention += 1;
                    }
                    history.aborted(sim.now(), m.idx, action, uid, e.is_failure_caused());
                    finish_action(sys, m, metrics, false);
                }
            }
            if spec.passivate_between_actions {
                let _ = sys.try_passivate(uid);
            }
        }
    }
}

/// Starts one balanced two-account transfer through the typed [`Tx`]
/// surface: withdraw from one seeded-random account, deposit the same
/// amount into another (skipped when the withdrawal is refused — the
/// total is conserved either way). Both legs run under one action; the
/// commit happens on the machine's *next* step, so scripted faults can
/// land in the invoke→commit window.
fn start_transfer(
    sys: &System,
    spec: &WorkloadSpec,
    m: &mut Machine,
    metrics: &mut RunMetrics,
    history: &mut History,
) {
    let sim = sys.sim();
    let n = spec.objects.len() as u64;
    let i = sim.random_below(n) as usize;
    // Draw the deposit side from the remaining objects (never i itself).
    let mut j = sim.random_below(n - 1) as usize;
    if j >= i {
        j += 1;
    }
    let (from_uid, to_uid) = (spec.objects[i], spec.objects[j]);
    let from = TypedUid::<Account>::assume(from_uid).open(&m.client);
    let to = TypedUid::<Account>::assume(to_uid).open(&m.client);
    let amount = 1 + sim.random_below(5);
    let mut tx = m.client.begin().with_replicas(spec.replicas);
    let action = tx.action().raw();
    match tx.invoke(&from, AccountOp::Withdraw(amount)) {
        Ok(reply) => {
            history.invoked(
                sim.now(),
                m.idx,
                action,
                from_uid,
                Bytes::from(Account::op_vec(&AccountOp::Withdraw(amount))),
                Bytes::from(Account::reply_vec(&reply)),
                true,
            );
            if reply != AccountOp::REFUSED {
                match tx.invoke(&to, AccountOp::Deposit(amount)) {
                    Ok(deposited) => {
                        history.invoked(
                            sim.now(),
                            m.idx,
                            action,
                            to_uid,
                            Bytes::from(Account::op_vec(&AccountOp::Deposit(amount))),
                            Bytes::from(Account::reply_vec(&deposited)),
                            true,
                        );
                    }
                    Err(e) => {
                        abort_transfer(sys, m, metrics, history, tx, from_uid, e);
                        return;
                    }
                }
            }
            m.phase = Phase::Transfer { tx, uid: from_uid };
        }
        Err(e) => abort_transfer(sys, m, metrics, history, tx, from_uid, e),
    }
}

/// Aborts a failed transfer and books it under the matching taxonomy
/// bucket: an [`TxOpError::Activate`] is a bind abort, an
/// [`TxOpError::Invoke`] an invoke abort, each split contention/failure.
fn abort_transfer(
    sys: &System,
    m: &mut Machine,
    metrics: &mut RunMetrics,
    history: &mut History,
    tx: Tx,
    uid: Uid,
    e: TxOpError,
) {
    let action = tx.action().raw();
    let failure = e.is_failure_caused();
    tx.abort();
    match e {
        TxOpError::Activate(_) => {
            metrics.abort_bind += 1;
            if failure {
                metrics.abort_bind_failure += 1;
            } else {
                metrics.abort_bind_contention += 1;
            }
        }
        TxOpError::Invoke(_) => {
            metrics.abort_invoke += 1;
            if failure {
                metrics.abort_failure += 1;
            } else {
                metrics.abort_contention += 1;
            }
        }
    }
    history.aborted(sys.sim().now(), m.idx, action, uid, failure);
    finish_action(sys, m, metrics, false);
}

fn finish_action(sys: &System, m: &Machine, metrics: &mut RunMetrics, committed: bool) {
    if committed {
        metrics.commits += 1;
    } else {
        metrics.aborts += 1;
    }
    let cost = sys.sim().account_cost(m.idx as u64);
    metrics.action_latency_us.add(cost.latency.as_micros());
    metrics.action_messages.add(cost.messages);
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// Produces the concrete [`FaultPlan`] for a given seed (nemesis closure).
///
/// `Send + Sync` because a sharded run ships the whole [`Scenario`] to
/// every shard thread (see [`crate::sharded`]); nemesis closures are pure
/// seed → plan functions, so the bound costs nothing.
pub type PlanGenerator = Box<dyn Fn(u64) -> FaultPlan + Send + Sync>;

/// Which verdicts a scenario demands.
#[derive(Debug, Clone, Copy)]
pub struct Checks {
    /// Replay the committed history sequentially and check every reply plus
    /// the final store states.
    pub replay: bool,
    /// Check the paper's quiescence invariants after recovery.
    pub invariants: bool,
    /// Require at least one committed action.
    pub expect_commits: bool,
    /// Require every crash to be masked: no failure-caused bind, invoke,
    /// or commit aborts anywhere in the run.
    pub expect_crash_masked: bool,
    /// Enable the oracle's cross-object conservation check: the sum of all
    /// account balances must be invariant at every commit point (only
    /// sound for balanced-transfer workloads; see
    /// [`groupview_workload::WorkloadSpec::transfers`]).
    pub conservation: bool,
}

impl Default for Checks {
    fn default() -> Self {
        Checks {
            replay: true,
            invariants: true,
            expect_commits: true,
            expect_crash_masked: false,
            conservation: false,
        }
    }
}

/// A reusable chaos scenario: world shape × workload × seeded fault plan ×
/// demanded checks.
pub struct Scenario {
    /// Scenario name (report label).
    pub name: &'static str,
    /// Replication policy under test.
    pub policy: ReplicationPolicy,
    /// Database binding scheme under test.
    pub scheme: BindingScheme,
    /// World size (node 0 hosts the naming service).
    pub nodes: usize,
    /// Nodes serving *and* storing every object (`Sv = St`).
    pub server_nodes: Vec<NodeId>,
    /// The objects to create: one per entry, of the given class. Mixed
    /// classes are fine — each gets its own sequential oracle model.
    pub objects: Vec<ModelKind>,
    /// The workload shape; `objects` is filled in per run.
    pub workload: WorkloadSpec,
    /// Seed → concrete fault schedule.
    pub plan: PlanGenerator,
    /// The verdicts this scenario demands.
    pub checks: Checks,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("scheme", &self.scheme)
            .finish_non_exhaustive()
    }
}

/// The verdict of one `scenario × seed` run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// The seed this run used.
    pub seed: u64,
    /// Workload metrics (commit/abort taxonomy).
    pub metrics: RunMetrics,
    /// Node crashes injected (from the network counters).
    pub crashes: u64,
    /// Whether every crash was masked (no failure-caused bind, invoke, or
    /// commit aborts).
    pub masked: bool,
    /// The oracle's verdict.
    pub oracle: OracleReport,
    /// Failed expectations (empty means the scenario passed).
    pub failures: Vec<String>,
    /// Observability snapshot (per-phase latencies, protocol counters,
    /// wire stats). `None` unless the run was observed
    /// ([`run_scenario_observed`] or a world built with
    /// `SystemBuilder::observe`) — so default runs render exactly as
    /// before.
    pub obs: Option<MetricsSnapshot>,
}

impl ScenarioReport {
    /// Whether every demanded check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:<28} seed={}] {} | tx multi committed={} aborted={} | crashes={} masked={} \
             | oracle: {} | {}",
            self.name,
            self.seed,
            self.metrics,
            self.metrics.tx.multi_committed,
            self.metrics.tx.multi_aborted,
            self.crashes,
            self.masked,
            self.oracle,
            if self.passed() {
                "PASS".to_string()
            } else {
                format!("FAIL: {}", self.failures.join("; "))
            }
        )?;
        if let Some(snap) = &self.obs {
            write!(f, "\n{}", snap.phase_breakdown().trim_end_matches('\n'))?;
            let loads = snap.node_load_breakdown();
            if !loads.is_empty() {
                write!(f, "\nper-node load:\n{}", loads.trim_end_matches('\n'))?;
            }
        }
        Ok(())
    }
}

/// Runs one scenario under one seed: build the world, create the objects,
/// drive the plan, quiesce, and collect verdicts.
pub fn run_scenario(scenario: &Scenario, seed: u64) -> ScenarioReport {
    run_scenario_built(scenario, seed, false, false)
}

/// [`run_scenario`] with the observability registry enabled: the returned
/// report carries a [`MetricsSnapshot`] (and its `Display` appends the
/// per-phase latency breakdown). The run itself is bit-for-bit identical
/// to the unobserved one — `tests/obs_parity.rs` pins this.
pub fn run_scenario_observed(scenario: &Scenario, seed: u64) -> ScenarioReport {
    run_scenario_built(scenario, seed, true, false)
}

/// [`run_scenario_observed`] with sim event tracing on as well; returns the
/// drained trace events and causal spans alongside the report, ready for
/// [`crate::export::TraceBundle`].
pub fn run_scenario_traced(scenario: &Scenario, seed: u64) -> crate::export::TracedRun {
    let sys = build_scenario_system(scenario, seed, true, true);
    let objects = create_scenario_objects(scenario, &sys);
    let report = run_scenario_in(scenario, seed, &sys, &objects);
    let spans = sys.obs().take_spans();
    let events = sys.sim().take_trace().unwrap_or_default();
    crate::export::TracedRun {
        shard: 0,
        nodes: scenario.nodes,
        report,
        spans,
        events,
    }
}

fn run_scenario_built(
    scenario: &Scenario,
    seed: u64,
    observe: bool,
    trace: bool,
) -> ScenarioReport {
    let sys = build_scenario_system(scenario, seed, observe, trace);
    let objects = create_scenario_objects(scenario, &sys);
    run_scenario_in(scenario, seed, &sys, &objects)
}

/// Builds the world a scenario runs in (shared with the traced runner).
fn build_scenario_system(scenario: &Scenario, seed: u64, observe: bool, trace: bool) -> System {
    let mut builder = System::builder(seed)
        .nodes(scenario.nodes)
        .policy(scenario.policy)
        .scheme(scenario.scheme);
    if observe {
        builder = builder.observe();
    }
    if trace {
        builder = builder.trace();
    }
    builder.build()
}

fn create_scenario_objects(scenario: &Scenario, sys: &System) -> Vec<(Uid, ModelKind)> {
    let objects: Vec<(Uid, ModelKind)> = scenario
        .objects
        .iter()
        .map(|kind| {
            let uid = sys
                .create_object(kind.fresh(), &scenario.server_nodes, &scenario.server_nodes)
                .expect("object creation on a healthy world");
            (uid, *kind)
        })
        .collect();
    objects
}

/// Runs a scenario's plan/quiesce/verify cycle inside an **existing**
/// world whose objects are already created — the world-agnostic half of
/// [`run_scenario`], shared with the sharded runner
/// ([`crate::sharded::run_scenario_sharded`]), where each shard world
/// holds only the objects its router slice owns.
///
/// `objects` pairs each created uid with its [`ModelKind`]; the
/// scenario's workload spec is re-targeted at exactly these objects.
pub fn run_scenario_in(
    scenario: &Scenario,
    seed: u64,
    sys: &System,
    objects: &[(Uid, ModelKind)],
) -> ScenarioReport {
    let uids: Vec<Uid> = objects.iter().map(|&(uid, _)| uid).collect();
    let kinds: Vec<ModelKind> = objects.iter().map(|&(_, kind)| kind).collect();
    let mut spec = scenario.workload.clone();
    spec.objects = uids.clone();

    let mut failures = Vec::new();
    let plan = (scenario.plan)(seed);
    if let Err(e) = plan.validate() {
        // A malformed plan must never execute (the simulator would panic on
        // e.g. an out-of-range drop probability): return the diagnostic
        // report instead.
        return ScenarioReport {
            name: scenario.name,
            seed,
            metrics: RunMetrics::default(),
            crashes: 0,
            masked: false,
            oracle: OracleReport::default(),
            failures: vec![format!("malformed plan: {e}")],
            obs: None,
        };
    }
    let outcome = run_plan_typed(sys, &spec, &plan, &kinds);
    quiesce(sys);
    // Snapshot at quiesce: the merge point where shard threads read their
    // thread-local wire counters before results cross threads.
    let obs = sys.obs().is_enabled().then(|| sys.metrics_snapshot());

    let mut oracle = Oracle::new(
        uids.iter()
            .zip(&kinds)
            .map(|(&uid, &kind)| ObjectModel {
                uid,
                kind,
                full_strength: scenario.server_nodes.len(),
            })
            .collect(),
    );
    if scenario.checks.conservation {
        oracle = oracle.with_conservation();
    }
    let mut oracle_report = if scenario.checks.replay {
        let mut report = oracle.replay(&outcome.history);
        let expected = report.final_states.clone();
        report.violations.extend(check_final_states(sys, &expected));
        report
    } else {
        OracleReport::default()
    };
    if scenario.checks.invariants {
        oracle_report
            .violations
            .extend(check_quiescent_invariants(sys, oracle.objects()));
    }
    if !oracle_report.is_ok() {
        failures.push(format!("oracle: {oracle_report}"));
    }
    let metrics = outcome.metrics;
    if scenario.checks.expect_commits && metrics.commits == 0 {
        failures.push("expected commits, saw none".to_string());
    }
    let masked = metrics.abort_bind_failure == 0
        && metrics.abort_failure == 0
        && metrics.abort_commit_failure == 0;
    if scenario.checks.expect_crash_masked && !masked {
        failures.push(format!(
            "expected masked crashes, saw {} failure-caused bind, {} invoke, and \
             {} commit aborts",
            metrics.abort_bind_failure, metrics.abort_failure, metrics.abort_commit_failure
        ));
    }
    let crashes = metrics.net.crashes;
    ScenarioReport {
        name: scenario.name,
        seed,
        metrics,
        crashes,
        masked,
        oracle: oracle_report,
        failures,
        obs,
    }
}

/// Runs every scenario under every seed.
pub fn run_matrix(scenarios: &[Scenario], seeds: &[u64]) -> Vec<ScenarioReport> {
    let mut reports = Vec::with_capacity(scenarios.len() * seeds.len());
    for scenario in scenarios {
        for &seed in seeds {
            reports.push(run_scenario(scenario, seed));
        }
    }
    reports
}

/// Brings a post-run world to the paper's quiescent state: zero loss, no
/// partitions, every node recovered (joint fixpoint over the §4 protocols),
/// and leaked use-list entries swept. Every client has terminated once the
/// workload ends, so the sweep's liveness predicate is uniformly false —
/// exactly the cleanup the paper's daemon performs for exited clients
/// (including live clients whose contended decrements were "left to the
/// cleanup daemon" under the nested-top-level scheme).
fn quiesce(sys: &System) {
    let sim = sys.sim();
    sim.set_drop_probability(0.0);
    sim.heal_all();
    for node in sim.nodes() {
        // Disarm scripted fault points that never fired (a pending
        // `CrashAfterSends` budget or store-commit trap must not crash a
        // node mid-quiesce).
        sys.stores().disarm_crash_after_prepare(node);
        if !sim.is_up(node) {
            sys.recovery().recover_node(node);
        } else {
            sim.recover(node);
        }
    }
    // One node's refresh may need another node up first: iterate to a
    // fixpoint (bounded; the oracle flags anything left unrestored).
    for _ in 0..50 {
        let mut all_done = true;
        for node in sim.nodes() {
            if !sim.is_up(node) {
                continue;
            }
            let mut report = sys.recovery().recover_store(node);
            report.merge(sys.recovery().recover_server(node));
            if !report.fully_recovered() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
    }
    // Sweeps can defer on residual lock contention; retry a few times.
    for _ in 0..3 {
        let report = sys.cleanup().sweep(|_| false);
        if report.deferred.is_empty() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nemesis;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn scenario(name: &'static str, plan: PlanGenerator) -> Scenario {
        Scenario {
            name,
            policy: ReplicationPolicy::Active,
            scheme: BindingScheme::Standard,
            nodes: 7,
            server_nodes: vec![n(1), n(2), n(3)],
            objects: vec![ModelKind::COUNTER; 2],
            workload: WorkloadSpec::new(vec![], vec![n(4), n(5), n(6)])
                .clients(3)
                .actions_per_client(4)
                .ops_per_action(2),
            plan,
            checks: Checks::default(),
        }
    }

    #[test]
    fn fault_free_scenario_passes_with_full_history() {
        let sc = scenario("fault_free", Box::new(|_| FaultPlan::new()));
        let report = run_scenario(&sc, 9);
        assert!(report.passed(), "{report}");
        assert_eq!(report.metrics.attempts, 12);
        assert_eq!(report.oracle.committed_actions, report.metrics.commits);
        assert!(report.oracle.replayed_ops > 0);
        assert!(report.to_string().contains("PASS"));
    }

    #[test]
    fn masked_crash_scenario_verifies() {
        let mut sc = scenario(
            "masked_crash",
            Box::new(|_| {
                FaultPlan::new()
                    .at(SimDuration::from_millis(3), PlanAction::CrashNode(n(2)))
                    .at(SimDuration::from_millis(40), PlanAction::RecoverNode(n(2)))
            }),
        );
        sc.checks.expect_crash_masked = true;
        let report = run_scenario(&sc, 13);
        assert!(report.passed(), "{report}");
        assert!(report.crashes >= 1, "the plan crash fired");
    }

    #[test]
    fn malformed_plan_reports_instead_of_executing() {
        // RecoverNode without a crash (and an out-of-range probability that
        // would panic the simulator if it ever executed).
        let sc = scenario(
            "malformed",
            Box::new(|_| {
                FaultPlan::new()
                    .at(SimDuration::from_millis(1), PlanAction::RecoverNode(n(2)))
                    .at(
                        SimDuration::from_millis(2),
                        PlanAction::SetDropProbability(1.5),
                    )
            }),
        );
        let report = run_scenario(&sc, 5);
        assert!(!report.passed());
        assert!(report.failures[0].contains("malformed plan"), "{report}");
        assert_eq!(report.metrics.attempts, 0, "the plan must not execute");
    }

    #[test]
    fn replay_check_can_be_disabled() {
        let mut sc = scenario("no_replay", Box::new(|_| FaultPlan::new()));
        sc.checks.replay = false;
        let report = run_scenario(&sc, 9);
        assert!(report.passed(), "{report}");
        assert_eq!(report.oracle.replayed_ops, 0, "replay skipped");
    }

    #[test]
    fn same_seed_same_report() {
        let sc = scenario(
            "determinism",
            Box::new(|seed| {
                crate::nemesis::rolling_crashes(
                    seed,
                    &[n(1), n(2), n(3)],
                    SimDuration::from_millis(2),
                    SimDuration::from_millis(25),
                    SimDuration::from_millis(10),
                    2,
                )
            }),
        );
        let a = run_scenario(&sc, 42);
        let b = run_scenario(&sc, 42);
        assert_eq!(a.metrics.commits, b.metrics.commits);
        assert_eq!(a.metrics.aborts, b.metrics.aborts);
        assert_eq!(a.metrics.net.delivered, b.metrics.net.delivered);
        assert_eq!(a.oracle.replayed_ops, b.oracle.replayed_ops);
    }

    #[test]
    fn matrix_runs_every_cell() {
        let scs = vec![
            scenario("a", Box::new(|_| FaultPlan::new())),
            scenario("b", Box::new(|_| FaultPlan::new())),
        ];
        let reports = run_matrix(&scs, &[1, 2, 3]);
        assert_eq!(reports.len(), 6);
        assert!(reports.iter().all(|r| r.passed()));
    }

    #[test]
    fn kv_and_account_workloads_verify_fault_free() {
        let mut sc = scenario("typed/fault_free", Box::new(|_| FaultPlan::new()));
        sc.objects = vec![ModelKind::KvMap, ModelKind::Account { initial: 10 }];
        let report = run_scenario(&sc, 7);
        assert!(report.passed(), "{report}");
        assert!(report.oracle.replayed_ops > 0);
    }

    #[test]
    fn kv_and_account_workloads_verify_under_crashes() {
        let mut sc = scenario(
            "typed/rolling",
            Box::new(|seed| {
                nemesis::rolling_crashes(
                    seed,
                    &[n(2), n(3)],
                    SimDuration::from_millis(2),
                    SimDuration::from_millis(25),
                    SimDuration::from_millis(10),
                    2,
                )
            }),
        );
        sc.objects = vec![
            ModelKind::KvMap,
            ModelKind::Account { initial: 5 },
            ModelKind::COUNTER,
        ];
        for seed in [1, 2, 3] {
            let report = run_scenario(&sc, seed);
            assert!(report.passed(), "{report}");
        }
    }

    /// Transfer mode drives balanced two-account transactions through the
    /// typed `Tx` surface; the conservation oracle holds fault-free and the
    /// multi-object commit counter moves.
    #[test]
    fn transfer_workload_conserves_across_accounts() {
        let mut sc = scenario("transfer/fault_free", Box::new(|_| FaultPlan::new()));
        sc.objects = vec![ModelKind::Account { initial: 50 }; 3];
        sc.workload = sc.workload.clone().transfers();
        sc.checks.conservation = true;
        let report = run_scenario(&sc, 11);
        assert!(report.passed(), "{report}");
        assert!(
            report.metrics.tx.multi_committed > 0,
            "transfers commit multi-object transactions: {report}"
        );
        assert!(report.to_string().contains("tx multi"));
    }

    #[test]
    fn crash_after_sends_plan_action_fires_mid_exchange() {
        // Arm the scripted Figure-1 fault point on a server early in the
        // run: the node must actually crash (after its k-th send attempt),
        // recover later, and the run must still verify.
        let mut sc = scenario(
            "figure1/window",
            Box::new(|_| {
                FaultPlan::new()
                    .at(
                        SimDuration::from_millis(2),
                        PlanAction::CrashAfterSends(n(2), 3),
                    )
                    .at(SimDuration::from_millis(40), PlanAction::RecoverNode(n(2)))
            }),
        );
        sc.checks.expect_commits = true;
        let report = run_scenario(&sc, 13);
        assert!(report.passed(), "{report}");
        assert!(
            report.crashes >= 1,
            "the armed send-window crash fired: {report}"
        );
    }
}
