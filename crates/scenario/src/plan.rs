//! Time-driven fault plans.
//!
//! A [`FaultPlan`] is a deterministic schedule of [`PlanAction`]s keyed by
//! **simulation time** (as an offset from the start of the run, so plans
//! compose with any amount of setup cost) — unlike the step-keyed
//! [`FaultScript`](groupview_workload::FaultScript) it supersedes, a plan
//! can fire *inside* an action's message exchanges, not just between driver
//! steps. The runner installs every timed entry as a
//! [`groupview_sim::ScheduledEvent`] in the world's event queue before the
//! workload starts.
//!
//! Legacy step-keyed scripts convert losslessly via `From<FaultScript>`:
//! their entries become [`Trigger::Step`] events, which the runner applies
//! at exactly the same point of the drive loop the old driver did, so the
//! conversion preserves run-for-run behaviour (asserted by the
//! `script_conversion_parity` test).

use groupview_sim::{NodeId, SimDuration};
use groupview_workload::{FaultAction, FaultScript};
use std::collections::HashSet;
use std::fmt;

/// One fault-injection primitive a plan can schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanAction {
    /// Crash a node (fail-silent).
    CrashNode(NodeId),
    /// Arm the paper's Figure 1 fault point: the node crashes immediately
    /// after completing its next `k` send *attempts* (delivered, dropped,
    /// partitioned, or to a dead receiver — see
    /// [`groupview_sim::Sim::crash_after_sends`]). Unlike [`CrashNode`],
    /// the crash lands *inside* whatever message exchange the node is in
    /// the middle of — mid-multicast, mid-reply — which is exactly the
    /// window where replicas can diverge. A later [`RecoverNode`] recovers
    /// the node if the budget fired, and disarms the fault point if it
    /// never did.
    ///
    /// [`CrashNode`]: PlanAction::CrashNode
    /// [`RecoverNode`]: PlanAction::RecoverNode
    CrashAfterSends(NodeId, u32),
    /// Recover a node and run the full §4 recovery protocol.
    RecoverNode(NodeId),
    /// Crash a client (by machine index): its in-flight action is abandoned
    /// and — under the updating schemes — its use-list entries leak until a
    /// cleanup sweep.
    CrashClient(usize),
    /// Run one cleanup-daemon sweep (crashed clients count as dead).
    CleanupSweep,
    /// Block all traffic between two nodes (symmetric).
    PartitionLink(NodeId, NodeId),
    /// Restore traffic between two nodes.
    HealLink(NodeId, NodeId),
    /// Split the world: block every cross-side pair.
    PartitionGroups(Vec<NodeId>, Vec<NodeId>),
    /// Remove every partition.
    HealAll,
    /// Set the network's per-message loss probability (ramped up and back
    /// down by the `lossy_window` nemesis).
    SetDropProbability(f64),
    /// Arm the §4 two-phase-commit window on a **store** node: its next
    /// successful prepare crashes it immediately after the prepare
    /// acknowledgement is sent — between prepare and commit — so the
    /// coordinator's decision stands while the store is left with an
    /// in-doubt transaction that only the recovery protocol can resolve.
    /// A later [`RecoverNode`] recovers the node if the trap fired, and
    /// disarms it if no prepare ever reached the store.
    ///
    /// [`RecoverNode`]: PlanAction::RecoverNode
    CrashStoreInCommit(NodeId),
    /// Grow the world: add a brand-new node with an empty object store,
    /// immediately eligible as a migration target. Node ids are
    /// sequential, so a deterministic plan can name the node in advance
    /// (the first `AddNode` of a 7-node scenario creates node 7).
    AddNode,
    /// Drain a node: it stops accepting new replicas, its existing
    /// replicas migrate to the least-loaded eligible nodes, and it is
    /// decommissioned once empty. Replicas busy with in-flight client
    /// actions are retried at the end of the run.
    DrainNode(NodeId),
    /// Run the stats-driven rebalancer once: plan a bounded batch of
    /// migrations over the current load spread and execute it.
    Rebalance,
}

impl fmt::Display for PlanAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanAction::CrashNode(n) => write!(f, "crash {n}"),
            PlanAction::CrashAfterSends(n, k) => {
                write!(f, "crash {n} after {k} send attempts")
            }
            PlanAction::RecoverNode(n) => write!(f, "recover {n}"),
            PlanAction::CrashClient(i) => write!(f, "crash client {i}"),
            PlanAction::CleanupSweep => write!(f, "cleanup sweep"),
            PlanAction::PartitionLink(a, b) => write!(f, "partition {a} -/- {b}"),
            PlanAction::HealLink(a, b) => write!(f, "heal {a} --- {b}"),
            PlanAction::PartitionGroups(a, b) => {
                write!(f, "partition {} nodes -/- {} nodes", a.len(), b.len())
            }
            PlanAction::HealAll => write!(f, "heal all"),
            PlanAction::SetDropProbability(p) => write!(f, "set drop probability {p}"),
            PlanAction::CrashStoreInCommit(n) => {
                write!(f, "crash store {n} between prepare and commit")
            }
            PlanAction::AddNode => write!(f, "add a fresh node"),
            PlanAction::DrainNode(n) => write!(f, "drain {n} and migrate its replicas"),
            PlanAction::Rebalance => write!(f, "rebalance replica placement"),
        }
    }
}

/// When a plan entry fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// At a virtual-time offset from the start of the run (scheduled into
    /// the simulator's event queue when the run begins).
    At(SimDuration),
    /// At the start of a driver step (legacy `FaultScript` semantics; only
    /// produced by the `From<FaultScript>` shim).
    Step(u64),
}

/// One scheduled entry of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEvent {
    /// When the action fires.
    pub trigger: Trigger,
    /// What happens.
    pub action: PlanAction,
}

/// A deterministic, time-keyed schedule of fault injections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<PlanEvent>,
}

/// A well-formedness violation found by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A node is recovered without a preceding crash (or crashed twice
    /// without an intervening recover).
    UnbalancedNodeFault {
        /// Index of the offending event.
        index: usize,
    },
    /// A link is healed without a preceding partition.
    HealWithoutPartition {
        /// Index of the offending event.
        index: usize,
    },
    /// A drop probability outside `[0, 1]`.
    BadProbability {
        /// Index of the offending event.
        index: usize,
    },
    /// A `CrashAfterSends` with a zero send budget (the simulator treats
    /// `k = 0` like `k = 1`; a plan must say what it means).
    BadSendBudget {
        /// Index of the offending event.
        index: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnbalancedNodeFault { index } => {
                write!(f, "event {index} crashes/recovers a node out of order")
            }
            PlanError::HealWithoutPartition { index } => {
                write!(f, "event {index} heals a link that was never partitioned")
            }
            PlanError::BadProbability { index } => {
                write!(f, "event {index} sets a drop probability outside [0,1]")
            }
            PlanError::BadSendBudget { index } => {
                write!(
                    f,
                    "event {index} arms a crash-after-sends with a zero budget"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an action at a virtual-time offset from the start of the run.
    #[must_use]
    pub fn at(mut self, offset: SimDuration, action: PlanAction) -> Self {
        self.events.push(PlanEvent {
            trigger: Trigger::At(offset),
            action,
        });
        self
    }

    /// Adds an action `micros` microseconds after the start of the run.
    #[must_use]
    pub fn at_micros(self, micros: u64, action: PlanAction) -> Self {
        self.at(SimDuration::from_micros(micros), action)
    }

    /// Adds an action at the start of a driver step (legacy `FaultScript`
    /// semantics; steps start at 1).
    #[must_use]
    pub fn at_step(mut self, step: u64, action: PlanAction) -> Self {
        self.events.push(PlanEvent {
            trigger: Trigger::Step(step),
            action,
        });
        self
    }

    /// Appends all of `other`'s events (compose nemeses).
    #[must_use]
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self
    }

    /// All events, in insertion order.
    pub fn events(&self) -> &[PlanEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `(index, offset)` of every timed event — what the runner schedules
    /// into the simulator as `ScheduledEvent::Custom(index)`.
    pub fn timed_events(&self) -> impl Iterator<Item = (usize, SimDuration)> + '_ {
        self.events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e.trigger {
                Trigger::At(t) => Some((i, t)),
                Trigger::Step(_) => None,
            })
    }

    /// Actions due at the start of driver step `step`, in insertion order
    /// (legacy script semantics).
    pub fn due_at_step(&self, step: u64) -> impl Iterator<Item = &PlanAction> + '_ {
        self.events.iter().filter_map(move |e| match e.trigger {
            Trigger::Step(s) if s == step => Some(&e.action),
            _ => None,
        })
    }

    /// Whether the timed events appear in non-decreasing offset order (a
    /// property every single nemesis guarantees; a [`FaultPlan::merge`] of
    /// two nemeses usually does not, which is fine — scheduling is
    /// independent of vector order).
    pub fn is_time_sorted(&self) -> bool {
        self.timed_events()
            .map(|(_, t)| t)
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0] <= w[1])
    }

    /// Checks the plan's well-formedness **in firing order**: node
    /// crash/recover balanced, links healed only after being partitioned,
    /// probabilities in range. Timed events are evaluated sorted by offset
    /// (stable, so equal offsets keep insertion order — `merge`d nemeses
    /// validate like the schedule that actually runs) and step-keyed events
    /// sorted by step; the two streams interleave at runtime in a way that
    /// cannot be known statically, so each is checked on its own.
    ///
    /// # Errors
    ///
    /// The first [`PlanError`] found (indices refer to [`FaultPlan::events`]
    /// order).
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut timed: Vec<(SimDuration, usize)> = Vec::new();
        let mut stepped: Vec<(u64, usize)> = Vec::new();
        for (index, ev) in self.events.iter().enumerate() {
            match ev.trigger {
                Trigger::At(t) => timed.push((t, index)),
                Trigger::Step(st) => stepped.push((st, index)),
            }
        }
        timed.sort_by_key(|&(t, _)| t);
        stepped.sort_by_key(|&(st, _)| st);
        self.validate_stream(timed.iter().map(|&(_, i)| i))?;
        self.validate_stream(stepped.iter().map(|&(_, i)| i))
    }

    fn validate_stream(&self, indices: impl Iterator<Item = usize>) -> Result<(), PlanError> {
        let mut down: HashSet<NodeId> = HashSet::new();
        // Nodes with an armed crash-after-sends budget: whether and when
        // the crash fires depends on the run, so such a node may validly be
        // crashed again (the budget never fired) or recovered (it did — or
        // the recover just disarms it).
        let mut armed: HashSet<NodeId> = HashSet::new();
        let mut blocked: HashSet<(NodeId, NodeId)> = HashSet::new();
        for index in indices {
            match &self.events[index].action {
                PlanAction::CrashNode(n) => {
                    armed.remove(n);
                    if !down.insert(*n) {
                        return Err(PlanError::UnbalancedNodeFault { index });
                    }
                }
                PlanAction::CrashAfterSends(n, k) => {
                    if *k == 0 {
                        return Err(PlanError::BadSendBudget { index });
                    }
                    // Arming a node that is statically known to be down is
                    // a plan bug: the budget cannot tick while it is down,
                    // and its eventual recover would just disarm it.
                    if down.contains(n) {
                        return Err(PlanError::UnbalancedNodeFault { index });
                    }
                    armed.insert(*n);
                }
                PlanAction::CrashStoreInCommit(n) => {
                    // Same arming discipline as CrashAfterSends: whether and
                    // when the trap fires depends on the run, so the node is
                    // "armed" until a recover balances it.
                    if down.contains(n) {
                        return Err(PlanError::UnbalancedNodeFault { index });
                    }
                    armed.insert(*n);
                }
                PlanAction::RecoverNode(n) => {
                    if !down.remove(n) && !armed.remove(n) {
                        return Err(PlanError::UnbalancedNodeFault { index });
                    }
                }
                PlanAction::PartitionLink(a, b) => {
                    blocked.insert(norm(*a, *b));
                }
                PlanAction::HealLink(a, b) => {
                    if !blocked.remove(&norm(*a, *b)) {
                        return Err(PlanError::HealWithoutPartition { index });
                    }
                }
                PlanAction::PartitionGroups(side_a, side_b) => {
                    for &a in side_a {
                        for &b in side_b {
                            blocked.insert(norm(a, b));
                        }
                    }
                }
                PlanAction::HealAll => blocked.clear(),
                PlanAction::SetDropProbability(p) => {
                    if !(0.0..=1.0).contains(p) {
                        return Err(PlanError::BadProbability { index });
                    }
                }
                // Membership actions have no static balance constraints: a
                // drained node may later be crashed/recovered like any
                // other, and AddNode/Rebalance are always applicable.
                PlanAction::CrashClient(_)
                | PlanAction::CleanupSweep
                | PlanAction::AddNode
                | PlanAction::DrainNode(_)
                | PlanAction::Rebalance => {}
            }
        }
        Ok(())
    }
}

fn norm(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl From<FaultAction> for PlanAction {
    fn from(a: FaultAction) -> Self {
        match a {
            FaultAction::CrashNode(n) => PlanAction::CrashNode(n),
            FaultAction::RecoverNode(n) => PlanAction::RecoverNode(n),
            FaultAction::CrashClient(i) => PlanAction::CrashClient(i),
            FaultAction::CleanupSweep => PlanAction::CleanupSweep,
        }
    }
}

impl From<FaultScript> for FaultPlan {
    /// Lossless shim for legacy step-keyed scripts: every entry becomes a
    /// [`Trigger::Step`] event applied at the same point of the drive loop
    /// the old driver used, so converted scripts behave identically.
    fn from(script: FaultScript) -> Self {
        let mut plan = FaultPlan::new();
        for (step, action) in script.events() {
            plan = plan.at_step(*step, action.clone().into());
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn builders_and_accessors() {
        let plan = FaultPlan::new()
            .at_micros(100, PlanAction::CrashNode(n(1)))
            .at_micros(300, PlanAction::RecoverNode(n(1)))
            .at_step(4, PlanAction::CleanupSweep);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.timed_events().count(), 2);
        assert_eq!(plan.due_at_step(4).count(), 1);
        assert_eq!(plan.due_at_step(5).count(), 0);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn merge_concatenates() {
        let a = FaultPlan::new().at_micros(10, PlanAction::HealAll);
        let b = FaultPlan::new().at_micros(20, PlanAction::CleanupSweep);
        assert_eq!(a.merge(b).len(), 2);
    }

    #[test]
    fn validate_checks_firing_order_not_insertion_order() {
        // Inserted out of time order: at runtime the recover (100µs) would
        // fire before the crash (200µs) — firing-order validation rejects
        // it at the event that actually fires out of balance.
        let plan = FaultPlan::new()
            .at_micros(200, PlanAction::CrashNode(n(1)))
            .at_micros(100, PlanAction::RecoverNode(n(1)));
        assert_eq!(
            plan.validate(),
            Err(PlanError::UnbalancedNodeFault { index: 1 })
        );
        assert!(!plan.is_time_sorted());
    }

    #[test]
    fn merged_nemeses_with_overlapping_windows_validate() {
        // Each half is internally sorted; the concatenation is not — but
        // the merged schedule is perfectly executable and must validate.
        let crashes = FaultPlan::new()
            .at_micros(2_000, PlanAction::CrashNode(n(1)))
            .at_micros(9_000, PlanAction::RecoverNode(n(1)));
        let loss = FaultPlan::new()
            .at_micros(1_000, PlanAction::SetDropProbability(0.2))
            .at_micros(8_000, PlanAction::SetDropProbability(0.0));
        let merged = crashes.merge(loss);
        assert!(!merged.is_time_sorted());
        assert!(merged.validate().is_ok());
    }

    #[test]
    fn validate_rejects_recover_without_crash() {
        let plan = FaultPlan::new().at_micros(100, PlanAction::RecoverNode(n(1)));
        assert_eq!(
            plan.validate(),
            Err(PlanError::UnbalancedNodeFault { index: 0 })
        );
    }

    #[test]
    fn validate_rejects_double_crash() {
        let plan = FaultPlan::new()
            .at_micros(100, PlanAction::CrashNode(n(1)))
            .at_micros(200, PlanAction::CrashNode(n(1)));
        assert_eq!(
            plan.validate(),
            Err(PlanError::UnbalancedNodeFault { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_heal_without_partition() {
        let plan = FaultPlan::new().at_micros(100, PlanAction::HealLink(n(1), n(2)));
        assert_eq!(
            plan.validate(),
            Err(PlanError::HealWithoutPartition { index: 0 })
        );
    }

    #[test]
    fn validate_accepts_group_partition_then_link_heal() {
        let plan = FaultPlan::new()
            .at_micros(
                100,
                PlanAction::PartitionGroups(vec![n(1)], vec![n(2), n(3)]),
            )
            .at_micros(200, PlanAction::HealLink(n(2), n(1)))
            .at_micros(300, PlanAction::HealAll);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let plan = FaultPlan::new().at_micros(10, PlanAction::SetDropProbability(1.5));
        assert_eq!(plan.validate(), Err(PlanError::BadProbability { index: 0 }));
    }

    #[test]
    fn script_conversion_is_lossless() {
        let script = FaultScript::new()
            .at(3, FaultAction::CrashNode(n(1)))
            .at(3, FaultAction::CrashClient(0))
            .at(7, FaultAction::RecoverNode(n(1)))
            .at(9, FaultAction::CleanupSweep);
        let plan = FaultPlan::from(script.clone());
        assert_eq!(plan.len(), script.len());
        assert_eq!(plan.timed_events().count(), 0, "all entries step-keyed");
        let due: Vec<_> = plan.due_at_step(3).cloned().collect();
        assert_eq!(
            due,
            vec![PlanAction::CrashNode(n(1)), PlanAction::CrashClient(0)]
        );
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn crash_after_sends_validates_like_a_deferred_crash() {
        // Arm → recover is balanced whether or not the budget fired.
        let plan = FaultPlan::new()
            .at_micros(100, PlanAction::CrashAfterSends(n(1), 2))
            .at_micros(500, PlanAction::RecoverNode(n(1)));
        assert!(plan.validate().is_ok());
        // Arm → explicit crash is also fine (the budget never fired).
        let plan = FaultPlan::new()
            .at_micros(100, PlanAction::CrashAfterSends(n(1), 2))
            .at_micros(500, PlanAction::CrashNode(n(1)))
            .at_micros(900, PlanAction::RecoverNode(n(1)));
        assert!(plan.validate().is_ok());
        // Re-arming overwrites; still balanced by one recover.
        let plan = FaultPlan::new()
            .at_micros(100, PlanAction::CrashAfterSends(n(1), 2))
            .at_micros(200, PlanAction::CrashAfterSends(n(1), 5))
            .at_micros(500, PlanAction::RecoverNode(n(1)));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn crash_store_in_commit_validates_like_an_armed_crash() {
        let plan = FaultPlan::new()
            .at_micros(100, PlanAction::CrashStoreInCommit(n(1)))
            .at_micros(500, PlanAction::RecoverNode(n(1)));
        assert!(plan.validate().is_ok());
        // Arming a statically-down store is a plan bug.
        let plan = FaultPlan::new()
            .at_micros(100, PlanAction::CrashNode(n(1)))
            .at_micros(200, PlanAction::CrashStoreInCommit(n(1)));
        assert_eq!(
            plan.validate(),
            Err(PlanError::UnbalancedNodeFault { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_zero_send_budget() {
        let plan = FaultPlan::new().at_micros(100, PlanAction::CrashAfterSends(n(1), 0));
        assert_eq!(plan.validate(), Err(PlanError::BadSendBudget { index: 0 }));
    }

    #[test]
    fn validate_rejects_arming_a_down_node() {
        let plan = FaultPlan::new()
            .at_micros(100, PlanAction::CrashNode(n(1)))
            .at_micros(200, PlanAction::CrashAfterSends(n(1), 1));
        assert_eq!(
            plan.validate(),
            Err(PlanError::UnbalancedNodeFault { index: 1 })
        );
    }

    #[test]
    fn displays_are_informative() {
        for (action, needle) in [
            (PlanAction::CrashNode(n(1)), "crash"),
            (PlanAction::CrashAfterSends(n(1), 2), "send attempts"),
            (PlanAction::RecoverNode(n(1)), "recover"),
            (PlanAction::CrashClient(2), "client"),
            (PlanAction::CleanupSweep, "sweep"),
            (PlanAction::PartitionLink(n(1), n(2)), "partition"),
            (PlanAction::HealLink(n(1), n(2)), "heal"),
            (
                PlanAction::PartitionGroups(vec![n(1)], vec![n(2)]),
                "partition",
            ),
            (PlanAction::HealAll, "heal"),
            (PlanAction::SetDropProbability(0.5), "drop"),
            (
                PlanAction::CrashStoreInCommit(n(2)),
                "between prepare and commit",
            ),
            (PlanAction::AddNode, "add"),
            (PlanAction::DrainNode(n(2)), "drain"),
            (PlanAction::Rebalance, "rebalance"),
        ] {
            assert!(action.to_string().contains(needle), "{action}");
        }
        let err = FaultPlan::new()
            .at(
                SimDuration::from_micros(5),
                PlanAction::HealLink(n(1), n(2)),
            )
            .validate()
            .unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
