//! The canned-scenario matrix: every scenario × every seed, oracle-checked.
//!
//! CI runs this with `--nocapture` so each `ScenarioReport` (commit/abort
//! taxonomy, crash masking, oracle verdicts) lands in the log.

use groupview_scenario::{canned_scenarios, run_matrix};

const SEEDS: [u64; 3] = [1, 2, 3];

#[test]
fn canned_matrix_passes_across_seeds() {
    let scenarios = canned_scenarios();
    assert!(scenarios.len() >= 8);
    let reports = run_matrix(&scenarios, &SEEDS);
    assert_eq!(reports.len(), scenarios.len() * SEEDS.len());
    let mut failed = 0;
    for report in &reports {
        println!("{report}");
        if !report.passed() {
            failed += 1;
        }
    }
    assert_eq!(
        failed, 0,
        "{failed} scenario cells failed (see reports above)"
    );
    // The matrix actually exercised faults and the oracle actually replayed
    // histories — guard against a vacuous pass.
    assert!(
        reports.iter().any(|r| r.crashes > 0),
        "no scenario injected a crash"
    );
    assert!(
        reports.iter().map(|r| r.oracle.replayed_ops).sum::<u64>() > 0,
        "the oracle replayed nothing"
    );
    // Anti-vacuity for the harness itself, not a quality floor: across 78
    // deterministic cells some fault must have intersected in-flight work
    // (the single-copy crash scenarios guarantee it — an unreplicated
    // server crash cannot be masked). If the vendored RNG ever changes,
    // re-tune nemesis windows like any seed-sensitive test (see ROADMAP).
    assert!(
        reports.iter().any(|r| r.metrics.abort_failure > 0),
        "no scenario produced a failure-caused abort — faults too tame"
    );
    // The elastic cells really migrated replicas (a drain of server 2 has
    // replicas to move in every policy), and no cell left a migration
    // permanently stranded.
    assert!(
        reports
            .iter()
            .filter(|r| r.name.ends_with("elastic_ramp"))
            .all(|r| r.metrics.migrations > 0),
        "an elastic cell moved nothing"
    );
}
