//! Crash-during-migration, pinned deterministically (the elastic twin of
//! `store_crash.rs`): a migration's 2PC write-back is interrupted by the
//! §4 store-commit trap on the **target** node, and the abort taxonomy is
//! asserted causally per replication policy — the coordinator heard the
//! prepare ack, so the decision stands, the migration must NOT abort, and
//! target-node recovery resolves the in-doubt replica from the decision
//! record. Plus the end-to-end reborn-node case: a node that crashed,
//! was drained and decommissioned while down, and later recovers must
//! purge its migrated-away replicas (never resurrect them) and can then
//! rejoin and take replicas back.

use groupview_membership::{Membership, MigrateError, Rebalancer};
use groupview_replication::{Counter, CounterOp, ReplicationPolicy, System};
use groupview_scenario::{
    check_counter_states, check_quiescent_invariants, ModelKind, ObjectModel,
};
use groupview_sim::NodeId;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn target_store_crash_in_migration_commit_resolves_by_decision_record() {
    for policy in ReplicationPolicy::ALL {
        let sys = System::builder(7).nodes(7).policy(policy).build();
        let trio = [n(1), n(2), n(3)];
        let uid = sys
            .create_typed(Counter::new(0), &trio, &trio)
            .expect("create");

        // Commit real history first so the migrated state is non-trivial.
        let client = sys.client(n(4));
        let counter = uid.open(&client);
        let action = client.begin_action();
        counter.activate(action, 2).expect("activate");
        assert_eq!(
            counter.invoke(action, CounterOp::Add(5)).expect("invoke"),
            5
        );
        client.commit(action).expect("commit");
        assert!(sys.try_passivate(uid.uid()), "{policy}: quiescent");

        let membership = Membership::new(&sys);
        let fresh = membership.add_node();

        // Arm the §4 trap on the migration target: it dies the instant it
        // acknowledges the prepare for the migrated replica's write-back.
        sys.stores().arm_crash_after_prepare(fresh);
        membership
            .migrate(uid.uid(), n(1), fresh)
            .unwrap_or_else(|e| {
                panic!(
                    "{policy}: the coordinator heard the prepare ack, so the \
                 decision stands; the migration must not abort: {e}"
                )
            });
        assert!(
            !sys.sim().is_up(fresh),
            "{policy}: the armed target crashed in the commit window"
        );

        // The directory already points at the new node (the Tx committed),
        // but the replica exists only in the crashed store's intent log.
        // Recovery must resolve it from the decision record.
        sys.recovery().recover_node(fresh);
        let state = sys
            .stores()
            .read_local(fresh, uid.uid())
            .unwrap_or_else(|e| panic!("{policy}: in-doubt replica unresolved: {e}"));
        assert_eq!(
            Counter::decode(&state.data).value(),
            5,
            "{policy}: migrated replica does not hold the committed state"
        );
        assert!(
            sys.stores().read_local(n(1), uid.uid()).is_err(),
            "{policy}: the source replica must be gone"
        );

        // Quiescent invariants at full strength: the migrated St set
        // {2, 3, fresh} is byte-identical at the committed value.
        let objects = [ObjectModel {
            uid: uid.uid(),
            kind: ModelKind::COUNTER,
            full_strength: 3,
        }];
        let violations = check_quiescent_invariants(&sys, &objects);
        assert!(violations.is_empty(), "{policy}: {violations:?}");
        let violations = check_counter_states(&sys, &[(uid.uid(), 5)]);
        assert!(violations.is_empty(), "{policy}: {violations:?}");

        // And the object still serves from its new placement.
        let reader = sys.client(n(5));
        let observer = uid.open(&reader);
        let action = reader.begin_action();
        observer.activate_read_only(action, 1).expect("activate");
        assert_eq!(
            observer.invoke(action, CounterOp::Get).expect("read"),
            5,
            "{policy}"
        );
        reader.commit(action).expect("commit");
    }
}

/// A migration writes **only** the target: a trap armed on the source node
/// never sees a prepare, never fires, and disarms cleanly.
#[test]
fn migration_never_prepares_on_the_source() {
    let sys = System::builder(9).nodes(7).build();
    let trio = [n(1), n(2), n(3)];
    let uid = sys
        .create_typed(Counter::new(3), &trio, &trio)
        .expect("create");
    let membership = Membership::new(&sys);
    let fresh = membership.add_node();
    sys.stores().arm_crash_after_prepare(n(1));
    membership.migrate(uid.uid(), n(1), fresh).expect("migrate");
    assert!(
        sys.sim().is_up(n(1)),
        "no prepare ever reaches the migration source"
    );
    sys.stores().disarm_crash_after_prepare(n(1));
}

/// A dead target is rejected up front — before any directory repoint — so
/// a failed precheck leaves no trace to roll back.
#[test]
fn migration_to_a_dead_target_is_refused_before_any_repoint() {
    let sys = System::builder(11).nodes(7).build();
    let trio = [n(1), n(2), n(3)];
    let uid = sys
        .create_typed(Counter::new(0), &trio, &trio)
        .expect("create");
    let membership = Membership::new(&sys);
    let fresh = membership.add_node();
    sys.sim().crash(fresh);
    match membership.migrate(uid.uid(), n(1), fresh) {
        Err(MigrateError::Unreachable(u)) => assert_eq!(u, uid.uid()),
        other => panic!("expected Unreachable, got {other:?}"),
    }
    // Nothing moved: the source still serves and stores the replica.
    assert!(sys.stores().read_local(n(1), uid.uid()).is_ok());
    let objects = [ObjectModel {
        uid: uid.uid(),
        kind: ModelKind::COUNTER,
        full_strength: 3,
    }];
    let violations = check_quiescent_invariants(&sys, &objects);
    assert!(violations.is_empty(), "{violations:?}");
}

/// The end-to-end reborn-node drill: n2 crashes mid-life, is drained and
/// decommissioned **while down** (its replicas migrate from the surviving
/// St members), and later recovers. The reborn store must purge its stale
/// migrated-away replicas — not resurrect them into `St` — and can then
/// rejoin the world and take replicas back through the rebalancer.
#[test]
fn reborn_node_purges_stale_replicas_then_rejoins() {
    let sys = System::builder(13).nodes(7).build();
    let trio = [n(1), n(2), n(3)];
    let a = sys
        .create_typed(Counter::new(0), &trio, &trio)
        .expect("create a");
    let b = sys
        .create_typed(Counter::new(0), &trio, &trio)
        .expect("create b");

    // Commit history touching both objects.
    let client = sys.client(n(4));
    for (uid, add) in [(&a, 7), (&b, 9)] {
        let counter = uid.open(&client);
        let action = client.begin_action();
        counter.activate(action, 2).expect("activate");
        counter.invoke(action, CounterOp::Add(add)).expect("invoke");
        client.commit(action).expect("commit");
        assert!(sys.try_passivate(uid.uid()));
    }

    // n2 dies holding replicas of both objects; the world grows a fresh
    // node and drains n2 while it is down — every migration reads its
    // state from the surviving St members.
    sys.sim().crash(n(2));
    let membership = Membership::new(&sys);
    membership.add_node();
    let report = membership.drain_node(n(2), 4);
    assert!(report.complete, "drain of a dead node completes: {report}");
    assert_eq!(report.moved.len(), 2, "both replicas migrated");

    // Reborn: n2 recovers. Its store still holds the pre-crash replica
    // bytes, but both replicas migrated away while it was down — recovery
    // must purge them (tombstones), never re-Include them.
    let recovery = sys.recovery().recover_node(n(2));
    let mut purged = recovery.purged.clone();
    purged.sort_unstable();
    let mut expected = vec![a.uid(), b.uid()];
    expected.sort_unstable();
    assert_eq!(purged, expected, "stale replicas purged, not resurrected");
    assert!(sys.stores().read_local(n(2), a.uid()).is_err());
    assert!(sys.stores().read_local(n(2), b.uid()).is_err());

    let objects = [
        ObjectModel {
            uid: a.uid(),
            kind: ModelKind::COUNTER,
            full_strength: 3,
        },
        ObjectModel {
            uid: b.uid(),
            kind: ModelKind::COUNTER,
            full_strength: 3,
        },
    ];
    let violations = check_quiescent_invariants(&sys, &objects);
    assert!(violations.is_empty(), "{violations:?}");
    let violations = check_counter_states(&sys, &[(a.uid(), 7), (b.uid(), 9)]);
    assert!(violations.is_empty(), "{violations:?}");

    // Rejoin: re-activated, the reborn node is a rebalance target again
    // and takes replicas back.
    membership.activate_node(n(2));
    let report = Rebalancer::default().rebalance(&membership);
    assert!(
        report.busy.is_empty() && report.failed.is_empty(),
        "{report}"
    );
    assert!(
        !membership.hosted(n(2)).is_empty(),
        "the reborn node hosts replicas again after rebalancing"
    );
    let violations = check_quiescent_invariants(&sys, &objects);
    assert!(violations.is_empty(), "{violations:?}");
    let violations = check_counter_states(&sys, &[(a.uid(), 7), (b.uid(), 9)]);
    assert!(violations.is_empty(), "{violations:?}");
}
