//! A short scenario-driven soak: chained nemesis plans across seeds, every
//! cell oracle-checked over a mixed counter/kv/account population.
//!
//! CI runs this with `--nocapture` so every per-cell `ScenarioReport` and
//! the aggregate oracle verdict summary land in the log.

use groupview_scenario::{run_soak, SoakConfig};

#[test]
fn soak_chains_nemeses_across_seeds_and_passes() {
    let report = run_soak(&SoakConfig {
        base_seed: 1,
        rounds: 3,
    });
    for cell in &report.reports {
        println!("{cell}");
    }
    println!("{}", report.summary());
    assert_eq!(report.reports.len(), 9, "3 rounds × 3 policies");
    assert!(
        report.passed(),
        "{} soak cells failed (see reports above)",
        report.failed_cells()
    );
    // Anti-vacuity: the chained plans actually injected faults and the
    // oracle actually replayed mixed-class histories.
    assert!(report.reports.iter().any(|r| r.crashes > 0));
    assert!(
        report
            .reports
            .iter()
            .map(|r| r.oracle.replayed_ops)
            .sum::<u64>()
            > 0
    );
}
