//! The retired `workload::Driver`'s test suite, ported verbatim onto the
//! unified scenario runner (`run_plan` + converted `FaultScript`s): the
//! behavioral contracts the old driver's unit tests pinned — abort
//! accounting, crash masking, leak-and-sweep, recovery to full strength,
//! determinism, the read path — now hold of the single engine.

use groupview_core::BindingScheme;
use groupview_replication::{Counter, ReplicationPolicy, System};
use groupview_scenario::{run_plan, FaultPlan};
use groupview_sim::NodeId;
use groupview_store::Uid;
use groupview_workload::{FaultAction, FaultScript, RunMetrics, WorkloadSpec};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn world(policy: ReplicationPolicy, scheme: BindingScheme, seed: u64) -> (System, Vec<Uid>) {
    let sys = System::builder(seed)
        .nodes(7)
        .policy(policy)
        .scheme(scheme)
        .build();
    let uids = (0..3)
        .map(|i| {
            sys.create_object(
                Box::new(Counter::new(i)),
                &[n(1), n(2), n(3)],
                &[n(1), n(2), n(3)],
            )
            .expect("create")
        })
        .collect();
    (sys, uids)
}

fn spec(objects: Vec<Uid>) -> WorkloadSpec {
    WorkloadSpec::new(objects, vec![n(4), n(5), n(6)])
        .clients(3)
        .actions_per_client(4)
        .ops_per_action(2)
}

fn run(sys: &System, spec: &WorkloadSpec, script: FaultScript) -> RunMetrics {
    run_plan(sys, spec, &FaultPlan::from(script)).metrics
}

#[test]
fn fault_free_run_accounts_for_every_action() {
    let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 9);
    let metrics = run(&sys, &spec(uids), FaultScript::new());
    assert_eq!(metrics.attempts, 12);
    assert_eq!(metrics.commits + metrics.aborts, 12);
    // No faults: the only possible aborts are object-lock contention
    // between interleaved writers (refusal-based locking). Causal
    // assertions only — no seed-dependent availability floor.
    assert_eq!(metrics.aborts, metrics.abort_invoke);
    assert_eq!(metrics.abort_failure, 0, "no crashes, no failure aborts");
    assert_eq!(metrics.abort_contention, metrics.abort_invoke);
    assert_eq!(
        metrics.abort_commit_failure, 0,
        "no crashes, no failure-caused commit aborts"
    );
    assert_eq!(metrics.action_latency_us.count(), 12);
    assert!(sys.tx().locks_empty(), "quiescent at end");
}

#[test]
fn single_client_run_commits_everything() {
    let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 9);
    let spec = WorkloadSpec::new(uids, vec![n(4)])
        .clients(1)
        .actions_per_client(6)
        .ops_per_action(2);
    let metrics = run(&sys, &spec, FaultScript::new());
    assert_eq!(metrics.commits, 6);
    assert_eq!(metrics.aborts, 0);
    assert_eq!(metrics.availability(), 1.0);
    assert!(metrics.to_string().contains("availability=100.0%"));
}

#[test]
fn active_policy_survives_server_crash() {
    // Asserts crash masking *directly* via the abort-cause breakdown,
    // so the test is robust to RNG-seed interleaving changes: whatever
    // contention the schedule produces, a masked crash must cause no
    // failure-attributed abort anywhere.
    let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 13);
    let script = FaultScript::new().at(5, FaultAction::CrashNode(n(2)));
    let metrics = run(&sys, &spec(uids), script);
    assert_eq!(metrics.attempts, 12);
    assert!(metrics.commits > 0, "{metrics}");
    assert_eq!(
        metrics.abort_failure, 0,
        "the crash must be masked — every invoke abort must be \
         ordinary lock contention: {metrics}"
    );
    assert_eq!(
        metrics.abort_commit_failure, 0,
        "write-back must survive every masked crash: {metrics}"
    );
}

#[test]
fn single_copy_crash_causes_aborts() {
    let (sys, uids) = world(
        ReplicationPolicy::SingleCopyPassive,
        BindingScheme::Standard,
        11,
    );
    let script = FaultScript::new().at(3, FaultAction::CrashNode(n(1)));
    let metrics = run(&sys, &spec(uids), script);
    assert!(metrics.aborts > 0, "in-flight singletons abort: {metrics}");
    assert!(
        metrics.abort_failure > 0,
        "unreplicated crashes must show up as failure-caused: {metrics}"
    );
    // New activations fail over to other Sv members, so later actions
    // commit again.
    assert!(metrics.commits > 0);
}

#[test]
fn client_crash_leaks_then_sweep_reclaims() {
    let (sys, uids) = world(
        ReplicationPolicy::Active,
        BindingScheme::IndependentTopLevel,
        12,
    );
    let script = FaultScript::new()
        .at(2, FaultAction::CrashClient(0))
        .at(8, FaultAction::CleanupSweep);
    let metrics = run(&sys, &spec(uids), script);
    assert!(metrics.leaked_bindings >= 1, "{metrics:?}");
    assert!(metrics.cleanup_reclaimed >= 1);
    for uid in sys.naming().server_db.uids() {
        assert!(
            sys.naming().server_db.entry(uid).unwrap().is_quiescent(),
            "all use lists reclaimed"
        );
    }
}

#[test]
fn recovery_action_restores_full_strength() {
    let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 13);
    let script = FaultScript::new()
        .at(2, FaultAction::CrashNode(n(3)))
        .at(10, FaultAction::RecoverNode(n(3)));
    let metrics = run(&sys, &spec(uids), script);
    assert!(metrics.commits > 0);
    // After recovery every object's St is back to full strength.
    for &uid in &sys.naming().state_db.uids() {
        assert_eq!(
            sys.naming().state_db.entry(uid).unwrap().len(),
            3,
            "St restored after recovery"
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let once = |seed| {
        let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, seed);
        let script = FaultScript::new().at(4, FaultAction::CrashNode(n(1)));
        let m = run(&sys, &spec(uids), script);
        (m.commits, m.aborts, m.net.delivered, m.steps)
    };
    assert_eq!(once(42), once(42));
}

#[test]
fn read_only_workload_uses_read_path() {
    let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 14);
    let spec = spec(uids).read_fraction(1.0);
    let metrics = run(&sys, &spec, FaultScript::new());
    assert_eq!(metrics.commits, 12);
    // Read-only actions never copy state: every store still holds v0.
    for uid in sys.naming().state_db.uids() {
        let st = sys.stores().read_local(n(1), uid).unwrap();
        assert_eq!(st.version, groupview_store::Version::INITIAL);
    }
}
