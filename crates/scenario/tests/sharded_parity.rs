//! Shard-count-1 parity: the sharded runner with one shard must reproduce
//! the single-world runner **bit for bit** — identical workload metrics
//! (the full abort taxonomy, network counters, latency histograms via the
//! metrics display) and identical oracle verdicts — on canned scenarios
//! across multiple seeds.
//!
//! This is the cornerstone of the sharding design: a shard world is not
//! an approximation of a solo world, it *is* one (same builder, same
//! deterministic uid sequence with zero skips, same engine via
//! `run_scenario_in`). See `docs/SHARDING.md`.

use groupview_scenario::{
    canned_scenarios, run_scenario, run_scenario_sharded, Scenario, ScenarioReport,
};
use std::sync::Arc;

const SEEDS: [u64; 3] = [7, 41, 1993];

fn canned(name: &str) -> Arc<Scenario> {
    Arc::new(
        canned_scenarios()
            .into_iter()
            .find(|sc| sc.name == name)
            .unwrap_or_else(|| panic!("no canned scenario named {name}")),
    )
}

/// Every observable of a report, rendered for exact comparison. The
/// metrics display covers the commit/abort taxonomy, binding counters,
/// latency/message histograms, tx stats, and network counters; the oracle
/// display covers replayed ops, violations, and final states.
fn fingerprint(report: &ScenarioReport) -> String {
    format!(
        "name={} seed={} metrics=[{}] crashes={} masked={} oracle=[{}] failures={:?}",
        report.name,
        report.seed,
        report.metrics,
        report.crashes,
        report.masked,
        report.oracle,
        report.failures,
    )
}

fn assert_parity(name: &str) {
    let scenario = canned(name);
    for seed in SEEDS {
        let solo = run_scenario(&scenario, seed);
        let sharded = run_scenario_sharded(Arc::clone(&scenario), seed, 1);
        assert_eq!(sharded.shards, 1);
        assert_eq!(
            sharded.per_shard.len(),
            1,
            "one shard holds every object: {sharded}"
        );
        assert_eq!(
            fingerprint(&solo),
            fingerprint(&sharded.per_shard[0]),
            "shard=1 diverged from the single world on {name} seed {seed}"
        );
        assert_eq!(solo.passed(), sharded.passed());
    }
}

#[test]
fn fault_free_scenario_is_bit_for_bit_at_one_shard() {
    assert_parity("active/fault_free");
}

#[test]
fn masked_server_crash_is_bit_for_bit_at_one_shard() {
    assert_parity("active/masked_server_crash");
}

#[test]
fn rolling_crashes_are_bit_for_bit_at_one_shard() {
    assert_parity("active/rolling_crashes");
}
