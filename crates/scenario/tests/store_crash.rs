//! The §4 two-phase-commit window, pinned deterministically: a store node
//! crashes *between* prepare and commit (right after sending its prepare
//! acknowledgement), the coordinator's decision stands, and the recovery
//! protocol resolves the in-doubt transaction from the decision record —
//! under every replication policy, with the abort taxonomy asserted
//! causally (the committing action itself must NOT abort).

use groupview_replication::{Counter, CounterOp, ReplicationPolicy, System};
use groupview_scenario::{
    check_counter_states, check_quiescent_invariants, ModelKind, ObjectModel,
};
use groupview_sim::NodeId;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn store_crash_between_prepare_and_commit_resolves_by_decision_record() {
    for policy in ReplicationPolicy::ALL {
        let sys = System::builder(7).nodes(6).policy(policy).build();
        let trio = [n(1), n(2), n(3)];
        let uid = sys
            .create_typed(Counter::new(0), &trio, &trio)
            .expect("create");
        let client = sys.client(n(4));
        let counter = uid.open(&client);

        let action = client.begin_action();
        counter.activate(action, 2).expect("activate");
        assert_eq!(
            counter.invoke(action, CounterOp::Add(5)).expect("invoke"),
            5,
            "{policy}"
        );
        // Arm the trap on a store the write-back will prepare: n2 dies the
        // instant it has acknowledged the prepare.
        sys.stores().arm_crash_after_prepare(n(2));
        client
            .commit(action)
            .unwrap_or_else(|e| panic!("{policy}: the coordinator heard every prepare ack, so the decision stands; commit must not abort: {e}"));
        assert!(
            !sys.sim().is_up(n(2)),
            "{policy}: the armed store crashed in the commit window"
        );

        // n2 is still listed in St (its prepare succeeded — nothing was
        // excluded), but it is down with the new state only in its intent
        // log. Recovery must resolve the in-doubt write from the
        // coordinator's decision record before the store serves reads.
        let report = sys.recovery().recover_node(n(2));
        assert!(
            report.refreshed.contains(&uid.uid()) || {
                let state = sys.stores().read_local(n(2), uid.uid()).expect("readable");
                Counter::decode(&state.data).value() == 5
            },
            "{policy}: recovery left n2 stale"
        );
        let state = sys.stores().read_local(n(2), uid.uid()).expect("readable");
        assert_eq!(
            Counter::decode(&state.data).value(),
            5,
            "{policy}: in-doubt write not resolved to the committed state"
        );

        // The paper's quiescent invariants hold: every listed store
        // byte-identical at the model's value, St at full strength, no
        // leaked locks, quiescent use lists.
        let objects = [ObjectModel {
            uid: uid.uid(),
            kind: ModelKind::COUNTER,
            full_strength: 3,
        }];
        let violations = check_quiescent_invariants(&sys, &objects);
        assert!(violations.is_empty(), "{policy}: {violations:?}");
        let violations = check_counter_states(&sys, &[(uid.uid(), 5)]);
        assert!(violations.is_empty(), "{policy}: {violations:?}");

        // And a fresh typed read observes the committed value.
        assert!(sys.try_passivate(uid.uid()));
        let reader = sys.client(n(5));
        let observer = uid.open(&reader);
        let action = reader.begin_action();
        observer.activate_read_only(action, 1).expect("activate");
        assert_eq!(
            observer.invoke(action, CounterOp::Get).expect("read"),
            5,
            "{policy}"
        );
        reader.commit(action).expect("commit");
    }
}

/// An armed trap that no prepare ever reaches must be disarmable: the node
/// stays up and later commits are unaffected.
#[test]
fn unfired_store_trap_disarms_cleanly() {
    let sys = System::builder(9).nodes(6).build();
    let trio = [n(1), n(2), n(3)];
    let uid = sys
        .create_typed(Counter::new(0), &trio, &trio)
        .expect("create");
    sys.stores().arm_crash_after_prepare(n(2));
    sys.stores().disarm_crash_after_prepare(n(2));
    let client = sys.client(n(4));
    let counter = uid.open(&client);
    let action = client.begin_action();
    counter.activate(action, 2).expect("activate");
    counter.invoke(action, CounterOp::Add(1)).expect("invoke");
    client.commit(action).expect("commit");
    assert!(sys.sim().is_up(n(2)), "disarmed trap must not fire");
}
