//! Membership changes inside shard worlds never re-route objects: the
//! router's shard assignment is a pure function of the UID, so growing a
//! shard's world and draining one of its servers moves *replicas within
//! the world*, never objects between shards — and every object keeps
//! serving from its home shard afterwards. The pure-function half of the
//! contract is property-tested in
//! `crates/replication/tests/shard_router_properties.rs`; this is the
//! end-to-end half over live shard worlds.

use groupview_membership::Membership;
use groupview_replication::{Counter, CounterOp, HashRouter, ShardRouter, ShardedSystem, System};
use groupview_sim::NodeId;
use std::sync::Arc;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn shard_membership_changes_never_move_objects_between_shards() {
    let router = Arc::new(HashRouter::new(2));
    let world = ShardedSystem::launch(System::builder(21).nodes(7), router.clone());
    let trio = [n(1), n(2), n(3)];
    let uids: Vec<_> = (0..6i64)
        .map(|i| {
            world
                .create_typed(Counter::new(i), &trio, &trio)
                .expect("create")
        })
        .collect();
    let homes: Vec<usize> = uids.iter().map(|u| router.route(u.uid())).collect();

    // Every shard's world grows a fresh node and drains server 2 — the
    // same elastic churn a membership plan action applies, run on the
    // shard's own thread like any other job.
    for shard in 0..world.shards() {
        let (complete, moved) = world.exec(shard, |w| {
            let membership = Membership::new(w.sys());
            membership.add_node();
            let report = membership.drain_node(n(2), 4);
            (report.complete, report.moved.len())
        });
        assert!(complete, "shard {shard}: drain left replicas behind");
        assert!(moved > 0, "shard {shard}: server 2 hosted nothing to move");
    }

    // No uid changed shards…
    let after: Vec<usize> = uids.iter().map(|u| router.route(u.uid())).collect();
    assert_eq!(homes, after, "a membership change re-routed an object");

    // …and every object still serves from its membership-changed home.
    let client = world.client(2);
    for (i, &uid) in uids.iter().enumerate() {
        assert_eq!(
            client.invoke(uid, CounterOp::Add(1)).expect("invoke"),
            i as i64 + 1,
            "object {i} lost its committed state across the drain"
        );
    }
}
