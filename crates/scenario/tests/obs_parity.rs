//! Observability must be a pure observer: running the exact same scenario
//! with spans + metrics recording ON must be **bit-for-bit identical** to
//! running it OFF — same virtual end time, same RNG draw count, same
//! workload metric fingerprint, same oracle verdict. Spans are built from
//! timestamps the simulation already produced; they charge no virtual
//! time and draw no randomness, and this suite is the proof.

use groupview_replication::System;
use groupview_scenario::{canned_scenarios, run_scenario_in, ModelKind, Scenario, ScenarioReport};
use groupview_store::Uid;
use groupview_workload::RunMetrics;
use proptest::prelude::*;

/// Every externally observable workload metric.
fn fingerprint(m: &RunMetrics) -> [u64; 15] {
    [
        m.attempts,
        m.commits,
        m.aborts,
        m.abort_bind,
        m.abort_bind_contention,
        m.abort_bind_failure,
        m.abort_invoke,
        m.abort_contention,
        m.abort_failure,
        m.abort_commit,
        m.abort_commit_contention,
        m.abort_commit_failure,
        m.leaked_bindings,
        m.cleanup_reclaimed,
        m.steps,
    ]
}

/// Everything a run exposes that observability could conceivably perturb.
#[derive(Debug, PartialEq)]
struct RunTrace {
    end_time_us: u64,
    rng_draws: u64,
    fingerprint: [u64; 15],
    delivered: u64,
    crashes: u64,
    timeouts: u64,
    masked: bool,
    oracle_passed: bool,
    oracle_replayed: u64,
    oracle_violations: Vec<String>,
    failures: Vec<String>,
}

/// Builds the scenario's world (optionally observed and traced), runs it
/// via the runner's engine, and captures the full externally visible
/// outcome plus the sim's internals (end time, RNG draw count).
fn run(scenario: &Scenario, seed: u64, observe: bool) -> (RunTrace, ScenarioReport) {
    let mut builder = System::builder(seed)
        .nodes(scenario.nodes)
        .policy(scenario.policy)
        .scheme(scenario.scheme);
    if observe {
        builder = builder.observe().trace();
    }
    let sys = builder.build();
    let objects: Vec<(Uid, ModelKind)> = scenario
        .objects
        .iter()
        .map(|kind| {
            let uid = sys
                .create_object(kind.fresh(), &scenario.server_nodes, &scenario.server_nodes)
                .expect("object creation on a fresh world");
            (uid, *kind)
        })
        .collect();
    let report = run_scenario_in(scenario, seed, &sys, &objects);
    let trace = RunTrace {
        end_time_us: sys.sim().now().as_micros(),
        rng_draws: sys.sim().rng_draws(),
        fingerprint: fingerprint(&report.metrics),
        delivered: report.metrics.net.delivered,
        crashes: report.metrics.net.crashes,
        timeouts: report.metrics.net.timeouts,
        masked: report.masked,
        oracle_passed: report.oracle.is_ok(),
        oracle_replayed: report.oracle.replayed_ops,
        oracle_violations: report.oracle.violations.clone(),
        failures: report.failures.clone(),
    };
    (trace, report)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Across the whole canned suite and a seed space: observed-and-traced
    /// runs reproduce unobserved runs exactly.
    #[test]
    fn observed_runs_are_bit_for_bit_identical_to_unobserved(
        scenario_idx in 0usize..14,
        seed in 0u64..100_000,
    ) {
        let scenarios = canned_scenarios();
        let scenario = &scenarios[scenario_idx % scenarios.len()];
        let (plain, plain_report) = run(scenario, seed, false);
        let (observed, observed_report) = run(scenario, seed, true);
        prop_assert_eq!(&plain, &observed, "{}: observability perturbed the run", scenario.name);
        // The observed run must also actually observe.
        prop_assert!(plain_report.obs.is_none());
        let snap = observed_report.obs.expect("observed run carries a snapshot");
        prop_assert!(snap.span_count() > 0, "observed run recorded spans");
    }
}
