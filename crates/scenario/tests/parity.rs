//! Runner-vs-recorded-metrics regression.
//!
//! Before `workload::Driver` was deleted, this suite ran the legacy driver
//! and the scenario runner side by side on identical worlds and asserted
//! **bit-for-bit** equality of every externally observable metric — the
//! proof that the unified run loop reproduced the old one exactly. The
//! legacy driver's measured fingerprints from that final green run are
//! recorded below; the runner (driving the converted `FaultScript`s
//! through `FaultPlan::from`) must keep reproducing them. Any drift means
//! the unified loop no longer matches what the retired driver did — the
//! same signal the live comparison gave, without keeping dead code around.
//!
//! (If a deliberate engine or RNG change invalidates these numbers,
//! re-record them from a run you have verified by other means, and say so
//! in the commit.)

use groupview_core::BindingScheme;
use groupview_replication::{Counter, ReplicationPolicy, System};
use groupview_scenario::{run_plan, FaultPlan};
use groupview_sim::NodeId;
use groupview_store::Uid;
use groupview_workload::{FaultAction, FaultScript, RunMetrics, WorkloadSpec};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn world(policy: ReplicationPolicy, scheme: BindingScheme, seed: u64) -> (System, Vec<Uid>) {
    let sys = System::builder(seed)
        .nodes(7)
        .policy(policy)
        .scheme(scheme)
        .build();
    let uids = (0..3)
        .map(|i| {
            sys.create_object(
                Box::new(Counter::new(i)),
                &[n(1), n(2), n(3)],
                &[n(1), n(2), n(3)],
            )
            .expect("create")
        })
        .collect();
    (sys, uids)
}

fn spec(objects: Vec<Uid>) -> WorkloadSpec {
    WorkloadSpec::new(objects, vec![n(4), n(5), n(6)])
        .clients(3)
        .actions_per_client(4)
        .ops_per_action(2)
}

/// Every externally observable metric the runner must reproduce.
fn fingerprint(m: &RunMetrics) -> [u64; 15] {
    [
        m.attempts,
        m.commits,
        m.aborts,
        m.abort_bind,
        m.abort_bind_contention,
        m.abort_bind_failure,
        m.abort_invoke,
        m.abort_contention,
        m.abort_failure,
        m.abort_commit,
        m.abort_commit_contention,
        m.abort_commit_failure,
        m.leaked_bindings,
        m.cleanup_reclaimed,
        m.steps,
    ]
}

/// The legacy `Driver`'s measured run, recorded at the moment of its
/// retirement: metric fingerprint, delivered messages, crashes, timeouts,
/// and the virtual end time in microseconds.
struct Recorded {
    fingerprint: [u64; 15],
    delivered: u64,
    crashes: u64,
    timeouts: u64,
    end_time_us: u64,
}

fn assert_reproduces(
    policy: ReplicationPolicy,
    scheme: BindingScheme,
    seed: u64,
    script: FaultScript,
    recorded: &Recorded,
) {
    let (sys, uids) = world(policy, scheme, seed);
    let outcome = run_plan(&sys, &spec(uids), &FaultPlan::from(script));
    let m = &outcome.metrics;
    assert_eq!(
        fingerprint(m),
        recorded.fingerprint,
        "runner drifted from the recorded legacy-driver metrics: {m}"
    );
    assert_eq!(m.net.delivered, recorded.delivered);
    assert_eq!(m.net.crashes, recorded.crashes);
    assert_eq!(m.net.timeouts, recorded.timeouts);
    assert_eq!(
        sys.sim().now().as_micros(),
        recorded.end_time_us,
        "virtual end time drifted"
    );
}

/// The crash-masking test's exact configuration (seed 13, crash node 2 at
/// step 5): the converted plan must mask the crash identically.
#[test]
fn crash_masking_run_matches_recorded_driver_metrics() {
    assert_reproduces(
        ReplicationPolicy::Active,
        BindingScheme::Standard,
        13,
        FaultScript::new().at(5, FaultAction::CrashNode(n(2))),
        &Recorded {
            fingerprint: [12, 8, 4, 0, 0, 0, 4, 4, 0, 0, 0, 0, 0, 0, 15],
            delivered: 252,
            crashes: 1,
            timeouts: 4,
            end_time_us: 282_922,
        },
    );
}

#[test]
fn single_copy_crash_run_matches_recorded_driver_metrics() {
    assert_reproduces(
        ReplicationPolicy::SingleCopyPassive,
        BindingScheme::Standard,
        11,
        FaultScript::new().at(3, FaultAction::CrashNode(n(1))),
        &Recorded {
            fingerprint: [12, 8, 4, 0, 0, 0, 4, 2, 2, 0, 0, 0, 0, 0, 16],
            delivered: 216,
            crashes: 1,
            timeouts: 12,
            end_time_us: 419_388,
        },
    );
}

#[test]
fn client_crash_and_sweep_run_matches_recorded_driver_metrics() {
    assert_reproduces(
        ReplicationPolicy::Active,
        BindingScheme::IndependentTopLevel,
        12,
        FaultScript::new()
            .at(2, FaultAction::CrashClient(0))
            .at(8, FaultAction::CleanupSweep),
        &Recorded {
            fingerprint: [9, 7, 2, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 2, 17],
            delivered: 288,
            crashes: 0,
            timeouts: 0,
            end_time_us: 231_098,
        },
    );
}

#[test]
fn recovery_run_matches_recorded_driver_metrics() {
    assert_reproduces(
        ReplicationPolicy::Active,
        BindingScheme::Standard,
        13,
        FaultScript::new()
            .at(2, FaultAction::CrashNode(n(3)))
            .at(10, FaultAction::RecoverNode(n(3))),
        &Recorded {
            fingerprint: [12, 7, 5, 0, 0, 0, 5, 5, 0, 0, 0, 0, 0, 0, 15],
            delivered: 382,
            crashes: 1,
            timeouts: 4,
            end_time_us: 364_327,
        },
    );
}

#[test]
fn fault_free_runs_match_recorded_driver_metrics() {
    for (seed, recorded) in [
        (
            9,
            Recorded {
                fingerprint: [12, 8, 4, 0, 0, 0, 4, 4, 0, 0, 0, 0, 0, 0, 17],
                delivered: 282,
                crashes: 0,
                timeouts: 0,
                end_time_us: 231_785,
            },
        ),
        (
            42,
            Recorded {
                fingerprint: [12, 10, 2, 0, 0, 0, 2, 2, 0, 0, 0, 0, 0, 0, 17],
                delivered: 318,
                crashes: 0,
                timeouts: 0,
                end_time_us: 264_038,
            },
        ),
        (
            77,
            Recorded {
                fingerprint: [12, 9, 3, 0, 0, 0, 3, 3, 0, 0, 0, 0, 0, 0, 17],
                delivered: 300,
                crashes: 0,
                timeouts: 0,
                end_time_us: 249_361,
            },
        ),
    ] {
        assert_reproduces(
            ReplicationPolicy::CoordinatorCohort,
            BindingScheme::Standard,
            seed,
            FaultScript::new(),
            &recorded,
        );
    }
}
