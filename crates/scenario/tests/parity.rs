//! `FaultScript` → `FaultPlan` conversion preserves semantics: the scenario
//! runner driving a converted script reproduces the legacy
//! `groupview_workload::Driver` run **bit for bit** — same commits, same
//! abort taxonomy, same message counts, same step count — on the existing
//! fault workloads (including the crash-masking test's exact
//! configuration). This is what lets the time-keyed plan subsume the
//! step-keyed script path without behavior change.

use groupview_core::BindingScheme;
use groupview_replication::{Counter, ReplicationPolicy, System};
use groupview_scenario::{run_plan, FaultPlan};
use groupview_sim::NodeId;
use groupview_store::Uid;
use groupview_workload::{Driver, FaultAction, FaultScript, RunMetrics, WorkloadSpec};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn world(policy: ReplicationPolicy, scheme: BindingScheme, seed: u64) -> (System, Vec<Uid>) {
    let sys = System::builder(seed)
        .nodes(7)
        .policy(policy)
        .scheme(scheme)
        .build();
    let uids = (0..3)
        .map(|i| {
            sys.create_object(
                Box::new(Counter::new(i)),
                &[n(1), n(2), n(3)],
                &[n(1), n(2), n(3)],
            )
            .expect("create")
        })
        .collect();
    (sys, uids)
}

fn spec(objects: Vec<Uid>) -> WorkloadSpec {
    WorkloadSpec::new(objects, vec![n(4), n(5), n(6)])
        .clients(3)
        .actions_per_client(4)
        .ops_per_action(2)
}

/// Every externally observable metric the two paths must agree on.
fn fingerprint(m: &RunMetrics) -> Vec<u64> {
    vec![
        m.attempts,
        m.commits,
        m.aborts,
        m.abort_bind,
        m.abort_bind_contention,
        m.abort_bind_failure,
        m.abort_invoke,
        m.abort_contention,
        m.abort_failure,
        m.abort_commit,
        m.abort_commit_contention,
        m.abort_commit_failure,
        m.leaked_bindings,
        m.cleanup_reclaimed,
        m.steps,
    ]
}

fn assert_parity(policy: ReplicationPolicy, scheme: BindingScheme, seed: u64, script: FaultScript) {
    // Two identical worlds from the same seed: one driven by the legacy
    // step-keyed driver, one by the scenario runner through the shim.
    let (sys_a, uids_a) = world(policy, scheme, seed);
    let legacy = Driver::new(&sys_a, spec(uids_a))
        .with_faults(script.clone())
        .run();

    let (sys_b, uids_b) = world(policy, scheme, seed);
    let outcome = run_plan(&sys_b, &spec(uids_b), &FaultPlan::from(script));

    assert_eq!(
        fingerprint(&legacy),
        fingerprint(&outcome.metrics),
        "legacy: {legacy}\nplan:   {}",
        outcome.metrics
    );
    assert_eq!(legacy.net.delivered, outcome.metrics.net.delivered);
    assert_eq!(legacy.net.crashes, outcome.metrics.net.crashes);
    assert_eq!(legacy.net.timeouts, outcome.metrics.net.timeouts);
    assert_eq!(
        sys_a.sim().now(),
        sys_b.sim().now(),
        "both paths end at the same virtual time"
    );
}

/// The crash-masking test's exact configuration (seed 13, crash node 2 at
/// step 5): the converted plan must mask the crash identically.
#[test]
fn crash_masking_script_converts_without_behavior_change() {
    assert_parity(
        ReplicationPolicy::Active,
        BindingScheme::Standard,
        13,
        FaultScript::new().at(5, FaultAction::CrashNode(n(2))),
    );
}

#[test]
fn single_copy_crash_script_converts_without_behavior_change() {
    assert_parity(
        ReplicationPolicy::SingleCopyPassive,
        BindingScheme::Standard,
        11,
        FaultScript::new().at(3, FaultAction::CrashNode(n(1))),
    );
}

#[test]
fn client_crash_and_sweep_script_converts_without_behavior_change() {
    assert_parity(
        ReplicationPolicy::Active,
        BindingScheme::IndependentTopLevel,
        12,
        FaultScript::new()
            .at(2, FaultAction::CrashClient(0))
            .at(8, FaultAction::CleanupSweep),
    );
}

#[test]
fn recovery_script_converts_without_behavior_change() {
    assert_parity(
        ReplicationPolicy::Active,
        BindingScheme::Standard,
        13,
        FaultScript::new()
            .at(2, FaultAction::CrashNode(n(3)))
            .at(10, FaultAction::RecoverNode(n(3))),
    );
}

#[test]
fn fault_free_runs_convert_without_behavior_change() {
    for seed in [9, 42, 77] {
        assert_parity(
            ReplicationPolicy::CoordinatorCohort,
            BindingScheme::Standard,
            seed,
            FaultScript::new(),
        );
    }
}
