//! Property tests for the scenario engine's plan layer:
//!
//! * every nemesis-generated `FaultPlan` is well-formed — recover only
//!   after crash, heal only after partition, times monotone — across the
//!   whole parameter space;
//! * the `FaultScript` → `FaultPlan` conversion shim is lossless.

use groupview_scenario::{
    client_churn, flapping_partition, lossy_window, recovery_storm, rolling_crashes,
    send_window_crashes, FaultPlan, PlanAction, Trigger,
};
use groupview_sim::{NodeId, SimDuration};
use groupview_workload::{FaultAction, FaultScript};
use proptest::prelude::*;

fn nodes(k: usize) -> Vec<NodeId> {
    (1..=k as u32).map(NodeId::new).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn rolling_crashes_always_well_formed(
        seed in 0u64..1_000_000,
        k in 1usize..5,
        start in 0u64..10_000,
        period in 2u64..50_000,
        rounds in 0usize..12,
    ) {
        let downtime = 1 + period / 2;
        let plan = rolling_crashes(
            seed,
            &nodes(k),
            SimDuration::from_micros(start),
            SimDuration::from_micros(period + 2),
            SimDuration::from_micros(downtime),
            rounds,
        );
        plan.validate().expect("rolling_crashes must be well-formed");
        prop_assert!(plan.is_time_sorted(), "nemesis offsets must be monotone");
        prop_assert_eq!(plan.len(), rounds * 2);
    }

    #[test]
    fn flapping_partition_always_well_formed(
        seed in 0u64..1_000_000,
        a in 1usize..4,
        b in 1usize..4,
        start in 0u64..10_000,
        period in 4u64..50_000,
        flaps in 0usize..10,
    ) {
        let side_a = nodes(a);
        let side_b: Vec<NodeId> = (10..10 + b as u32).map(NodeId::new).collect();
        let plan = flapping_partition(
            seed,
            &side_a,
            &side_b,
            SimDuration::from_micros(start),
            SimDuration::from_micros(period),
            flaps,
        );
        plan.validate().expect("flapping_partition must be well-formed");
        prop_assert!(plan.is_time_sorted(), "nemesis offsets must be monotone");
    }

    #[test]
    fn lossy_window_always_well_formed_and_ends_dry(
        seed in 0u64..1_000_000,
        start in 0u64..10_000,
        window in 2u64..100_000,
        peak_permille in 0u64..=1000,
        steps in 1usize..8,
    ) {
        let plan = lossy_window(
            seed,
            SimDuration::from_micros(start),
            SimDuration::from_micros(window),
            peak_permille as f64 / 1000.0,
            steps,
        );
        plan.validate().expect("lossy_window must be well-formed");
        prop_assert!(plan.is_time_sorted(), "nemesis offsets must be monotone");
        prop_assert!(matches!(
            plan.events().last().unwrap().action,
            PlanAction::SetDropProbability(p) if p == 0.0
        ));
    }

    #[test]
    fn client_churn_always_well_formed(
        seed in 0u64..1_000_000,
        clients in 1usize..8,
        kills_frac in 0usize..=8,
        start in 0u64..10_000,
        window in 1u64..60_000,
        sweep_every in 1usize..4,
    ) {
        let kills = kills_frac.min(clients);
        let plan = client_churn(
            seed,
            clients,
            SimDuration::from_micros(start),
            SimDuration::from_micros(window),
            kills,
            sweep_every,
        );
        plan.validate().expect("client_churn must be well-formed");
        prop_assert!(plan.is_time_sorted(), "nemesis offsets must be monotone");
        // Victims are always distinct.
        let mut victims: Vec<usize> = plan
            .events()
            .iter()
            .filter_map(|e| match e.action {
                PlanAction::CrashClient(i) => Some(i),
                _ => None,
            })
            .collect();
        victims.sort_unstable();
        let before = victims.len();
        victims.dedup();
        prop_assert_eq!(victims.len(), before);
        prop_assert_eq!(before, kills);
    }

    #[test]
    fn send_window_crashes_always_well_formed(
        seed in 0u64..1_000_000,
        k in 1usize..5,
        start in 0u64..10_000,
        period in 2u64..50_000,
        max_budget in 1u32..8,
        rounds in 0usize..12,
    ) {
        let downtime = 1 + period / 2;
        let plan = send_window_crashes(
            seed,
            &nodes(k),
            SimDuration::from_micros(start),
            SimDuration::from_micros(period + 2),
            SimDuration::from_micros(downtime),
            max_budget,
            rounds,
        );
        plan.validate().expect("send_window_crashes must be well-formed");
        prop_assert!(plan.is_time_sorted(), "nemesis offsets must be monotone");
        prop_assert_eq!(plan.len(), rounds * 2, "an arm and a recover per round");
        // Every armed budget is drawn from 1..=max_budget, and every arm is
        // followed by a recover of the same node (CrashAfterSends
        // well-formedness: never a zero budget, never armed-while-down).
        for ev in plan.events() {
            if let PlanAction::CrashAfterSends(_, budget) = ev.action {
                prop_assert!((1..=max_budget).contains(&budget));
            }
        }
        let arms = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, PlanAction::CrashAfterSends(..)))
            .count();
        let recovers = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, PlanAction::RecoverNode(_)))
            .count();
        prop_assert_eq!(arms, recovers);
    }

    #[test]
    fn recovery_storm_always_well_formed(
        seed in 0u64..1_000_000,
        k in 1usize..6,
        at in 0u64..20_000,
        spread in 0u64..30_000,
    ) {
        let plan = recovery_storm(
            seed,
            &nodes(k),
            SimDuration::from_micros(at),
            SimDuration::from_micros(spread),
        );
        plan.validate().expect("recovery_storm must be well-formed");
        prop_assert!(plan.is_time_sorted(), "nemesis offsets must be monotone");
        // Everyone who crashes recovers.
        let crashes = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, PlanAction::CrashNode(_)))
            .count();
        let recovers = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, PlanAction::RecoverNode(_)))
            .count();
        prop_assert_eq!(crashes, k);
        prop_assert_eq!(recovers, k);
    }

    #[test]
    fn script_conversion_is_lossless(
        entries in prop::collection::vec((1u64..40, 0u8..4, 0u32..6), 0..20),
    ) {
        let mut script = FaultScript::new();
        for &(step, kind, x) in &entries {
            let action = match kind {
                0 => FaultAction::CrashNode(NodeId::new(x)),
                1 => FaultAction::RecoverNode(NodeId::new(x)),
                2 => FaultAction::CrashClient(x as usize),
                _ => FaultAction::CleanupSweep,
            };
            script = script.at(step, action);
        }
        let plan = FaultPlan::from(script.clone());
        prop_assert_eq!(plan.len(), script.len());
        // Entirely step-keyed, and per-step actions match the script's in
        // order — the driver applies both at the same loop position.
        prop_assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e.trigger, Trigger::Step(_))));
        for step in 1..41u64 {
            let from_script: Vec<PlanAction> =
                script.due(step).into_iter().map(PlanAction::from).collect();
            let from_plan: Vec<PlanAction> = plan.due_at_step(step).cloned().collect();
            prop_assert_eq!(from_script, from_plan);
        }
    }

    /// Composing nemeses over disjoint resources is always executable:
    /// `merge` breaks vector-order monotonicity, but firing-order
    /// validation still accepts the combined schedule.
    #[test]
    fn merged_nemeses_always_validate(
        seed in 0u64..1_000_000,
        crash_start in 0u64..20_000,
        loss_start in 0u64..20_000,
        rounds in 1usize..6,
        steps in 1usize..5,
    ) {
        let crashes = rolling_crashes(
            seed,
            &nodes(2),
            SimDuration::from_micros(crash_start),
            SimDuration::from_micros(10_000),
            SimDuration::from_micros(4_000),
            rounds,
        );
        let loss = lossy_window(
            seed,
            SimDuration::from_micros(loss_start),
            SimDuration::from_micros(30_000),
            0.2,
            steps,
        );
        crashes
            .merge(loss)
            .validate()
            .expect("merged nemeses must stay executable");
    }
}
