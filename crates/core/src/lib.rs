//! The `groupview` naming-and-binding service — the paper's contribution.
//!
//! For every persistent object `A`, the service maintains the two node sets
//! of §3.1:
//!
//! * `StA` — nodes whose object stores contain states of `A`
//!   (the **Object State database**, [`ObjectStateDb`]);
//! * `SvA` — nodes capable of running a server for `A`
//!   (the **Object Server database**, [`ObjectServerDb`]).
//!
//! Clients consult the Object Server database to bind to servers; servers
//! consult the Object State database to load and store object states. Both
//! databases are ordinary persistent objects manipulated under atomic
//! actions (the paper's Arjuna implementation calls the pair the *group view
//! database*); every entry is concurrency-controlled independently with the
//! lock modes of [`groupview_actions`], including the §4.2.1 exclude-write
//! mode.
//!
//! The three client access schemes of §4.1 are implemented by [`Binder`]:
//!
//! 1. [`BindingScheme::Standard`] — `GetServer` as a nested action of the
//!    client action (Figure 6); `Sv` is static and failed servers are
//!    discovered "the hard way" at probe time.
//! 2. [`BindingScheme::IndependentTopLevel`] — separate top-level actions
//!    before and after the client action maintain *use lists* and prune
//!    failed servers (Figure 7).
//! 3. [`BindingScheme::NestedTopLevel`] — the same updates performed from
//!    nested top-level actions inside the client action (Figure 8).
//!
//! Recovery (§4.1.2, §4.2): [`RecoveryManager`] re-`Insert`s recovered
//! server nodes (which doubles as a quiescence check) and refreshes +
//! re-`Include`s recovered store nodes; [`CleanupDaemon`] reclaims use-list
//! entries leaked by crashed clients.

pub mod binder;
pub mod cleanup;
pub mod directory;
pub mod error;
pub mod keys;
pub mod naming;
pub mod nonatomic;
pub mod recovery;
pub mod server_db;
pub mod state_db;

pub use crate::binder::{BindRequest, Binder, Binding, BindingScheme};
pub use crate::cleanup::{CleanupDaemon, CleanupReport};
pub use crate::directory::{Directory, RemoteDirectory};
pub use crate::error::{BindError, DbError};
pub use crate::naming::NamingService;
pub use crate::nonatomic::{RemoteServerCache, ServerCache};
pub use crate::recovery::{RecoveryManager, RecoveryReport};
pub use crate::server_db::{ObjectServerDb, ServerDbOps, ServerEntry};
pub use crate::state_db::{ExcludePolicy, ObjectStateDb, StateDbOps, StateEntry};

/// Compile-time proof that directory/naming values crossing a
/// shard-thread boundary are `Send`. The databases themselves
/// (`ObjectServerDb`, `ObjectStateDb`, `Directory`, …) are shard-local —
/// one thread owns each shard's world exclusively — but entries, reports,
/// and errors travel in messages between shards. See `docs/SHARDING.md`.
#[cfg(test)]
mod send_boundary {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn boundary_types_are_send() {
        assert_send::<Binding>();
        assert_send::<BindRequest>();
        assert_send::<BindingScheme>();
        assert_send::<BindError>();
        assert_send::<DbError>();
        assert_send::<ServerEntry>();
        assert_send::<StateEntry>();
        assert_send::<ExcludePolicy>();
        assert_send::<CleanupReport>();
        assert_send::<RecoveryReport>();
    }
}
