//! Node recovery protocols (§4.1.2 and §4.2).
//!
//! The paper prescribes two recovery duties:
//!
//! * A crashed node with an **object store** "must ensure, upon recovery,
//!   that its objects do contain the latest committed states. For this
//!   purpose, it can run atomic actions to update its object states and
//!   then invoke the `Include(..)` operation for making the object states
//!   available again." (§4.2)
//! * A recovered **server** node executes `Insert(UIDA, δ)` before it is
//!   ready to act as a server again — "execution of this operation is
//!   necessary to check that A is quiescent" (§4.1.2).
//!
//! Additionally, two-phase commit leaves *in-doubt* prepared transactions in
//! the store's intent log; recovery resolves them against the coordinator's
//! decision record (presumed abort for undecided ones).

use crate::error::DbError;
use crate::naming::NamingService;
use crate::nonatomic::RemoteServerCache;
use groupview_actions::TxSystem;
use groupview_sim::{NodeId, Sim};
use groupview_store::{Stores, TxToken, Uid};
use std::fmt;

/// What one recovery pass accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// In-doubt transactions resolved as committed.
    pub resolved_commits: Vec<TxToken>,
    /// In-doubt transactions resolved as aborted (incl. presumed abort).
    pub resolved_aborts: Vec<TxToken>,
    /// Objects whose local state was refreshed from a current `St` member.
    pub refreshed: Vec<Uid>,
    /// Objects re-`Include`d into their `St` set.
    pub included: Vec<Uid>,
    /// Objects for which the recovered server node's `Insert` succeeded.
    pub inserted: Vec<Uid>,
    /// Objects whose `Insert` was refused (not quiescent / lock contention)
    /// — the caller should retry these later.
    pub insert_deferred: Vec<Uid>,
    /// Objects whose store refresh failed (no reachable current store) —
    /// retry later.
    pub refresh_deferred: Vec<Uid>,
    /// Objects whose local copy was purged because the replica had been
    /// retired (migrated away) while the node was down. Without the
    /// tombstone check, refresh would re-`Include` the stale copy and
    /// resurrect a replica that was deliberately moved elsewhere.
    pub purged: Vec<Uid>,
}

impl RecoveryReport {
    /// Whether anything remains to retry.
    pub fn fully_recovered(&self) -> bool {
        self.insert_deferred.is_empty() && self.refresh_deferred.is_empty()
    }

    /// Folds another report's results into this one (e.g. store-side and
    /// server-side passes of the same node).
    pub fn merge(&mut self, other: RecoveryReport) {
        self.resolved_commits.extend(other.resolved_commits);
        self.resolved_aborts.extend(other.resolved_aborts);
        self.refreshed.extend(other.refreshed);
        self.included.extend(other.included);
        self.inserted.extend(other.inserted);
        self.insert_deferred.extend(other.insert_deferred);
        self.refresh_deferred.extend(other.refresh_deferred);
        self.purged.extend(other.purged);
    }
}

/// Runs the paper's recovery protocols for crashed nodes.
#[derive(Clone)]
pub struct RecoveryManager {
    sim: Sim,
    tx: TxSystem,
    naming: NamingService,
    stores: Stores,
    cache: Option<RemoteServerCache>,
}

impl fmt::Debug for RecoveryManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveryManager").finish_non_exhaustive()
    }
}

impl RecoveryManager {
    /// Creates a recovery manager for the world.
    pub fn new(sim: &Sim, naming: &NamingService, stores: &Stores) -> Self {
        RecoveryManager {
            sim: sim.clone(),
            tx: naming.tx().clone(),
            naming: naming.clone(),
            stores: stores.clone(),
            cache: None,
        }
    }

    /// Attaches the non-atomic server cache: a recovered server node then
    /// re-announces itself there too (the §5 extension's recovery path).
    pub fn with_cache(mut self, cache: RemoteServerCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Brings `node` back up (if needed) and runs the full recovery
    /// protocol: in-doubt resolution, store refresh + `Include`, and server
    /// re-`Insert`.
    pub fn recover_node(&self, node: NodeId) -> RecoveryReport {
        self.sim.recover(node);
        let mut report = RecoveryReport::default();
        if self.stores.has_store(node) {
            report.merge(self.recover_store(node));
        }
        report.merge(self.recover_server(node));
        report
    }

    /// Store-side recovery of an already-up `node`.
    ///
    /// 1. Resolves in-doubt prepared transactions against the coordinator's
    ///    decision record.
    /// 2. For each object held locally: if the node is no longer in `St`
    ///    (it was excluded while down), fetch the latest state from a
    ///    current `St` member, install it, and `Include` the node back.
    pub fn recover_store(&self, node: NodeId) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        if !self.sim.is_up(node) {
            return report;
        }
        // (1) in-doubt resolution.
        let indoubt = self.stores.with(node, |s| s.indoubt()).unwrap_or_default();
        for token in indoubt {
            if self.tx.decision(token) == Some(true) {
                if self.stores.commit_local(node, token).is_ok() {
                    report.resolved_commits.push(token);
                }
            } else {
                // Decided-abort or undecided: presumed abort.
                let _ = self.stores.abort_local(node, token);
                report.resolved_aborts.push(token);
            }
        }
        // (2) refresh + Include — unless the replica was retired (migrated
        // away) while the node was down, in which case the stale local copy
        // is purged instead of resurrected.
        let mut uids = self.stores.with(node, |s| s.uids()).unwrap_or_default();
        uids.sort_unstable();
        for uid in uids {
            if self.stores.is_retired(node, uid) {
                let _ = self.stores.with(node, |s| s.remove(uid));
                report.purged.push(uid);
                continue;
            }
            match self.refresh_one(node, uid) {
                Ok(RefreshOutcome::AlreadyCurrent) => {}
                Ok(RefreshOutcome::Refreshed) => {
                    report.refreshed.push(uid);
                    report.included.push(uid);
                }
                Ok(RefreshOutcome::IncludedAsIs) => report.included.push(uid),
                Err(_) => report.refresh_deferred.push(uid),
            }
        }
        report
    }

    /// Server-side recovery of an already-up `node`: executes `Insert` for
    /// every object listing it in `Sv` — the §4.1.2 quiescence check.
    pub fn recover_server(&self, node: NodeId) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        if !self.sim.is_up(node) {
            return report;
        }
        for uid in self.naming.server_db.uids_hosting(node) {
            let action = self.tx.begin_top(node);
            match self.naming.insert_from(node, action, uid, node) {
                Ok(_) => match self.tx.commit(action) {
                    Ok(()) => {
                        if let Some(cache) = &self.cache {
                            cache.report_server_from(node, uid, node);
                        }
                        report.inserted.push(uid)
                    }
                    Err(_) => report.insert_deferred.push(uid),
                },
                Err(e) => {
                    self.tx.abort(action);
                    match e {
                        DbError::NotQuiescent(_) => report.insert_deferred.push(uid),
                        e if e.is_lock_refused() => report.insert_deferred.push(uid),
                        _ => report.insert_deferred.push(uid),
                    }
                }
            }
        }
        report
    }

    fn refresh_one(&self, node: NodeId, uid: Uid) -> Result<RefreshOutcome, DbError> {
        let action = self.tx.begin_top(node);
        let outcome = (|| {
            let view = self.naming.get_view_from(node, action, uid)?;
            if view.contains(node) {
                // Still in St: by the system invariant the local state is the
                // latest committed one (it would have been excluded
                // otherwise) — nothing to do.
                return Ok(RefreshOutcome::AlreadyCurrent);
            }
            // Fetch from the first reachable current store.
            let mut fetched = None;
            for &src in &view.stores {
                if let Ok(state) = self.stores.read_remote(node, src, uid) {
                    fetched = Some(state);
                    break;
                }
            }
            match fetched {
                Some(state) => {
                    self.stores
                        .write_local(node, uid, state)
                        .map_err(|_| DbError::NotFound(uid))?;
                    self.naming.include_from(node, action, uid, node)?;
                    Ok(RefreshOutcome::Refreshed)
                }
                None if view.is_empty() => {
                    // Nobody else holds a state: this node's copy is the best
                    // available — include it as-is.
                    self.naming.include_from(node, action, uid, node)?;
                    Ok(RefreshOutcome::IncludedAsIs)
                }
                None => Err(DbError::Net(groupview_sim::NetError::Timeout)),
            }
        })();
        match &outcome {
            Ok(_) => {
                if self.tx.commit(action).is_err() {
                    return Err(DbError::Tx(groupview_actions::TxError::NotActive(action)));
                }
            }
            Err(_) => self.tx.abort(action),
        }
        outcome
    }
}

/// What happened to one object during store recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefreshOutcome {
    AlreadyCurrent,
    Refreshed,
    IncludedAsIs,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_db::ExcludePolicy;
    use groupview_sim::{ClientId, SimConfig};
    use groupview_store::{ObjectState, TypeTag};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn uid() -> Uid {
        Uid::from_raw(1)
    }

    fn state(b: &[u8]) -> ObjectState {
        ObjectState::initial(TypeTag::new(1), b.to_vec())
    }

    /// naming at n0; stores at n1, n2; servers n1, n2.
    fn world() -> (Sim, TxSystem, NamingService, Stores, RecoveryManager) {
        let sim = Sim::new(SimConfig::new(44).with_nodes(4));
        let stores = Stores::new(&sim);
        stores.add_store(n(1));
        stores.add_store(n(2));
        let tx = TxSystem::new(&sim, &stores);
        let ns = NamingService::new(&sim, &tx, n(0));
        let a = tx.begin_top(n(0));
        ns.register_object(a, uid(), vec![n(1), n(2)], vec![n(1), n(2)])
            .unwrap();
        tx.commit(a).unwrap();
        stores.write_local(n(1), uid(), state(b"v0")).unwrap();
        stores.write_local(n(2), uid(), state(b"v0")).unwrap();
        let rm = RecoveryManager::new(&sim, &ns, &stores);
        (sim, tx, ns, stores, rm)
    }

    #[test]
    fn excluded_store_is_refreshed_and_reincluded() {
        let (sim, tx, ns, stores, rm) = world();
        // n2 crashes; a commit writes v1 to n1 only and excludes n2.
        sim.crash(n(2));
        let a = tx.begin_top(n(3));
        stores.write_local(n(1), uid(), state(b"v1")).unwrap();
        ns.exclude_from(
            n(3),
            a,
            &[(uid(), vec![n(2)])],
            ExcludePolicy::ExcludeWriteLock,
        )
        .unwrap();
        tx.commit(a).unwrap();
        assert_eq!(ns.state_db.entry(uid()).unwrap().stores, vec![n(1)]);

        let report = rm.recover_node(n(2));
        assert_eq!(report.refreshed, vec![uid()]);
        assert_eq!(report.included, vec![uid()]);
        assert!(report.fully_recovered());
        assert_eq!(
            stores.read_local(n(2), uid()).unwrap().data,
            b"v1",
            "state refreshed from n1"
        );
        assert_eq!(ns.state_db.entry(uid()).unwrap().stores, vec![n(1), n(2)]);
    }

    #[test]
    fn store_still_in_st_needs_no_refresh() {
        let (sim, _tx, ns, stores, rm) = world();
        sim.crash(n(2));
        // No commit happened while n2 was down — it is still in St.
        let report = rm.recover_node(n(2));
        assert!(report.refreshed.is_empty());
        assert!(report.included.is_empty());
        assert_eq!(stores.read_local(n(2), uid()).unwrap().data, b"v0");
        assert_eq!(ns.state_db.entry(uid()).unwrap().stores.len(), 2);
    }

    #[test]
    fn server_insert_runs_on_recovery() {
        let (sim, _tx, ns, _stores, rm) = world();
        sim.crash(n(1));
        let report = rm.recover_node(n(1));
        assert!(report.refreshed.is_empty(), "still in St");
        assert_eq!(report.inserted, vec![uid()], "quiescence check passed");
        assert_eq!(ns.server_db.entry(uid()).unwrap().servers.len(), 2);
    }

    #[test]
    fn server_insert_deferred_while_clients_active() {
        let (sim, tx, ns, _stores, rm) = world();
        // A client is using the object (non-empty use list).
        let a = tx.begin_top(n(3));
        ns.server_db
            .get_server_locked(a, uid(), groupview_actions::LockMode::Write)
            .unwrap();
        ns.server_db
            .increment(a, ClientId::new(7), uid(), &[n(2)])
            .unwrap();
        tx.commit(a).unwrap();

        sim.crash(n(1));
        let report = rm.recover_node(n(1));
        assert_eq!(report.insert_deferred, vec![uid()]);
        assert!(!report.fully_recovered());

        // After the client releases, a retry succeeds.
        let b = tx.begin_top(n(3));
        ns.server_db
            .decrement(b, ClientId::new(7), uid(), &[n(2)])
            .unwrap();
        tx.commit(b).unwrap();
        let retry = rm.recover_server(n(1));
        assert_eq!(retry.inserted, vec![uid()]);
    }

    #[test]
    fn indoubt_transactions_resolve_from_decision_record() {
        let (sim, tx, _ns, stores, rm) = world();
        // Simulate a participant crash between phases: prepared writes with
        // a committed decision, plus an undecided one.
        let committed_tok = {
            let a = tx.begin_top(n(3));
            tx.add_participant(
                a,
                Box::new(groupview_actions::StoreWriteParticipant::new(
                    &sim,
                    &stores,
                    n(3),
                    n(1),
                    TxSystem::token(a),
                    vec![(uid(), state(b"committed"))],
                )),
            )
            .unwrap();
            sim.crash_after_sends(n(1), 1); // dies after prepare ack
            tx.commit(a).unwrap();
            TxSystem::token(a)
        };
        // Also park an undecided prepared tx directly in the (now down)
        // store's stable intent log — possible because stable storage is
        // written before the crash in the real protocol.
        sim.recover(n(1));
        let orphan = TxToken::new(9999);
        stores
            .prepare_local(n(1), orphan, vec![(uid(), state(b"orphan"))])
            .unwrap();
        sim.crash(n(1));

        let report = rm.recover_node(n(1));
        assert_eq!(report.resolved_commits, vec![committed_tok]);
        assert_eq!(report.resolved_aborts, vec![orphan]);
        assert_eq!(
            stores.read_local(n(1), uid()).unwrap().data,
            b"committed",
            "decided-commit installed, orphan discarded"
        );
    }

    #[test]
    fn retired_replica_is_purged_not_resurrected() {
        let (sim, tx, ns, stores, rm) = world();
        // n2 crashes; while it is down the replica at n2 migrates away:
        // exclude n2 from St and drop the tombstone.
        sim.crash(n(2));
        let a = tx.begin_top(n(3));
        ns.exclude_from(
            n(3),
            a,
            &[(uid(), vec![n(2)])],
            ExcludePolicy::ExcludeWriteLock,
        )
        .unwrap();
        tx.commit(a).unwrap();
        stores.retire(n(2), uid());

        let report = rm.recover_node(n(2));
        assert_eq!(report.purged, vec![uid()], "stale copy purged");
        assert!(report.refreshed.is_empty(), "no refresh for retired copy");
        assert!(report.included.is_empty(), "not re-included into St");
        assert!(report.fully_recovered());
        assert!(
            stores.read_local(n(2), uid()).is_err(),
            "local copy physically removed"
        );
        assert_eq!(
            ns.state_db.entry(uid()).unwrap().stores,
            vec![n(1)],
            "St untouched by the recovered node"
        );
    }

    #[test]
    fn recovery_of_node_without_store_only_reinserts() {
        let (sim, _tx, ns, _stores, rm) = world();
        // n3 has no store and is not in Sv: recovery is a no-op.
        sim.crash(n(3));
        let report = rm.recover_node(n(3));
        assert_eq!(report, RecoveryReport::default());
        assert!(ns.server_db.entry(uid()).unwrap().servers.contains(&n(1)));
    }

    #[test]
    fn refresh_deferred_when_no_source_reachable() {
        let (sim, tx, ns, stores, rm) = world();
        // Exclude n2, then also take n1 (the only current store) down.
        sim.crash(n(2));
        let a = tx.begin_top(n(3));
        ns.exclude_from(
            n(3),
            a,
            &[(uid(), vec![n(2)])],
            ExcludePolicy::ExcludeWriteLock,
        )
        .unwrap();
        tx.commit(a).unwrap();
        sim.crash(n(1));
        let report = rm.recover_node(n(2));
        assert_eq!(report.refresh_deferred, vec![uid()]);
        assert!(!report.fully_recovered());
        // Once n1 is back, the retry succeeds.
        rm.recover_node(n(1));
        let retry = rm.recover_store(n(2));
        assert_eq!(retry.included, vec![uid()]);
        assert_eq!(stores.read_local(n(2), uid()).unwrap().data, b"v0");
    }
}
