//! The name directory: user-given names → UIDs (§2.2).
//!
//! "The naming and binding service provides a mapping from user-given names
//! of objects to UIDs, and from UIDs to location information." The location
//! half lives in [`crate::ObjectServerDb`] / [`crate::ObjectStateDb`]; this
//! module supplies the first half: a hierarchical-free, flat directory of
//! string names, itself a persistent object manipulated under atomic
//! actions (per-name locks, undo records), exactly like the two databases.

use crate::error::DbError;
use groupview_actions::{ActionId, LockKey, LockMode, TxSystem};
use groupview_sim::{NodeId, Sim};
use groupview_store::Uid;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// Lock namespace for directory entries (databases use 1 and 2, objects 3).
pub const DIRECTORY_SPACE: u16 = 4;

/// The lock key protecting one directory name.
pub fn name_key(name: &str) -> LockKey {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    LockKey::new(DIRECTORY_SPACE, h.finish())
}

struct Inner {
    entries: BTreeMap<String, Uid>,
    lookups: u64,
}

/// A flat directory mapping application-level names to [`Uid`]s.
///
/// Operations run at the directory's node under the caller's atomic action:
/// `lookup` takes a read lock on the name, `bind_name`/`unbind_name` take a
/// write lock and register undo records, so directory updates commit or
/// abort together with the rest of the action (e.g. object creation).
#[derive(Clone)]
pub struct Directory {
    tx: TxSystem,
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Directory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Directory")
            .field("entries", &self.inner.borrow().entries.len())
            .finish()
    }
}

impl Directory {
    /// Creates an empty directory managed by the given action service.
    pub fn new(tx: &TxSystem) -> Self {
        Directory {
            tx: tx.clone(),
            inner: Rc::new(RefCell::new(Inner {
                entries: BTreeMap::new(),
                lookups: 0,
            })),
        }
    }

    /// Binds `name` to `uid` within `action`.
    ///
    /// # Errors
    ///
    /// [`DbError::AlreadyExists`] if the name is taken (by a different UID),
    /// or a lock refusal.
    pub fn bind_name(&self, action: ActionId, name: &str, uid: Uid) -> Result<(), DbError> {
        self.tx.lock(action, name_key(name), LockMode::Write)?;
        {
            let mut inner = self.inner.borrow_mut();
            match inner.entries.get(name) {
                Some(&existing) if existing == uid => return Ok(()), // idempotent
                Some(_) => return Err(DbError::AlreadyExists(uid)),
                None => {
                    inner.entries.insert(name.to_string(), uid);
                }
            }
        }
        let handle = self.inner.clone();
        let name = name.to_string();
        self.tx.push_undo(action, move || {
            handle.borrow_mut().entries.remove(&name);
        })?;
        Ok(())
    }

    /// Looks `name` up within `action` (read lock on the name).
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] (with a nil UID) for unknown names, or a lock
    /// refusal.
    pub fn lookup(&self, action: ActionId, name: &str) -> Result<Uid, DbError> {
        self.tx.lock(action, name_key(name), LockMode::Read)?;
        let mut inner = self.inner.borrow_mut();
        inner.lookups += 1;
        inner
            .entries
            .get(name)
            .copied()
            .ok_or(DbError::NotFound(Uid::from_raw(0)))
    }

    /// Removes `name` within `action`. Returns whether it existed.
    ///
    /// # Errors
    ///
    /// A lock refusal.
    pub fn unbind_name(&self, action: ActionId, name: &str) -> Result<bool, DbError> {
        self.tx.lock(action, name_key(name), LockMode::Write)?;
        let removed = self.inner.borrow_mut().entries.remove(name);
        if let Some(uid) = removed {
            let handle = self.inner.clone();
            let name = name.to_string();
            self.tx.push_undo(action, move || {
                handle.borrow_mut().entries.insert(name.clone(), uid);
            })?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// All bound names, sorted (diagnostics; no locks).
    pub fn names(&self) -> Vec<String> {
        self.inner.borrow().entries.keys().cloned().collect()
    }

    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.inner.borrow().lookups
    }
}

/// RPC access to a [`Directory`] hosted at a node.
#[derive(Clone, Debug)]
pub struct RemoteDirectory {
    sim: Sim,
    node: NodeId,
    directory: Directory,
}

impl RemoteDirectory {
    /// Wraps a directory hosted at `node`.
    pub fn new(sim: &Sim, node: NodeId, directory: Directory) -> Self {
        RemoteDirectory {
            sim: sim.clone(),
            node,
            directory,
        }
    }

    /// The hosting node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The local handle (for co-located callers and tests).
    pub fn local(&self) -> &Directory {
        &self.directory
    }

    /// Remote `lookup` from `caller`.
    ///
    /// # Errors
    ///
    /// Directory errors or [`DbError::Net`].
    pub fn lookup_from(
        &self,
        caller: NodeId,
        action: ActionId,
        name: &str,
    ) -> Result<Uid, DbError> {
        let dir = self.directory.clone();
        let name = name.to_string();
        self.sim
            .rpc_flat(caller, self.node, 48 + name.len(), 24, move || {
                dir.lookup(action, &name)
            })
    }

    /// Remote `bind_name` from `caller`.
    ///
    /// # Errors
    ///
    /// Directory errors or [`DbError::Net`].
    pub fn bind_name_from(
        &self,
        caller: NodeId,
        action: ActionId,
        name: &str,
        uid: Uid,
    ) -> Result<(), DbError> {
        let dir = self.directory.clone();
        let name = name.to_string();
        self.sim
            .rpc_flat(caller, self.node, 56 + name.len(), 16, move || {
                dir.bind_name(action, &name, uid)
            })
    }

    /// Remote `unbind_name` from `caller`.
    ///
    /// # Errors
    ///
    /// Directory errors or [`DbError::Net`].
    pub fn unbind_name_from(
        &self,
        caller: NodeId,
        action: ActionId,
        name: &str,
    ) -> Result<bool, DbError> {
        let dir = self.directory.clone();
        let name = name.to_string();
        self.sim
            .rpc_flat(caller, self.node, 48 + name.len(), 16, move || {
                dir.unbind_name(action, &name)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::SimConfig;
    use groupview_store::Stores;

    fn world() -> (Sim, TxSystem, Directory) {
        let sim = Sim::new(SimConfig::new(66).with_nodes(3));
        let stores = Stores::new(&sim);
        let tx = TxSystem::new(&sim, &stores);
        let dir = Directory::new(&tx);
        (sim, tx, dir)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn bind_lookup_unbind_roundtrip() {
        let (_, tx, dir) = world();
        let uid = Uid::from_raw(7);
        let a = tx.begin_top(n(0));
        dir.bind_name(a, "accounts/alice", uid).unwrap();
        assert_eq!(dir.lookup(a, "accounts/alice"), Ok(uid));
        tx.commit(a).unwrap();

        let b = tx.begin_top(n(0));
        assert_eq!(dir.lookup(b, "accounts/alice"), Ok(uid));
        assert!(dir.unbind_name(b, "accounts/alice").unwrap());
        assert!(!dir.unbind_name(b, "accounts/alice").unwrap());
        tx.commit(b).unwrap();
        assert!(dir.names().is_empty());
        assert!(dir.lookups() >= 2);
    }

    #[test]
    fn bind_is_idempotent_but_collisions_fail() {
        let (_, tx, dir) = world();
        let a = tx.begin_top(n(0));
        dir.bind_name(a, "x", Uid::from_raw(1)).unwrap();
        dir.bind_name(a, "x", Uid::from_raw(1)).unwrap();
        assert_eq!(
            dir.bind_name(a, "x", Uid::from_raw(2)),
            Err(DbError::AlreadyExists(Uid::from_raw(2)))
        );
        tx.commit(a).unwrap();
    }

    #[test]
    fn abort_undoes_bind_and_unbind() {
        let (_, tx, dir) = world();
        let uid = Uid::from_raw(3);
        let a = tx.begin_top(n(0));
        dir.bind_name(a, "keep", uid).unwrap();
        tx.commit(a).unwrap();

        let b = tx.begin_top(n(0));
        dir.bind_name(b, "temp", Uid::from_raw(4)).unwrap();
        dir.unbind_name(b, "keep").unwrap();
        tx.abort(b);
        assert_eq!(dir.names(), vec!["keep".to_string()]);
        let c = tx.begin_top(n(0));
        assert_eq!(dir.lookup(c, "keep"), Ok(uid));
        tx.commit(c).unwrap();
    }

    #[test]
    fn unknown_name_not_found() {
        let (_, tx, dir) = world();
        let a = tx.begin_top(n(0));
        assert!(matches!(dir.lookup(a, "ghost"), Err(DbError::NotFound(_))));
        tx.abort(a);
    }

    #[test]
    fn per_name_locking_allows_disjoint_writers() {
        let (_, tx, dir) = world();
        let a = tx.begin_top(n(0));
        let b = tx.begin_top(n(1));
        dir.bind_name(a, "a-name", Uid::from_raw(1)).unwrap();
        dir.bind_name(b, "b-name", Uid::from_raw(2)).unwrap();
        // Same name conflicts:
        let err = dir.bind_name(b, "a-name", Uid::from_raw(3)).unwrap_err();
        assert!(err.is_lock_refused());
        tx.commit(a).unwrap();
        tx.commit(b).unwrap();
        assert_eq!(dir.names().len(), 2);
    }

    #[test]
    fn readers_share_names() {
        let (_, tx, dir) = world();
        let setup = tx.begin_top(n(0));
        dir.bind_name(setup, "shared", Uid::from_raw(9)).unwrap();
        tx.commit(setup).unwrap();
        let a = tx.begin_top(n(0));
        let b = tx.begin_top(n(1));
        assert!(dir.lookup(a, "shared").is_ok());
        assert!(dir.lookup(b, "shared").is_ok());
        tx.commit(a).unwrap();
        tx.commit(b).unwrap();
    }

    #[test]
    fn remote_directory_roundtrip_and_failure() {
        let (sim, tx, dir) = world();
        let remote = RemoteDirectory::new(&sim, n(0), dir);
        assert_eq!(remote.node(), n(0));
        let a = tx.begin_top(n(1));
        remote
            .bind_name_from(n(1), a, "remote", Uid::from_raw(5))
            .unwrap();
        assert_eq!(remote.lookup_from(n(1), a, "remote"), Ok(Uid::from_raw(5)));
        tx.commit(a).unwrap();
        assert_eq!(remote.local().names().len(), 1);

        sim.crash(n(0));
        let b = tx.begin_top(n(1));
        assert!(matches!(
            remote.lookup_from(n(1), b, "remote"),
            Err(DbError::Net(_))
        ));
        tx.abort(b);
        sim.recover(n(0));
        let c = tx.begin_top(n(1));
        assert!(remote.unbind_name_from(n(1), c, "remote").unwrap());
        tx.commit(c).unwrap();
    }
}
