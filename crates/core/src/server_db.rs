//! The Object Server database: `UID → SvA` plus use lists (§4.1).

use crate::error::DbError;
use crate::keys::server_entry_key;
use groupview_actions::{ActionId, LockMode, TxSystem};
use groupview_sim::{ClientId, NodeId};
use groupview_store::Uid;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One object's entry: the set `SvA` and the per-server *use lists*.
///
/// The paper's use list for a server node is a set of `<Ni, Ci>` pairs
/// counting the clients using that server (§4.1.3). We key counters directly
/// by [`ClientId`]; a per-client-node aggregation would lose the information
/// the cleanup daemon needs when a single client crashes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerEntry {
    /// `SvA`: nodes capable of running a server, in insertion order.
    pub servers: Vec<NodeId>,
    /// Per server node, the reference counts of clients bound to it.
    pub use_lists: BTreeMap<NodeId, BTreeMap<ClientId, u32>>,
}

impl ServerEntry {
    /// Creates an entry with the given server set and empty use lists.
    pub fn new(servers: Vec<NodeId>) -> Self {
        ServerEntry {
            servers,
            use_lists: BTreeMap::new(),
        }
    }

    /// Servers whose use list is non-empty (the object is activated there).
    pub fn active_servers(&self) -> Vec<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|n| self.use_lists.get(n).is_some_and(|ul| !ul.is_empty()))
            .collect()
    }

    /// Whether no client is using any server (quiescent / passive object).
    pub fn is_quiescent(&self) -> bool {
        self.use_lists.values().all(BTreeMap::is_empty)
    }

    /// Total of all use-list counters (diagnostics).
    pub fn total_uses(&self) -> u64 {
        self.use_lists
            .values()
            .flat_map(|ul| ul.values())
            .map(|&c| c as u64)
            .sum()
    }

    /// The clients currently counted against `host`.
    pub fn clients_of(&self, host: NodeId) -> Vec<ClientId> {
        self.use_lists
            .get(&host)
            .map(|ul| ul.keys().copied().collect())
            .unwrap_or_default()
    }
}

impl fmt::Display for ServerEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sv={{")?;
        for (i, s) in self.servers.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}} uses={}", self.total_uses())
    }
}

/// Operation counters for the Object Server database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerDbOps {
    /// `GetServer` calls served.
    pub get_server: u64,
    /// `Insert` calls served (including refused-as-not-quiescent).
    pub insert: u64,
    /// `Remove` calls served.
    pub remove: u64,
    /// `Increment` calls served.
    pub increment: u64,
    /// `Decrement` calls served.
    pub decrement: u64,
}

/// Reverse index: per client, the objects with at least one use-list
/// entry for it, with the number of hosts carrying that entry. Maintained
/// alongside `entries` by every mutation path (including undo closures),
/// it turns the cleanup daemon's two scans — "which clients appear in any
/// use list" and "which entries mention this client" — from full-database
/// walks into O(log n) lookups.
type UseIndex = BTreeMap<ClientId, BTreeMap<Uid, u32>>;

struct Inner {
    /// Keyed by UID in a `BTreeMap`: point lookups stay O(log n) at 10⁵+
    /// entries and [`ObjectServerDb::uids`] iterates in sorted order
    /// without a clone-and-sort.
    entries: BTreeMap<Uid, ServerEntry>,
    use_index: UseIndex,
    ops: ServerDbOps,
    /// Cumulative `GetServer` + `Increment` traffic per object, never
    /// decremented and never undone on abort: a monotone popularity
    /// signal. Every binding scheme calls `GetServer` per bind, so this
    /// counts activations even under the standard scheme (which never
    /// touches use lists). The rebalancer reads it as a deterministic QPS
    /// proxy (it depends only on the workload execution, not on whether
    /// observability is enabled).
    lifetime_uses: BTreeMap<Uid, u64>,
}

/// Records that one host's use list for `uid` gained a `client` entry.
fn index_add(index: &mut UseIndex, client: ClientId, uid: Uid) {
    *index.entry(client).or_default().entry(uid).or_insert(0) += 1;
}

/// Records that one host's use list for `uid` dropped its `client` entry.
fn index_sub(index: &mut UseIndex, client: ClientId, uid: Uid) {
    let Some(per_uid) = index.get_mut(&client) else {
        debug_assert!(false, "use index out of sync: no client entry");
        return;
    };
    let Some(hosts) = per_uid.get_mut(&uid) else {
        debug_assert!(false, "use index out of sync: no uid entry");
        return;
    };
    *hosts -= 1;
    if *hosts == 0 {
        per_uid.remove(&uid);
        if per_uid.is_empty() {
            index.remove(&client);
        }
    }
}

/// The Object Server database (`UID → SvA` mappings).
///
/// All operations execute on behalf of an atomic action: they acquire the
/// entry's lock in the appropriate mode (`GetServer` reads; everything else
/// writes), mutate in place, and register undo records so an abort of the
/// surrounding action restores the entry exactly. Locks follow strict 2PL,
/// so uncommitted changes are never visible to other actions.
///
/// Methods here run *at the database's node*; remote access goes through
/// [`crate::NamingService`], which wraps them in RPC.
#[derive(Clone)]
pub struct ObjectServerDb {
    tx: TxSystem,
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for ObjectServerDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectServerDb")
            .field("entries", &self.inner.borrow().entries.len())
            .finish()
    }
}

impl ObjectServerDb {
    /// Creates an empty database managed by the given action service.
    pub fn new(tx: &TxSystem) -> Self {
        ObjectServerDb {
            tx: tx.clone(),
            inner: Rc::new(RefCell::new(Inner {
                entries: BTreeMap::new(),
                use_index: UseIndex::new(),
                ops: ServerDbOps::default(),
                lifetime_uses: BTreeMap::new(),
            })),
        }
    }

    /// Creates the entry for a new object with server set `servers`.
    ///
    /// # Errors
    ///
    /// [`DbError::AlreadyExists`] or a lock refusal.
    pub fn create_entry(
        &self,
        action: ActionId,
        uid: Uid,
        servers: Vec<NodeId>,
    ) -> Result<(), DbError> {
        self.tx
            .lock(action, server_entry_key(uid), LockMode::Write)?;
        {
            let mut inner = self.inner.borrow_mut();
            if inner.entries.contains_key(&uid) {
                return Err(DbError::AlreadyExists(uid));
            }
            inner.entries.insert(uid, ServerEntry::new(servers));
        }
        let handle = self.inner.clone();
        self.tx.push_undo(action, move || {
            let mut inner = handle.borrow_mut();
            let Inner {
                entries, use_index, ..
            } = &mut *inner;
            if let Some(e) = entries.remove(&uid) {
                // Defensive: undos run in reverse order, so the entry's
                // use lists are empty again by now — but if not, keep the
                // index consistent with what is being dropped.
                for ul in e.use_lists.values() {
                    for &client in ul.keys() {
                        index_sub(use_index, client, uid);
                    }
                }
            }
        })?;
        Ok(())
    }

    /// `GetServer(objectname)`: returns the entry (server list and use
    /// lists) under a lock of the caller's choosing — `Read` for the
    /// standard scheme, `Write` when the caller will update the entry in the
    /// same action (avoids upgrade livelock between concurrent binders).
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] or a lock refusal.
    pub fn get_server_locked(
        &self,
        action: ActionId,
        uid: Uid,
        mode: LockMode,
    ) -> Result<ServerEntry, DbError> {
        self.tx.lock(action, server_entry_key(uid), mode)?;
        let mut inner = self.inner.borrow_mut();
        inner.ops.get_server += 1;
        let entry = inner
            .entries
            .get(&uid)
            .cloned()
            .ok_or(DbError::NotFound(uid))?;
        *inner.lifetime_uses.entry(uid).or_insert(0) += 1;
        Ok(entry)
    }

    /// `GetServer` under a read lock (the common case).
    ///
    /// # Errors
    ///
    /// See [`ObjectServerDb::get_server_locked`].
    pub fn get_server(&self, action: ActionId, uid: Uid) -> Result<ServerEntry, DbError> {
        self.get_server_locked(action, uid, LockMode::Read)
    }

    /// `Insert(objectname, hostname)`: adds a server node.
    ///
    /// Per §4.1.2 this doubles as the quiescence check run by a recovered
    /// server node: it requires the entry's write lock **and** empty use
    /// lists. Returns whether the host was actually added (re-inserting an
    /// existing host still performs the quiescence check and succeeds as a
    /// no-op — that is exactly what a recovered node wants to know).
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`], [`DbError::NotQuiescent`], or a lock refusal.
    pub fn insert(&self, action: ActionId, uid: Uid, host: NodeId) -> Result<bool, DbError> {
        self.tx
            .lock(action, server_entry_key(uid), LockMode::Write)?;
        let added = {
            let mut inner = self.inner.borrow_mut();
            inner.ops.insert += 1;
            let entry = inner.entries.get_mut(&uid).ok_or(DbError::NotFound(uid))?;
            if !entry.is_quiescent() {
                return Err(DbError::NotQuiescent(uid));
            }
            if entry.servers.contains(&host) {
                false
            } else {
                entry.servers.push(host);
                true
            }
        };
        if added {
            let handle = self.inner.clone();
            self.tx.push_undo(action, move || {
                if let Some(e) = handle.borrow_mut().entries.get_mut(&uid) {
                    e.servers.retain(|&s| s != host);
                }
            })?;
        }
        Ok(added)
    }

    /// `Remove(objectname, hostname)`: removes a server node and its use
    /// list. Returns whether the host was present.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] or a lock refusal.
    pub fn remove(&self, action: ActionId, uid: Uid, host: NodeId) -> Result<bool, DbError> {
        self.tx
            .lock(action, server_entry_key(uid), LockMode::Write)?;
        let removed = {
            let mut inner = self.inner.borrow_mut();
            let Inner {
                entries,
                use_index,
                ops,
                ..
            } = &mut *inner;
            ops.remove += 1;
            let entry = entries.get_mut(&uid).ok_or(DbError::NotFound(uid))?;
            if let Some(pos) = entry.servers.iter().position(|&s| s == host) {
                entry.servers.remove(pos);
                let use_list = entry.use_lists.remove(&host);
                if let Some(ul) = &use_list {
                    for &client in ul.keys() {
                        index_sub(use_index, client, uid);
                    }
                }
                Some((pos, use_list))
            } else {
                None
            }
        };
        if let Some((pos, use_list)) = removed {
            let handle = self.inner.clone();
            self.tx.push_undo(action, move || {
                let mut inner = handle.borrow_mut();
                let Inner {
                    entries, use_index, ..
                } = &mut *inner;
                if let Some(e) = entries.get_mut(&uid) {
                    let pos = pos.min(e.servers.len());
                    e.servers.insert(pos, host);
                    if let Some(ul) = use_list {
                        for &client in ul.keys() {
                            index_add(use_index, client, uid);
                        }
                        e.use_lists.insert(host, ul);
                    }
                }
            })?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// `Increment(client, hostnames...)`: bumps `client`'s counter in the
    /// use list of each named host (§4.1.3).
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] or a lock refusal.
    pub fn increment(
        &self,
        action: ActionId,
        client: ClientId,
        uid: Uid,
        hosts: &[NodeId],
    ) -> Result<(), DbError> {
        self.tx
            .lock(action, server_entry_key(uid), LockMode::Write)?;
        {
            let mut inner = self.inner.borrow_mut();
            let Inner {
                entries,
                use_index,
                ops,
                lifetime_uses,
            } = &mut *inner;
            ops.increment += 1;
            let entry = entries.get_mut(&uid).ok_or(DbError::NotFound(uid))?;
            *lifetime_uses.entry(uid).or_insert(0) += 1;
            for &host in hosts {
                let counter = entry
                    .use_lists
                    .entry(host)
                    .or_default()
                    .entry(client)
                    .or_insert(0);
                if *counter == 0 {
                    index_add(use_index, client, uid);
                }
                *counter += 1;
            }
        }
        let handle = self.inner.clone();
        let hosts: Vec<NodeId> = hosts.to_vec();
        self.tx.push_undo(action, move || {
            let mut inner = handle.borrow_mut();
            let Inner {
                entries, use_index, ..
            } = &mut *inner;
            if let Some(e) = entries.get_mut(&uid) {
                for &host in &hosts {
                    if decrement_counter(e, host, client).removed {
                        index_sub(use_index, client, uid);
                    }
                }
            }
        })?;
        Ok(())
    }

    /// `Decrement(client, hostnames...)`: the complement of `Increment`.
    /// Counters saturate at zero and empty entries are pruned.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] or a lock refusal.
    pub fn decrement(
        &self,
        action: ActionId,
        client: ClientId,
        uid: Uid,
        hosts: &[NodeId],
    ) -> Result<(), DbError> {
        self.tx
            .lock(action, server_entry_key(uid), LockMode::Write)?;
        let touched: Vec<NodeId> = {
            let mut inner = self.inner.borrow_mut();
            let Inner {
                entries,
                use_index,
                ops,
                ..
            } = &mut *inner;
            ops.decrement += 1;
            let entry = entries.get_mut(&uid).ok_or(DbError::NotFound(uid))?;
            hosts
                .iter()
                .copied()
                .filter(|&host| {
                    let effect = decrement_counter(entry, host, client);
                    if effect.removed {
                        index_sub(use_index, client, uid);
                    }
                    effect.changed
                })
                .collect()
        };
        let handle = self.inner.clone();
        self.tx.push_undo(action, move || {
            let mut inner = handle.borrow_mut();
            let Inner {
                entries, use_index, ..
            } = &mut *inner;
            if let Some(e) = entries.get_mut(&uid) {
                for &host in &touched {
                    let counter = e
                        .use_lists
                        .entry(host)
                        .or_default()
                        .entry(client)
                        .or_insert(0);
                    if *counter == 0 {
                        index_add(use_index, client, uid);
                    }
                    *counter += 1;
                }
            }
        })?;
        Ok(())
    }

    /// Removes every use-list entry of `client` across all objects and
    /// hosts (cleanup after a client crash). Returns `(uid, host)` pairs
    /// cleaned.
    ///
    /// # Errors
    ///
    /// A lock refusal on any affected entry (nothing else).
    pub fn purge_client(
        &self,
        action: ActionId,
        client: ClientId,
    ) -> Result<Vec<(Uid, NodeId)>, DbError> {
        // Find affected entries from the reverse index — one O(log n)
        // lookup instead of a full-database scan (no locks needed: the
        // sweep re-checks under the entry lock before mutating).
        let affected: Vec<Uid> = {
            let inner = self.inner.borrow();
            inner
                .use_index
                .get(&client)
                .map(|per_uid| per_uid.keys().copied().collect())
                .unwrap_or_default()
        };
        let mut cleaned = Vec::new();
        for uid in affected {
            self.tx
                .lock(action, server_entry_key(uid), LockMode::Write)?;
            let removed: Vec<(NodeId, u32)> = {
                let mut inner = self.inner.borrow_mut();
                let Inner {
                    entries, use_index, ..
                } = &mut *inner;
                let Some(entry) = entries.get_mut(&uid) else {
                    continue;
                };
                let mut removed = Vec::new();
                for (&host, ul) in entry.use_lists.iter_mut() {
                    if let Some(count) = ul.remove(&client) {
                        removed.push((host, count));
                        index_sub(use_index, client, uid);
                    }
                }
                removed
            };
            for &(host, count) in &removed {
                cleaned.push((uid, host));
                let handle = self.inner.clone();
                self.tx.push_undo(action, move || {
                    let mut inner = handle.borrow_mut();
                    let Inner {
                        entries, use_index, ..
                    } = &mut *inner;
                    if let Some(e) = entries.get_mut(&uid) {
                        if e.use_lists
                            .entry(host)
                            .or_default()
                            .insert(client, count)
                            .is_none()
                        {
                            index_add(use_index, client, uid);
                        }
                    }
                })?;
            }
        }
        Ok(cleaned)
    }

    // ----- unlocked introspection (tests, metrics, daemons) -------------

    /// Snapshot of an entry without locking (diagnostics only).
    pub fn entry(&self, uid: Uid) -> Option<ServerEntry> {
        self.inner.borrow().entries.get(&uid).cloned()
    }

    /// All object UIDs with entries, sorted (the map iterates in key
    /// order, so this is a plain collect — no sort pass).
    pub fn uids(&self) -> Vec<Uid> {
        self.inner.borrow().entries.keys().copied().collect()
    }

    /// Number of entries (cheaper than `uids().len()`).
    pub fn len(&self) -> usize {
        self.inner.borrow().entries.len()
    }

    /// Whether the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().entries.is_empty()
    }

    /// UIDs whose server set contains `host`, sorted. Recovery uses this
    /// to find the objects a restarted node should re-register for,
    /// without cloning whole entries.
    pub fn uids_hosting(&self, host: NodeId) -> Vec<Uid> {
        self.inner
            .borrow()
            .entries
            .iter()
            .filter(|(_, e)| e.servers.contains(&host))
            .map(|(&uid, _)| uid)
            .collect()
    }

    /// Cumulative `GetServer` + `Increment` count for `uid` over the
    /// database's whole lifetime (monotone; aborts do not subtract). Zero
    /// for unknown or never-used objects.
    pub fn lifetime_uses(&self, uid: Uid) -> u64 {
        self.inner
            .borrow()
            .lifetime_uses
            .get(&uid)
            .copied()
            .unwrap_or(0)
    }

    /// Every client appearing in some use list (sorted, deduplicated).
    /// The cleanup daemon checks these against liveness. Served straight
    /// from the reverse index: its keys are exactly this set.
    pub fn clients_in_use(&self) -> Vec<ClientId> {
        self.inner.borrow().use_index.keys().copied().collect()
    }

    /// Operation counters.
    pub fn ops(&self) -> ServerDbOps {
        self.inner.borrow().ops
    }
}

/// What [`decrement_counter`] did to the `(host, client)` counter.
#[derive(Clone, Copy)]
struct DecrementEffect {
    /// A counter existed and was decremented.
    changed: bool,
    /// The decrement dropped the client's entry from the host's use list
    /// (counter reached zero) — the caller must update the use index.
    removed: bool,
}

/// Removes one use of `host` by `client`, pruning empty entries.
fn decrement_counter(entry: &mut ServerEntry, host: NodeId, client: ClientId) -> DecrementEffect {
    const NONE: DecrementEffect = DecrementEffect {
        changed: false,
        removed: false,
    };
    let Some(ul) = entry.use_lists.get_mut(&host) else {
        return NONE;
    };
    let Some(c) = ul.get_mut(&client) else {
        return NONE;
    };
    *c = c.saturating_sub(1);
    let removed = *c == 0;
    if removed {
        ul.remove(&client);
        if ul.is_empty() {
            entry.use_lists.remove(&host);
        }
    }
    DecrementEffect {
        changed: true,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::{Sim, SimConfig};
    use groupview_store::Stores;

    fn world() -> (Sim, TxSystem, ObjectServerDb) {
        let sim = Sim::new(SimConfig::new(21).with_nodes(4));
        let stores = Stores::new(&sim);
        let tx = TxSystem::new(&sim, &stores);
        let db = ObjectServerDb::new(&tx);
        (sim, tx, db)
    }

    fn uid() -> Uid {
        Uid::from_raw(1)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn setup_entry(tx: &TxSystem, db: &ObjectServerDb) {
        let a = tx.begin_top(n(0));
        db.create_entry(a, uid(), vec![n(1), n(2)]).unwrap();
        tx.commit(a).unwrap();
    }

    #[test]
    fn create_get_roundtrip() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        let e = db.get_server(a, uid()).unwrap();
        assert_eq!(e.servers, vec![n(1), n(2)]);
        assert!(e.is_quiescent());
        tx.commit(a).unwrap();
        assert_eq!(db.uids(), vec![uid()]);
        assert_eq!(db.ops().get_server, 1);
    }

    #[test]
    fn create_duplicate_fails() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        assert_eq!(
            db.create_entry(a, uid(), vec![n(3)]),
            Err(DbError::AlreadyExists(uid()))
        );
        tx.abort(a);
    }

    #[test]
    fn create_undone_on_abort() {
        let (_, tx, db) = world();
        let a = tx.begin_top(n(0));
        db.create_entry(a, uid(), vec![n(1)]).unwrap();
        tx.abort(a);
        assert_eq!(db.entry(uid()), None);
    }

    #[test]
    fn get_server_missing_entry() {
        let (_, tx, db) = world();
        let a = tx.begin_top(n(0));
        assert_eq!(db.get_server(a, uid()), Err(DbError::NotFound(uid())));
        tx.abort(a);
    }

    #[test]
    fn insert_remove_with_undo() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        // Insert n3, commit: persists.
        let a = tx.begin_top(n(0));
        assert!(db.insert(a, uid(), n(3)).unwrap());
        assert!(!db.insert(a, uid(), n(3)).unwrap(), "re-insert is a no-op");
        tx.commit(a).unwrap();
        assert_eq!(db.entry(uid()).unwrap().servers, vec![n(1), n(2), n(3)]);
        // Remove n1 then abort: restored at its old position.
        let b = tx.begin_top(n(0));
        assert!(db.remove(b, uid(), n(1)).unwrap());
        assert!(!db.remove(b, uid(), n(1)).unwrap());
        assert_eq!(db.entry(uid()).unwrap().servers, vec![n(2), n(3)]);
        tx.abort(b);
        assert_eq!(db.entry(uid()).unwrap().servers, vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn insert_requires_quiescence() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        db.increment(a, c(1), uid(), &[n(1)]).unwrap();
        tx.commit(a).unwrap();
        // Object in use: a recovered server node's Insert must be refused.
        let b = tx.begin_top(n(0));
        assert_eq!(db.insert(b, uid(), n(3)), Err(DbError::NotQuiescent(uid())));
        tx.abort(b);
        // After the client decrements, Insert succeeds.
        let d = tx.begin_top(n(0));
        db.decrement(d, c(1), uid(), &[n(1)]).unwrap();
        tx.commit(d).unwrap();
        let e = tx.begin_top(n(0));
        assert!(db.insert(e, uid(), n(3)).unwrap());
        tx.commit(e).unwrap();
    }

    #[test]
    fn increment_decrement_lifecycle() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        db.increment(a, c(1), uid(), &[n(1), n(2)]).unwrap();
        db.increment(a, c(2), uid(), &[n(1)]).unwrap();
        tx.commit(a).unwrap();
        let e = db.entry(uid()).unwrap();
        assert_eq!(e.total_uses(), 3);
        assert_eq!(e.active_servers(), vec![n(1), n(2)]);
        assert_eq!(e.clients_of(n(1)), vec![c(1), c(2)]);
        assert!(!e.is_quiescent());
        // Decrement c1 everywhere.
        let b = tx.begin_top(n(0));
        db.decrement(b, c(1), uid(), &[n(1), n(2)]).unwrap();
        tx.commit(b).unwrap();
        let e = db.entry(uid()).unwrap();
        assert_eq!(e.total_uses(), 1);
        assert_eq!(e.active_servers(), vec![n(1)]);
    }

    #[test]
    fn increment_undone_on_abort() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        db.increment(a, c(1), uid(), &[n(1)]).unwrap();
        tx.abort(a);
        assert!(db.entry(uid()).unwrap().is_quiescent());
    }

    #[test]
    fn decrement_undone_on_abort() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        db.increment(a, c(1), uid(), &[n(1)]).unwrap();
        tx.commit(a).unwrap();
        let b = tx.begin_top(n(0));
        db.decrement(b, c(1), uid(), &[n(1)]).unwrap();
        assert!(db.entry(uid()).unwrap().is_quiescent());
        tx.abort(b);
        assert_eq!(db.entry(uid()).unwrap().total_uses(), 1);
    }

    #[test]
    fn decrement_saturates_at_zero() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        db.decrement(a, c(9), uid(), &[n(1)]).unwrap();
        tx.commit(a).unwrap();
        assert!(db.entry(uid()).unwrap().is_quiescent());
    }

    #[test]
    fn remove_drops_use_list_and_abort_restores_it() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        db.increment(a, c(1), uid(), &[n(1)]).unwrap();
        tx.commit(a).unwrap();
        let b = tx.begin_top(n(0));
        db.remove(b, uid(), n(1)).unwrap();
        assert!(db.entry(uid()).unwrap().is_quiescent());
        tx.abort(b);
        let e = db.entry(uid()).unwrap();
        assert_eq!(e.clients_of(n(1)), vec![c(1)], "use list restored");
    }

    #[test]
    fn concurrent_readers_share_writer_refused() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let r1 = tx.begin_top(n(0));
        let r2 = tx.begin_top(n(3));
        db.get_server(r1, uid()).unwrap();
        db.get_server(r2, uid()).unwrap();
        let w = tx.begin_top(n(0));
        let err = db.insert(w, uid(), n(3)).unwrap_err();
        assert!(err.is_lock_refused());
        tx.abort(w);
        tx.commit(r1).unwrap();
        tx.commit(r2).unwrap();
        assert!(tx.locks_empty());
    }

    #[test]
    fn purge_client_cleans_all_entries() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let uid2 = Uid::from_raw(2);
        let a = tx.begin_top(n(0));
        db.create_entry(a, uid2, vec![n(2)]).unwrap();
        db.increment(a, c(1), uid(), &[n(1), n(2)]).unwrap();
        db.increment(a, c(1), uid2, &[n(2)]).unwrap();
        db.increment(a, c(2), uid2, &[n(2)]).unwrap();
        tx.commit(a).unwrap();
        let b = tx.begin_top(n(0));
        let mut cleaned = db.purge_client(b, c(1)).unwrap();
        cleaned.sort_unstable();
        assert_eq!(cleaned, vec![(uid(), n(1)), (uid(), n(2)), (uid2, n(2))]);
        tx.commit(b).unwrap();
        assert!(db.entry(uid()).unwrap().is_quiescent());
        assert_eq!(db.entry(uid2).unwrap().total_uses(), 1, "c2 untouched");
    }

    #[test]
    fn purge_undone_on_abort() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        let a = tx.begin_top(n(0));
        db.increment(a, c(1), uid(), &[n(1)]).unwrap();
        tx.commit(a).unwrap();
        let b = tx.begin_top(n(0));
        db.purge_client(b, c(1)).unwrap();
        tx.abort(b);
        assert_eq!(db.entry(uid()).unwrap().total_uses(), 1);
    }

    #[test]
    fn entry_display() {
        let e = ServerEntry::new(vec![n(1), n(2)]);
        assert_eq!(e.to_string(), "Sv={n1,n2} uses=0");
    }

    #[test]
    fn use_index_survives_aborts() {
        let (_, tx, db) = world();
        setup_entry(&tx, &db);
        // Aborted increment leaves the index empty.
        let a = tx.begin_top(n(0));
        db.increment(a, c(1), uid(), &[n(1), n(2)]).unwrap();
        assert_eq!(db.clients_in_use(), vec![c(1)]);
        tx.abort(a);
        assert!(db.clients_in_use().is_empty());
        // Committed increment, aborted decrement: the client stays indexed.
        let b = tx.begin_top(n(0));
        db.increment(b, c(1), uid(), &[n(1)]).unwrap();
        tx.commit(b).unwrap();
        let d = tx.begin_top(n(0));
        db.decrement(d, c(1), uid(), &[n(1)]).unwrap();
        assert!(db.clients_in_use().is_empty());
        tx.abort(d);
        assert_eq!(db.clients_in_use(), vec![c(1)]);
        // Aborted remove restores the host's use list into the index.
        let e = tx.begin_top(n(0));
        db.remove(e, uid(), n(1)).unwrap();
        assert!(db.clients_in_use().is_empty());
        tx.abort(e);
        assert_eq!(db.clients_in_use(), vec![c(1)]);
        // Aborted purge restores; committed purge clears.
        let f = tx.begin_top(n(0));
        db.purge_client(f, c(1)).unwrap();
        tx.abort(f);
        assert_eq!(db.clients_in_use(), vec![c(1)]);
        let g = tx.begin_top(n(0));
        assert_eq!(db.purge_client(g, c(1)).unwrap(), vec![(uid(), n(1))]);
        tx.commit(g).unwrap();
        assert!(db.clients_in_use().is_empty());
    }

    #[test]
    fn indexed_lookups_scale_to_fifty_thousand_entries() {
        let (_, tx, db) = world();
        const N: u64 = 50_000;
        // Registration: every object gets an entry, alternating hosts;
        // every 10th is put in use by one client.
        let a = tx.begin_top(n(0));
        for i in 0..N {
            let u = Uid::from_raw(i + 1);
            let host = if i % 2 == 0 { n(1) } else { n(2) };
            db.create_entry(a, u, vec![host]).unwrap();
            if i % 10 == 0 {
                db.increment(a, c(7), u, &[host]).unwrap();
            }
        }
        tx.commit(a).unwrap();
        assert_eq!(db.len(), N as usize);
        let uids = db.uids();
        assert_eq!(uids.len(), N as usize);
        assert!(
            uids.windows(2).all(|w| w[0] < w[1]),
            "sorted without a sort pass"
        );
        assert_eq!(db.uids_hosting(n(1)).len(), 25_000);
        assert_eq!(db.clients_in_use(), vec![c(7)]);

        // Registration of a recovered node on a quiescent entry.
        let b = tx.begin_top(n(0));
        assert!(db.insert(b, Uid::from_raw(2), n(3)).unwrap());
        tx.commit(b).unwrap();
        assert_eq!(db.uids_hosting(n(3)), vec![Uid::from_raw(2)]);

        // Expel: removing a host drops its use list from the index too.
        let d = tx.begin_top(n(0));
        assert!(db.remove(d, Uid::from_raw(1), n(1)).unwrap());
        tx.commit(d).unwrap();
        assert_eq!(db.uids_hosting(n(1)).len(), 24_999);

        // The reverse index hands the purge its affected set directly.
        let p = tx.begin_top(n(0));
        let cleaned = db.purge_client(p, c(7)).unwrap();
        assert_eq!(cleaned.len(), 4_999);
        tx.commit(p).unwrap();
        assert!(db.clients_in_use().is_empty());
    }
}
