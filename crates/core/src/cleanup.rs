//! The client-crash cleanup daemon (§4.1.3).
//!
//! Under the updating schemes "a crash of a client does not automatically
//! undo changes made to the database. So, failure detection and cleanup
//! protocols will be required. For example, the Object Server database could
//! periodically check if its clients are functioning, and if necessary
//! update use lists if crashes are detected."
//!
//! [`CleanupDaemon::sweep`] is that periodic check: given a liveness
//! predicate, it purges every use-list entry belonging to a dead client in
//! one atomic action per client.

use crate::naming::NamingService;
use groupview_actions::TxSystem;
use groupview_sim::{ClientId, NodeId, Sim};
use groupview_store::Uid;
use std::fmt;

/// Result of one cleanup sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleanupReport {
    /// `(client, object, server-host)` use-list entries reclaimed.
    pub purged: Vec<(ClientId, Uid, NodeId)>,
    /// Dead clients whose purge was skipped due to lock contention —
    /// they will be retried on the next sweep.
    pub deferred: Vec<ClientId>,
}

impl CleanupReport {
    /// Number of entries reclaimed.
    pub fn reclaimed(&self) -> usize {
        self.purged.len()
    }
}

/// Periodic reclaimer of use-list entries leaked by crashed clients.
#[derive(Clone)]
pub struct CleanupDaemon {
    sim: Sim,
    tx: TxSystem,
    naming: NamingService,
}

impl fmt::Debug for CleanupDaemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CleanupDaemon").finish_non_exhaustive()
    }
}

impl CleanupDaemon {
    /// Creates a daemon running at the naming service's node.
    pub fn new(sim: &Sim, naming: &NamingService) -> Self {
        CleanupDaemon {
            sim: sim.clone(),
            tx: naming.tx().clone(),
            naming: naming.clone(),
        }
    }

    /// Sweeps all use lists, purging entries of clients for which
    /// `is_alive` returns `false`. One atomic action per dead client, so a
    /// lock conflict on one object defers only that client's cleanup.
    pub fn sweep(&self, is_alive: impl Fn(ClientId) -> bool) -> CleanupReport {
        let mut report = CleanupReport::default();
        let node = self.naming.node();
        if !self.sim.is_up(node) {
            return report;
        }
        for client in self.naming.server_db.clients_in_use() {
            if is_alive(client) {
                continue;
            }
            let action = self.tx.begin_top(node);
            match self.naming.server_db.purge_client(action, client) {
                Ok(purged) => {
                    if self.tx.commit(action).is_ok() {
                        report
                            .purged
                            .extend(purged.into_iter().map(|(uid, host)| (client, uid, host)));
                    } else {
                        report.deferred.push(client);
                    }
                }
                Err(_) => {
                    self.tx.abort(action);
                    report.deferred.push(client);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_actions::LockMode;
    use groupview_sim::SimConfig;
    use groupview_store::Stores;
    use std::collections::HashSet;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn uid() -> Uid {
        Uid::from_raw(1)
    }

    fn world() -> (Sim, TxSystem, NamingService, CleanupDaemon) {
        let sim = Sim::new(SimConfig::new(55).with_nodes(4));
        let stores = Stores::new(&sim);
        let tx = TxSystem::new(&sim, &stores);
        let ns = NamingService::new(&sim, &tx, n(0));
        let a = tx.begin_top(n(0));
        ns.register_object(a, uid(), vec![n(1), n(2)], vec![n(1)])
            .unwrap();
        tx.commit(a).unwrap();
        let daemon = CleanupDaemon::new(&sim, &ns);
        (sim, tx, ns, daemon)
    }

    fn use_object(tx: &TxSystem, ns: &NamingService, client: ClientId, hosts: &[NodeId]) {
        let a = tx.begin_top(n(0));
        ns.server_db
            .get_server_locked(a, uid(), LockMode::Write)
            .unwrap();
        ns.server_db.increment(a, client, uid(), hosts).unwrap();
        tx.commit(a).unwrap();
    }

    #[test]
    fn sweep_reclaims_only_dead_clients() {
        let (_, tx, ns, daemon) = world();
        use_object(&tx, &ns, c(1), &[n(1), n(2)]);
        use_object(&tx, &ns, c(2), &[n(1)]);
        let alive: HashSet<ClientId> = [c(2)].into_iter().collect();
        let report = daemon.sweep(|cl| alive.contains(&cl));
        assert_eq!(report.reclaimed(), 2, "c1's two entries reclaimed");
        assert!(report.deferred.is_empty());
        let e = ns.server_db.entry(uid()).unwrap();
        assert_eq!(e.total_uses(), 1);
        assert_eq!(e.clients_of(n(1)), vec![c(2)]);
        // Sweep is idempotent.
        let again = daemon.sweep(|cl| alive.contains(&cl));
        assert_eq!(again.reclaimed(), 0);
    }

    #[test]
    fn sweep_defers_on_lock_contention() {
        let (_, tx, ns, daemon) = world();
        use_object(&tx, &ns, c(1), &[n(1)]);
        // Someone holds a read lock on the entry — purge needs write.
        let blocker = tx.begin_top(n(3));
        ns.server_db.get_server(blocker, uid()).unwrap();
        let report = daemon.sweep(|_| false);
        assert_eq!(report.deferred, vec![c(1)]);
        assert_eq!(report.reclaimed(), 0);
        tx.commit(blocker).unwrap();
        // Next sweep succeeds.
        let retry = daemon.sweep(|_| false);
        assert_eq!(retry.reclaimed(), 1);
        assert!(ns.server_db.entry(uid()).unwrap().is_quiescent());
    }

    #[test]
    fn sweep_noop_when_naming_node_down() {
        let (sim, tx, ns, daemon) = world();
        use_object(&tx, &ns, c(1), &[n(1)]);
        sim.crash(n(0));
        let report = daemon.sweep(|_| false);
        assert_eq!(report, CleanupReport::default());
    }

    #[test]
    fn sweep_with_all_alive_is_noop() {
        let (_, tx, ns, daemon) = world();
        use_object(&tx, &ns, c(1), &[n(1)]);
        let report = daemon.sweep(|_| true);
        assert_eq!(report.reclaimed(), 0);
        assert_eq!(ns.server_db.entry(uid()).unwrap().total_uses(), 1);
    }
}
