//! Errors of the naming-and-binding service.

use groupview_actions::TxError;
use groupview_sim::NetError;
use groupview_store::Uid;
use std::error::Error;
use std::fmt;

/// Failures of database operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbError {
    /// No entry exists for the object.
    NotFound(Uid),
    /// An entry already exists for the object (creation collision).
    AlreadyExists(Uid),
    /// `Insert` was refused because the object is not quiescent: some
    /// client's use-list counter is non-zero (§4.1.2 — "will only succeed
    /// when there are no clients using A").
    NotQuiescent(Uid),
    /// A transaction-layer failure (most commonly a refused lock).
    Tx(TxError),
    /// The database node could not be reached.
    Net(NetError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NotFound(uid) => write!(f, "no database entry for {uid}"),
            DbError::AlreadyExists(uid) => write!(f, "database entry for {uid} already exists"),
            DbError::NotQuiescent(uid) => write!(f, "object {uid} is not quiescent"),
            DbError::Tx(e) => write!(f, "database action failed: {e}"),
            DbError::Net(e) => write!(f, "database unreachable: {e}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Tx(e) => Some(e),
            DbError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TxError> for DbError {
    fn from(e: TxError) -> Self {
        DbError::Tx(e)
    }
}

impl From<NetError> for DbError {
    fn from(e: NetError) -> Self {
        DbError::Net(e)
    }
}

impl DbError {
    /// Whether the failure was a lock conflict (retryable by a new action).
    pub fn is_lock_refused(&self) -> bool {
        matches!(self, DbError::Tx(TxError::LockRefused { .. }))
    }
}

/// Failures of the binding process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindError {
    /// The naming service failed (entry missing, unreachable, ...).
    Db(DbError),
    /// No functioning server could be bound.
    NoServers {
        /// How many candidates were probed and found dead.
        probed: u32,
    },
    /// Persistent lock contention on the database entry: the binding action
    /// was refused its locks after retries.
    Contention,
    /// A transaction-layer failure outside the database.
    Tx(TxError),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::Db(e) => write!(f, "binding failed in the naming service: {e}"),
            BindError::NoServers { probed } => {
                write!(
                    f,
                    "no functioning server found ({probed} candidates probed)"
                )
            }
            BindError::Contention => write!(f, "binding gave up after repeated lock refusals"),
            BindError::Tx(e) => write!(f, "binding action failed: {e}"),
        }
    }
}

impl Error for BindError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BindError::Db(e) => Some(e),
            BindError::Tx(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for BindError {
    fn from(e: DbError) -> Self {
        BindError::Db(e)
    }
}

impl From<TxError> for BindError {
    fn from(e: TxError) -> Self {
        BindError::Tx(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_actions::{LockKey, LockMode};

    #[test]
    fn displays_and_sources() {
        let uid = Uid::from_raw(3);
        assert!(DbError::NotFound(uid).to_string().contains("uid:0.3"));
        assert!(DbError::NotQuiescent(uid).to_string().contains("quiescent"));
        let tx = DbError::from(TxError::LockRefused {
            key: LockKey::new(1, 3),
            requested: LockMode::Write,
            held: LockMode::Read,
        });
        assert!(tx.is_lock_refused());
        assert!(Error::source(&tx).is_some());
        assert!(!DbError::AlreadyExists(uid).is_lock_refused());
        let b: BindError = tx.into();
        assert!(b.to_string().contains("naming service"));
        assert!(BindError::NoServers { probed: 2 }.to_string().contains("2"));
        assert!(BindError::Contention.to_string().contains("lock"));
    }

    #[test]
    fn net_conversion() {
        let e: DbError = NetError::Timeout.into();
        assert_eq!(e, DbError::Net(NetError::Timeout));
    }
}
