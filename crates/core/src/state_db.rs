//! The Object State database: `UID → StA` (§4.2).

use crate::error::DbError;
use crate::keys::state_entry_key;
use groupview_actions::{ActionId, LockMode, TxSystem};
use groupview_sim::NodeId;
use groupview_store::Uid;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One object's entry: the set `StA` of nodes whose object stores hold a
/// (current) state of the object.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateEntry {
    /// `StA`, in insertion order.
    pub stores: Vec<NodeId>,
}

impl StateEntry {
    /// Creates an entry with the given store set.
    pub fn new(stores: Vec<NodeId>) -> Self {
        StateEntry { stores }
    }

    /// Whether `node` is listed.
    pub fn contains(&self, node: NodeId) -> bool {
        self.stores.contains(&node)
    }

    /// Number of listed stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether the object has no listed store (it is then unavailable).
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }
}

impl fmt::Display for StateEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "St={{")?;
        for (i, s) in self.stores.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

/// How `Exclude` obtains its lock when the committing client already holds
/// a read lock on the entry (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExcludePolicy {
    /// Promote the read lock to a plain write lock. Refused whenever any
    /// other client holds a read lock — the paper's noted disadvantage.
    PromoteToWrite,
    /// Use the type-specific exclude-write lock, which is compatible with
    /// read locks: concurrent readers do not block the exclusion.
    ExcludeWriteLock,
}

impl ExcludePolicy {
    /// The lock mode this policy requests.
    pub fn mode(self) -> LockMode {
        match self {
            ExcludePolicy::PromoteToWrite => LockMode::Write,
            ExcludePolicy::ExcludeWriteLock => LockMode::ExcludeWrite,
        }
    }
}

/// Operation counters for the Object State database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateDbOps {
    /// `GetView` calls served.
    pub get_view: u64,
    /// `Include` calls served.
    pub include: u64,
    /// `Exclude` calls served (batch = one call).
    pub exclude: u64,
    /// Individual store-node exclusions applied.
    pub excluded_nodes: u64,
}

struct Inner {
    /// Keyed by UID in a `BTreeMap`: O(log n) point lookups at scale and
    /// [`ObjectStateDb::uids`] iterates in sorted order for free.
    entries: BTreeMap<Uid, StateEntry>,
    ops: StateDbOps,
}

/// The Object State database (`UID → StA` mappings).
///
/// Servers call [`ObjectStateDb::get_view`] to find stores to load from and
/// [`ObjectStateDb::exclude`] at commit time to prune stores that missed the
/// state write; a recovered store node calls [`ObjectStateDb::include`]
/// after refreshing its states (§4.2). As with the server database, each
/// entry is independently lock-controlled and all mutations carry undo
/// records.
#[derive(Clone)]
pub struct ObjectStateDb {
    tx: TxSystem,
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for ObjectStateDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectStateDb")
            .field("entries", &self.inner.borrow().entries.len())
            .finish()
    }
}

impl ObjectStateDb {
    /// Creates an empty database managed by the given action service.
    pub fn new(tx: &TxSystem) -> Self {
        ObjectStateDb {
            tx: tx.clone(),
            inner: Rc::new(RefCell::new(Inner {
                entries: BTreeMap::new(),
                ops: StateDbOps::default(),
            })),
        }
    }

    /// Creates the entry for a new object with store set `stores`.
    ///
    /// # Errors
    ///
    /// [`DbError::AlreadyExists`] or a lock refusal.
    pub fn create_entry(
        &self,
        action: ActionId,
        uid: Uid,
        stores: Vec<NodeId>,
    ) -> Result<(), DbError> {
        self.tx
            .lock(action, state_entry_key(uid), LockMode::Write)?;
        {
            let mut inner = self.inner.borrow_mut();
            if inner.entries.contains_key(&uid) {
                return Err(DbError::AlreadyExists(uid));
            }
            inner.entries.insert(uid, StateEntry::new(stores));
        }
        let handle = self.inner.clone();
        self.tx.push_undo(action, move || {
            handle.borrow_mut().entries.remove(&uid);
        })?;
        Ok(())
    }

    /// `GetView(objectname)`: the list of store nodes, under a read lock.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] or a lock refusal.
    pub fn get_view(&self, action: ActionId, uid: Uid) -> Result<StateEntry, DbError> {
        self.tx.lock(action, state_entry_key(uid), LockMode::Read)?;
        let mut inner = self.inner.borrow_mut();
        inner.ops.get_view += 1;
        inner
            .entries
            .get(&uid)
            .cloned()
            .ok_or(DbError::NotFound(uid))
    }

    /// `Include(objectname, hostname)`: re-adds a store node whose object
    /// store again holds the latest committed state. Returns whether the
    /// host was actually added.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] or a lock refusal.
    pub fn include(&self, action: ActionId, uid: Uid, host: NodeId) -> Result<bool, DbError> {
        self.tx
            .lock(action, state_entry_key(uid), LockMode::Write)?;
        let added = {
            let mut inner = self.inner.borrow_mut();
            inner.ops.include += 1;
            let entry = inner.entries.get_mut(&uid).ok_or(DbError::NotFound(uid))?;
            if entry.contains(host) {
                false
            } else {
                entry.stores.push(host);
                true
            }
        };
        if added {
            let handle = self.inner.clone();
            self.tx.push_undo(action, move || {
                if let Some(e) = handle.borrow_mut().entries.get_mut(&uid) {
                    e.stores.retain(|&s| s != host);
                }
            })?;
        }
        Ok(added)
    }

    /// `Exclude(<objectname, nodelist>, ...)`: removes, for each object in
    /// the batch, the named store nodes from its `St` set — the paper's
    /// commit-time guarantee that `StA` only names nodes holding mutually
    /// consistent, latest states.
    ///
    /// The lock mode is chosen by `policy` (§4.2.1): plain write (read-lock
    /// promotion — refused under concurrent readers) or the type-specific
    /// exclude-write lock (compatible with readers). Returns the number of
    /// store-node entries removed.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] for an unknown object, or a lock refusal — in
    /// which case, per the paper, the caller's action must abort.
    pub fn exclude(
        &self,
        action: ActionId,
        batch: &[(Uid, Vec<NodeId>)],
        policy: ExcludePolicy,
    ) -> Result<usize, DbError> {
        // Lock everything first so the batch is all-or-nothing.
        for (uid, _) in batch {
            self.tx.lock(action, state_entry_key(*uid), policy.mode())?;
        }
        let mut total = 0;
        for (uid, nodes) in batch {
            let uid = *uid;
            let removed: Vec<(usize, NodeId)> = {
                let mut inner = self.inner.borrow_mut();
                let entry = inner.entries.get_mut(&uid).ok_or(DbError::NotFound(uid))?;
                let mut removed = Vec::new();
                for &node in nodes {
                    if let Some(pos) = entry.stores.iter().position(|&s| s == node) {
                        entry.stores.remove(pos);
                        removed.push((pos, node));
                    }
                }
                removed
            };
            total += removed.len();
            if !removed.is_empty() {
                let handle = self.inner.clone();
                self.tx.push_undo(action, move || {
                    if let Some(e) = handle.borrow_mut().entries.get_mut(&uid) {
                        // Reinsert in reverse so positions stay valid.
                        for &(pos, node) in removed.iter().rev() {
                            let pos = pos.min(e.stores.len());
                            e.stores.insert(pos, node);
                        }
                    }
                })?;
            }
        }
        let mut inner = self.inner.borrow_mut();
        inner.ops.exclude += 1;
        inner.ops.excluded_nodes += total as u64;
        Ok(total)
    }

    // ----- unlocked introspection ---------------------------------------

    /// Snapshot of an entry without locking (diagnostics only).
    pub fn entry(&self, uid: Uid) -> Option<StateEntry> {
        self.inner.borrow().entries.get(&uid).cloned()
    }

    /// All object UIDs with entries, sorted (map key order — no sort pass).
    pub fn uids(&self) -> Vec<Uid> {
        self.inner.borrow().entries.keys().copied().collect()
    }

    /// Operation counters.
    pub fn ops(&self) -> StateDbOps {
        self.inner.borrow().ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::{Sim, SimConfig};
    use groupview_store::Stores;

    fn world() -> (Sim, TxSystem, ObjectStateDb) {
        let sim = Sim::new(SimConfig::new(22).with_nodes(5));
        let stores = Stores::new(&sim);
        let tx = TxSystem::new(&sim, &stores);
        let db = ObjectStateDb::new(&tx);
        (sim, tx, db)
    }

    fn uid() -> Uid {
        Uid::from_raw(1)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn setup(tx: &TxSystem, db: &ObjectStateDb, stores: Vec<NodeId>) {
        let a = tx.begin_top(n(0));
        db.create_entry(a, uid(), stores).unwrap();
        tx.commit(a).unwrap();
    }

    #[test]
    fn create_get_view_roundtrip() {
        let (_, tx, db) = world();
        setup(&tx, &db, vec![n(1), n(2)]);
        let a = tx.begin_top(n(0));
        let e = db.get_view(a, uid()).unwrap();
        assert_eq!(e.stores, vec![n(1), n(2)]);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert!(e.contains(n(1)));
        tx.commit(a).unwrap();
        assert_eq!(db.ops().get_view, 1);
        assert_eq!(db.uids(), vec![uid()]);
        assert_eq!(e.to_string(), "St={n1,n2}");
    }

    #[test]
    fn exclude_removes_and_abort_restores_order() {
        let (_, tx, db) = world();
        setup(&tx, &db, vec![n(1), n(2), n(3)]);
        let a = tx.begin_top(n(0));
        let removed = db
            .exclude(
                a,
                &[(uid(), vec![n(1), n(3)])],
                ExcludePolicy::PromoteToWrite,
            )
            .unwrap();
        assert_eq!(removed, 2);
        assert_eq!(db.entry(uid()).unwrap().stores, vec![n(2)]);
        tx.abort(a);
        assert_eq!(
            db.entry(uid()).unwrap().stores,
            vec![n(1), n(2), n(3)],
            "abort must restore the original order"
        );
    }

    #[test]
    fn exclude_batch_spans_objects() {
        let (_, tx, db) = world();
        setup(&tx, &db, vec![n(1), n(2)]);
        let uid2 = Uid::from_raw(2);
        let a = tx.begin_top(n(0));
        db.create_entry(a, uid2, vec![n(2), n(3)]).unwrap();
        tx.commit(a).unwrap();
        let b = tx.begin_top(n(0));
        let removed = db
            .exclude(
                b,
                &[(uid(), vec![n(2)]), (uid2, vec![n(2), n(9)])],
                ExcludePolicy::ExcludeWriteLock,
            )
            .unwrap();
        assert_eq!(removed, 2, "n9 was not present and does not count");
        tx.commit(b).unwrap();
        assert_eq!(db.entry(uid()).unwrap().stores, vec![n(1)]);
        assert_eq!(db.entry(uid2).unwrap().stores, vec![n(3)]);
        assert_eq!(db.ops().excluded_nodes, 2);
    }

    #[test]
    fn promotion_policy_blocked_by_concurrent_reader() {
        // The §4.2.1 problem: reader R and committing client W both hold
        // read locks; W's promotion to Write is refused.
        let (_, tx, db) = world();
        setup(&tx, &db, vec![n(1), n(2)]);
        let r = tx.begin_top(n(3));
        db.get_view(r, uid()).unwrap();
        let w = tx.begin_top(n(0));
        db.get_view(w, uid()).unwrap();
        let err = db
            .exclude(w, &[(uid(), vec![n(2)])], ExcludePolicy::PromoteToWrite)
            .unwrap_err();
        assert!(err.is_lock_refused());
        tx.abort(w);
        tx.commit(r).unwrap();
    }

    #[test]
    fn exclude_write_policy_succeeds_under_readers() {
        // Same scenario with the type-specific lock: succeeds.
        let (_, tx, db) = world();
        setup(&tx, &db, vec![n(1), n(2)]);
        let r = tx.begin_top(n(3));
        db.get_view(r, uid()).unwrap();
        let w = tx.begin_top(n(0));
        db.get_view(w, uid()).unwrap();
        let removed = db
            .exclude(w, &[(uid(), vec![n(2)])], ExcludePolicy::ExcludeWriteLock)
            .unwrap();
        assert_eq!(removed, 1);
        tx.commit(w).unwrap();
        tx.commit(r).unwrap();
        assert_eq!(db.entry(uid()).unwrap().stores, vec![n(1)]);
        assert!(tx.locks_empty());
    }

    #[test]
    fn two_concurrent_excluders_serialize() {
        let (_, tx, db) = world();
        setup(&tx, &db, vec![n(1), n(2)]);
        let a = tx.begin_top(n(0));
        let b = tx.begin_top(n(3));
        db.exclude(a, &[(uid(), vec![n(1)])], ExcludePolicy::ExcludeWriteLock)
            .unwrap();
        let err = db
            .exclude(b, &[(uid(), vec![n(2)])], ExcludePolicy::ExcludeWriteLock)
            .unwrap_err();
        assert!(err.is_lock_refused());
        tx.commit(a).unwrap();
        tx.abort(b);
    }

    #[test]
    fn include_readds_with_undo() {
        let (_, tx, db) = world();
        setup(&tx, &db, vec![n(1)]);
        let a = tx.begin_top(n(0));
        assert!(db.include(a, uid(), n(2)).unwrap());
        assert!(!db.include(a, uid(), n(2)).unwrap(), "idempotent");
        tx.abort(a);
        assert_eq!(db.entry(uid()).unwrap().stores, vec![n(1)]);
        let b = tx.begin_top(n(0));
        db.include(b, uid(), n(2)).unwrap();
        tx.commit(b).unwrap();
        assert_eq!(db.entry(uid()).unwrap().stores, vec![n(1), n(2)]);
        assert_eq!(db.ops().include, 3);
    }

    #[test]
    fn unknown_objects_are_reported() {
        let (_, tx, db) = world();
        let a = tx.begin_top(n(0));
        assert_eq!(db.get_view(a, uid()), Err(DbError::NotFound(uid())));
        assert_eq!(db.include(a, uid(), n(1)), Err(DbError::NotFound(uid())));
        assert_eq!(
            db.exclude(a, &[(uid(), vec![n(1)])], ExcludePolicy::PromoteToWrite),
            Err(DbError::NotFound(uid()))
        );
        tx.abort(a);
    }

    #[test]
    fn policy_modes() {
        assert_eq!(ExcludePolicy::PromoteToWrite.mode(), LockMode::Write);
        assert_eq!(
            ExcludePolicy::ExcludeWriteLock.mode(),
            LockMode::ExcludeWrite
        );
    }
}
