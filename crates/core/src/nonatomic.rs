//! The paper's §5 proposal: a *non-atomic* server name cache.
//!
//! "A useful extension would be based on investigating possible ways of
//! reducing dependence on the need for atomic action support for the naming
//! and binding services. … one way would be to keep available server
//! related data in a 'traditional (non-atomic)' name server, and retain the
//! services of a modified object state server database with atomic action
//! support. It would then become the responsibility of the Object State
//! database to guarantee consistent binding of clients to servers."
//!
//! [`ServerCache`] is that traditional name server: a plain map from UID to
//! candidate server nodes, read and updated **without locks, actions, or
//! undo** — updates apply immediately and survive aborts. Stale or wrong
//! entries cost only probe failures at bind time; *safety* is preserved
//! because the Object State database (still fully transactional) alone
//! decides which stores hold current state. Experiment E13 validates both
//! halves of the conjecture.

use groupview_sim::{NodeId, Sim};
use groupview_store::Uid;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

#[derive(Default)]
struct Inner {
    entries: HashMap<Uid, Vec<NodeId>>,
    reads: u64,
    updates: u64,
}

/// A traditional (non-transactional) name server for `UID → servers` data.
///
/// All operations are immediate and unsynchronised with any atomic action:
/// there is nothing to lock, nothing to undo, and no quiescence check. The
/// cache is best-effort by design.
#[derive(Clone, Default)]
pub struct ServerCache {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for ServerCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerCache")
            .field("entries", &self.inner.borrow().entries.len())
            .finish()
    }
}

impl ServerCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ServerCache::default()
    }

    /// Reads the candidate servers for `uid` (empty if unknown).
    pub fn read(&self, uid: Uid) -> Vec<NodeId> {
        let mut inner = self.inner.borrow_mut();
        inner.reads += 1;
        inner.entries.get(&uid).cloned().unwrap_or_default()
    }

    /// Replaces the entry for `uid` (seeding at object creation).
    pub fn seed(&self, uid: Uid, servers: Vec<NodeId>) {
        let mut inner = self.inner.borrow_mut();
        inner.updates += 1;
        inner.entries.insert(uid, servers);
    }

    /// Records that `node` failed to answer for `uid`: removed immediately,
    /// no lock, no undo. Returns whether it was listed.
    pub fn record_failure(&self, uid: Uid, node: NodeId) -> bool {
        let mut inner = self.inner.borrow_mut();
        inner.updates += 1;
        match inner.entries.get_mut(&uid) {
            Some(list) => {
                let before = list.len();
                list.retain(|&s| s != node);
                before != list.len()
            }
            None => false,
        }
    }

    /// Records that `node` can (again) serve `uid` — e.g. after recovery.
    /// Returns whether it was newly added.
    pub fn record_server(&self, uid: Uid, node: NodeId) -> bool {
        let mut inner = self.inner.borrow_mut();
        inner.updates += 1;
        let list = inner.entries.entry(uid).or_default();
        if list.contains(&node) {
            false
        } else {
            list.push(node);
            true
        }
    }

    /// `(reads, updates)` served so far.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.reads, inner.updates)
    }
}

/// RPC access to a [`ServerCache`] hosted at a node.
///
/// Lookups are a single request/response; updates are **one-way,
/// fire-and-forget** messages — a traditional name server offers no
/// transactional handshake, and a lost update only means a stale cache.
#[derive(Clone, Debug)]
pub struct RemoteServerCache {
    sim: Sim,
    node: NodeId,
    cache: ServerCache,
}

impl RemoteServerCache {
    /// Wraps a cache hosted at `node`.
    pub fn new(sim: &Sim, node: NodeId, cache: ServerCache) -> Self {
        RemoteServerCache {
            sim: sim.clone(),
            node,
            cache,
        }
    }

    /// The hosting node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The local handle (co-located callers, seeding, tests).
    pub fn local(&self) -> &ServerCache {
        &self.cache
    }

    /// Remote lookup from `caller`. Returns `None` when the cache node is
    /// unreachable (the caller may fall back or abort).
    pub fn read_from(&self, caller: NodeId, uid: Uid) -> Option<Vec<NodeId>> {
        let cache = self.cache.clone();
        self.sim
            .rpc(caller, self.node, 32, 96, move || cache.read(uid))
            .ok()
    }

    /// One-way failure report from `caller` (best effort).
    pub fn report_failure_from(&self, caller: NodeId, uid: Uid, node: NodeId) {
        let cache = self.cache.clone();
        let _ = self.sim.send_oneway(caller, self.node, 40, move || {
            cache.record_failure(uid, node);
        });
    }

    /// One-way availability report from `caller` (best effort).
    pub fn report_server_from(&self, caller: NodeId, uid: Uid, node: NodeId) {
        let cache = self.cache.clone();
        let _ = self.sim.send_oneway(caller, self.node, 40, move || {
            cache.record_server(uid, node);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::SimConfig;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn uid() -> Uid {
        Uid::from_raw(1)
    }

    #[test]
    fn seed_read_update_cycle() {
        let c = ServerCache::new();
        assert!(c.read(uid()).is_empty());
        c.seed(uid(), vec![n(1), n(2)]);
        assert_eq!(c.read(uid()), vec![n(1), n(2)]);
        assert!(c.record_failure(uid(), n(1)));
        assert!(!c.record_failure(uid(), n(1)));
        assert!(!c.record_failure(Uid::from_raw(9), n(1)));
        assert_eq!(c.read(uid()), vec![n(2)]);
        assert!(c.record_server(uid(), n(3)));
        assert!(!c.record_server(uid(), n(3)));
        assert_eq!(c.read(uid()), vec![n(2), n(3)]);
        let (reads, updates) = c.stats();
        assert_eq!(reads, 4);
        assert_eq!(updates, 6);
    }

    #[test]
    fn updates_are_immediate_and_unprotected() {
        // No locks, no actions: two "concurrent" updaters interleave freely
        // and the last write wins — exactly the non-atomic semantics.
        let c = ServerCache::new();
        c.seed(uid(), vec![n(1)]);
        c.record_server(uid(), n(2));
        c.seed(uid(), vec![n(9)]); // clobbers everything, no conflict
        assert_eq!(c.read(uid()), vec![n(9)]);
    }

    #[test]
    fn remote_lookup_and_oneway_reports() {
        let sim = Sim::new(SimConfig::new(8).with_nodes(3));
        let cache = ServerCache::new();
        cache.seed(uid(), vec![n(1), n(2)]);
        let remote = RemoteServerCache::new(&sim, n(0), cache);
        assert_eq!(remote.node(), n(0));
        assert_eq!(remote.read_from(n(1), uid()), Some(vec![n(1), n(2)]));
        remote.report_failure_from(n(1), uid(), n(1));
        assert_eq!(remote.local().read(uid()), vec![n(2)]);
        remote.report_server_from(n(1), uid(), n(1));
        assert_eq!(remote.local().read(uid()), vec![n(2), n(1)]);
    }

    #[test]
    fn unreachable_cache_returns_none_and_drops_reports() {
        let sim = Sim::new(SimConfig::new(8).with_nodes(3));
        let cache = ServerCache::new();
        cache.seed(uid(), vec![n(1)]);
        let remote = RemoteServerCache::new(&sim, n(0), cache);
        sim.crash(n(0));
        assert_eq!(remote.read_from(n(1), uid()), None);
        remote.report_failure_from(n(1), uid(), n(1)); // silently lost
        sim.recover(n(0));
        assert_eq!(remote.local().read(uid()), vec![n(1)], "report was lost");
    }
}
