//! Lock-key namespaces of the naming service.

use groupview_actions::LockKey;
use groupview_store::Uid;

/// Namespace of Object Server database entries.
pub const SERVER_SPACE: u16 = 1;
/// Namespace of Object State database entries.
pub const STATE_SPACE: u16 = 2;

/// The lock key protecting `uid`'s Object Server database entry.
pub fn server_entry_key(uid: Uid) -> LockKey {
    LockKey::new(SERVER_SPACE, uid.raw())
}

/// The lock key protecting `uid`'s Object State database entry.
pub fn state_entry_key(uid: Uid) -> LockKey {
    LockKey::new(STATE_SPACE, uid.raw())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_do_not_collide() {
        let uid = Uid::from_raw(9);
        assert_ne!(server_entry_key(uid), state_entry_key(uid));
        assert_eq!(server_entry_key(uid).key(), 9);
        assert_eq!(state_entry_key(uid).key(), 9);
    }
}
