//! Client-side binding: the three database access schemes of §4.1.
//!
//! A client that wants to use object `A` must turn `UIDA` into bindings to
//! functioning servers. How the Object Server database is consulted — and
//! whether the client may *update* it — distinguishes the schemes:
//!
//! * [`BindingScheme::Standard`] (Figure 6): `GetServer` runs as a nested
//!   action of the client action; its read lock is inherited and held to the
//!   client's commit. `Sv` is static — "at binding time each and every
//!   client determines 'the hard way' that a server is unavailable" (probe
//!   failures are counted so experiments can quantify that cost). Read-only
//!   clients may exploit the §4.1.2 optimisation and bind to any convenient
//!   server.
//! * [`BindingScheme::IndependentTopLevel`] (Figure 7): a separate top-level
//!   action performs `GetServer` + `Increment` (use lists) + `Remove`
//!   (pruning failed servers); a final top-level action `Decrement`s after
//!   the client action terminates. The database stays "a relatively
//!   up-to-date list of functioning server nodes".
//! * [`BindingScheme::NestedTopLevel`] (Figure 8): identical updates, but
//!   the actions are *nested top-level* actions running within the client
//!   action.
//!
//! Implementation note: the updating schemes take the entry's **write lock
//! up front** (via `get_server_locked`) instead of promoting a read lock;
//! two concurrent binders that both read first and then promote would
//! refuse each other forever. Write-lock refusals are retried a bounded
//! number of times before reporting [`BindError::Contention`].

use crate::error::BindError;
use crate::naming::NamingService;
use crate::nonatomic::RemoteServerCache;
use groupview_actions::{ActionId, LockMode, TxSystem};
use groupview_sim::{ClientId, NodeId, Sim};
use groupview_store::Uid;
use std::fmt;

/// Which of the paper's §4.1 schemes a [`Binder`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingScheme {
    /// Figure 6: nested-action `GetServer`, static `Sv`, no use lists.
    Standard,
    /// Figure 7: independent top-level actions around the client action.
    IndependentTopLevel,
    /// Figure 8: nested top-level actions inside the client action.
    NestedTopLevel,
    /// The paper's §5 extension: server data lives in a *traditional
    /// (non-atomic)* name server — no locks, no actions, instant
    /// best-effort updates — while the Object State database alone (still
    /// transactional) guarantees binding consistency.
    CachedNameServer,
}

impl BindingScheme {
    /// All schemes, for parameter sweeps.
    pub const ALL: [BindingScheme; 4] = [
        BindingScheme::Standard,
        BindingScheme::IndependentTopLevel,
        BindingScheme::NestedTopLevel,
        BindingScheme::CachedNameServer,
    ];

    /// Whether this scheme maintains use lists in the server database.
    pub fn maintains_use_lists(self) -> bool {
        matches!(
            self,
            BindingScheme::IndependentTopLevel | BindingScheme::NestedTopLevel
        )
    }

    /// Whether this scheme consults the non-atomic server cache instead of
    /// the transactional Object Server database.
    pub fn uses_server_cache(self) -> bool {
        matches!(self, BindingScheme::CachedNameServer)
    }
}

impl fmt::Display for BindingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingScheme::Standard => write!(f, "standard"),
            BindingScheme::IndependentTopLevel => write!(f, "independent-top-level"),
            BindingScheme::NestedTopLevel => write!(f, "nested-top-level"),
            BindingScheme::CachedNameServer => write!(f, "cached-name-server"),
        }
    }
}

/// What a client asks the binder for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindRequest {
    /// The requesting client.
    pub client: ClientId,
    /// The node the client (and its action) runs on.
    pub client_node: NodeId,
    /// The object to bind to.
    pub uid: Uid,
    /// Desired number of server replicas (`|Sv'|`).
    pub replicas: usize,
    /// Whether the client will only read the object — enables the §4.1.2
    /// optimisation in the standard scheme (bind to any convenient server).
    pub read_only: bool,
    /// When the object is already activated, the set `SvA'` the client MUST
    /// bind to (§3.2: "the client must be bound to all of the functioning
    /// servers ∈ SvA'"). Overrides free selection and the read-only
    /// optimisation.
    pub required: Option<Vec<NodeId>>,
}

impl BindRequest {
    /// A write-mode request for one replica.
    pub fn new(client: ClientId, client_node: NodeId, uid: Uid) -> Self {
        BindRequest {
            client,
            client_node,
            uid,
            replicas: 1,
            read_only: false,
            required: None,
        }
    }

    /// Sets the desired replica count.
    pub fn with_replicas(mut self, k: usize) -> Self {
        self.replicas = k;
        self
    }

    /// Marks the request read-only.
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Requires binding to exactly this activated server set.
    pub fn with_required(mut self, servers: Vec<NodeId>) -> Self {
        self.replicas = servers.len();
        self.required = Some(servers);
        self
    }
}

/// A successful binding: the subset `Sv'` the client is bound to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The bound object.
    pub uid: Uid,
    /// Functioning servers the client bound to (`Sv'`).
    pub servers: Vec<NodeId>,
    /// Whether use lists were incremented (schemes 2 and 3) — if so, the
    /// caller must call [`Binder::complete`] when the client action ends.
    pub registered: bool,
    /// Servers probed and found dead ("the hard way" discoveries).
    pub probe_failures: u32,
    /// Servers this binding removed from `Sv` (schemes 2 and 3).
    pub removed: Vec<NodeId>,
    /// Binding attempts that were retried due to lock contention.
    pub retries: u32,
}

/// The client-side binding engine.
///
/// One binder per world and scheme; clients call [`Binder::bind`] at the
/// start of their action and — for the updating schemes —
/// [`Binder::complete`] after the action terminates.
#[derive(Clone)]
pub struct Binder {
    sim: Sim,
    tx: TxSystem,
    naming: NamingService,
    scheme: BindingScheme,
    max_retries: u32,
    cache: Option<RemoteServerCache>,
}

impl fmt::Debug for Binder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Binder")
            .field("scheme", &self.scheme)
            .finish()
    }
}

impl Binder {
    /// Creates a binder using `scheme` against `naming`.
    pub fn new(sim: &Sim, naming: &NamingService, scheme: BindingScheme) -> Self {
        Binder {
            sim: sim.clone(),
            tx: naming.tx().clone(),
            naming: naming.clone(),
            scheme,
            max_retries: 3,
            cache: None,
        }
    }

    /// Attaches the non-atomic server cache (required for
    /// [`BindingScheme::CachedNameServer`]).
    pub fn with_cache(mut self, cache: RemoteServerCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the retry budget for contended bindings.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// The scheme in use.
    pub fn scheme(&self) -> BindingScheme {
        self.scheme
    }

    /// Binds `req.client` to servers of `req.uid` on behalf of the client
    /// action `action`, according to the binder's scheme.
    ///
    /// # Errors
    ///
    /// [`BindError::NoServers`] when no functioning server exists (per the
    /// paper the client action must then abort), [`BindError::Db`] for
    /// naming-service failures, [`BindError::Contention`] when the updating
    /// schemes exhaust their lock retries.
    pub fn bind(&self, action: ActionId, req: &BindRequest) -> Result<Binding, BindError> {
        match self.scheme {
            BindingScheme::Standard => self.bind_standard(action, req),
            BindingScheme::IndependentTopLevel => self.bind_updating(action, req, false),
            BindingScheme::NestedTopLevel => self.bind_updating(action, req, true),
            BindingScheme::CachedNameServer => self.bind_cached(req),
        }
    }

    /// Releases a registered binding: runs the `Decrement` action of
    /// Figures 7/8. Must be called after the client action terminated
    /// (independent scheme) or just before it terminates (nested-top-level
    /// scheme, passing the still-active client action as `enclosing`).
    /// No-op for unregistered bindings.
    ///
    /// # Errors
    ///
    /// [`BindError::Contention`] if the database entry stays locked through
    /// all retries, [`BindError::Db`] for other failures. Callers that
    /// cannot retry may leave the cleanup daemon to reclaim the counts (the
    /// paper's client-crash story).
    pub fn complete(
        &self,
        enclosing: Option<ActionId>,
        req: &BindRequest,
        binding: &Binding,
    ) -> Result<(), BindError> {
        if !binding.registered {
            return Ok(());
        }
        for _ in 0..=self.max_retries {
            let t2 = match (self.scheme, enclosing) {
                (BindingScheme::NestedTopLevel, Some(encl)) if self.tx.is_active(encl) => {
                    self.tx.begin_nested_top(encl)
                }
                // Fall back to an independent action (e.g. the client action
                // already terminated).
                _ => self.tx.begin_top(req.client_node),
            };
            match self.naming.decrement_from(
                req.client_node,
                t2,
                req.client,
                req.uid,
                &binding.servers,
            ) {
                Ok(()) => {
                    self.tx.commit(t2).map_err(BindError::Tx)?;
                    return Ok(());
                }
                Err(e) if e.is_lock_refused() => {
                    self.tx.abort(t2);
                    continue;
                }
                Err(e) => {
                    self.tx.abort(t2);
                    return Err(e.into());
                }
            }
        }
        Err(BindError::Contention)
    }

    // ----- scheme implementations ----------------------------------------

    /// The §5 extension: one plain lookup against the non-atomic name
    /// server — no action, no locks — then probe. Dead servers are reported
    /// back with one-way messages that take effect immediately (and are
    /// never rolled back). Binding consistency is entirely the Object State
    /// database's job (activation still runs the transactional `GetView`).
    fn bind_cached(&self, req: &BindRequest) -> Result<Binding, BindError> {
        let cache = self
            .cache
            .as_ref()
            .expect("CachedNameServer scheme requires Binder::with_cache");
        let candidates = match &req.required {
            Some(required) => required.clone(),
            None => cache
                .read_from(req.client_node, req.uid)
                .ok_or(BindError::Db(crate::error::DbError::Net(
                    groupview_sim::NetError::Timeout,
                )))?,
        };
        let (servers, dead) = self.probe_candidates(req, &candidates);
        for &host in &dead {
            cache.report_failure_from(req.client_node, req.uid, host);
        }
        if servers.is_empty() {
            return Err(BindError::NoServers {
                probed: dead.len() as u32,
            });
        }
        Ok(Binding {
            uid: req.uid,
            servers,
            registered: false,
            probe_failures: dead.len() as u32,
            removed: dead,
            retries: 0,
        })
    }

    fn bind_standard(&self, action: ActionId, req: &BindRequest) -> Result<Binding, BindError> {
        // GetServer as a nested action of the client action (Figure 6).
        let nested = self.tx.begin_nested(action);
        let entry =
            match self
                .naming
                .get_server_from(req.client_node, nested, req.uid, LockMode::Read)
            {
                Ok(e) => e,
                Err(e) => {
                    self.tx.abort(nested);
                    return Err(e.into());
                }
            };
        self.tx.commit(nested).map_err(BindError::Tx)?;

        // An already-activated object pins the selection to SvA' (§3.2).
        // Otherwise: fixed selection algorithm; read-only clients start at a
        // client-dependent offset so concurrent readers spread across
        // (possibly disjoint) servers — the §4.1.2 optimisation.
        let candidates = if let Some(required) = &req.required {
            required.clone()
        } else if req.read_only && !entry.servers.is_empty() {
            let start = req.client.raw() as usize % entry.servers.len();
            let mut v = entry.servers[start..].to_vec();
            v.extend_from_slice(&entry.servers[..start]);
            v
        } else {
            entry.servers.clone()
        };
        let (servers, dead) = self.probe_candidates(req, &candidates);
        if servers.is_empty() {
            return Err(BindError::NoServers {
                probed: dead.len() as u32,
            });
        }
        Ok(Binding {
            uid: req.uid,
            servers,
            registered: false,
            probe_failures: dead.len() as u32,
            removed: Vec::new(),
            retries: 0,
        })
    }

    fn bind_updating(
        &self,
        action: ActionId,
        req: &BindRequest,
        nested_top: bool,
    ) -> Result<Binding, BindError> {
        let mut retries = 0;
        for attempt in 0..=self.max_retries {
            let t1 = if nested_top {
                self.tx.begin_nested_top(action)
            } else {
                self.tx.begin_top(req.client_node)
            };
            match self.try_bind_update(t1, req) {
                Ok(mut binding) => {
                    binding.retries = retries;
                    return Ok(binding);
                }
                Err(BindError::Db(e)) if e.is_lock_refused() => {
                    if attempt == self.max_retries {
                        return Err(BindError::Contention);
                    }
                    retries += 1;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(BindError::Contention)
    }

    /// One attempt of the Figure 7/8 binding action; aborts `t1` on failure.
    fn try_bind_update(&self, t1: ActionId, req: &BindRequest) -> Result<Binding, BindError> {
        let entry = match self
            .naming
            .get_server_from(req.client_node, t1, req.uid, LockMode::Write)
        {
            Ok(e) => e,
            Err(e) => {
                self.tx.abort(t1);
                return Err(e.into());
            }
        };
        // An already-activated object pins the selection to SvA' (§3.2);
        // otherwise "if the use list returned is non-empty, then the client
        // tries to bind to only those servers with non-zero counters."
        let candidates = if let Some(required) = &req.required {
            required.clone()
        } else {
            let active = entry.active_servers();
            if active.is_empty() {
                entry.servers.clone()
            } else {
                active
            }
        };
        let (servers, dead) = self.probe_candidates(req, &candidates);
        if servers.is_empty() {
            self.tx.abort(t1);
            return Err(BindError::NoServers {
                probed: dead.len() as u32,
            });
        }
        // Remove the servers whose probe failed from Sv — and only those:
        // candidates that were never probed (the desired replica count was
        // already reached) must stay listed. The write lock is already
        // held, so only genuine database errors can surface here.
        let mut removed = Vec::new();
        let probe_failures = dead.len() as u32;
        for host in dead {
            match self.naming.remove_from(req.client_node, t1, req.uid, host) {
                Ok(true) => removed.push(host),
                Ok(false) => {}
                Err(e) => {
                    self.tx.abort(t1);
                    return Err(e.into());
                }
            }
        }
        if let Err(e) =
            self.naming
                .increment_from(req.client_node, t1, req.client, req.uid, &servers)
        {
            self.tx.abort(t1);
            return Err(e.into());
        }
        if let Err(e) = self.tx.commit(t1) {
            return Err(BindError::Tx(e));
        }
        Ok(Binding {
            uid: req.uid,
            servers,
            registered: true,
            probe_failures,
            removed,
            retries: 0,
        })
    }

    /// Probes candidates in order until `replicas` servers answered;
    /// returns `(bound, probed_and_dead)`. Candidates beyond the desired
    /// replica count are never probed and appear in neither list.
    fn probe_candidates(
        &self,
        req: &BindRequest,
        candidates: &[NodeId],
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut bound = Vec::new();
        let mut dead = Vec::new();
        for &host in candidates {
            if bound.len() >= req.replicas.max(1) {
                break;
            }
            if self.probe(req.client_node, host) {
                bound.push(host);
            } else {
                dead.push(host);
            }
        }
        (bound, dead)
    }

    /// A bind attempt to a server node: a small RPC that fails iff the node
    /// is unreachable. This is the paper's "the binding will succeed for all
    /// the nodes ∈ SvA' that are functioning".
    fn probe(&self, from: NodeId, host: NodeId) -> bool {
        self.sim.rpc(from, host, 8, 8, || ()).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::SimConfig;
    use groupview_store::Stores;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn uid() -> Uid {
        Uid::from_raw(1)
    }

    /// World: naming at n0; servers n1..n3; client node n4.
    fn world(scheme: BindingScheme) -> (Sim, TxSystem, NamingService, Binder) {
        let sim = Sim::new(SimConfig::new(33).with_nodes(5));
        let stores = Stores::new(&sim);
        let tx = TxSystem::new(&sim, &stores);
        let ns = NamingService::new(&sim, &tx, n(0));
        let a = tx.begin_top(n(0));
        ns.register_object(a, uid(), vec![n(1), n(2), n(3)], vec![n(1)])
            .unwrap();
        tx.commit(a).unwrap();
        let binder = Binder::new(&sim, &ns, scheme);
        (sim, tx, ns, binder)
    }

    fn req() -> BindRequest {
        BindRequest::new(c(1), n(4), uid()).with_replicas(2)
    }

    #[test]
    fn standard_binds_first_k_functioning() {
        let (_, tx, ns, binder) = world(BindingScheme::Standard);
        let a = tx.begin_top(n(4));
        let b = binder.bind(a, &req()).unwrap();
        assert_eq!(b.servers, vec![n(1), n(2)]);
        assert_eq!(b.probe_failures, 0);
        assert!(!b.registered);
        // Read lock inherited by the client action until it ends:
        assert!(!tx.locks_empty());
        tx.commit(a).unwrap();
        assert!(tx.locks_empty());
        // Sv untouched, no use lists (scheme property).
        let e = ns.server_db.entry(uid()).unwrap();
        assert_eq!(e.servers, vec![n(1), n(2), n(3)]);
        assert!(e.is_quiescent());
    }

    #[test]
    fn standard_discovers_crashes_the_hard_way() {
        let (sim, tx, ns, binder) = world(BindingScheme::Standard);
        sim.crash(n(1));
        let a = tx.begin_top(n(4));
        let b = binder.bind(a, &req()).unwrap();
        assert_eq!(b.servers, vec![n(2), n(3)]);
        assert_eq!(b.probe_failures, 1, "n1 probed dead");
        tx.commit(a).unwrap();
        // Static Sv: the dead server stays listed for the next client.
        assert_eq!(ns.server_db.entry(uid()).unwrap().servers.len(), 3);
        let a2 = tx.begin_top(n(4));
        let b2 = binder.bind(a2, &req()).unwrap();
        assert_eq!(b2.probe_failures, 1, "every client pays the probe");
        tx.commit(a2).unwrap();
    }

    #[test]
    fn standard_no_servers_fails() {
        let (sim, tx, _, binder) = world(BindingScheme::Standard);
        for i in 1..=3 {
            sim.crash(n(i));
        }
        let a = tx.begin_top(n(4));
        assert_eq!(
            binder.bind(a, &req()),
            Err(BindError::NoServers { probed: 3 })
        );
        tx.abort(a);
    }

    #[test]
    fn standard_read_only_spreads_clients() {
        let (_, tx, _, binder) = world(BindingScheme::Standard);
        let a = tx.begin_top(n(4));
        let r0 = BindRequest::new(c(0), n(4), uid()).read_only();
        let r1 = BindRequest::new(c(1), n(4), uid()).read_only();
        let b0 = binder.bind(a, &r0).unwrap();
        let b1 = binder.bind(a, &r1).unwrap();
        assert_eq!(b0.servers, vec![n(1)]);
        assert_eq!(b1.servers, vec![n(2)], "different reader, different server");
        tx.commit(a).unwrap();
    }

    #[test]
    fn unknown_object_is_db_error() {
        let (_, tx, _, binder) = world(BindingScheme::Standard);
        let a = tx.begin_top(n(4));
        let bad = BindRequest::new(c(1), n(4), Uid::from_raw(99));
        assert!(matches!(
            binder.bind(a, &bad),
            Err(BindError::Db(crate::error::DbError::NotFound(_)))
        ));
        tx.abort(a);
    }

    #[test]
    fn independent_registers_and_prunes() {
        let (sim, tx, ns, binder) = world(BindingScheme::IndependentTopLevel);
        sim.crash(n(2));
        let a = tx.begin_top(n(4));
        let b = binder.bind(a, &req()).unwrap();
        assert_eq!(b.servers, vec![n(1), n(3)]);
        assert!(b.registered);
        assert_eq!(b.removed, vec![n(2)], "failed server pruned from Sv");
        // The binding action already committed: entry is unlocked, use
        // lists updated, Sv pruned.
        let e = ns.server_db.entry(uid()).unwrap();
        assert_eq!(e.servers, vec![n(1), n(3)]);
        assert_eq!(e.active_servers(), vec![n(1), n(3)]);
        tx.commit(a).unwrap();
        // Decrement after the client action:
        binder.complete(None, &req(), &b).unwrap();
        assert!(ns.server_db.entry(uid()).unwrap().is_quiescent());
        assert!(tx.locks_empty());
    }

    #[test]
    fn independent_second_client_joins_active_servers() {
        let (_, tx, _, binder) = world(BindingScheme::IndependentTopLevel);
        let a1 = tx.begin_top(n(4));
        let r1 = BindRequest::new(c(1), n(4), uid()).with_replicas(2);
        let b1 = binder.bind(a1, &r1).unwrap();
        assert_eq!(b1.servers, vec![n(1), n(2)]);
        // Client 2 asks for 3 replicas but must join the active set {1,2}.
        let a2 = tx.begin_top(n(4));
        let r2 = BindRequest::new(c(2), n(4), uid()).with_replicas(3);
        let b2 = binder.bind(a2, &r2).unwrap();
        assert_eq!(b2.servers, vec![n(1), n(2)], "bound to active servers only");
        tx.commit(a1).unwrap();
        tx.commit(a2).unwrap();
        binder.complete(None, &r1, &b1).unwrap();
        binder.complete(None, &r2, &b2).unwrap();
    }

    #[test]
    fn updating_scheme_retries_then_reports_contention() {
        let (_, tx, ns, binder) = world(BindingScheme::IndependentTopLevel);
        // An unrelated action camps on the entry's write lock.
        let blocker = tx.begin_top(n(0));
        ns.server_db
            .get_server_locked(blocker, uid(), LockMode::Write)
            .unwrap();
        let a = tx.begin_top(n(4));
        assert_eq!(binder.bind(a, &req()), Err(BindError::Contention));
        tx.abort(a);
        tx.abort(blocker);
        // After the blocker goes away binding succeeds again.
        let a2 = tx.begin_top(n(4));
        let b = binder.bind(a2, &req()).unwrap();
        assert!(b.registered);
        tx.commit(a2).unwrap();
        binder.complete(None, &req(), &b).unwrap();
    }

    #[test]
    fn nested_top_level_scheme_full_cycle() {
        let (_, tx, ns, binder) = world(BindingScheme::NestedTopLevel);
        let a = tx.begin_top(n(4));
        let b = binder.bind(a, &req()).unwrap();
        assert!(b.registered);
        assert_eq!(ns.server_db.entry(uid()).unwrap().total_uses(), 2);
        // Decrement runs as a nested top-level action inside the client
        // action, before it commits.
        binder.complete(Some(a), &req(), &b).unwrap();
        assert!(ns.server_db.entry(uid()).unwrap().is_quiescent());
        tx.commit(a).unwrap();
        assert!(tx.locks_empty());
    }

    #[test]
    fn ntl_increment_survives_client_abort() {
        // If the client aborts after binding but before complete(), the
        // use-list increment survives (it committed independently) — the
        // documented leak the cleanup daemon reclaims.
        let (_, tx, ns, binder) = world(BindingScheme::NestedTopLevel);
        let a = tx.begin_top(n(4));
        let b = binder.bind(a, &req()).unwrap();
        tx.abort(a);
        assert_eq!(
            ns.server_db.entry(uid()).unwrap().total_uses(),
            2,
            "leak: counters survive the enclosing abort"
        );
        // complete() falls back to an independent action:
        binder.complete(Some(a), &req(), &b).unwrap();
        assert!(ns.server_db.entry(uid()).unwrap().is_quiescent());
    }

    #[test]
    fn scheme_metadata() {
        assert!(!BindingScheme::Standard.maintains_use_lists());
        assert!(BindingScheme::IndependentTopLevel.maintains_use_lists());
        assert!(BindingScheme::NestedTopLevel.maintains_use_lists());
        assert!(!BindingScheme::CachedNameServer.maintains_use_lists());
        assert!(BindingScheme::CachedNameServer.uses_server_cache());
        assert!(!BindingScheme::Standard.uses_server_cache());
        assert_eq!(BindingScheme::ALL.len(), 4);
        assert_eq!(BindingScheme::Standard.to_string(), "standard");
        assert_eq!(
            BindingScheme::CachedNameServer.to_string(),
            "cached-name-server"
        );
    }

    #[test]
    fn cached_scheme_binds_and_prunes_without_locks() {
        let (sim, tx, ns, _binder) = world(BindingScheme::Standard);
        let cache = crate::nonatomic::ServerCache::new();
        cache.seed(uid(), vec![n(1), n(2), n(3)]);
        let remote = crate::nonatomic::RemoteServerCache::new(&sim, n(0), cache);
        let binder =
            Binder::new(&sim, &ns, BindingScheme::CachedNameServer).with_cache(remote.clone());
        sim.crash(n(1));
        let a = tx.begin_top(n(4));
        let b = binder.bind(a, &req()).unwrap();
        assert_eq!(b.servers, vec![n(2), n(3)]);
        assert_eq!(b.probe_failures, 1);
        assert!(!b.registered);
        // The dead server was pruned from the cache instantly, without any
        // lock — even while the client action is still running.
        assert_eq!(remote.local().read(uid()), vec![n(2), n(3)]);
        // And no lock is held on the server entry at all:
        assert!(tx
            .lock_holders(crate::keys::server_entry_key(uid()))
            .is_empty());
        tx.commit(a).unwrap();
        // The transactional Object Server database was never touched.
        assert_eq!(ns.server_db.entry(uid()).unwrap().servers.len(), 3);
    }

    #[test]
    fn binder_accessors() {
        let (_, _, _, binder) = world(BindingScheme::NestedTopLevel);
        assert_eq!(binder.scheme(), BindingScheme::NestedTopLevel);
        let b2 = binder.clone().with_max_retries(0);
        assert_eq!(b2.scheme(), BindingScheme::NestedTopLevel);
    }
}
