//! The combined naming-and-binding service ("group view database").
//!
//! The paper's Arjuna implementation realises the Object Server and Object
//! State databases "as a single Arjuna object, referred to as the group view
//! database" (§5). [`NamingService`] is that object: it hosts both databases
//! at a designated node and exposes the remote operations clients and
//! servers invoke over RPC.
//!
//! The paper assumes the service itself is always available (§3.1 — it
//! could be replicated with the very mechanisms it manages). Experiments may
//! still crash its node to observe behaviour; every remote operation then
//! fails with a network error.

use crate::error::DbError;
use crate::server_db::{ObjectServerDb, ServerEntry};
use crate::state_db::{ExcludePolicy, ObjectStateDb, StateEntry};
use groupview_actions::{ActionId, LockMode, TxSystem};
use groupview_sim::{ClientId, NodeId, Sim};
use groupview_store::Uid;
use std::fmt;

/// The naming-and-binding service of the world.
///
/// Cloneable handle. The local databases are public for in-process use by
/// tests and daemons; protocol code running on other nodes must use the
/// `*_from` RPC wrappers, which charge message costs and honour crashes and
/// partitions.
#[derive(Clone)]
pub struct NamingService {
    sim: Sim,
    tx: TxSystem,
    node: NodeId,
    /// The Object Server database (local handle).
    pub server_db: ObjectServerDb,
    /// The Object State database (local handle).
    pub state_db: ObjectStateDb,
}

impl fmt::Debug for NamingService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NamingService")
            .field("node", &self.node)
            .field("server_db", &self.server_db)
            .field("state_db", &self.state_db)
            .finish()
    }
}

/// Approximate wire sizes for cost accounting.
const REQ: usize = 48;
const RESP_SMALL: usize = 24;
const RESP_ENTRY: usize = 160;

impl NamingService {
    /// Creates the service hosted at `node`.
    pub fn new(sim: &Sim, tx: &TxSystem, node: NodeId) -> Self {
        NamingService {
            sim: sim.clone(),
            tx: tx.clone(),
            node,
            server_db: ObjectServerDb::new(tx),
            state_db: ObjectStateDb::new(tx),
        }
    }

    /// The node hosting the databases.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The action service backing the databases.
    pub fn tx(&self) -> &TxSystem {
        &self.tx
    }

    /// Registers a new object in both databases (within `action`): server
    /// set `sv` and store set `st`.
    ///
    /// # Errors
    ///
    /// Propagates database errors; on error the caller should abort
    /// `action`, which undoes any partial registration.
    pub fn register_object(
        &self,
        action: ActionId,
        uid: Uid,
        sv: Vec<NodeId>,
        st: Vec<NodeId>,
    ) -> Result<(), DbError> {
        self.server_db.create_entry(action, uid, sv)?;
        self.state_db.create_entry(action, uid, st)?;
        Ok(())
    }

    // ----- remote Object Server database operations ----------------------

    /// Remote `GetServer` from `caller` under the given lock mode.
    ///
    /// # Errors
    ///
    /// Database errors, or [`DbError::Net`] if the service is unreachable.
    pub fn get_server_from(
        &self,
        caller: NodeId,
        action: ActionId,
        uid: Uid,
        mode: LockMode,
    ) -> Result<ServerEntry, DbError> {
        let db = self.server_db.clone();
        self.sim
            .rpc_flat(caller, self.node, REQ, RESP_ENTRY, move || {
                db.get_server_locked(action, uid, mode)
            })
    }

    /// Remote `Insert` from `caller`.
    ///
    /// # Errors
    ///
    /// Database errors (including [`DbError::NotQuiescent`]) or
    /// [`DbError::Net`].
    pub fn insert_from(
        &self,
        caller: NodeId,
        action: ActionId,
        uid: Uid,
        host: NodeId,
    ) -> Result<bool, DbError> {
        let db = self.server_db.clone();
        self.sim
            .rpc_flat(caller, self.node, REQ, RESP_SMALL, move || {
                db.insert(action, uid, host)
            })
    }

    /// Remote `Remove` from `caller`.
    ///
    /// # Errors
    ///
    /// Database errors or [`DbError::Net`].
    pub fn remove_from(
        &self,
        caller: NodeId,
        action: ActionId,
        uid: Uid,
        host: NodeId,
    ) -> Result<bool, DbError> {
        let db = self.server_db.clone();
        self.sim
            .rpc_flat(caller, self.node, REQ, RESP_SMALL, move || {
                db.remove(action, uid, host)
            })
    }

    /// Remote `Increment` from `caller`.
    ///
    /// # Errors
    ///
    /// Database errors or [`DbError::Net`].
    pub fn increment_from(
        &self,
        caller: NodeId,
        action: ActionId,
        client: ClientId,
        uid: Uid,
        hosts: &[NodeId],
    ) -> Result<(), DbError> {
        let db = self.server_db.clone();
        let hosts = hosts.to_vec();
        self.sim
            .rpc_flat(caller, self.node, REQ, RESP_SMALL, move || {
                db.increment(action, client, uid, &hosts)
            })
    }

    /// Remote `Decrement` from `caller`.
    ///
    /// # Errors
    ///
    /// Database errors or [`DbError::Net`].
    pub fn decrement_from(
        &self,
        caller: NodeId,
        action: ActionId,
        client: ClientId,
        uid: Uid,
        hosts: &[NodeId],
    ) -> Result<(), DbError> {
        let db = self.server_db.clone();
        let hosts = hosts.to_vec();
        self.sim
            .rpc_flat(caller, self.node, REQ, RESP_SMALL, move || {
                db.decrement(action, client, uid, &hosts)
            })
    }

    // ----- remote Object State database operations ------------------------

    /// Remote `GetView` from `caller`.
    ///
    /// # Errors
    ///
    /// Database errors or [`DbError::Net`].
    pub fn get_view_from(
        &self,
        caller: NodeId,
        action: ActionId,
        uid: Uid,
    ) -> Result<StateEntry, DbError> {
        let db = self.state_db.clone();
        self.sim
            .rpc_flat(caller, self.node, REQ, RESP_ENTRY, move || {
                db.get_view(action, uid)
            })
    }

    /// Remote `Include` from `caller`.
    ///
    /// # Errors
    ///
    /// Database errors or [`DbError::Net`].
    pub fn include_from(
        &self,
        caller: NodeId,
        action: ActionId,
        uid: Uid,
        host: NodeId,
    ) -> Result<bool, DbError> {
        let db = self.state_db.clone();
        self.sim
            .rpc_flat(caller, self.node, REQ, RESP_SMALL, move || {
                db.include(action, uid, host)
            })
    }

    /// Remote `Exclude` from `caller`.
    ///
    /// # Errors
    ///
    /// Database errors (notably lock refusal under
    /// [`ExcludePolicy::PromoteToWrite`]) or [`DbError::Net`].
    pub fn exclude_from(
        &self,
        caller: NodeId,
        action: ActionId,
        batch: &[(Uid, Vec<NodeId>)],
        policy: ExcludePolicy,
    ) -> Result<usize, DbError> {
        let db = self.state_db.clone();
        let batch = batch.to_vec();
        self.sim
            .rpc_flat(caller, self.node, REQ + 32, RESP_SMALL, move || {
                db.exclude(action, &batch, policy)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::SimConfig;
    use groupview_store::Stores;

    fn world() -> (Sim, TxSystem, NamingService) {
        let sim = Sim::new(SimConfig::new(30).with_nodes(4));
        let stores = Stores::new(&sim);
        let tx = TxSystem::new(&sim, &stores);
        let ns = NamingService::new(&sim, &tx, NodeId::new(0));
        (sim, tx, ns)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn register_and_query_remotely() {
        let (sim, tx, ns) = world();
        let uid = Uid::from_raw(1);
        let a = tx.begin_top(n(0));
        ns.register_object(a, uid, vec![n(1), n(2)], vec![n(2), n(3)])
            .unwrap();
        tx.commit(a).unwrap();

        let before = sim.counters().delivered;
        let b = tx.begin_top(n(1));
        let sv = ns.get_server_from(n(1), b, uid, LockMode::Read).unwrap();
        let st = ns.get_view_from(n(1), b, uid).unwrap();
        tx.commit(b).unwrap();
        assert_eq!(sv.servers, vec![n(1), n(2)]);
        assert_eq!(st.stores, vec![n(2), n(3)]);
        assert_eq!(sim.counters().delivered - before, 4, "2 RPCs over the wire");
        assert_eq!(ns.node(), n(0));
    }

    #[test]
    fn register_is_atomic_under_abort() {
        let (_, tx, ns) = world();
        let uid = Uid::from_raw(1);
        let a = tx.begin_top(n(0));
        ns.register_object(a, uid, vec![n(1)], vec![n(2)]).unwrap();
        tx.abort(a);
        assert!(ns.server_db.entry(uid).is_none());
        assert!(ns.state_db.entry(uid).is_none());
    }

    #[test]
    fn colocated_caller_pays_no_messages() {
        let (sim, tx, ns) = world();
        let uid = Uid::from_raw(1);
        let a = tx.begin_top(n(0));
        ns.register_object(a, uid, vec![n(1)], vec![n(1)]).unwrap();
        tx.commit(a).unwrap();
        let before = sim.counters().delivered;
        let b = tx.begin_top(n(0));
        ns.get_server_from(n(0), b, uid, LockMode::Read).unwrap();
        tx.commit(b).unwrap();
        assert_eq!(sim.counters().delivered, before);
    }

    #[test]
    fn unreachable_service_reports_net_error() {
        let (sim, tx, ns) = world();
        sim.crash(n(0));
        let b = tx.begin_top(n(1));
        let err = ns
            .get_server_from(n(1), b, Uid::from_raw(1), LockMode::Read)
            .unwrap_err();
        assert!(matches!(err, DbError::Net(_)));
        tx.abort(b);
    }

    #[test]
    fn remote_updates_roundtrip() {
        let (_, tx, ns) = world();
        let uid = Uid::from_raw(1);
        let a = tx.begin_top(n(0));
        ns.register_object(a, uid, vec![n(1)], vec![n(1), n(2)])
            .unwrap();
        tx.commit(a).unwrap();

        let b = tx.begin_top(n(1));
        ns.insert_from(n(1), b, uid, n(3)).unwrap();
        ns.increment_from(n(1), b, ClientId::new(5), uid, &[n(1)])
            .unwrap();
        tx.commit(b).unwrap();
        let e = ns.server_db.entry(uid).unwrap();
        assert_eq!(e.servers, vec![n(1), n(3)]);
        assert_eq!(e.total_uses(), 1);

        let c = tx.begin_top(n(1));
        ns.decrement_from(n(1), c, ClientId::new(5), uid, &[n(1)])
            .unwrap();
        ns.remove_from(n(1), c, uid, n(3)).unwrap();
        ns.exclude_from(
            n(1),
            c,
            &[(uid, vec![n(2)])],
            ExcludePolicy::ExcludeWriteLock,
        )
        .unwrap();
        ns.include_from(n(1), c, uid, n(2)).unwrap();
        tx.commit(c).unwrap();
        assert_eq!(ns.server_db.entry(uid).unwrap().servers, vec![n(1)]);
        assert_eq!(ns.state_db.entry(uid).unwrap().stores, vec![n(1), n(2)]);
    }
}
