//! Transactional replica migration.
//!
//! A migration is **one** top-level atomic action at the naming node that
//! retargets every piece of book-keeping the group-view databases hold
//! about a replica, plus the state copy itself, under two-phase commit:
//!
//! | step | table | op |
//! |---|---|---|
//! | 1 | `Sv` | `Insert(uid, to)` — carries the §4.1.2 quiescence check |
//! | 2 | `Sv` | `Remove(uid, from)` |
//! | 3 | `St` | `Include(uid, to)` |
//! | 4 | `St` | `Exclude(uid, from)` under the exclude-write lock |
//! | 5 | store | stage the latest committed state on `to` (2PC participant) |
//!
//! Because all five run under one action, a directory lookup before the
//! commit sees the old placement, after it the new one, and *never* a
//! half-moved object. An object that is in use fails step 1 with
//! `NotQuiescent` — the move aborts cleanly and the in-flight clients
//! finish on the pinned incarnation; a concurrent binder's lock makes
//! steps refuse the same way. Both surface as [`MigrateError::Busy`]:
//! retry later.
//!
//! After the commit, the old host is cleaned up *outside* the action (the
//! action's effects must be exactly its undo-logged ones): the replica
//! leaves the [`ReplicaRegistry`](groupview_replication::ReplicaRegistry),
//! the store copy is deleted, and a tombstone (`Stores::retire`) is left
//! so §4.2 recovery purges instead of resurrects if the old host was down
//! during the move.

use crate::lifecycle::Membership;
use groupview_actions::{StoreWriteParticipant, TxError, TxSystem};
use groupview_core::{DbError, ExcludePolicy};
use groupview_obs::Phase;
use groupview_sim::NodeId;
use groupview_store::Uid;
use std::fmt;

/// Why a migration did not happen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// The source node hosts neither a server entry nor a state replica.
    NotHosted {
        /// The object.
        uid: Uid,
        /// The claimed source node.
        node: NodeId,
    },
    /// The destination already hosts the object in both `Sv` and `St`.
    AlreadyHosted {
        /// The object.
        uid: Uid,
        /// The destination node.
        node: NodeId,
    },
    /// The object is in use or its entries are locked — the move aborted
    /// cleanly; retry once the clients finish.
    Busy(Uid),
    /// No current `St` member could supply the committed state, or the
    /// destination is down.
    Unreachable(Uid),
    /// A database error other than the retriable refusals above.
    Db(DbError),
    /// The surrounding action failed to commit (e.g. the destination
    /// crashed during two-phase commit's prepare).
    Commit(TxError),
}

impl MigrateError {
    /// Whether the move was refused because of concurrent activity and
    /// should simply be retried later.
    pub fn is_busy(&self) -> bool {
        matches!(self, MigrateError::Busy(_))
    }
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::NotHosted { uid, node } => {
                write!(f, "{uid} has no replica on {node}")
            }
            MigrateError::AlreadyHosted { uid, node } => {
                write!(f, "{uid} already fully hosted on {node}")
            }
            MigrateError::Busy(uid) => write!(f, "{uid} is in use; migration refused"),
            MigrateError::Unreachable(uid) => {
                write!(f, "no reachable state source or destination for {uid}")
            }
            MigrateError::Db(e) => write!(f, "migration database error: {e}"),
            MigrateError::Commit(e) => write!(f, "migration commit failed: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// Maps a database refusal to the retriable [`MigrateError::Busy`] and
/// everything else to a hard error.
fn classify(uid: Uid, e: DbError) -> MigrateError {
    match e {
        DbError::NotQuiescent(_) => MigrateError::Busy(uid),
        e if e.is_lock_refused() => MigrateError::Busy(uid),
        e => MigrateError::Db(e),
    }
}

impl Membership {
    /// Moves the replica of `uid` from `from` to `to` in one atomic
    /// action, preserving the object's replication strength. See the
    /// [module docs](crate::migrate) for the step-by-step protocol.
    ///
    /// # Errors
    ///
    /// [`MigrateError::Busy`] when the object is in use (retry later);
    /// [`MigrateError::Unreachable`] when no state source is reachable;
    /// the other variants for precondition and commit failures. Every
    /// error path aborts the action — the databases are untouched.
    pub fn migrate(&self, uid: Uid, from: NodeId, to: NodeId) -> Result<(), MigrateError> {
        let sys = &self.sys;
        let naming = sys.naming();
        let coord = naming.node();
        let sv = naming
            .server_db
            .entry(uid)
            .ok_or(MigrateError::Db(DbError::NotFound(uid)))?;
        let st = naming
            .state_db
            .entry(uid)
            .ok_or(MigrateError::Db(DbError::NotFound(uid)))?;
        let in_sv = sv.servers.contains(&from);
        let in_st = st.contains(from);
        if !in_sv && !in_st {
            return Err(MigrateError::NotHosted { uid, node: from });
        }
        if sv.servers.contains(&to) && st.contains(to) {
            return Err(MigrateError::AlreadyHosted { uid, node: to });
        }
        if !sys.sim().is_up(to) {
            return Err(MigrateError::Unreachable(uid));
        }

        let start = sys.sim().now().as_micros();
        let tx = sys.tx();
        let action = tx.begin_top(coord);
        let staged = (|| {
            // (1)+(2) repoint Sv. Insert's quiescence check is the
            // correctness linchpin: it refuses while any client uses the
            // object, so no activation ever straddles the move.
            naming
                .server_db
                .insert(action, uid, to)
                .map_err(|e| classify(uid, e))?;
            if in_sv {
                naming
                    .server_db
                    .remove(action, uid, from)
                    .map_err(|e| classify(uid, e))?;
            }
            // (3)+(4) repoint St under the exclude-write lock, so the
            // cardinality of St is preserved within the same action.
            naming
                .state_db
                .include(action, uid, to)
                .map_err(|e| classify(uid, e))?;
            if in_st {
                naming
                    .state_db
                    .exclude(
                        action,
                        &[(uid, vec![from])],
                        ExcludePolicy::ExcludeWriteLock,
                    )
                    .map_err(|e| classify(uid, e))?;
            }
            // (5) copy the latest committed state from any current St
            // member (the source itself qualifies if it is up) onto the
            // destination, as a prepared write that commits with the
            // action.
            let copy_start = sys.sim().now().as_micros();
            let mut state = None;
            for &src in &st.stores {
                if let Ok(s) = sys.stores().read_remote(coord, src, uid) {
                    state = Some(s);
                    break;
                }
            }
            let Some(state) = state else {
                return Err(MigrateError::Unreachable(uid));
            };
            sys.stores().add_store(to);
            sys.stores().unretire(to, uid);
            tx.add_participant(
                action,
                Box::new(StoreWriteParticipant::new(
                    sys.sim(),
                    sys.stores(),
                    coord,
                    to,
                    TxSystem::token(action),
                    vec![(uid, state)],
                )),
            )
            .map_err(MigrateError::Commit)?;
            sys.obs().span(
                action.raw(),
                Phase::MigrateCopy,
                copy_start,
                sys.sim().now().as_micros(),
            );
            Ok(())
        })();
        if let Err(e) = staged {
            tx.abort(action);
            return Err(e);
        }
        tx.commit(action).map_err(MigrateError::Commit)?;

        // Post-commit cleanup of the old host. Not part of the action:
        // the committed group-view entries no longer reference `from`, so
        // these are pure garbage collection — and the tombstone makes the
        // collection crash-proof (recovery purges instead of resurrects).
        sys.registry().remove_at(uid, from);
        sys.stores().retire(from, uid);
        let _ = sys.stores().with(from, |s| s.remove(uid));
        sys.obs().span(
            action.raw(),
            Phase::Migrate,
            start,
            sys.sim().now().as_micros(),
        );
        sys.sim()
            .note(format!("membership: {uid} migrated {from} -> {to}"));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_replication::{Counter, CounterOp, System};

    /// naming at 0; servers+stores 1..=3; clients 4..=5.
    fn world() -> (System, Membership, Vec<NodeId>) {
        let sys = System::builder(11).nodes(6).build();
        let m = Membership::new(&sys);
        let n = sys.sim().nodes();
        (sys, m, n)
    }

    #[test]
    fn migrate_repoints_both_databases_and_moves_state() {
        let (sys, m, n) = world();
        let uid = sys
            .create_typed(Counter::new(3), &n[1..3], &n[1..3])
            .unwrap();
        let fresh = m.add_node();

        m.migrate(uid.uid(), n[1], fresh).unwrap();

        let sv = sys.naming().server_db.entry(uid.uid()).unwrap();
        assert!(!sv.servers.contains(&n[1]));
        assert!(sv.servers.contains(&fresh));
        assert_eq!(sv.servers.len(), 2, "Sv strength preserved");
        let st = sys.naming().state_db.entry(uid.uid()).unwrap();
        assert!(!st.contains(n[1]));
        assert!(st.contains(fresh));
        assert_eq!(st.len(), 2, "St strength preserved");
        assert_eq!(
            sys.stores().read_local(fresh, uid.uid()).unwrap().data,
            sys.stores().read_local(n[2], uid.uid()).unwrap().data,
            "byte-identical committed state on the new host"
        );
        assert!(
            sys.stores().read_local(n[1], uid.uid()).is_err(),
            "old copy deleted"
        );
        assert!(sys.stores().is_retired(n[1], uid.uid()), "tombstoned");
    }

    #[test]
    fn busy_object_aborts_cleanly_and_leaves_no_trace() {
        let (sys, m, n) = world();
        let uid = sys
            .create_typed(Counter::new(0), &n[1..3], &n[1..3])
            .unwrap();
        let fresh = m.add_node();
        let client = sys.client(n[4]);
        let counter = uid.open(&client);
        let action = client.begin_action();
        counter.activate(action, 2).unwrap();
        counter.invoke(action, CounterOp::Add(1)).unwrap();

        let before_sv = sys.naming().server_db.entry(uid.uid()).unwrap();
        let before_st = sys.naming().state_db.entry(uid.uid()).unwrap();
        let err = m.migrate(uid.uid(), n[1], fresh).unwrap_err();
        assert!(err.is_busy(), "{err}");
        assert_eq!(sys.naming().server_db.entry(uid.uid()).unwrap(), before_sv);
        assert_eq!(sys.naming().state_db.entry(uid.uid()).unwrap(), before_st);
        assert!(sys.tx().locks_empty() || sys.tx().is_active(action));
        assert!(!sys.stores().is_retired(n[1], uid.uid()));

        // The pinned incarnation finishes untouched.
        assert_eq!(counter.invoke(action, CounterOp::Get).unwrap(), 1);
        client.commit(action).unwrap();
    }

    #[test]
    fn migrate_rejects_bad_endpoints() {
        let (sys, m, n) = world();
        let uid = sys
            .create_typed(Counter::new(0), &n[1..3], &n[1..3])
            .unwrap();
        let fresh = m.add_node();
        assert_eq!(
            m.migrate(uid.uid(), n[3], fresh),
            Err(MigrateError::NotHosted {
                uid: uid.uid(),
                node: n[3]
            })
        );
        assert_eq!(
            m.migrate(uid.uid(), n[1], n[2]),
            Err(MigrateError::AlreadyHosted {
                uid: uid.uid(),
                node: n[2]
            })
        );
        sys.sim().crash(fresh);
        assert_eq!(
            m.migrate(uid.uid(), n[1], fresh),
            Err(MigrateError::Unreachable(uid.uid()))
        );
    }

    #[test]
    fn migrated_object_survives_source_recovery() {
        let (sys, m, n) = world();
        let uid = sys
            .create_typed(Counter::new(5), &n[1..3], &n[1..3])
            .unwrap();
        let fresh = m.add_node();
        // Source crashes; the move still commits (state comes from n2).
        sys.sim().crash(n[1]);
        m.migrate(uid.uid(), n[1], fresh).unwrap();

        // §4.2 recovery of the old host purges the stale copy instead of
        // re-including it — the tombstone at work.
        let report = sys.recovery().recover_node(n[1]);
        assert_eq!(report.purged, vec![uid.uid()]);
        assert!(report.included.is_empty());
        let st = sys.naming().state_db.entry(uid.uid()).unwrap();
        assert!(!st.contains(n[1]), "no resurrection");
        assert_eq!(st.len(), 2);

        // And the object still answers with the committed value.
        let client = sys.client(n[4]);
        let counter = uid.open(&client);
        let action = client.begin_action();
        counter.activate(action, 2).unwrap();
        assert_eq!(counter.invoke(action, CounterOp::Get).unwrap(), 5);
        client.commit(action).unwrap();
    }

    #[test]
    fn migration_records_spans_when_observed() {
        let (sys, m, n) = {
            let sys = System::builder(13).nodes(6).observe().build();
            let m = Membership::new(&sys);
            let n = sys.sim().nodes();
            (sys, m, n)
        };
        let uid = sys
            .create_typed(Counter::new(0), &n[1..3], &n[1..3])
            .unwrap();
        let fresh = m.add_node();
        m.migrate(uid.uid(), n[1], fresh).unwrap();
        let snap = sys.metrics_snapshot();
        assert_eq!(snap.phase(Phase::Migrate).count(), 1);
        assert_eq!(snap.phase(Phase::MigrateCopy).count(), 1);
        assert!(snap.phase_breakdown().contains("migrate"));
    }
}
