//! Stats-driven rebalancing: greedy two-dimensional bin-packing.
//!
//! The rebalancer reads two load dimensions per object — cumulative use
//! count (a QPS proxy from the server database's monotone lifetime
//! counters) and committed state size — attributes them to the nodes
//! hosting each replica, and greedily moves the heaviest movable replica
//! from the most-loaded node to the least-loaded eligible node until the
//! spread falls inside the tolerance or the move budget runs out.
//!
//! A node's scalar load is the **maximum** of its two normalized
//! dimension fractions, the classic max-dimension heuristic for 2-D
//! vector packing: a node saturated on bytes is "full" even if its use
//! share is low. When the world has seen no traffic and holds no bytes,
//! every replica weighs one unit, so the packer degrades to replica-count
//! balancing — exactly right for a freshly stretched world.
//!
//! Inputs are deliberately replay-stable (database counters and committed
//! state, never observability snapshots or wall clocks), so planning is
//! deterministic: the same world state always yields the same
//! [`MigrationPlan`].

use crate::lifecycle::Membership;
use crate::migrate::MigrateError;
use groupview_sim::NodeId;
use groupview_store::Uid;
use std::collections::BTreeMap;
use std::fmt;

/// Per-object load statistics the planner works from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectStat {
    /// The object.
    pub uid: Uid,
    /// Cumulative `Increment` count — the deterministic QPS proxy.
    pub uses: u64,
    /// Committed state size in wire bytes.
    pub bytes: u64,
    /// Nodes holding a state replica, sorted.
    pub hosts: Vec<NodeId>,
}

/// One node's aggregated load across hosted replicas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoadStat {
    /// Total use count attributed to replicas on the node.
    pub uses: u64,
    /// Total state bytes on the node.
    pub bytes: u64,
    /// Number of replicas hosted.
    pub objects: usize,
}

/// One planned replica move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The object to move.
    pub uid: Uid,
    /// Current host.
    pub from: NodeId,
    /// Destination host.
    pub to: NodeId,
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} -> {}", self.uid, self.from, self.to)
    }
}

/// A batch of planned moves, heaviest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The moves, in execution order.
    pub moves: Vec<Move>,
}

impl MigrationPlan {
    /// Whether the plan contains no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of planned moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }
}

impl fmt::Display for MigrationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.moves.is_empty() {
            return write!(f, "migration plan: balanced, no moves");
        }
        writeln!(f, "migration plan ({} moves):", self.moves.len())?;
        for mv in &self.moves {
            writeln!(f, "  {mv}")?;
        }
        Ok(())
    }
}

/// What executing a [`MigrationPlan`] accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Moves in the plan.
    pub planned: usize,
    /// Moves that committed.
    pub moved: Vec<Move>,
    /// Moves refused because the object was in use, still pending after
    /// the retry rounds — rerun the rebalancer later.
    pub busy: Vec<Move>,
    /// Moves that failed outright (e.g. unreachable state source).
    pub failed: Vec<Move>,
}

impl fmt::Display for RebalanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rebalance: planned={} moved={} busy={} failed={}",
            self.planned,
            self.moved.len(),
            self.busy.len(),
            self.failed.len()
        )
    }
}

/// The stats-driven rebalancer. Construct with [`Rebalancer::default`]
/// and adjust the knobs, then call [`Rebalancer::rebalance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rebalancer {
    /// Maximum moves per plan (bounds disruption per round).
    pub max_moves: usize,
    /// Migrations in flight at once during execution.
    pub max_in_flight: usize,
    /// Busy-retry sweeps over the remaining moves during execution.
    pub retry_rounds: usize,
    /// Stop planning once the most- and least-loaded nodes' scalar loads
    /// are within this fraction of each other.
    pub tolerance: f64,
}

impl Default for Rebalancer {
    fn default() -> Self {
        Rebalancer {
            max_moves: 8,
            max_in_flight: 2,
            retry_rounds: 3,
            tolerance: 0.10,
        }
    }
}

impl Rebalancer {
    /// Collects per-object load statistics, sorted by UID. Only objects
    /// known to both databases appear; state bytes come from the first
    /// reachable replica host.
    pub fn object_stats(&self, m: &Membership) -> Vec<ObjectStat> {
        let sys = m.system();
        let naming = sys.naming();
        let mut stats = Vec::new();
        for uid in naming.server_db.uids() {
            let Some(entry) = naming.state_db.entry(uid) else {
                continue;
            };
            let mut hosts = entry.stores.clone();
            hosts.sort_unstable();
            let bytes = hosts
                .iter()
                .find_map(|&h| {
                    sys.stores()
                        .with(h, |s| s.read(uid).map(|st| st.wire_size() as u64).ok())
                        .ok()
                        .flatten()
                })
                .unwrap_or(0);
            stats.push(ObjectStat {
                uid,
                uses: naming.server_db.lifetime_uses(uid),
                bytes,
                hosts,
            });
        }
        stats
    }

    /// Aggregates object stats into per-node loads over `nodes` (replicas
    /// on other nodes are ignored — they are not movable this round).
    pub fn node_loads(
        &self,
        objects: &[ObjectStat],
        nodes: &[NodeId],
    ) -> BTreeMap<NodeId, NodeLoadStat> {
        let mut loads: BTreeMap<NodeId, NodeLoadStat> = nodes
            .iter()
            .map(|&n| (n, NodeLoadStat::default()))
            .collect();
        for obj in objects {
            for host in &obj.hosts {
                if let Some(load) = loads.get_mut(host) {
                    load.uses += obj.uses;
                    load.bytes += obj.bytes;
                    load.objects += 1;
                }
            }
        }
        loads
    }

    /// Plans a bounded batch of moves across the currently eligible nodes
    /// plus those still draining out (sources only). Deterministic: same
    /// world state, same plan.
    pub fn plan(&self, m: &Membership) -> MigrationPlan {
        let mut objects = self.object_stats(m);
        // Participating nodes: every eligible target. Sources are the same
        // set — a draining node is handled by `drain_node`, not here.
        let sys = m.system();
        let mut nodes: Vec<NodeId> = sys
            .stores()
            .store_nodes()
            .into_iter()
            .filter(|&n| m.is_eligible(n))
            .collect();
        nodes.sort_unstable();
        if nodes.len() < 2 {
            return MigrationPlan::default();
        }
        let mut loads = self.node_loads(&objects, &nodes);

        // Normalizing totals. A world with no recorded uses (or bytes)
        // weighs every replica equally in that dimension.
        let total_uses: u64 = objects.iter().map(|o| o.uses.max(1)).sum::<u64>();
        let total_bytes: u64 = objects.iter().map(|o| o.bytes.max(1)).sum::<u64>();
        let frac = |load: &NodeLoadStat, objs: usize| -> f64 {
            let u = load.uses.max(objs as u64) as f64 / total_uses.max(1) as f64;
            let b = load.bytes.max(objs as u64) as f64 / total_bytes.max(1) as f64;
            u.max(b)
        };
        let obj_frac = |o: &ObjectStat| -> f64 {
            let u = o.uses.max(1) as f64 / total_uses.max(1) as f64;
            let b = o.bytes.max(1) as f64 / total_bytes.max(1) as f64;
            u.max(b)
        };

        let mut plan = MigrationPlan::default();
        for _ in 0..self.max_moves {
            // Most- and least-loaded nodes; node-id tie-breaks keep the
            // scan deterministic under equal loads.
            let scalar: BTreeMap<NodeId, f64> = loads
                .iter()
                .map(|(&n, l)| (n, frac(l, l.objects)))
                .collect();
            let (&most, &hi) = scalar
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
                .unwrap();
            let (&least, &lo) = scalar
                .iter()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(b.0)))
                .unwrap();
            if hi - lo <= self.tolerance {
                break;
            }
            // Heaviest replica on `most` that `least` does not already
            // host and whose weight fits inside the gap (avoids
            // ping-ponging one huge object); fall back to the lightest
            // movable one.
            let gap = hi - lo;
            let mut movable: Vec<(usize, f64)> = objects
                .iter()
                .enumerate()
                .filter(|(_, o)| o.hosts.contains(&most) && !o.hosts.contains(&least))
                .map(|(i, o)| (i, obj_frac(o)))
                .collect();
            if movable.is_empty() {
                break;
            }
            movable.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap()
                    .then(objects[a.0].uid.cmp(&objects[b.0].uid))
            });
            let (idx, _) = movable
                .iter()
                .copied()
                .find(|&(_, w)| w <= gap)
                .unwrap_or(*movable.last().unwrap());
            let obj = &mut objects[idx];
            plan.moves.push(Move {
                uid: obj.uid,
                from: most,
                to: least,
            });
            // Update the simulated placement so the next iteration plans
            // against the post-move world.
            obj.hosts.retain(|&h| h != most);
            obj.hosts.push(least);
            obj.hosts.sort_unstable();
            let (uses, bytes) = (obj.uses, obj.bytes);
            if let Some(l) = loads.get_mut(&most) {
                l.uses -= uses;
                l.bytes -= bytes;
                l.objects -= 1;
            }
            if let Some(l) = loads.get_mut(&least) {
                l.uses += uses;
                l.bytes += bytes;
                l.objects += 1;
            }
        }
        plan
    }

    /// Executes a plan with bounded concurrency: at most
    /// [`Rebalancer::max_in_flight`] migrations are outstanding at a time
    /// (in the deterministic single-threaded world, a window completes
    /// before the next begins), and busy moves are retried for
    /// [`Rebalancer::retry_rounds`] sweeps.
    pub fn execute(&self, m: &Membership, plan: &MigrationPlan) -> RebalanceReport {
        let mut report = RebalanceReport {
            planned: plan.moves.len(),
            ..RebalanceReport::default()
        };
        let mut pending: Vec<Move> = plan.moves.clone();
        for _ in 0..self.retry_rounds.max(1) {
            if pending.is_empty() {
                break;
            }
            let mut still_busy = Vec::new();
            for window in pending.chunks(self.max_in_flight.max(1)) {
                for &mv in window {
                    match m.migrate(mv.uid, mv.from, mv.to) {
                        Ok(()) => report.moved.push(mv),
                        Err(e) if e.is_busy() => still_busy.push(mv),
                        Err(MigrateError::AlreadyHosted { .. }) => {
                            // A concurrent drain round already moved it —
                            // the goal state holds, count it as done.
                            report.moved.push(mv);
                        }
                        Err(_) => report.failed.push(mv),
                    }
                }
            }
            pending = still_busy;
        }
        report.busy = pending;
        report
    }

    /// Plans and executes in one call.
    pub fn rebalance(&self, m: &Membership) -> RebalanceReport {
        let plan = self.plan(m);
        self.execute(m, &plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::Membership;
    use groupview_replication::{Counter, CounterOp, System};

    fn world(seed: u64) -> (System, Membership, Vec<NodeId>) {
        let sys = System::builder(seed).nodes(6).build();
        let m = Membership::new(&sys);
        let n = sys.sim().nodes();
        (sys, m, n)
    }

    #[test]
    fn empty_world_plans_nothing() {
        let (_sys, m, _n) = world(21);
        let plan = Rebalancer::default().plan(&m);
        assert!(plan.is_empty());
        assert_eq!(plan.to_string(), "migration plan: balanced, no moves");
    }

    #[test]
    fn skewed_world_spreads_onto_fresh_node() {
        let (sys, m, n) = world(22);
        // Six single-replica objects all crammed onto n1 (+ n2 spares).
        let mut uids = Vec::new();
        for i in 0..6i64 {
            let uid = sys.create_typed(Counter::new(i), &[n[1]], &[n[1]]).unwrap();
            uids.push(uid);
        }
        let fresh = m.add_node();
        let reb = Rebalancer::default();
        let plan = reb.plan(&m);
        assert!(!plan.is_empty(), "skew must produce moves");
        assert!(plan.moves.iter().all(|mv| mv.from == n[1]));
        assert!(plan.moves.iter().any(|mv| mv.to == fresh));

        let report = reb.execute(&m, &plan);
        assert_eq!(report.moved.len(), report.planned, "{report}");
        assert!(report.busy.is_empty() && report.failed.is_empty());
        assert!(
            m.replica_count(fresh) >= 2,
            "fresh node absorbed replicas: {}",
            m.replica_count(fresh)
        );
        // Everything still serves.
        let client = sys.client(n[4]);
        for (i, uid) in uids.iter().enumerate() {
            let counter = uid.open(&client);
            let action = client.begin_action();
            counter.activate(action, 1).unwrap();
            assert_eq!(
                counter.invoke(action, CounterOp::Get).unwrap(),
                i as i64,
                "object {i} kept its committed state"
            );
            client.commit(action).unwrap();
        }
    }

    #[test]
    fn hot_object_weighs_more_than_cold_ones() {
        let (sys, m, n) = world(23);
        let hot = sys.create_typed(Counter::new(0), &[n[1]], &[n[1]]).unwrap();
        let cold = sys.create_typed(Counter::new(0), &[n[1]], &[n[1]]).unwrap();
        // Drive traffic at the hot object only.
        let client = sys.client(n[4]);
        let counter = hot.open(&client);
        for _ in 0..5 {
            let action = client.begin_action();
            counter.activate(action, 1).unwrap();
            counter.invoke(action, CounterOp::Add(1)).unwrap();
            client.commit(action).unwrap();
        }
        let reb = Rebalancer::default();
        let stats = reb.object_stats(&m);
        let hot_stat = stats.iter().find(|s| s.uid == hot.uid()).unwrap();
        let cold_stat = stats.iter().find(|s| s.uid == cold.uid()).unwrap();
        assert!(
            hot_stat.uses > cold_stat.uses,
            "lifetime uses separate hot ({}) from cold ({})",
            hot_stat.uses,
            cold_stat.uses
        );
        assert!(hot_stat.bytes > 0, "state bytes measured");
    }

    #[test]
    fn planning_is_deterministic() {
        let build = || {
            let (sys, m, n) = world(24);
            for i in 0..5 {
                sys.create_typed(Counter::new(i), &[n[1]], &[n[1]]).unwrap();
            }
            m.add_node();
            Rebalancer::default().plan(&m)
        };
        assert_eq!(build(), build(), "same world, same plan");
    }

    #[test]
    fn balanced_world_stays_put() {
        let (sys, m, n) = world(25);
        for (i, &host) in [n[1], n[2], n[3]].iter().enumerate() {
            sys.create_typed(Counter::new(i as i64), &[host], &[host])
                .unwrap();
        }
        let plan = Rebalancer::default().plan(&m);
        assert!(plan.is_empty(), "{plan}");
    }
}
