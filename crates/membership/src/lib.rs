//! # groupview-membership — elastic membership and rebalancing
//!
//! The paper's group-view databases describe a *fixed* world: `SvA` and
//! `StA` name nodes that existed when the object was created. This crate
//! makes the world elastic while preserving every invariant the databases
//! guarantee:
//!
//! * **Lifecycle** ([`Membership`], [`NodeStatus`]): new nodes join the
//!   world at runtime ([`Membership::add_node`] — a fresh sim node plus an
//!   empty object store, immediately eligible as a migration target), and
//!   existing nodes drain ([`Membership::drain_node`]) — a draining node
//!   stops accepting new replicas and is decommissioned once its last
//!   replica has moved away.
//! * **Transactional migration** ([`Membership::migrate`],
//!   [`MigrateError`]): one replica moves host inside a single top-level
//!   atomic action. The `Insert`/`Remove` pair updates `Sv`, the
//!   `Include`/`Exclude` pair updates `St`, and the state copy lands on
//!   the new host through the same two-phase commit — so a directory
//!   lookup *never* observes a half-moved object, and an object that is
//!   in use simply refuses the move (`Insert`'s §4.1.2 quiescence check)
//!   until its clients finish on the pinned incarnation.
//! * **Stats-driven rebalancing** ([`Rebalancer`], [`MigrationPlan`]):
//!   per-node load (cumulative use counts × state bytes) feeds a greedy
//!   two-dimensional bin-packer that emits a bounded batch of moves,
//!   executed with bounded concurrency and busy-retry.
//!
//! Migration leaves a *tombstone* (`Stores::retire`) on the old host:
//! §4.2 store recovery consults it and purges the stale copy instead of
//! re-`Include`-ing it — without this, a node that crashed mid-drain
//! would resurrect every replica that was deliberately moved off it.
//!
//! Everything here is driven from the naming node and is fully
//! deterministic: the rebalancer reads only replay-stable inputs (the
//! server database's monotone lifetime-use counters and committed state
//! sizes), never wall clocks or observability snapshots, so an observed
//! run stays bit-for-bit identical to an unobserved one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lifecycle;
mod migrate;
mod rebalance;

pub use lifecycle::{DrainReport, Membership, NodeStatus};
pub use migrate::MigrateError;
pub use rebalance::{MigrationPlan, Move, NodeLoadStat, ObjectStat, RebalanceReport, Rebalancer};
