//! Node lifecycle: join, drain, decommission.
//!
//! A node's membership status is control-plane metadata kept *next to* the
//! group-view databases, not inside them: `Sv`/`St` keep describing where
//! replicas **are**, while the status map describes where replicas **may
//! go**. A `Draining` node is excluded from target selection immediately
//! (it stops accepting new replicas), but its existing replicas remain
//! fully serviceable until each one has been migrated away.

use groupview_obs::Phase;
use groupview_replication::System;
use groupview_sim::NodeId;
use groupview_store::Uid;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Where a node stands in the elastic-membership lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Full member: hosts replicas and accepts new ones.
    Active,
    /// Stops accepting new replicas; existing ones are being migrated off.
    Draining,
    /// Drained empty and decommissioned. Re-adding requires a fresh
    /// [`Membership::activate_node`].
    Removed,
}

impl fmt::Display for NodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeStatus::Active => write!(f, "active"),
            NodeStatus::Draining => write!(f, "draining"),
            NodeStatus::Removed => write!(f, "removed"),
        }
    }
}

/// What one drain pass over a node accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Replicas successfully migrated off the draining node.
    pub moved: Vec<Uid>,
    /// Replicas that refused the move because the object was in use or
    /// locked — retry once the clients finish.
    pub busy: Vec<Uid>,
    /// Replicas whose migration failed outright this pass (e.g. no
    /// reachable state source) — retry after recovery.
    pub failed: Vec<Uid>,
    /// Replicas still on the node after the pass.
    pub remaining: usize,
    /// Whether the node finished the pass empty (and, if draining, was
    /// decommissioned).
    pub complete: bool,
}

impl DrainReport {
    /// Folds a later pass's results into this one.
    pub fn merge(&mut self, other: DrainReport) {
        self.moved.extend(other.moved);
        self.busy = other.busy;
        self.failed = other.failed;
        self.remaining = other.remaining;
        self.complete = other.complete;
    }
}

impl fmt::Display for DrainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drain: moved={} busy={} failed={} remaining={}{}",
            self.moved.len(),
            self.busy.len(),
            self.failed.len(),
            self.remaining,
            if self.complete { " (complete)" } else { "" }
        )
    }
}

/// Elastic-membership coordinator for one [`System`].
///
/// Runs colocated with the naming service (all database calls are local),
/// so lifecycle operations pay messages only for the state-copy legs of
/// migrations — exactly the data-plane cost.
#[derive(Clone)]
pub struct Membership {
    pub(crate) sys: System,
    status: Rc<RefCell<BTreeMap<NodeId, NodeStatus>>>,
}

impl fmt::Debug for Membership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Membership")
            .field("tracked", &self.status.borrow().len())
            .finish()
    }
}

impl Membership {
    /// Creates a membership coordinator over the system.
    pub fn new(sys: &System) -> Self {
        Membership {
            sys: sys.clone(),
            status: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Adds a brand-new node to the world: a fresh sim node with an empty
    /// object store attached, immediately [`NodeStatus::Active`] and
    /// eligible as a migration target. Returns its id (sequential, so
    /// deterministic plans can name future nodes).
    pub fn add_node(&self) -> NodeId {
        let node = self.sys.sim().add_node();
        self.activate_node(node);
        node
    }

    /// Marks an *existing* node active and attaches an object store if it
    /// lacks one — used to re-admit a previously drained node, or to
    /// promote a client-only node into a replica host.
    pub fn activate_node(&self, node: NodeId) {
        self.sys.stores().add_store(node);
        self.status.borrow_mut().insert(node, NodeStatus::Active);
        self.sys
            .sim()
            .note(format!("membership: {node} active (store attached)"));
    }

    /// The node's lifecycle status. Nodes never touched by this
    /// coordinator are implicitly active.
    pub fn status(&self, node: NodeId) -> NodeStatus {
        self.status
            .borrow()
            .get(&node)
            .copied()
            .unwrap_or(NodeStatus::Active)
    }

    /// Whether `node` may receive new replicas right now: active, has a
    /// store, and is up (a down node cannot acknowledge the state copy).
    pub fn is_eligible(&self, node: NodeId) -> bool {
        self.status(node) == NodeStatus::Active
            && self.sys.stores().has_store(node)
            && self.sys.sim().is_up(node)
    }

    /// Store nodes currently eligible as migration targets, sorted,
    /// excluding `not` (the source of the move under consideration).
    pub fn targets(&self, not: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .sys
            .stores()
            .store_nodes()
            .into_iter()
            .filter(|&n| n != not && self.is_eligible(n))
            .collect();
        v.sort_unstable();
        v
    }

    /// UIDs with a replica on `node`: the union of the server database's
    /// hosting index and the state entries naming the node, sorted.
    pub fn hosted(&self, node: NodeId) -> Vec<Uid> {
        let naming = self.sys.naming();
        let mut uids = naming.server_db.uids_hosting(node);
        for uid in naming.state_db.uids() {
            if naming.state_db.entry(uid).is_some_and(|e| e.contains(node)) && !uids.contains(&uid)
            {
                uids.push(uid);
            }
        }
        uids.sort_unstable();
        uids
    }

    /// Number of state replicas hosted on `node` (drain progress and the
    /// least-loaded target heuristic).
    pub fn replica_count(&self, node: NodeId) -> usize {
        let naming = self.sys.naming();
        naming
            .state_db
            .uids()
            .into_iter()
            .filter(|&uid| naming.state_db.entry(uid).is_some_and(|e| e.contains(node)))
            .count()
    }

    /// Marks `node` as draining: it stops accepting new replicas at once.
    /// Existing replicas keep serving until migrated. Draining a *down*
    /// node is allowed — that is how a dead node is decommissioned (state
    /// copies come from the surviving `St` members).
    pub fn begin_drain(&self, node: NodeId) {
        self.status.borrow_mut().insert(node, NodeStatus::Draining);
        self.sys.sim().note(format!("membership: {node} draining"));
    }

    /// Whether nothing references `node` any more: it hosts no server
    /// entry and appears in no state entry.
    pub fn drain_complete(&self, node: NodeId) -> bool {
        self.hosted(node).is_empty()
    }

    /// One drain pass: migrates every replica on `node` to the
    /// least-loaded eligible target. Objects in use come back as `busy`
    /// (retry after their clients finish); objects with no reachable state
    /// source as `failed` (retry after recovery). When the pass leaves the
    /// node empty, a draining node is decommissioned.
    pub fn drain_step(&self, node: NodeId) -> DrainReport {
        let start = self.sys.sim().now().as_micros();
        let mut report = DrainReport::default();
        for uid in self.hosted(node) {
            let Some(&target) = self
                .targets(node)
                .iter()
                .min_by_key(|&&t| (self.replica_count(t), t))
            else {
                report.failed.push(uid);
                continue;
            };
            match self.migrate(uid, node, target) {
                Ok(()) => report.moved.push(uid),
                Err(e) if e.is_busy() => report.busy.push(uid),
                Err(_) => report.failed.push(uid),
            }
        }
        report.remaining = self.hosted(node).len();
        report.complete = report.remaining == 0;
        if report.complete && self.status(node) == NodeStatus::Draining {
            self.status.borrow_mut().insert(node, NodeStatus::Removed);
            self.sys
                .sim()
                .note(format!("membership: {node} drained and removed"));
        }
        self.sys
            .obs()
            .span(0, Phase::Drain, start, self.sys.sim().now().as_micros());
        report
    }

    /// Drains `node` to empty: marks it draining, then runs up to
    /// `max_rounds` passes (busy objects are retried each round). Returns
    /// the cumulative report; `complete` tells whether the node was
    /// decommissioned or still holds stragglers the caller should retry
    /// later (e.g. after in-flight actions finish or crashed stores
    /// recover).
    pub fn drain_node(&self, node: NodeId, max_rounds: usize) -> DrainReport {
        self.begin_drain(node);
        let mut report = self.drain_step(node);
        for _ in 1..max_rounds {
            if report.complete || (report.busy.is_empty() && report.failed.is_empty()) {
                break;
            }
            report.merge(self.drain_step(node));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_replication::{Counter, CounterOp};

    /// 6 nodes: naming at 0, servers+stores 1..=3, clients 4..=5.
    fn world() -> (System, Membership) {
        let sys = System::builder(7).nodes(6).build();
        let m = Membership::new(&sys);
        (sys, m)
    }

    fn nodes(sys: &System) -> Vec<NodeId> {
        sys.sim().nodes()
    }

    #[test]
    fn added_node_gets_store_and_is_eligible() {
        let (sys, m) = world();
        let fresh = m.add_node();
        assert_eq!(fresh.raw(), 6, "sequential node ids");
        assert!(sys.stores().has_store(fresh));
        assert_eq!(m.status(fresh), NodeStatus::Active);
        assert!(m.is_eligible(fresh));
        assert_eq!(m.replica_count(fresh), 0);
    }

    #[test]
    fn draining_node_stops_accepting_targets() {
        let (sys, m) = world();
        let n = nodes(&sys);
        let uid = sys
            .create_typed(Counter::new(0), &n[1..3], &n[1..3])
            .unwrap();
        let fresh = m.add_node();
        m.begin_drain(fresh);
        assert_eq!(m.status(fresh), NodeStatus::Draining);
        assert!(!m.is_eligible(fresh));
        assert!(!m.targets(n[1]).contains(&fresh));
        // A drained-empty node is decommissioned on its first pass.
        let report = m.drain_step(fresh);
        assert!(report.complete);
        assert_eq!(m.status(fresh), NodeStatus::Removed);
        // And can come back.
        m.activate_node(fresh);
        assert!(m.is_eligible(fresh));
        let _ = uid;
    }

    #[test]
    fn drain_moves_all_replicas_and_decommissions() {
        let (sys, m) = world();
        let n = nodes(&sys);
        let a = sys
            .create_typed(Counter::new(1), &n[1..3], &n[1..3])
            .unwrap();
        let b = sys
            .create_typed(Counter::new(2), &[n[1], n[3]], &[n[1], n[3]])
            .unwrap();
        let fresh = m.add_node();
        assert_eq!(m.hosted(n[1]), vec![a.uid(), b.uid()]);

        let report = m.drain_node(n[1], 3);
        assert!(report.complete, "drain finished: {report}");
        assert_eq!(report.moved, vec![a.uid(), b.uid()]);
        assert_eq!(m.status(n[1]), NodeStatus::Removed);
        assert!(m.drain_complete(n[1]));
        // Both objects keep full strength; the new host picked up slack.
        for uid in [a.uid(), b.uid()] {
            let entry = sys.naming().state_db.entry(uid).unwrap();
            assert_eq!(entry.len(), 2);
            assert!(!entry.contains(n[1]));
        }
        assert!(m.replica_count(fresh) >= 1, "new node absorbed a replica");

        // The moved objects still serve invocations.
        let client = sys.client(n[4]);
        let counter = a.open(&client);
        let action = client.begin_action();
        counter.activate(action, 2).unwrap();
        assert_eq!(counter.invoke(action, CounterOp::Get).unwrap(), 1);
        client.commit(action).unwrap();
    }

    #[test]
    fn busy_object_defers_drain_until_clients_finish() {
        let (sys, m) = world();
        let n = nodes(&sys);
        let uid = sys
            .create_typed(Counter::new(0), &n[1..3], &n[1..3])
            .unwrap();
        let _fresh = m.add_node();

        // A client holds the object active across the drain attempt.
        let client = sys.client(n[4]);
        let counter = uid.open(&client);
        let action = client.begin_action();
        counter.activate(action, 2).unwrap();
        counter.invoke(action, CounterOp::Add(5)).unwrap();

        let report = m.drain_node(n[1], 2);
        assert!(!report.complete);
        assert_eq!(report.busy, vec![uid.uid()], "in-use object refused");
        assert_eq!(m.status(n[1]), NodeStatus::Draining, "not decommissioned");

        // Client finishes on the pinned incarnation; a retry then drains.
        client.commit(action).unwrap();
        assert!(sys.try_passivate(uid.uid()));
        let retry = m.drain_step(n[1]);
        assert!(retry.complete, "{retry}");
        assert_eq!(retry.moved, vec![uid.uid()]);
        assert_eq!(m.status(n[1]), NodeStatus::Removed);
    }

    #[test]
    fn dead_node_can_be_decommissioned() {
        let (sys, m) = world();
        let n = nodes(&sys);
        let uid = sys
            .create_typed(Counter::new(9), &n[1..3], &n[1..3])
            .unwrap();
        let _fresh = m.add_node();
        sys.sim().crash(n[1]);

        let report = m.drain_node(n[1], 2);
        assert!(report.complete, "{report}");
        assert_eq!(report.moved, vec![uid.uid()]);
        let entry = sys.naming().state_db.entry(uid.uid()).unwrap();
        assert!(!entry.contains(n[1]));
        assert_eq!(entry.len(), 2, "full strength from surviving member");
        // The dead node is tombstoned so recovery will not resurrect it.
        assert!(sys.stores().is_retired(n[1], uid.uid()));
    }
}
