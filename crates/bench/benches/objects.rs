//! Object-boundary allocation cost: heap allocations per invocation, by
//! replication policy, measured with a counting global allocator (every
//! heap allocation is visible, not just wire buffers).
//!
//! This is the ROADMAP's "hot-path allocation" scoreboard for the
//! `ReplicaObject` boundary. The encoder-aware object trait writes replica
//! replies and undo snapshots through the pooled `WireEncoder` instead of
//! returning fresh `Vec<u8>`s, and the typed `Handle` encodes the operation
//! into a pooled frame instead of a caller-side vector — so the steady-state
//! budgets below are **asserted**, not just printed. CI fails if the object
//! boundary regresses into allocating again.
//!
//! Budgets (3 replicas, steady state). The undo-log arena (flat
//! per-transaction buffers replacing one boxed undo closure per op)
//! dropped the per-invoke numbers well below the typed-API-era budgets —
//! measured: active 10.0 (was ≤ 16), coordinator-cohort 6.0 (was ≤ 13),
//! single-copy 3.0 (was ≤ 13) — so the budgets are ratcheted down to
//! 12/8/5.
//!
//! The multi-object transaction window measures a whole two-account
//! transfer through the typed `Tx` surface — begin, two auto-activating
//! invokes, and a commit driving one store 2PC over the union of both
//! objects — with its own asserted budgets (measured: active 122.1,
//! coordinator-cohort 100.1, single-copy 93.1 allocs per transaction;
//! budgets 130/108/100) and the same exact-equality observer-off gate.

use criterion::{criterion_group, criterion_main, Criterion};
use groupview_replication::{
    Account, AccountOp, Counter, CounterOp, Handle, ReplicationPolicy, System,
};
use groupview_sim::NodeId;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Builds a 3-replica world and an activated typed handle, mid-action.
fn activated(policy: ReplicationPolicy) -> (System, Handle<Counter>, groupview_actions::ActionId) {
    let sys = System::builder(13).nodes(9).policy(policy).build();
    let servers: Vec<NodeId> = (1..=3).map(n).collect();
    let uid = sys
        .create_typed(Counter::new(0), &servers, &servers)
        .expect("create");
    let client = sys.client(n(7));
    let handle = uid.open(&client);
    let action = client.begin_action();
    handle.activate(action, 3).expect("activate");
    (sys, handle, action)
}

/// One measured window: total heap allocations across `ops` invokes.
fn measure_window(handle: &Handle<Counter>, action: groupview_actions::ActionId, ops: u64) -> u64 {
    let before = allocs();
    for _ in 0..ops {
        black_box(handle.invoke(action, CounterOp::Add(1)).expect("invoke"));
    }
    allocs() - before
}

/// Measures steady-state heap allocations per typed write invocation in
/// three windows — observability disabled (A), enabled (B), enabled
/// through warmup then disabled for the window (C) — asserting the
/// policy's budget on A and **exact** equality of C and A: the disabled
/// observer must add zero allocations per op, not just stay under budget.
///
/// Each window runs in its own fresh world over the *same op range*:
/// allocation counts are deterministic but op-offset-dependent (the
/// action's undo stack doubles at power-of-2 op counts), so windows at
/// different offsets in one world would differ for reasons that have
/// nothing to do with observability.
fn report_policy(policy: ReplicationPolicy, budget: f64) {
    const OPS: u64 = 1_000;
    const WARM: u64 = 64;
    // Warm up: fill the encoder pool, the dedup ring, and the undo stack's
    // growth so the measured window is steady state.
    let warm = |handle: &Handle<Counter>, action| {
        for _ in 0..WARM {
            black_box(handle.invoke(action, CounterOp::Add(1)).expect("invoke"));
        }
    };

    // Window A: observability off for the world's whole life.
    let (_sys, handle, action) = activated(policy);
    warm(&handle, action);
    let window_a = measure_window(&handle, action, OPS);
    let per_op = window_a as f64 / OPS as f64;

    // Window B: observability ON — reported for context, not gated (span
    // recording legitimately grows the span vec).
    let (sys, handle, action) = activated(policy);
    sys.obs().set_enabled(true);
    warm(&handle, action);
    let window_b = measure_window(&handle, action, OPS);
    let spans_recorded = sys.obs().span_count();

    // Window C: enabled through warmup (so the registry has live state),
    // then disabled for the measured window — bit-identical to A or the
    // "zero-cost when off" contract is broken.
    let (sys, handle, action) = activated(policy);
    sys.obs().set_enabled(true);
    warm(&handle, action);
    sys.obs().set_enabled(false);
    let window_c = measure_window(&handle, action, OPS);

    println!(
        "objects/invoke_heap_allocs/{policy:<31} {per_op:>8.3} allocs/op (budget {budget}) \
         | observed {:.3} | re-disabled {:.3}",
        window_b as f64 / OPS as f64,
        window_c as f64 / OPS as f64,
    );
    if std::env::var_os("OBJECTS_BENCH_NO_ASSERT").is_none() {
        assert!(
            per_op <= budget,
            "{policy}: object-boundary allocations regressed: \
             {per_op:.3} allocs/op exceeds the budget of {budget}"
        );
        assert!(
            spans_recorded > 0,
            "{policy}: the observed window recorded no spans — window B measured nothing"
        );
        assert_eq!(
            window_c, window_a,
            "{policy}: disabled observability must add zero allocations \
             (window A={window_a}, window C={window_c} over {OPS} ops)"
        );
    }
}

/// The asserted scoreboard: the encoder-aware object boundary must keep
/// per-invoke heap allocations at or under the post-redesign budgets.
fn bench_invoke_heap_allocs(_c: &mut Criterion) {
    report_policy(ReplicationPolicy::Active, 12.0);
    report_policy(ReplicationPolicy::CoordinatorCohort, 8.0);
    report_policy(ReplicationPolicy::SingleCopyPassive, 5.0);
}

/// Builds a 3-replica world with two accounts opened on one client,
/// ready for typed transactions.
fn tx_world(policy: ReplicationPolicy) -> (System, Handle<Account>, Handle<Account>) {
    let sys = System::builder(13).nodes(9).policy(policy).build();
    let servers: Vec<NodeId> = (1..=3).map(n).collect();
    let a = sys
        .create_typed(Account::new(0), &servers, &servers)
        .expect("create");
    let b = sys
        .create_typed(Account::new(0), &servers, &servers)
        .expect("create");
    let client = sys.client(n(7));
    (sys, a.open(&client), b.open(&client))
}

/// One measured window: total heap allocations across `txs` complete
/// two-object transactions (begin → two invokes → commit).
fn measure_tx_window(ha: &Handle<Account>, hb: &Handle<Account>, txs: u64) -> u64 {
    let before = allocs();
    for _ in 0..txs {
        let mut tx = ha.client().begin().with_replicas(3);
        black_box(tx.invoke(ha, AccountOp::Deposit(1)).expect("first leg"));
        black_box(tx.invoke(hb, AccountOp::Deposit(1)).expect("second leg"));
        tx.commit().expect("commit");
    }
    allocs() - before
}

/// Steady-state heap allocations per whole multi-object transaction, with
/// the same A/B/C window structure as the per-invoke scoreboard: budget
/// asserted on the observer-off window A, window B (observer on) reported
/// for context, window C (re-disabled) gated to **exact** equality with A.
fn report_tx_policy(policy: ReplicationPolicy, budget: f64) {
    const TXS: u64 = 200;
    const WARM: u64 = 32;
    let warm = |ha: &Handle<Account>, hb: &Handle<Account>| {
        measure_tx_window(ha, hb, WARM);
    };

    let (_sys, ha, hb) = tx_world(policy);
    warm(&ha, &hb);
    let window_a = measure_tx_window(&ha, &hb, TXS);
    let per_tx = window_a as f64 / TXS as f64;

    let (sys, ha, hb) = tx_world(policy);
    sys.obs().set_enabled(true);
    warm(&ha, &hb);
    let window_b = measure_tx_window(&ha, &hb, TXS);
    let spans_recorded = sys.obs().span_count();

    let (sys, ha, hb) = tx_world(policy);
    sys.obs().set_enabled(true);
    warm(&ha, &hb);
    sys.obs().set_enabled(false);
    let window_c = measure_tx_window(&ha, &hb, TXS);

    println!(
        "objects/tx_heap_allocs/{policy:<35} {per_tx:>8.3} allocs/tx (budget {budget}) \
         | observed {:.3} | re-disabled {:.3}",
        window_b as f64 / TXS as f64,
        window_c as f64 / TXS as f64,
    );
    if std::env::var_os("OBJECTS_BENCH_NO_ASSERT").is_none() {
        assert!(
            per_tx <= budget,
            "{policy}: multi-object transaction allocations regressed: \
             {per_tx:.3} allocs/tx exceeds the budget of {budget}"
        );
        assert!(
            spans_recorded > 0,
            "{policy}: the observed tx window recorded no spans"
        );
        assert_eq!(
            window_c, window_a,
            "{policy}: disabled observability must add zero allocations \
             (window A={window_a}, window C={window_c} over {TXS} transactions)"
        );
    }
}

/// The transaction scoreboard: one whole two-object transfer per unit —
/// begin, two auto-activating invokes, commit (one 2PC over both objects).
fn bench_tx_heap_allocs(_c: &mut Criterion) {
    report_tx_policy(ReplicationPolicy::Active, 130.0);
    report_tx_policy(ReplicationPolicy::CoordinatorCohort, 108.0);
    report_tx_policy(ReplicationPolicy::SingleCopyPassive, 100.0);
}

/// Read path for contrast (no undo snapshot, no dirty marking).
fn bench_read_heap_allocs(_c: &mut Criterion) {
    const OPS: u64 = 1_000;
    let (_sys, handle, action) = activated(ReplicationPolicy::Active);
    for _ in 0..64 {
        black_box(handle.invoke(action, CounterOp::Get).expect("read"));
    }
    let before = allocs();
    for _ in 0..OPS {
        black_box(handle.invoke(action, CounterOp::Get).expect("read"));
    }
    let per_op = (allocs() - before) as f64 / OPS as f64;
    println!("objects/read_heap_allocs/active                  {per_op:>8.3} allocs/op");
}

criterion_group!(
    benches,
    bench_invoke_heap_allocs,
    bench_tx_heap_allocs,
    bench_read_heap_allocs
);
criterion_main!(benches);
