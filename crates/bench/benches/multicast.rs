//! Group communication: reliable-ordered vs unreliable delivery across
//! group sizes (the §2.3(2) machinery active replication rides on), plus
//! per-op wire-buffer allocation counts for the fan-out path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupview_group::comms::DeliveryMode;
use groupview_group::member::{GroupMember, RecordingMember};
use groupview_group::{GroupComms, GroupId};
use groupview_sim::wire::{self, Bytes};
use groupview_sim::{NodeId, Sim, SimConfig};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn setup_with(
    members: u32,
    mode: DeliveryMode,
    member: fn() -> Rc<RefCell<dyn GroupMember>>,
) -> (Sim, GroupComms, GroupId) {
    let sim = Sim::new(SimConfig::new(5).with_nodes(members as usize + 1));
    let comms = GroupComms::new(&sim);
    let group = comms.create_group(mode);
    for m in 1..=members {
        comms.join(group, NodeId::new(m), member()).expect("join");
    }
    (sim, comms, group)
}

fn setup(members: u32, mode: DeliveryMode) -> (Sim, GroupComms, GroupId) {
    setup_with(members, mode, || {
        Rc::new(RefCell::new(RecordingMember::default()))
    })
}

fn bench_multicast_sizes(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("multicast/reliable_by_size");
    for members in [1u32, 3, 5, 9] {
        let (_sim, comms, group) = setup(members, DeliveryMode::ReliableOrdered);
        let msg = Bytes::from_static(b"operation");
        bench_group.bench_function(BenchmarkId::from_parameter(members), |b| {
            b.iter(|| {
                let out = comms
                    .multicast(group, NodeId::new(0), &msg)
                    .expect("multicast");
                black_box(out.seq)
            })
        });
    }
    bench_group.finish();
}

fn bench_delivery_modes(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("multicast/mode");
    for (mode, name) in [
        (DeliveryMode::ReliableOrdered, "reliable"),
        (DeliveryMode::Unreliable, "unreliable"),
    ] {
        let (_sim, comms, group) = setup(5, mode);
        let msg = Bytes::from_static(b"operation");
        bench_group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let out = comms
                    .multicast(group, NodeId::new(0), &msg)
                    .expect("multicast");
                black_box(out.replies.len())
            })
        });
    }
    bench_group.finish();
}

fn bench_view_refresh(c: &mut Criterion) {
    let (_sim, comms, group) = setup(9, DeliveryMode::ReliableOrdered);
    c.bench_function("multicast/refresh_view", |b| {
        b.iter(|| black_box(comms.refresh_view(group).expect("view").id))
    });
}

/// Replies with a static ack: isolates the *protocol's* allocation
/// behaviour from the member implementation's.
struct StaticAckMember;

impl GroupMember for StaticAckMember {
    fn deliver(&mut self, _seq: u64, msg: &Bytes) -> Bytes {
        black_box(msg.len());
        Bytes::from_static(b"ack")
    }
}

/// Reports wire-buffer allocations per multicast, by group size. The
/// fan-out path shares one message buffer with every member, so the counts
/// must stay at zero regardless of cohort size — CI prints these so a
/// regression (a reintroduced per-member clone) is visible in the logs.
fn bench_fanout_allocation_counts(_c: &mut Criterion) {
    const OPS: u64 = 1_000;
    for members in [1u32, 3, 5, 9] {
        let (_sim, comms, group) = setup_with(members, DeliveryMode::ReliableOrdered, || {
            Rc::new(RefCell::new(StaticAckMember))
        });
        let msg = Bytes::from_static(b"operation");
        for _ in 0..8 {
            let _ = comms.multicast(group, NodeId::new(0), &msg);
        }
        let before = wire::stats();
        for _ in 0..OPS {
            comms
                .multicast(group, NodeId::new(0), &msg)
                .expect("multicast");
        }
        let d = wire::stats().since(before);
        println!(
            "multicast/fanout_wire_allocs/{members:<37} {:>8.3} allocs/op {:>8.1} B copied/op",
            d.buffer_allocs as f64 / OPS as f64,
            d.bytes_copied as f64 / OPS as f64,
        );
    }
}

criterion_group!(
    benches,
    bench_multicast_sizes,
    bench_delivery_modes,
    bench_view_refresh,
    bench_fanout_allocation_counts,
);
criterion_main!(benches);
