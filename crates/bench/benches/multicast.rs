//! Group communication: reliable-ordered vs unreliable delivery across
//! group sizes (the §2.3(2) machinery active replication rides on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupview_group::comms::DeliveryMode;
use groupview_group::member::RecordingMember;
use groupview_group::{GroupComms, GroupId};
use groupview_sim::{NodeId, Sim, SimConfig};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn setup(members: u32, mode: DeliveryMode) -> (Sim, GroupComms, GroupId) {
    let sim = Sim::new(SimConfig::new(5).with_nodes(members as usize + 1));
    let comms = GroupComms::new(&sim);
    let group = comms.create_group(mode);
    for m in 1..=members {
        comms
            .join(
                group,
                NodeId::new(m),
                Rc::new(RefCell::new(RecordingMember::default())),
            )
            .expect("join");
    }
    (sim, comms, group)
}

fn bench_multicast_sizes(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("multicast/reliable_by_size");
    for members in [1u32, 3, 5, 9] {
        let (_sim, comms, group) = setup(members, DeliveryMode::ReliableOrdered);
        bench_group.bench_function(BenchmarkId::from_parameter(members), |b| {
            b.iter(|| {
                let out = comms
                    .multicast(group, NodeId::new(0), b"operation")
                    .expect("multicast");
                black_box(out.seq)
            })
        });
    }
    bench_group.finish();
}

fn bench_delivery_modes(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("multicast/mode");
    for (mode, name) in [
        (DeliveryMode::ReliableOrdered, "reliable"),
        (DeliveryMode::Unreliable, "unreliable"),
    ] {
        let (_sim, comms, group) = setup(5, mode);
        bench_group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let out = comms
                    .multicast(group, NodeId::new(0), b"operation")
                    .expect("multicast");
                black_box(out.replies.len())
            })
        });
    }
    bench_group.finish();
}

fn bench_view_refresh(c: &mut Criterion) {
    let (_sim, comms, group) = setup(9, DeliveryMode::ReliableOrdered);
    c.bench_function("multicast/refresh_view", |b| {
        b.iter(|| black_box(comms.refresh_view(group).expect("view").id))
    });
}

criterion_group!(
    benches,
    bench_multicast_sizes,
    bench_delivery_modes,
    bench_view_refresh,
);
criterion_main!(benches);
