//! Lock-manager hot paths: grants, shared readers, upgrades, ancestry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupview_actions::lock::{LockManager, MapAncestry};
use groupview_actions::{ActionId, LockKey, LockMode};
use std::hint::black_box;

fn a(n: u64) -> ActionId {
    ActionId::from_raw(n)
}

fn bench_grant_release(c: &mut Criterion) {
    let anc = MapAncestry::default();
    c.bench_function("locks/grant+release", |b| {
        let mut lm = LockManager::new();
        let key = LockKey::new(1, 42);
        b.iter(|| {
            lm.acquire(&anc, a(1), key, LockMode::Write).expect("grant");
            lm.release_all(a(1));
        })
    });
}

fn bench_shared_readers(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks/shared_readers");
    for readers in [2u64, 8, 32] {
        let anc = MapAncestry::default();
        group.bench_function(BenchmarkId::from_parameter(readers), |b| {
            let mut lm = LockManager::new();
            let key = LockKey::new(1, 7);
            b.iter(|| {
                for r in 0..readers {
                    lm.acquire(&anc, a(r), key, LockMode::Read).expect("read");
                }
                // The §4.2.1 case: an exclude-write amidst the readers.
                lm.acquire(&anc, a(readers), key, LockMode::ExcludeWrite)
                    .expect("exclude-write");
                for r in 0..=readers {
                    lm.release_all(a(r));
                }
            })
        });
    }
    group.finish();
}

fn bench_refused_conflict(c: &mut Criterion) {
    let anc = MapAncestry::default();
    c.bench_function("locks/refusal", |b| {
        let mut lm = LockManager::new();
        let key = LockKey::new(1, 9);
        lm.acquire(&anc, a(1), key, LockMode::Write).expect("hold");
        b.iter(|| {
            let refused = lm.acquire(&anc, a(2), key, LockMode::Read);
            black_box(refused.is_err())
        })
    });
}

fn bench_ancestor_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks/ancestor_chain");
    for depth in [1u64, 4, 16] {
        let mut anc = MapAncestry::default();
        for d in 1..=depth {
            anc.0.insert(a(d), a(d - 1));
        }
        group.bench_function(BenchmarkId::from_parameter(depth), |b| {
            let mut lm = LockManager::new();
            let key = LockKey::new(1, 3);
            lm.acquire(&anc, a(0), key, LockMode::Write).expect("root");
            b.iter(|| {
                // The deepest descendant re-acquires through the chain.
                lm.acquire(&anc, a(depth), key, LockMode::Write)
                    .expect("inherit");
                lm.release_all(a(depth));
            })
        });
    }
    group.finish();
}

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks/nested_transfer");
    for keys in [1u64, 8, 32] {
        let anc = MapAncestry::default();
        group.bench_function(BenchmarkId::from_parameter(keys), |b| {
            let mut lm = LockManager::new();
            b.iter(|| {
                for k in 0..keys {
                    lm.acquire(&anc, a(2), LockKey::new(1, k), LockMode::Write)
                        .expect("child");
                }
                lm.transfer(a(2), a(1));
                lm.release_all(a(1));
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_grant_release,
    bench_shared_readers,
    bench_refused_conflict,
    bench_ancestor_chain,
    bench_transfer,
);
criterion_main!(benches);
