//! Throughput of the Object Server and Object State database operations
//! (§4.1/§4.2): the metadata hot path every binding and commit touches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupview_actions::{LockMode, TxSystem};
use groupview_core::{ExcludePolicy, NamingService};
use groupview_sim::{ClientId, NodeId, Sim, SimConfig};
use groupview_store::{Stores, Uid};
use std::hint::black_box;

fn world(objects: u64) -> (Sim, TxSystem, NamingService, Vec<Uid>) {
    let sim = Sim::new(SimConfig::new(1).with_nodes(4));
    let stores = Stores::new(&sim);
    let tx = TxSystem::new(&sim, &stores);
    let ns = NamingService::new(&sim, &tx, NodeId::new(0));
    let uids: Vec<Uid> = (1..=objects).map(Uid::from_raw).collect();
    let action = tx.begin_top(NodeId::new(0));
    for &uid in &uids {
        ns.register_object(
            action,
            uid,
            vec![NodeId::new(1), NodeId::new(2)],
            vec![NodeId::new(2), NodeId::new(3)],
        )
        .expect("register");
    }
    tx.commit(action).expect("commit");
    (sim, tx, ns, uids)
}

fn bench_get_server(c: &mut Criterion) {
    let (_sim, tx, ns, uids) = world(128);
    let mut i = 0usize;
    c.bench_function("server_db/get_server", |b| {
        b.iter(|| {
            let uid = uids[i % uids.len()];
            i += 1;
            let a = tx.begin_top(NodeId::new(1));
            let entry = ns.server_db.get_server(a, uid).expect("get");
            tx.commit(a).expect("commit");
            black_box(entry)
        })
    });
}

fn bench_get_view(c: &mut Criterion) {
    let (_sim, tx, ns, uids) = world(128);
    let mut i = 0usize;
    c.bench_function("state_db/get_view", |b| {
        b.iter(|| {
            let uid = uids[i % uids.len()];
            i += 1;
            let a = tx.begin_top(NodeId::new(1));
            let entry = ns.state_db.get_view(a, uid).expect("get");
            tx.commit(a).expect("commit");
            black_box(entry)
        })
    });
}

fn bench_insert_remove(c: &mut Criterion) {
    let (_sim, tx, ns, uids) = world(128);
    let mut i = 0usize;
    c.bench_function("server_db/insert+remove", |b| {
        b.iter(|| {
            let uid = uids[i % uids.len()];
            i += 1;
            let a = tx.begin_top(NodeId::new(1));
            ns.server_db.insert(a, uid, NodeId::new(3)).expect("insert");
            ns.server_db.remove(a, uid, NodeId::new(3)).expect("remove");
            tx.commit(a).expect("commit");
        })
    });
}

fn bench_increment_decrement(c: &mut Criterion) {
    let (_sim, tx, ns, uids) = world(128);
    let client = ClientId::new(7);
    let hosts = [NodeId::new(1), NodeId::new(2)];
    let mut i = 0usize;
    c.bench_function("server_db/increment+decrement", |b| {
        b.iter(|| {
            let uid = uids[i % uids.len()];
            i += 1;
            let a = tx.begin_top(NodeId::new(1));
            ns.server_db.increment(a, client, uid, &hosts).expect("inc");
            ns.server_db.decrement(a, client, uid, &hosts).expect("dec");
            tx.commit(a).expect("commit");
        })
    });
}

fn bench_exclude_include(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_db/exclude+include");
    for policy in [
        ExcludePolicy::PromoteToWrite,
        ExcludePolicy::ExcludeWriteLock,
    ] {
        let (_sim, tx, ns, uids) = world(128);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(format!("{policy:?}")), |b| {
            b.iter(|| {
                let uid = uids[i % uids.len()];
                i += 1;
                let a = tx.begin_top(NodeId::new(1));
                ns.state_db
                    .exclude(a, &[(uid, vec![NodeId::new(3)])], policy)
                    .expect("exclude");
                ns.state_db
                    .include(a, uid, NodeId::new(3))
                    .expect("include");
                tx.commit(a).expect("commit");
            })
        });
    }
    group.finish();
}

fn bench_exclude_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_db/exclude_batch");
    for batch in [1usize, 8, 32] {
        let (_sim, tx, ns, uids) = world(64);
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter(|| {
                let a = tx.begin_top(NodeId::new(1));
                let items: Vec<(Uid, Vec<NodeId>)> = uids
                    .iter()
                    .take(batch)
                    .map(|&u| (u, vec![NodeId::new(3)]))
                    .collect();
                ns.state_db
                    .exclude(a, &items, ExcludePolicy::ExcludeWriteLock)
                    .expect("exclude");
                // Put the nodes back so the next iteration excludes again.
                for &u in uids.iter().take(batch) {
                    ns.state_db.include(a, u, NodeId::new(3)).expect("include");
                }
                tx.commit(a).expect("commit");
            })
        });
    }
    group.finish();
}

fn bench_remote_get_server(c: &mut Criterion) {
    let (_sim, tx, ns, uids) = world(128);
    let mut i = 0usize;
    c.bench_function("naming/get_server_rpc", |b| {
        b.iter(|| {
            let uid = uids[i % uids.len()];
            i += 1;
            let a = tx.begin_top(NodeId::new(1));
            let entry = ns
                .get_server_from(NodeId::new(1), a, uid, LockMode::Read)
                .expect("rpc");
            tx.commit(a).expect("commit");
            black_box(entry)
        })
    });
}

criterion_group!(
    benches,
    bench_get_server,
    bench_get_view,
    bench_insert_remove,
    bench_increment_decrement,
    bench_exclude_include,
    bench_exclude_batch,
    bench_remote_get_server,
);
criterion_main!(benches);
