//! History-recorder overhead: heap allocations per committed operation,
//! measured with a counting global allocator (the same per-op counting rig
//! the wire benches use, but at the allocator level, so *every* heap
//! allocation is visible, not just wire buffers).
//!
//! The scenario engine's `History` must be safe to leave on in every chaos
//! run, so its happy path is budgeted at **≤ 2 heap allocations per
//! committed op** (steady state is 0: `Bytes` clones are refcount bumps and
//! the event vec is pre-sized; the budget leaves room for growth
//! reallocation). The bench asserts the budget — CI fails if recording
//! regresses into copying.

use criterion::{criterion_group, criterion_main, Criterion};
use groupview_scenario::History;
use groupview_sim::{Bytes, SimTime};
use groupview_store::Uid;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Records `ops` committed operations (one `Invoked` + one `Committed`
/// event each, sharing refcounted op/reply buffers) and returns the heap
/// allocations that recording performed.
fn record_committed_ops(history: &mut History, ops: u64) -> u64 {
    let uid = Uid::from_raw(1);
    let op = Bytes::from(vec![1u8, 1, 0, 0, 0, 0, 0, 0, 0]);
    let reply = Bytes::from(7i64.to_le_bytes().to_vec());
    let before = allocs();
    for i in 0..ops {
        let at = SimTime::from_micros(i);
        history.invoked(at, 0, i, uid, op.clone(), reply.clone(), true);
        history.committed(at, 0, i, uid);
    }
    allocs() - before
}

fn bench_recorder_allocs(_c: &mut Criterion) {
    const OPS: u64 = 10_000;
    // Pre-sized recorder: the runner sizes history from the workload spec.
    let mut presized = History::with_capacity(2 * OPS as usize);
    let d = record_committed_ops(&mut presized, OPS);
    println!(
        "history/record_presized_heap_allocs              {:>8.4} allocs/op",
        d as f64 / OPS as f64
    );
    assert!(
        d as f64 / OPS as f64 <= 2.0,
        "history recorder exceeded its allocation budget: \
         {d} allocs for {OPS} committed ops"
    );
    black_box(presized.len());

    // Unsized recorder: growth reallocation is amortized, still within
    // budget.
    let mut growing = History::new();
    let d = record_committed_ops(&mut growing, OPS);
    println!(
        "history/record_growing_heap_allocs               {:>8.4} allocs/op",
        d as f64 / OPS as f64
    );
    assert!(
        d as f64 / OPS as f64 <= 2.0,
        "growing history recorder exceeded its allocation budget: \
         {d} allocs for {OPS} committed ops"
    );
    black_box(growing.len());
}

fn bench_recorder_throughput(c: &mut Criterion) {
    let mut history = History::with_capacity(1 << 20);
    let uid = Uid::from_raw(1);
    let op = Bytes::from(vec![1u8, 1, 0, 0, 0, 0, 0, 0, 0]);
    let reply = Bytes::from(7i64.to_le_bytes().to_vec());
    let mut i = 0u64;
    c.bench_function("history/record_committed_op", |b| {
        b.iter(|| {
            let at = SimTime::from_micros(i);
            history.invoked(at, 0, i, uid, op.clone(), reply.clone(), true);
            history.committed(at, 0, i, uid);
            i += 1;
            black_box(history.len())
        })
    });
}

criterion_group!(benches, bench_recorder_allocs, bench_recorder_throughput);
criterion_main!(benches);
