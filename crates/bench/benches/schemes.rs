//! End-to-end bind→invoke→commit cost per database access scheme
//! (Figures 6, 7, 8) — the paper's central design comparison as wall-clock
//! throughput of the whole metadata machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupview_core::BindingScheme;
use groupview_replication::{Counter, CounterOp, ReplicationPolicy, System, TypedUid};
use groupview_sim::NodeId;
use std::hint::black_box;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn world(scheme: BindingScheme) -> (System, TypedUid<Counter>) {
    let sys = System::builder(9)
        .nodes(7)
        .policy(ReplicationPolicy::Active)
        .scheme(scheme)
        .build();
    let uid = sys
        .create_typed(Counter::new(0), &[n(1), n(2), n(3)], &[n(1), n(2), n(3)])
        .expect("create");
    (sys, uid)
}

fn bench_full_action(c: &mut Criterion) {
    let mut group = c.benchmark_group("schemes/full_write_action");
    for scheme in BindingScheme::ALL {
        let (sys, uid) = world(scheme);
        let client = sys.client(n(5));
        let counter = uid.open(&client);
        group.bench_function(BenchmarkId::from_parameter(scheme.to_string()), |b| {
            b.iter(|| {
                let action = client.begin_action();
                counter.activate(action, 2).expect("activate");
                counter.invoke(action, CounterOp::Add(1)).expect("invoke");
                client.commit(action).expect("commit");
                counter.forget(action);
            })
        });
    }
    group.finish();
}

fn bench_read_action(c: &mut Criterion) {
    let mut group = c.benchmark_group("schemes/read_only_action");
    for scheme in BindingScheme::ALL {
        let (sys, uid) = world(scheme);
        let client = sys.client(n(5));
        let counter = uid.open(&client);
        group.bench_function(BenchmarkId::from_parameter(scheme.to_string()), |b| {
            b.iter(|| {
                let action = client.begin_action();
                counter.activate_read_only(action, 1).expect("activate");
                let value = counter.invoke(action, CounterOp::Get).expect("read");
                client.commit(action).expect("commit");
                counter.forget(action);
                black_box(value)
            })
        });
    }
    group.finish();
}

fn bench_bind_with_dead_server(c: &mut Criterion) {
    // The E6/E7 contrast as wall-clock: a dead server in Sv makes standard
    // bindings pay a probe forever; the updating schemes prune it once.
    let mut group = c.benchmark_group("schemes/bind_with_dead_server");
    for scheme in BindingScheme::ALL {
        let (sys, uid) = world(scheme);
        sys.sim().crash(n(1));
        let client = sys.client(n(5));
        group.bench_function(BenchmarkId::from_parameter(scheme.to_string()), |b| {
            b.iter(|| {
                let action = client.begin_action();
                let g = client.activate(action, uid.uid(), 2).expect("activate");
                client.commit(action).expect("commit");
                black_box(g.servers.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_action,
    bench_read_action,
    bench_bind_with_dead_server,
);
criterion_main!(benches);
