//! Invocation cost per replication policy and group size (§2.3(2)) — the
//! price of masking failures, as wall-clock throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupview_actions::ActionId;
use groupview_replication::{Counter, CounterOp, ObjectGroup, ReplicationPolicy, System};
use groupview_sim::wire;
use groupview_sim::NodeId;
use std::hint::black_box;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn activated(
    policy: ReplicationPolicy,
    replicas: usize,
) -> (System, groupview_replication::Client, ActionId, ObjectGroup) {
    let sys = System::builder(13).nodes(9).policy(policy).build();
    let servers: Vec<NodeId> = (1..=replicas as u32).map(n).collect();
    let uid = sys
        .create_object(Box::new(Counter::new(0)), &servers, &servers)
        .expect("create");
    let client = sys.client(n(7));
    let action = client.begin();
    let group = client.activate(action, uid, replicas).expect("activate");
    (sys, client, action, group)
}

fn bench_invoke_by_policy(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("policies/invoke_3_replicas");
    for policy in ReplicationPolicy::ALL {
        let (_sys, client, action, group) = activated(policy, 3);
        bench_group.bench_function(BenchmarkId::from_parameter(policy.to_string()), |b| {
            b.iter(|| {
                let reply = client
                    .invoke(action, &group, &CounterOp::Add(1).encode())
                    .expect("invoke");
                black_box(reply)
            })
        });
    }
    bench_group.finish();
}

fn bench_active_by_group_size(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("policies/active_by_size");
    for replicas in [1usize, 2, 3, 5] {
        let (_sys, client, action, group) = activated(ReplicationPolicy::Active, replicas);
        bench_group.bench_function(BenchmarkId::from_parameter(replicas), |b| {
            b.iter(|| {
                let reply = client
                    .invoke(action, &group, &CounterOp::Add(1).encode())
                    .expect("invoke");
                black_box(reply)
            })
        });
    }
    bench_group.finish();
}

fn bench_cohort_checkpoint_cost(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("policies/cohort_by_size");
    for replicas in [1usize, 3, 5] {
        let (_sys, client, action, group) =
            activated(ReplicationPolicy::CoordinatorCohort, replicas);
        bench_group.bench_function(BenchmarkId::from_parameter(replicas), |b| {
            b.iter(|| {
                // Each mutation checkpoints to all cohorts.
                let reply = client
                    .invoke(action, &group, &CounterOp::Add(1).encode())
                    .expect("invoke");
                black_box(reply)
            })
        });
    }
    bench_group.finish();
}

fn bench_read_vs_write(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("policies/read_vs_write");
    let (_sys, client, action, group) = activated(ReplicationPolicy::Active, 3);
    bench_group.bench_function("write", |b| {
        b.iter(|| {
            black_box(
                client
                    .invoke(action, &group, &CounterOp::Add(1).encode())
                    .expect("write"),
            )
        })
    });
    bench_group.bench_function("read", |b| {
        b.iter(|| {
            black_box(
                client
                    .invoke_read(action, &group, &CounterOp::Get.encode())
                    .expect("read"),
            )
        })
    });
    bench_group.finish();
}

/// Reports wire-buffer allocations per invocation, by policy (3 replicas)
/// and for reads vs writes. One operation frame is pooled per invoke; the
/// remaining allocations are object-level reply/snapshot encodes. CI
/// prints these so hot-path allocation regressions show up in the logs.
fn bench_invoke_allocation_counts(_c: &mut Criterion) {
    const OPS: u64 = 1_000;
    fn report(label: String, policy: ReplicationPolicy, op: &[u8], read: bool) {
        let (_sys, client, action, group) = activated(policy, 3);
        let run = || {
            if read {
                client.invoke_read(action, &group, op).expect("invoke")
            } else {
                client.invoke(action, &group, op).expect("invoke")
            }
        };
        for _ in 0..8 {
            black_box(run());
        }
        let before = wire::stats();
        for _ in 0..OPS {
            black_box(run());
        }
        let d = wire::stats().since(before);
        println!(
            "{label:<48} {:>8.3} allocs/op {:>8.1} B copied/op {:>8.3} reuses/op",
            d.buffer_allocs as f64 / OPS as f64,
            d.bytes_copied as f64 / OPS as f64,
            d.pool_reuses as f64 / OPS as f64,
        );
    }
    let write = CounterOp::Add(1).encode();
    let read = CounterOp::Get.encode();
    for policy in ReplicationPolicy::ALL {
        report(
            format!("policies/invoke_wire_allocs/{policy}"),
            policy,
            &write,
            false,
        );
    }
    report(
        "policies/read_wire_allocs/active".to_string(),
        ReplicationPolicy::Active,
        &read,
        true,
    );
}

criterion_group!(
    benches,
    bench_invoke_by_policy,
    bench_active_by_group_size,
    bench_cohort_checkpoint_cost,
    bench_read_vs_write,
    bench_invoke_allocation_counts,
);
criterion_main!(benches);
