//! Invocation cost per replication policy and group size (§2.3(2)) — the
//! price of masking failures, as wall-clock throughput. Driven through the
//! typed `Handle` surface (the encoder-aware hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupview_actions::ActionId;
use groupview_replication::{Counter, CounterOp, Handle, ReplicationPolicy, System};
use groupview_sim::wire;
use groupview_sim::NodeId;
use std::hint::black_box;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn activated(policy: ReplicationPolicy, replicas: usize) -> (System, Handle<Counter>, ActionId) {
    let sys = System::builder(13).nodes(9).policy(policy).build();
    let servers: Vec<NodeId> = (1..=replicas as u32).map(n).collect();
    let uid = sys
        .create_typed(Counter::new(0), &servers, &servers)
        .expect("create");
    let client = sys.client(n(7));
    let handle = uid.open(&client);
    let action = client.begin_action();
    handle.activate(action, replicas).expect("activate");
    (sys, handle, action)
}

fn bench_invoke_by_policy(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("policies/invoke_3_replicas");
    for policy in ReplicationPolicy::ALL {
        let (_sys, handle, action) = activated(policy, 3);
        bench_group.bench_function(BenchmarkId::from_parameter(policy.to_string()), |b| {
            b.iter(|| {
                let value = handle.invoke(action, CounterOp::Add(1)).expect("invoke");
                black_box(value)
            })
        });
    }
    bench_group.finish();
}

fn bench_active_by_group_size(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("policies/active_by_size");
    for replicas in [1usize, 2, 3, 5] {
        let (_sys, handle, action) = activated(ReplicationPolicy::Active, replicas);
        bench_group.bench_function(BenchmarkId::from_parameter(replicas), |b| {
            b.iter(|| {
                let value = handle.invoke(action, CounterOp::Add(1)).expect("invoke");
                black_box(value)
            })
        });
    }
    bench_group.finish();
}

fn bench_cohort_checkpoint_cost(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("policies/cohort_by_size");
    for replicas in [1usize, 3, 5] {
        let (_sys, handle, action) = activated(ReplicationPolicy::CoordinatorCohort, replicas);
        bench_group.bench_function(BenchmarkId::from_parameter(replicas), |b| {
            b.iter(|| {
                // Each mutation checkpoints to all cohorts.
                let value = handle.invoke(action, CounterOp::Add(1)).expect("invoke");
                black_box(value)
            })
        });
    }
    bench_group.finish();
}

fn bench_read_vs_write(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("policies/read_vs_write");
    let (_sys, handle, action) = activated(ReplicationPolicy::Active, 3);
    bench_group.bench_function("write", |b| {
        b.iter(|| black_box(handle.invoke(action, CounterOp::Add(1)).expect("write")))
    });
    // `Get` is read-only: the handle takes the read lock automatically.
    bench_group.bench_function("read", |b| {
        b.iter(|| black_box(handle.invoke(action, CounterOp::Get).expect("read")))
    });
    bench_group.finish();
}

/// Reports wire-buffer allocations per invocation, by policy (3 replicas)
/// and for reads vs writes. The typed handle encodes the op into a pooled
/// frame and the encoder-aware objects write replies/snapshots through the
/// pool, so steady state is near zero; CI prints these so hot-path
/// allocation regressions show up in the logs. (Heap-level budgets are
/// *asserted* in the `objects` bench.)
fn bench_invoke_allocation_counts(_c: &mut Criterion) {
    const OPS: u64 = 1_000;
    fn report(label: String, policy: ReplicationPolicy, op: CounterOp) {
        let (_sys, handle, action) = activated(policy, 3);
        for _ in 0..8 {
            black_box(handle.invoke(action, op).expect("invoke"));
        }
        let before = wire::stats();
        for _ in 0..OPS {
            black_box(handle.invoke(action, op).expect("invoke"));
        }
        let d = wire::stats().since(before);
        println!(
            "{label:<48} {:>8.3} allocs/op {:>8.1} B copied/op {:>8.3} reuses/op",
            d.buffer_allocs as f64 / OPS as f64,
            d.bytes_copied as f64 / OPS as f64,
            d.pool_reuses as f64 / OPS as f64,
        );
    }
    for policy in ReplicationPolicy::ALL {
        report(
            format!("policies/invoke_wire_allocs/{policy}"),
            policy,
            CounterOp::Add(1),
        );
    }
    report(
        "policies/read_wire_allocs/active".to_string(),
        ReplicationPolicy::Active,
        CounterOp::Get,
    );
}

criterion_group!(
    benches,
    bench_invoke_by_policy,
    bench_active_by_group_size,
    bench_cohort_checkpoint_cost,
    bench_read_vs_write,
    bench_invoke_allocation_counts,
);
criterion_main!(benches);
