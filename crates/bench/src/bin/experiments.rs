//! Regenerates the paper's figures as measured tables, and runs the
//! scenario-driven soak.
//!
//! ```text
//! cargo run -p groupview-bench --bin experiments --release          # all
//! cargo run -p groupview-bench --bin experiments --release e9 e10  # some
//! cargo run -p groupview-bench --bin experiments --release soak    # soak
//! cargo run -p groupview-bench --bin experiments --release soak 5 100
//! #                                        rounds ───┘     │
//! #                                        base seed ──────┘
//! cargo run -p groupview-bench --bin experiments --release trajectory
//! cargo run -p groupview-bench --bin experiments --release trajectory --smoke
//! cargo run -p groupview-bench --bin experiments --release trajectory --shards 1,2,4
//! cargo run -p groupview-bench --bin experiments --release trajectory --smoke --trace
//! cargo run -p groupview-bench --bin experiments --release trend
//! ```

use groupview_bench::{all_experiments, tracefile, trajectory, trend, TrajectoryConfig};
use groupview_scenario::{run_soak, SoakConfig};
use std::time::Instant;

// The trajectory recorder measures allocs/op through this counting
// allocator; installing it in the binary (not the library) keeps the
// bench targets free to install their own (`benches/objects.rs`).
#[global_allocator]
static GLOBAL: trajectory::CountingAlloc = trajectory::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trajectory") {
        let mut cfg = if args.iter().any(|a| a == "--smoke") {
            TrajectoryConfig::smoke()
        } else {
            TrajectoryConfig::full()
        };
        // `--shards 1,2,4,8` overrides the mode's default shard axis
        // (`--shards 0` or an empty list skips it entirely).
        if let Some(pos) = args.iter().position(|a| a == "--shards") {
            let spec = args
                .get(pos + 1)
                .unwrap_or_else(|| panic!("--shards needs a comma-separated list, e.g. 1,2,4"));
            cfg.shard_counts = spec
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad shard count {s:?} in --shards {spec}"))
                })
                .filter(|&s| s > 0)
                .collect();
        }
        println!(
            "# trajectory — batched-invocation throughput + sharded scale-out, {} mode\n\
             #   batch axis: {} objects, {}-server group, {} ops/series\n\
             #   shard axis: {} objects across shards {:?}, {} cores available\n",
            cfg.mode,
            cfg.objects,
            cfg.servers,
            cfg.ops_per_series,
            cfg.sharded_objects,
            cfg.shard_counts,
            trajectory::available_cores()
        );
        let started = Instant::now();
        let report = trajectory::run(&cfg);
        let path = trajectory::artifact_path();
        let previous = std::fs::read_to_string(&path).ok();
        let json = report.to_json_with_history(
            previous.as_deref(),
            trajectory::current_pr(),
            &trajectory::today_utc(),
        );
        std::fs::write(&path, json).expect("write BENCH_trajectory.json");
        println!(
            "\nwrote {} ({} batch series, {} shard series) in {:.2?}",
            path.display(),
            report.series.len(),
            report.shard_series.len(),
            started.elapsed()
        );
        let mut failed = false;
        if let Err(msg) = report.check() {
            eprintln!("trajectory gate failed: {msg}");
            failed = true;
        }
        if let Err(msg) = report.check_scaling() {
            eprintln!("trajectory scaling gate failed: {msg}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "trajectory gates passed: batch=16 ≥2× batch=1 ops/sec with fewer allocs/op, \
             batch=64 ≥ batch=16, sharded scaling floors met on {} core(s)",
            report.cores
        );
        // `--trace`: capture a traced canned scenario alongside the
        // trajectory, validate the Chrome trace in-binary, and write both
        // artifacts next to the JSON.
        if args.iter().any(|a| a == "--trace") {
            let artifacts = tracefile::capture().unwrap_or_else(|e| {
                eprintln!("trace capture failed: {e}");
                std::process::exit(1);
            });
            std::fs::write(tracefile::chrome_path(), &artifacts.chrome_json)
                .expect("write BENCH_trace.json");
            std::fs::write(tracefile::jsonl_path(), &artifacts.jsonl)
                .expect("write BENCH_trace.jsonl");
            println!(
                "wrote {} + {} — validated: {} events ({} spans, {} instants) on {} tracks \
                 from {} seed {}",
                tracefile::chrome_path().display(),
                tracefile::jsonl_path().display(),
                artifacts.summary.events,
                artifacts.summary.spans,
                artifacts.summary.instants,
                artifacts.summary.tracks,
                tracefile::TRACE_SCENARIO,
                tracefile::TRACE_SEED,
            );
        }
        return;
    }
    if args.first().map(String::as_str) == Some("trend") {
        let artifact = trajectory::artifact_path();
        let json = std::fs::read_to_string(&artifact).unwrap_or_else(|e| {
            eprintln!(
                "cannot read {} ({e}) — run `experiments trajectory` first",
                artifact.display()
            );
            std::process::exit(1);
        });
        let svg = trend::render_trend_svg(&json).unwrap_or_else(|e| {
            eprintln!("trend render failed: {e}");
            std::process::exit(1);
        });
        std::fs::write(trend::trend_path(), &svg).expect("write BENCH_trend.svg");
        println!(
            "wrote {} ({} bytes) from {} history entries",
            trend::trend_path().display(),
            svg.len(),
            trend::parse_history(&json).map(|h| h.len()).unwrap_or(0),
        );
        return;
    }
    if args.first().map(String::as_str) == Some("soak") {
        let rounds = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(3);
        let base_seed = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1);
        let cfg = SoakConfig { base_seed, rounds };
        println!(
            "# soak — {} rounds × 3 policies from seed {} (chained nemeses, \
             counter+kv+account oracles)\n",
            cfg.rounds, cfg.base_seed
        );
        let started = Instant::now();
        let report = run_soak(&cfg);
        println!("{report}");
        println!("(soak finished in {:.2?})", started.elapsed());
        if !report.passed() {
            std::process::exit(1);
        }
        return;
    }
    let wanted: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        all_experiments().iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };

    println!("# groupview experiments\n");
    println!(
        "Reproduction of Little, McCue, Shrivastava — \"Maintaining Information \
         about Persistent Replicated Objects in a Distributed System\" (ICDCS 1993).\n"
    );

    for experiment in all_experiments() {
        if !wanted.iter().any(|w| w == experiment.id) {
            continue;
        }
        let started = Instant::now();
        let tables = (experiment.run)();
        let elapsed = started.elapsed();
        println!("# {} — {}", experiment.id.to_uppercase(), experiment.figure);
        println!("Paper claim: {}\n", experiment.claim);
        for table in tables {
            println!("{table}");
        }
        println!("({} finished in {:.2?})\n", experiment.id, elapsed);
    }
}
