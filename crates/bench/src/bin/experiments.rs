//! Regenerates the paper's figures as measured tables.
//!
//! ```text
//! cargo run -p groupview-bench --bin experiments --release          # all
//! cargo run -p groupview-bench --bin experiments --release e9 e10  # some
//! ```

use groupview_bench::all_experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        all_experiments().iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };

    println!("# groupview experiments\n");
    println!(
        "Reproduction of Little, McCue, Shrivastava — \"Maintaining Information \
         about Persistent Replicated Objects in a Distributed System\" (ICDCS 1993).\n"
    );

    for experiment in all_experiments() {
        if !wanted.iter().any(|w| w == experiment.id) {
            continue;
        }
        let started = Instant::now();
        let tables = (experiment.run)();
        let elapsed = started.elapsed();
        println!("# {} — {}", experiment.id.to_uppercase(), experiment.figure);
        println!("Paper claim: {}\n", experiment.claim);
        for table in tables {
            println!("{table}");
        }
        println!("({} finished in {:.2?})\n", experiment.id, elapsed);
    }
}
