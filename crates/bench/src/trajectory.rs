//! Production-scale throughput trajectory for the batched invocation
//! path: the `BENCH_trajectory.json` recorder.
//!
//! Drives the active-policy counter workload through the typed `Handle`
//! surface at batch sizes {1, 4, 16, 64} over a large object population
//! and a large server group, recording for every series:
//!
//! * **ops/sec** — wall-clock throughput of the whole drive loop
//!   (activation, invocations, commit write-backs);
//! * **p50/p95/p99 per-op latency** — nearest-rank percentiles from the
//!   workspace [`Histogram`] over per-op nanoseconds (a batched invoke's
//!   elapsed time divided across its ops);
//! * **allocs/op** — heap allocations per operation from the counting
//!   global allocator the `experiments` binary installs;
//! * a [`criterion::Summary`] of the same latency samples, so the bench
//!   suite's JSON lines and this artifact share one schema.
//!
//! Batch size 1 uses the plain per-op `Handle::invoke` path (what
//! unbatched workloads pay); larger sizes use `Handle::invoke_batch`. The
//! smoke configuration (`experiments trajectory --smoke`) shrinks every
//! dimension for CI, which asserts the batching win there: batch=16 must
//! reach ≥2× the ops/sec of batch=1 and strictly fewer allocs/op.

use criterion::Summary;
use groupview_replication::{Counter, CounterOp, ReplicationPolicy, System, TypedUid};
use groupview_sim::NodeId;
use groupview_workload::Histogram;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting allocator shell. The `experiments` binary installs it as the
/// `#[global_allocator]`; declaring it here (without the attribute) keeps
/// the library usable from targets that install their own allocator
/// (`benches/objects.rs`).
pub struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

/// Total heap allocations seen by [`CountingAlloc`] (0 unless installed).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The batch sizes every trajectory sweeps.
pub const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];

/// Dimensions of one trajectory run.
#[derive(Debug, Clone)]
pub struct TrajectoryConfig {
    /// `"full"` or `"smoke"` — recorded in the artifact.
    pub mode: &'static str,
    /// Objects registered in the directory DBs (each is a replicated
    /// counter with `Sv = St =` the full server set).
    pub objects: usize,
    /// Server/store nodes (the "large group": every object binds all of
    /// them).
    pub servers: usize,
    /// Operations driven per batch-size series.
    pub ops_per_series: u64,
    /// Operations per client action (one activation + one commit each).
    pub ops_per_action: usize,
    /// World seed.
    pub seed: u64,
}

impl TrajectoryConfig {
    /// The production-scale configuration: ≥10⁵ ops per series over 10⁴
    /// objects bound to an 8-server group.
    pub fn full() -> Self {
        TrajectoryConfig {
            mode: "full",
            objects: 10_000,
            servers: 8,
            ops_per_series: 100_000,
            ops_per_action: 64,
            seed: 99,
        }
    }

    /// The CI configuration: same shape, small sizes.
    pub fn smoke() -> Self {
        TrajectoryConfig {
            mode: "smoke",
            objects: 300,
            servers: 4,
            ops_per_series: 4_096,
            ops_per_action: 64,
            seed: 99,
        }
    }
}

/// One batch size's measurements.
#[derive(Debug, Clone)]
pub struct Series {
    /// Ops per batched invocation (1 = the plain invoke path).
    pub batch: usize,
    /// Operations driven.
    pub ops: u64,
    /// Client actions driven (each: activate, invoke, commit).
    pub actions: u64,
    /// Wall-clock throughput over the whole drive loop.
    pub ops_per_sec: f64,
    /// Nearest-rank per-op latency percentiles, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Heap allocations per op (0.0 when [`CountingAlloc`] is not the
    /// installed global allocator).
    pub allocs_per_op: f64,
    /// Shared-schema summary of the same per-op latency samples.
    pub latency_ns: Summary,
}

/// A full trajectory: one [`Series`] per batch size.
#[derive(Debug, Clone)]
pub struct TrajectoryReport {
    /// The configuration that produced it.
    pub config: TrajectoryConfig,
    /// Measurements, in [`BATCH_SIZES`] order.
    pub series: Vec<Series>,
}

fn n(i: usize) -> NodeId {
    NodeId::new(u32::try_from(i).expect("node index fits u32"))
}

/// Runs one batch-size series in a fresh world.
fn run_series(cfg: &TrajectoryConfig, batch: usize) -> Series {
    let sys = System::builder(cfg.seed)
        .nodes(cfg.servers + 2)
        .policy(ReplicationPolicy::Active)
        .build();
    let servers: Vec<NodeId> = (1..=cfg.servers).map(n).collect();
    let uids: Vec<TypedUid<Counter>> = (0..cfg.objects)
        .map(|_| {
            sys.create_typed(Counter::new(0), &servers, &servers)
                .expect("create object")
        })
        .collect();
    let client = sys.client(n(cfg.servers + 1));

    let mut latency = Histogram::new();
    let mut samples: Vec<f64> = Vec::new();
    let mut done = 0u64;
    let mut actions = 0u64;
    let alloc_before = alloc_count();
    let started = Instant::now();
    while done < cfg.ops_per_series {
        let uid = uids[(actions as usize) % uids.len()];
        actions += 1;
        let handle = uid.open(&client);
        let action = client.begin();
        handle.activate(action, cfg.servers).expect("activate");
        let in_action = (cfg.ops_per_action as u64).min(cfg.ops_per_series - done) as usize;
        let mut left = in_action;
        while left > 0 {
            let k = batch.min(left);
            let t = Instant::now();
            if batch == 1 {
                black_box(handle.invoke(action, CounterOp::Add(1)).expect("invoke"));
            } else {
                let ops = vec![CounterOp::Add(1); k];
                black_box(handle.invoke_batch(action, &ops).expect("invoke batch"));
            }
            let per_op_ns = t.elapsed().as_nanos() as f64 / k as f64;
            latency.add(per_op_ns as u64);
            samples.push(per_op_ns);
            left -= k;
        }
        client.commit(action).expect("commit");
        done += in_action as u64;
    }
    let elapsed = started.elapsed();
    let alloc_delta = alloc_count() - alloc_before;

    Series {
        batch,
        ops: done,
        actions,
        ops_per_sec: done as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        p50_ns: latency.p50(),
        p95_ns: latency.p95(),
        p99_ns: latency.percentile(99.0),
        allocs_per_op: alloc_delta as f64 / done as f64,
        latency_ns: Summary::from_samples(format!("trajectory/batch={batch}/latency_ns"), &samples),
    }
}

/// Runs the whole trajectory (one series per batch size).
pub fn run(cfg: &TrajectoryConfig) -> TrajectoryReport {
    let mut series = Vec::with_capacity(BATCH_SIZES.len());
    for batch in BATCH_SIZES {
        let s = run_series(cfg, batch);
        println!(
            "trajectory/batch={:<3} {:>10.0} ops/sec  p50={}ns p95={}ns p99={}ns  {:.2} allocs/op  ({} ops, {} actions)",
            s.batch, s.ops_per_sec, s.p50_ns, s.p95_ns, s.p99_ns, s.allocs_per_op, s.ops, s.actions
        );
        series.push(s);
    }
    TrajectoryReport {
        config: cfg.clone(),
        series,
    }
}

impl TrajectoryReport {
    /// The batching acceptance gates, checked by the CI smoke run:
    /// batch=16 must deliver ≥2× the ops/sec of batch=1, and (when
    /// allocation data is present) strictly fewer allocs/op.
    pub fn check(&self) -> Result<(), String> {
        let find = |b: usize| {
            self.series
                .iter()
                .find(|s| s.batch == b)
                .ok_or_else(|| format!("no batch={b} series"))
        };
        let b1 = find(1)?;
        let b16 = find(16)?;
        if b16.ops_per_sec < 2.0 * b1.ops_per_sec {
            return Err(format!(
                "batch=16 must reach ≥2× batch=1 throughput: {:.0} vs {:.0} ops/sec",
                b16.ops_per_sec, b1.ops_per_sec
            ));
        }
        if b1.allocs_per_op > 0.0 && b16.allocs_per_op >= b1.allocs_per_op {
            return Err(format!(
                "batch=16 must allocate strictly less per op than batch=1: {:.2} vs {:.2}",
                b16.allocs_per_op, b1.allocs_per_op
            ));
        }
        Ok(())
    }

    /// Renders the artifact: hand-rolled JSON (the offline workspace has
    /// no serde), with every latency summary in the shared
    /// [`criterion::Summary`] schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"trajectory\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.config.mode));
        out.push_str("  \"policy\": \"active\",\n");
        out.push_str("  \"workload\": \"counter Add(1), typed handle surface\",\n");
        out.push_str(&format!("  \"objects\": {},\n", self.config.objects));
        out.push_str(&format!("  \"servers\": {},\n", self.config.servers));
        out.push_str(&format!(
            "  \"ops_per_series\": {},\n",
            self.config.ops_per_series
        ));
        out.push_str(&format!(
            "  \"ops_per_action\": {},\n",
            self.config.ops_per_action
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"batch\": {},\n", s.batch));
            out.push_str(&format!("      \"ops\": {},\n", s.ops));
            out.push_str(&format!("      \"actions\": {},\n", s.actions));
            out.push_str(&format!("      \"ops_per_sec\": {:.1},\n", s.ops_per_sec));
            out.push_str(&format!("      \"p50_ns\": {},\n", s.p50_ns));
            out.push_str(&format!("      \"p95_ns\": {},\n", s.p95_ns));
            out.push_str(&format!("      \"p99_ns\": {},\n", s.p99_ns));
            out.push_str(&format!(
                "      \"allocs_per_op\": {:.3},\n",
                s.allocs_per_op
            ));
            out.push_str(&format!(
                "      \"latency_ns\": {}\n",
                s.latency_ns.to_json()
            ));
            out.push_str(if i + 1 == self.series.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Where the artifact lives: the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trajectory.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end trajectory: every batch size runs, replies all
    /// decode, and the JSON artifact carries every required field. (No
    /// alloc assertions here — the test harness does not install
    /// [`CountingAlloc`], so alloc counts read zero.)
    #[test]
    fn tiny_trajectory_runs_and_renders() {
        let cfg = TrajectoryConfig {
            mode: "test",
            objects: 4,
            servers: 3,
            ops_per_series: 96,
            ops_per_action: 32,
            seed: 7,
        };
        let report = run(&cfg);
        assert_eq!(report.series.len(), BATCH_SIZES.len());
        for s in &report.series {
            assert_eq!(s.ops, 96);
            assert!(s.ops_per_sec > 0.0);
            assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        }
        let json = report.to_json();
        for field in [
            "\"experiment\": \"trajectory\"",
            "\"batch\": 1",
            "\"batch\": 4",
            "\"batch\": 16",
            "\"batch\": 64",
            "\"ops_per_sec\"",
            "\"p50_ns\"",
            "\"p95_ns\"",
            "\"p99_ns\"",
            "\"allocs_per_op\"",
            "\"latency_ns\"",
            "\"median\"",
        ] {
            assert!(json.contains(field), "artifact missing {field}: {json}");
        }
    }
}
