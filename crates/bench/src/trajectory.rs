//! Production-scale throughput trajectory for the batched invocation
//! path and the sharded-world scale-out: the `BENCH_trajectory.json`
//! recorder.
//!
//! Two axes, one artifact:
//!
//! * **Batch axis** — drives the active-policy counter workload through
//!   the typed `Handle` surface at batch sizes {1, 4, 16, 64} over a
//!   large object population and a large server group (one world, one
//!   thread).
//! * **Shard axis** — the same workload split across N independent world
//!   shards on N OS threads behind a `HashRouter`
//!   ([`ShardedSystem`](groupview_replication::ShardedSystem)), at a
//!   production-scale object population (10⁶ in full mode — the ROADMAP
//!   target a single world was never asked to reach). Fixed total work,
//!   so aggregate throughput measures genuine scale-out.
//!
//! Every series records **ops/sec** (wall-clock over the whole drive
//! loop), **p50/p95/p99 per-op latency** (nearest-rank percentiles over
//! per-op nanoseconds), **allocs/op** (from the counting global allocator
//! the `experiments` binary installs), and a [`criterion::Summary`] of
//! the latency samples. Shard series additionally record per-shard
//! ops/sec and the speedup against the 1-shard run.
//!
//! The artifact keeps a **history**: each `experiments trajectory` run
//! appends a `{pr, date, mode, series, shard_series}` entry to the
//! `history` array (deduplicating its own pr × mode slot), so the
//! trajectory is an actual trajectory across PRs rather than a snapshot.
//!
//! Gates (smoke-checked in CI, `check`/`check_scaling`): batch=16 must
//! reach ≥2× batch=1 ops/sec with strictly fewer allocs/op; batch=64
//! must not fall below batch=16 (the pooled-buffer working set of a
//! 64-op round trip fits the pool since its cap moved to 192 — see
//! `docs/WIRE.md`); and sharded aggregate throughput must reach the
//! hardware-adjusted scaling floors (≥1.6× at 2 shards, ≥2.5× at 4 on a
//! machine with that many cores; see [`TrajectoryReport::check_scaling`]).

use criterion::Summary;
use groupview_replication::{
    Client, Counter, CounterOp, HashRouter, ReplicationPolicy, ShardRouter, ShardedSystem, System,
    TypedUid,
};
use groupview_sim::wire::{self, WireStats};
use groupview_sim::NodeId;
use groupview_workload::Histogram;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counting allocator shell. The `experiments` binary installs it as the
/// `#[global_allocator]`; declaring it here (without the attribute) keeps
/// the library usable from targets that install their own allocator
/// (`benches/objects.rs`).
///
/// Counts are **striped** across cache-line-padded slots keyed by a hash
/// of the current stack address (cheap, async-signal-safe, and distinct
/// per thread), so shard threads allocating concurrently do not serialize
/// on one contended cache line — the shard axis would otherwise measure
/// the counter, not the system. [`alloc_count`] sums the stripes.
pub struct CountingAlloc;

#[repr(align(128))]
struct PaddedCounter(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_COUNTER: PaddedCounter = PaddedCounter(AtomicU64::new(0));
const STRIPES: usize = 8;

static ALLOC_STRIPES: [PaddedCounter; STRIPES] = [ZERO_COUNTER; STRIPES];

#[inline]
fn stripe() -> &'static AtomicU64 {
    // A stack-local's address differs per thread (each thread has its own
    // stack) and is always available inside the allocator, unlike TLS or
    // `std::thread::current()`, which may themselves allocate.
    let probe = 0u8;
    let addr = std::ptr::from_ref(&probe) as usize;
    &ALLOC_STRIPES[(addr >> 7) % STRIPES].0
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        stripe().fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        stripe().fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

/// Total heap allocations seen by [`CountingAlloc`] across all threads
/// (0 unless installed).
pub fn alloc_count() -> u64 {
    ALLOC_STRIPES
        .iter()
        .map(|c| c.0.load(Ordering::Relaxed))
        .sum()
}

/// The batch sizes every trajectory sweeps.
pub const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];

/// Measured passes per series; the best pass is recorded. Ratio gates on
/// single passes are scheduler-noise lotteries, best-of-N is the standard
/// cure for throughput comparisons.
pub const MEASURE_PASSES: usize = 3;

/// The batch size the shard axis drives (the batch sweet spot).
pub const SHARD_BATCH: usize = 16;

/// Dimensions of one trajectory run.
#[derive(Debug, Clone)]
pub struct TrajectoryConfig {
    /// `"full"` or `"smoke"` — recorded in the artifact.
    pub mode: &'static str,
    /// Objects registered in the directory DBs for the batch axis (each
    /// is a replicated counter with `Sv = St =` the full server set).
    pub objects: usize,
    /// Server/store nodes (the "large group": every object binds all of
    /// them).
    pub servers: usize,
    /// Operations driven per batch-size series (and in total across all
    /// shards per shard series).
    pub ops_per_series: u64,
    /// Operations per client action (one activation + one commit each).
    pub ops_per_action: usize,
    /// World seed.
    pub seed: u64,
    /// Shard counts for the shard axis (empty skips it).
    pub shard_counts: Vec<usize>,
    /// Total objects across all shards on the shard axis (the 10⁶
    /// production-scale population in full mode).
    pub sharded_objects: usize,
}

impl TrajectoryConfig {
    /// The production-scale configuration: ≥10⁵ ops per series over 10⁴
    /// objects bound to an 8-server group; the shard axis carries 10⁶
    /// objects across {1, 2, 4, 8} world shards.
    pub fn full() -> Self {
        TrajectoryConfig {
            mode: "full",
            objects: 10_000,
            servers: 8,
            ops_per_series: 100_000,
            ops_per_action: 64,
            seed: 99,
            shard_counts: vec![1, 2, 4, 8],
            sharded_objects: 1_000_000,
        }
    }

    /// The CI configuration: same shape, small sizes. (Large enough that
    /// a series runs tens of milliseconds — the gates compare ratios, and
    /// sub-10ms runs are all scheduler noise.)
    pub fn smoke() -> Self {
        TrajectoryConfig {
            mode: "smoke",
            objects: 300,
            servers: 4,
            ops_per_series: 32_768,
            ops_per_action: 64,
            seed: 99,
            shard_counts: vec![1, 2, 4],
            sharded_objects: 1_200,
        }
    }
}

/// One batch size's measurements.
#[derive(Debug, Clone)]
pub struct Series {
    /// Ops per batched invocation (1 = the plain invoke path).
    pub batch: usize,
    /// Operations driven.
    pub ops: u64,
    /// Client actions driven (each: activate, invoke, commit).
    pub actions: u64,
    /// Wall-clock throughput over the whole drive loop.
    pub ops_per_sec: f64,
    /// Nearest-rank per-op latency percentiles, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Heap allocations per op (0.0 when [`CountingAlloc`] is not the
    /// installed global allocator).
    pub allocs_per_op: f64,
    /// Shared-schema summary of the same per-op latency samples.
    pub latency_ns: Summary,
}

/// One shard count's measurements: the same total workload split across
/// N independent world shards on N OS threads.
#[derive(Debug, Clone)]
pub struct ShardSeries {
    /// World shards (OS threads).
    pub shards: usize,
    /// Total objects across all shards.
    pub objects: usize,
    /// Total operations driven across all shards.
    pub ops: u64,
    /// Total ops over the wall-clock of the whole fan-out (all shards
    /// running concurrently).
    pub aggregate_ops_per_sec: f64,
    /// Each shard's own ops over its own drive-loop elapsed time.
    pub per_shard_ops_per_sec: Vec<f64>,
    /// Aggregate speedup vs the 1-shard series (1.0 for it).
    pub speedup_vs_1shard: f64,
    /// Merged per-op latency percentiles across all shards, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Heap allocations per op across all shards.
    pub allocs_per_op: f64,
    /// Wire-buffer stats for the best measured pass, **summed across every
    /// shard thread**. Wire counters are thread-local, so each shard reads
    /// its own delta inside `exec_all` (on its own OS thread) and the sum
    /// here is the true whole-system aggregate — a `shards=4` series
    /// reports four worlds' allocations, not just the launcher thread's
    /// (which would read zero).
    pub wire: WireStats,
    /// Shared-schema summary of the merged per-op latency samples.
    pub latency_ns: Summary,
}

/// A full trajectory: one [`Series`] per batch size, one [`ShardSeries`]
/// per shard count.
#[derive(Debug, Clone)]
pub struct TrajectoryReport {
    /// The configuration that produced it.
    pub config: TrajectoryConfig,
    /// Batch-axis measurements, in [`BATCH_SIZES`] order.
    pub series: Vec<Series>,
    /// Shard-axis measurements, in `config.shard_counts` order.
    pub shard_series: Vec<ShardSeries>,
    /// CPU cores available to this process when the run happened (the
    /// scaling gates are hardware-adjusted; recording it keeps artifacts
    /// interpretable).
    pub cores: usize,
}

fn n(i: usize) -> NodeId {
    NodeId::new(u32::try_from(i).expect("node index fits u32"))
}

/// Cores available to this process (1 if undetectable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// What one measured [`drive`] pass returns: (ops, actions, latency
/// histogram, per-op latency samples, elapsed seconds).
type DrivePass = (u64, u64, Histogram, Vec<f64>, f64);

/// The shared drive loop: actions of `ops_per_action` ops against `uids`
/// round-robin, invoking `batch` ops per call.
fn drive(
    client: &Client,
    uids: &[TypedUid<Counter>],
    replicas: usize,
    ops_target: u64,
    ops_per_action: usize,
    batch: usize,
) -> DrivePass {
    let mut latency = Histogram::new();
    let mut samples: Vec<f64> = Vec::new();
    let mut done = 0u64;
    let mut actions = 0u64;
    let started = Instant::now();
    while done < ops_target {
        let uid = uids[(actions as usize) % uids.len()];
        actions += 1;
        let handle = uid.open(client);
        let action = client.begin_action();
        handle.activate(action, replicas).expect("activate");
        let in_action = (ops_per_action as u64).min(ops_target - done) as usize;
        let mut left = in_action;
        while left > 0 {
            let k = batch.min(left);
            let t = Instant::now();
            if batch == 1 {
                black_box(handle.invoke(action, CounterOp::Add(1)).expect("invoke"));
            } else {
                let ops = vec![CounterOp::Add(1); k];
                black_box(handle.invoke_batch(action, &ops).expect("invoke batch"));
            }
            let per_op_ns = t.elapsed().as_nanos() as f64 / k as f64;
            latency.add(per_op_ns as u64);
            samples.push(per_op_ns);
            left -= k;
        }
        client.commit(action).expect("commit");
        done += in_action as u64;
    }
    let elapsed = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    (done, actions, latency, samples, elapsed)
}

/// Runs one batch-size series in a fresh world.
fn run_series(cfg: &TrajectoryConfig, batch: usize) -> Series {
    let sys = System::builder(cfg.seed)
        .nodes(cfg.servers + 2)
        .policy(ReplicationPolicy::Active)
        .build();
    let servers: Vec<NodeId> = (1..=cfg.servers).map(n).collect();
    let uids: Vec<TypedUid<Counter>> = (0..cfg.objects)
        .map(|_| {
            sys.create_typed(Counter::new(0), &servers, &servers)
                .expect("create object")
        })
        .collect();
    let client = sys.client(n(cfg.servers + 1));

    // Unmeasured warmup: faults in the code paths, fills the buffer pool,
    // and heats caches so the measured loop sees steady state.
    let warm_ops = (cfg.ops_per_series / 8).clamp(64, 8_192);
    drive(
        &client,
        &uids,
        cfg.servers,
        warm_ops,
        cfg.ops_per_action,
        batch,
    );

    // Best of [`MEASURE_PASSES`]: keep the pass with the shortest
    // wall-clock (alloc counts are deterministic across passes).
    let mut best = None;
    let mut alloc_delta = 0;
    for _ in 0..MEASURE_PASSES {
        let alloc_before = alloc_count();
        let pass = drive(
            &client,
            &uids,
            cfg.servers,
            cfg.ops_per_series,
            cfg.ops_per_action,
            batch,
        );
        alloc_delta = alloc_count() - alloc_before;
        if best
            .as_ref()
            .is_none_or(|(.., prev): &(_, _, _, _, f64)| pass.4 < *prev)
        {
            best = Some(pass);
        }
    }
    let (done, actions, latency, samples, elapsed) = best.expect("at least one measured pass");

    Series {
        batch,
        ops: done,
        actions,
        ops_per_sec: done as f64 / elapsed,
        p50_ns: latency.p50(),
        p95_ns: latency.p95(),
        p99_ns: latency.percentile(99.0),
        allocs_per_op: alloc_delta as f64 / done as f64,
        latency_ns: Summary::from_samples(format!("trajectory/batch={batch}/latency_ns"), &samples),
    }
}

/// Runs one shard-count series: `shards` independent worlds on `shards`
/// OS threads, each holding `sharded_objects / shards` objects
/// (UID-aligned with the hash router) and driving its share of the total
/// op budget shard-locally at [`SHARD_BATCH`] ops per invocation.
fn run_shard_series(cfg: &TrajectoryConfig, shards: usize) -> ShardSeries {
    assert!(shards > 0, "a shard series needs at least one shard");
    let router: Arc<dyn ShardRouter> = Arc::new(HashRouter::new(shards));
    let builder = System::builder(cfg.seed)
        .nodes(cfg.servers + 2)
        .policy(ReplicationPolicy::Active);
    let sys = ShardedSystem::launch(builder, Arc::clone(&router));

    let servers: Vec<NodeId> = (1..=cfg.servers).map(n).collect();
    let objects_per_shard = (cfg.sharded_objects / shards).max(1);
    let ops_per_shard = (cfg.ops_per_series / shards as u64).max(1);
    let ops_per_action = cfg.ops_per_action;
    let replicas = cfg.servers;

    // Phase 1 (unmeasured): every shard populates its own world with its
    // router-aligned slice of the object population, concurrently.
    let create_router = Arc::clone(&router);
    let uids_by_shard: Vec<Vec<TypedUid<Counter>>> = sys.exec_all(move |world| {
        let shard = world.index();
        (0..objects_per_shard)
            .map(|_| {
                world
                    .sys()
                    .skip_foreign_uids(|uid| create_router.route(uid) == shard);
                world
                    .sys()
                    .create_typed(Counter::new(0), &servers, &servers)
                    .expect("create object")
            })
            .collect()
    });
    let uids_by_shard = Arc::new(uids_by_shard);

    // Unmeasured warmup on every shard: steady-state caches and pools
    // before the clock starts.
    let warm_uids = Arc::clone(&uids_by_shard);
    let warm_ops = (ops_per_shard / 8).clamp(16, 4_096);
    sys.exec_all(move |world| {
        drive(
            world.client(),
            &warm_uids[world.index()],
            replicas,
            warm_ops,
            ops_per_action,
            SHARD_BATCH,
        );
    });

    // Phase 2 (measured): all shards drive their op share concurrently,
    // entirely shard-local — no channel crossing per op, no shared
    // mutable state, just N worlds on N threads. Best of
    // [`MEASURE_PASSES`] by fan-out wall-clock.
    let mut best: Option<(Vec<(DrivePass, WireStats)>, f64)> = None;
    let mut alloc_delta = 0;
    for _ in 0..MEASURE_PASSES {
        let pass_uids = Arc::clone(&uids_by_shard);
        let alloc_before = alloc_count();
        let started = Instant::now();
        // Wire counters are thread-local: each shard diffs its own inside
        // the closure, the only place its thread's counters are readable.
        let results: Vec<(DrivePass, WireStats)> = sys.exec_all(move |world| {
            let uids = &pass_uids[world.index()];
            let wire_before = wire::stats();
            let pass = drive(
                world.client(),
                uids,
                replicas,
                ops_per_shard,
                ops_per_action,
                SHARD_BATCH,
            );
            (pass, wire::stats().since(wire_before))
        });
        let wall = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        alloc_delta = alloc_count() - alloc_before;
        if best.as_ref().is_none_or(|(_, prev)| wall < *prev) {
            best = Some((results, wall));
        }
    }
    let (results, wall) = best.expect("at least one measured pass");
    let wire_total = results
        .iter()
        .fold(WireStats::default(), |acc, (_, w)| WireStats {
            buffer_allocs: acc.buffer_allocs + w.buffer_allocs,
            pool_reuses: acc.pool_reuses + w.pool_reuses,
            bytes_copied: acc.bytes_copied + w.bytes_copied,
        });
    let results: Vec<DrivePass> = results.into_iter().map(|(pass, _)| pass).collect();

    let total_ops: u64 = results.iter().map(|(done, ..)| done).sum();
    let per_shard_ops_per_sec: Vec<f64> = results
        .iter()
        .map(|(done, _, _, _, elapsed)| *done as f64 / elapsed)
        .collect();
    let mut merged = Histogram::new();
    let mut samples: Vec<f64> = Vec::new();
    for (_, _, hist, shard_samples, _) in &results {
        merged.merge(hist);
        samples.extend_from_slice(shard_samples);
    }

    ShardSeries {
        shards,
        objects: objects_per_shard * shards,
        ops: total_ops,
        aggregate_ops_per_sec: total_ops as f64 / wall,
        per_shard_ops_per_sec,
        speedup_vs_1shard: 1.0, // filled by `run` once the 1-shard base exists
        p50_ns: merged.p50(),
        p95_ns: merged.p95(),
        p99_ns: merged.percentile(99.0),
        allocs_per_op: alloc_delta as f64 / total_ops as f64,
        wire: wire_total,
        latency_ns: Summary::from_samples(
            format!("trajectory/shards={shards}/latency_ns"),
            &samples,
        ),
    }
}

/// Runs the whole trajectory: one series per batch size, then one per
/// shard count.
pub fn run(cfg: &TrajectoryConfig) -> TrajectoryReport {
    let mut series = Vec::with_capacity(BATCH_SIZES.len());
    for batch in BATCH_SIZES {
        let s = run_series(cfg, batch);
        println!(
            "trajectory/batch={:<3} {:>10.0} ops/sec  p50={}ns p95={}ns p99={}ns  {:.2} allocs/op  ({} ops, {} actions)",
            s.batch, s.ops_per_sec, s.p50_ns, s.p95_ns, s.p99_ns, s.allocs_per_op, s.ops, s.actions
        );
        series.push(s);
    }
    let mut shard_series: Vec<ShardSeries> = Vec::with_capacity(cfg.shard_counts.len());
    for &shards in &cfg.shard_counts {
        let mut s = run_shard_series(cfg, shards);
        if let Some(base) = shard_series.iter().find(|b| b.shards == 1) {
            s.speedup_vs_1shard = s.aggregate_ops_per_sec / base.aggregate_ops_per_sec;
        }
        println!(
            "trajectory/shards={:<2} {:>10.0} ops/sec aggregate ({:.2}x vs 1 shard)  p50={}ns p95={}ns p99={}ns  {:.2} allocs/op  wire[{}]  ({} ops over {} objects)",
            s.shards,
            s.aggregate_ops_per_sec,
            s.speedup_vs_1shard,
            s.p50_ns,
            s.p95_ns,
            s.p99_ns,
            s.allocs_per_op,
            s.wire,
            s.ops,
            s.objects
        );
        shard_series.push(s);
    }
    TrajectoryReport {
        config: cfg.clone(),
        series,
        shard_series,
        cores: available_cores(),
    }
}

impl TrajectoryReport {
    /// The batch-axis acceptance gates, checked by the CI smoke run:
    /// batch=16 must deliver ≥2× the ops/sec of batch=1 with (when
    /// allocation data is present) strictly fewer allocs/op, and
    /// batch=64 must stay within 15% of batch=16. The curve has a real,
    /// documented knee at 16: raising the wire pool cap from 32 to 192
    /// recovered most of the old batch=64 cliff (~18% down) but a few
    /// percent remains from per-frame working-set pressure — see
    /// `docs/WIRE.md`. The gate bounds the knee so it cannot silently
    /// become a cliff again.
    pub fn check(&self) -> Result<(), String> {
        let find = |b: usize| {
            self.series
                .iter()
                .find(|s| s.batch == b)
                .ok_or_else(|| format!("no batch={b} series"))
        };
        let b1 = find(1)?;
        let b16 = find(16)?;
        let b64 = find(64)?;
        if b16.ops_per_sec < 2.0 * b1.ops_per_sec {
            return Err(format!(
                "batch=16 must reach ≥2× batch=1 throughput: {:.0} vs {:.0} ops/sec",
                b16.ops_per_sec, b1.ops_per_sec
            ));
        }
        if b1.allocs_per_op > 0.0 && b16.allocs_per_op >= b1.allocs_per_op {
            return Err(format!(
                "batch=16 must allocate strictly less per op than batch=1: {:.2} vs {:.2}",
                b16.allocs_per_op, b1.allocs_per_op
            ));
        }
        if b64.ops_per_sec < 0.85 * b16.ops_per_sec {
            return Err(format!(
                "batch=64 fell more than 15% below batch=16 throughput: {:.0} vs {:.0} ops/sec \
                 (the knee became a cliff — pool cap vs batch working set, see docs/WIRE.md)",
                b64.ops_per_sec, b16.ops_per_sec
            ));
        }
        Ok(())
    }

    /// The shard-axis scaling gates, hardware-adjusted: the ISSUE targets
    /// — ≥1.6× aggregate ops/sec at 2 shards and ≥2.5× at 4 shards vs 1
    /// shard — are per-core efficiency floors (0.8 and 0.625), so the
    /// enforced bound is `floor × min(shards, cores)`. On a machine with
    /// ≥ `shards` cores that is exactly the ISSUE number; on fewer cores
    /// the shards time-slice and the gate degrades to "sharding must not
    /// collapse throughput" (e.g. ≥0.8× solo on 1 core). The artifact
    /// records `cores` so readers can tell which regime a run measured.
    pub fn check_scaling(&self) -> Result<(), String> {
        if self.shard_series.is_empty() {
            return Ok(());
        }
        let base = self
            .shard_series
            .iter()
            .find(|s| s.shards == 1)
            .ok_or("no shards=1 base series")?;
        for s in &self.shard_series {
            let floor = match s.shards {
                2 => 0.8,
                4 => 0.625,
                _ => continue, // 8 shards is recorded, not gated
            };
            let required = floor * s.shards.min(self.cores) as f64;
            let speedup = s.aggregate_ops_per_sec / base.aggregate_ops_per_sec;
            if speedup < required {
                return Err(format!(
                    "shards={} must reach ≥{:.2}× the 1-shard aggregate on {} core(s): \
                     measured {:.2}× ({:.0} vs {:.0} ops/sec)",
                    s.shards,
                    required,
                    self.cores,
                    speedup,
                    s.aggregate_ops_per_sec,
                    base.aggregate_ops_per_sec
                ));
            }
        }
        Ok(())
    }

    fn series_json(&self, indent: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{indent}\"series\": [\n"));
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(&format!("{indent}  {{\n"));
            out.push_str(&format!("{indent}    \"batch\": {},\n", s.batch));
            out.push_str(&format!("{indent}    \"ops\": {},\n", s.ops));
            out.push_str(&format!("{indent}    \"actions\": {},\n", s.actions));
            out.push_str(&format!(
                "{indent}    \"ops_per_sec\": {:.1},\n",
                s.ops_per_sec
            ));
            out.push_str(&format!("{indent}    \"p50_ns\": {},\n", s.p50_ns));
            out.push_str(&format!("{indent}    \"p95_ns\": {},\n", s.p95_ns));
            out.push_str(&format!("{indent}    \"p99_ns\": {},\n", s.p99_ns));
            out.push_str(&format!(
                "{indent}    \"allocs_per_op\": {:.3},\n",
                s.allocs_per_op
            ));
            out.push_str(&format!(
                "{indent}    \"latency_ns\": {}\n",
                s.latency_ns.to_json()
            ));
            out.push_str(&format!(
                "{indent}  }}{}\n",
                if i + 1 == self.series.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!("{indent}]"));
        out
    }

    fn shard_series_json(&self, indent: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{indent}\"shard_series\": [\n"));
        for (i, s) in self.shard_series.iter().enumerate() {
            let per_shard = s
                .per_shard_ops_per_sec
                .iter()
                .map(|v| format!("{v:.1}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("{indent}  {{\n"));
            out.push_str(&format!("{indent}    \"shards\": {},\n", s.shards));
            out.push_str(&format!("{indent}    \"objects\": {},\n", s.objects));
            out.push_str(&format!("{indent}    \"ops\": {},\n", s.ops));
            out.push_str(&format!(
                "{indent}    \"aggregate_ops_per_sec\": {:.1},\n",
                s.aggregate_ops_per_sec
            ));
            out.push_str(&format!(
                "{indent}    \"per_shard_ops_per_sec\": [{per_shard}],\n"
            ));
            out.push_str(&format!(
                "{indent}    \"speedup_vs_1shard\": {:.3},\n",
                s.speedup_vs_1shard
            ));
            out.push_str(&format!("{indent}    \"p50_ns\": {},\n", s.p50_ns));
            out.push_str(&format!("{indent}    \"p95_ns\": {},\n", s.p95_ns));
            out.push_str(&format!("{indent}    \"p99_ns\": {},\n", s.p99_ns));
            out.push_str(&format!(
                "{indent}    \"allocs_per_op\": {:.3},\n",
                s.allocs_per_op
            ));
            out.push_str(&format!(
                "{indent}    \"wire\": {{\"buffer_allocs\": {}, \"pool_reuses\": {}, \
                 \"bytes_copied\": {}}},\n",
                s.wire.buffer_allocs, s.wire.pool_reuses, s.wire.bytes_copied
            ));
            out.push_str(&format!(
                "{indent}    \"latency_ns\": {}\n",
                s.latency_ns.to_json()
            ));
            out.push_str(&format!(
                "{indent}  }}{}\n",
                if i + 1 == self.shard_series.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!("{indent}]"));
        out
    }

    /// Renders the artifact **without** history (tests, ad-hoc callers).
    /// The `experiments` binary uses [`TrajectoryReport::to_json_with_history`]
    /// so runs accumulate.
    pub fn to_json(&self) -> String {
        self.to_json_with_history(None, 0, "")
    }

    /// Renders the artifact, carrying forward the `history` array from
    /// `previous` (the prior artifact's JSON text, if any) and appending
    /// this run as a `{pr, date, mode, series, shard_series}` entry.
    /// An earlier entry for the same `pr` × mode is replaced, so repeated
    /// runs within one PR do not inflate the history.
    pub fn to_json_with_history(&self, previous: Option<&str>, pr: u64, date: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"trajectory\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.config.mode));
        out.push_str("  \"policy\": \"active\",\n");
        out.push_str("  \"workload\": \"counter Add(1), typed handle surface\",\n");
        out.push_str(&format!("  \"objects\": {},\n", self.config.objects));
        out.push_str(&format!("  \"servers\": {},\n", self.config.servers));
        out.push_str(&format!(
            "  \"ops_per_series\": {},\n",
            self.config.ops_per_series
        ));
        out.push_str(&format!(
            "  \"ops_per_action\": {},\n",
            self.config.ops_per_action
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!(
            "  \"sharded_objects\": {},\n",
            self.config.sharded_objects
        ));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&self.series_json("  "));
        out.push_str(",\n");
        out.push_str(&self.shard_series_json("  "));
        out.push_str(",\n");

        // History: previous entries (minus this pr × mode's old slot),
        // then this run.
        let mut entries: Vec<String> = previous
            .and_then(extract_history_entries)
            .unwrap_or_default();
        let slot = format!("\"pr\": {}, \"mode\": \"{}\"", pr, self.config.mode);
        entries.retain(|e| !e.contains(&slot));
        entries.push(self.history_entry(pr, date));
        out.push_str("  \"history\": [\n");
        for (i, e) in entries.iter().enumerate() {
            out.push_str(&format!(
                "    {e}{}\n",
                if i + 1 == entries.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// One compact history entry: the per-PR trajectory point.
    fn history_entry(&self, pr: u64, date: &str) -> String {
        let series = self
            .series
            .iter()
            .map(|s| {
                format!(
                    "{{\"batch\": {}, \"ops_per_sec\": {:.1}, \"p99_ns\": {}, \"allocs_per_op\": {:.3}}}",
                    s.batch, s.ops_per_sec, s.p99_ns, s.allocs_per_op
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let shard_series = self
            .shard_series
            .iter()
            .map(|s| {
                format!(
                    "{{\"shards\": {}, \"aggregate_ops_per_sec\": {:.1}, \"speedup_vs_1shard\": {:.3}}}",
                    s.shards, s.aggregate_ops_per_sec, s.speedup_vs_1shard
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"pr\": {}, \"mode\": \"{}\", \"date\": \"{}\", \"cores\": {}, \
             \"series\": [{}], \"shard_series\": [{}]}}",
            pr, self.config.mode, date, self.cores, series, shard_series
        )
    }
}

/// Pulls the entries of the top-level `"history": [...]` array out of a
/// prior artifact, one rendered object per element (no serde in the
/// offline workspace: a bracket-depth scan, tolerant of absence). The
/// trend renderer reads the same array.
pub(crate) fn history_entries(json: &str) -> Option<Vec<String>> {
    extract_history_entries(json)
}

fn extract_history_entries(json: &str) -> Option<Vec<String>> {
    let start = json.find("\"history\"")?;
    let open = start + json[start..].find('[')?;
    let mut depth = 0i32;
    let mut end = None;
    for (i, c) in json[open..].char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &json[open + 1..end?];
    // Split into depth-0 elements.
    let mut entries = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '{' | '[' => {
                depth += 1;
                current.push(c);
            }
            '}' | ']' => {
                depth -= 1;
                current.push(c);
                if depth == 0 {
                    entries.push(std::mem::take(&mut current).trim().to_string());
                }
            }
            ',' if depth == 0 => {}
            _ => {
                if depth > 0 {
                    current.push(c);
                }
            }
        }
    }
    Some(entries.into_iter().filter(|e| !e.is_empty()).collect())
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no chrono in the
/// offline workspace).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// The PR number recorded in history entries: `TRAJECTORY_PR` env var if
/// set, else one past the lines already in `CHANGES.md` (the driver
/// appends one line per landed PR), else 0.
pub fn current_pr() -> u64 {
    if let Ok(v) = std::env::var("TRAJECTORY_PR") {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    let changes = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../CHANGES.md");
    std::fs::read_to_string(changes)
        .map(|text| text.lines().filter(|l| !l.trim().is_empty()).count() as u64 + 1)
        .unwrap_or(0)
}

/// Where the artifact lives: the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trajectory.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TrajectoryConfig {
        TrajectoryConfig {
            mode: "test",
            objects: 4,
            servers: 3,
            ops_per_series: 96,
            ops_per_action: 32,
            seed: 7,
            shard_counts: vec![1, 2],
            sharded_objects: 8,
        }
    }

    /// A tiny end-to-end trajectory: every batch size and shard count
    /// runs, replies all decode, and the JSON artifact carries every
    /// required field. (No alloc assertions here — the test harness does
    /// not install [`CountingAlloc`], so alloc counts read zero.)
    #[test]
    fn tiny_trajectory_runs_and_renders() {
        let cfg = tiny_config();
        let report = run(&cfg);
        assert_eq!(report.series.len(), BATCH_SIZES.len());
        for s in &report.series {
            assert_eq!(s.ops, 96);
            assert!(s.ops_per_sec > 0.0);
            assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        }
        assert_eq!(report.shard_series.len(), 2);
        for s in &report.shard_series {
            assert_eq!(s.objects, 8);
            assert!(s.aggregate_ops_per_sec > 0.0);
            assert_eq!(s.per_shard_ops_per_sec.len(), s.shards);
            // Wire counters are thread-local; a non-zero sum at shards=2
            // proves the aggregation crossed every shard thread.
            assert!(s.wire.bytes_copied > 0, "aggregated wire bytes");
            assert!(s.wire.buffer_allocs + s.wire.pool_reuses > 0);
        }
        assert!((report.shard_series[0].speedup_vs_1shard - 1.0).abs() < 1e-9);
        let json = report.to_json();
        for field in [
            "\"experiment\": \"trajectory\"",
            "\"batch\": 1",
            "\"batch\": 4",
            "\"batch\": 16",
            "\"batch\": 64",
            "\"ops_per_sec\"",
            "\"p50_ns\"",
            "\"p95_ns\"",
            "\"p99_ns\"",
            "\"allocs_per_op\"",
            "\"latency_ns\"",
            "\"median\"",
            "\"shard_series\"",
            "\"shards\": 1",
            "\"shards\": 2",
            "\"aggregate_ops_per_sec\"",
            "\"per_shard_ops_per_sec\"",
            "\"speedup_vs_1shard\"",
            "\"wire\"",
            "\"pool_reuses\"",
            "\"cores\"",
            "\"history\"",
        ] {
            assert!(json.contains(field), "artifact missing {field}: {json}");
        }
    }

    /// History accumulates across renders: a new PR's entry appends, the
    /// same PR's re-render replaces its old slot instead of duplicating.
    #[test]
    fn history_appends_and_replaces_by_pr() {
        let cfg = tiny_config();
        let report = run(&cfg);
        let first = report.to_json_with_history(None, 6, "2026-08-01");
        assert!(first.contains("\"pr\": 6"));

        let second = report.to_json_with_history(Some(&first), 7, "2026-08-07");
        assert!(second.contains("\"pr\": 6"), "prior entry carried forward");
        assert!(second.contains("\"pr\": 7"), "new entry appended");

        let rerun = report.to_json_with_history(Some(&second), 7, "2026-08-07");
        assert_eq!(
            rerun.matches("\"pr\": 7").count(),
            1,
            "same pr re-render must replace, not duplicate"
        );
        assert!(rerun.contains("\"pr\": 6"));
    }

    #[test]
    fn history_extraction_tolerates_missing_and_empty_arrays() {
        assert_eq!(extract_history_entries("{}"), None);
        assert_eq!(
            extract_history_entries("{\"history\": []}"),
            Some(Vec::new())
        );
        let two = extract_history_entries(
            "{\"history\": [\n    {\"pr\": 1, \"series\": [{\"batch\": 1}]},\n    {\"pr\": 2}\n  ]}",
        )
        .expect("entries");
        assert_eq!(two.len(), 2);
        assert!(two[0].contains("\"pr\": 1"));
        assert!(two[1].contains("\"pr\": 2"));
    }

    #[test]
    fn civil_date_renders_plausibly() {
        let date = today_utc();
        assert_eq!(date.len(), 10, "{date}");
        assert!(date.starts_with("20"), "{date}");
    }
}
