//! The perf-trajectory trend chart: renders `BENCH_trend.svg` from the
//! history array `BENCH_trajectory.json` accumulates across PRs.
//!
//! Two stacked panels over the same PR axis — **never** a dual-axis chart:
//!
//! * throughput (ops/sec) for batch sizes 1, 16, and 64;
//! * heap allocations per op for the same three series.
//!
//! Design rules baked in: one axis per panel; three categorical series in
//! fixed slot order (blue, orange, aqua — a CVD-validated ordering); 2px
//! lines with ≥8px markers ringed in the surface color; hairline
//! gridlines; a legend plus direct end-labels (the aqua slot is sub-3:1 on
//! the light surface, so visible labels are mandatory, not decorative);
//! all text in ink tokens, never the series color. History entries mix
//! `smoke` and `full` runs whose absolute numbers are not comparable, so
//! one mode is charted (the one with the most history points, ties to
//! `full`) and named in the subtitle.

use std::fmt::Write as _;

/// Chart surface (light mode; the artifact is a committed file).
const SURFACE: &str = "#fcfcfb";
/// Primary ink: titles.
const INK: &str = "#0b0b0b";
/// Secondary ink: subtitles, legend, direct labels.
const INK_2: &str = "#52514e";
/// Muted ink: axis tick labels.
const MUTED: &str = "#898781";
/// Hairline gridline gray.
const GRID: &str = "#e1e0d9";
/// Baseline / axis gray.
const BASELINE: &str = "#c3c2b7";
/// Categorical slots 1–3 (validated adjacent + all-pairs, light surface).
const SERIES_COLORS: [&str; 3] = ["#2a78d6", "#eb6834", "#1baf7a"];
/// The batch sizes charted, in slot order.
const TREND_BATCHES: [usize; 3] = [1, 16, 64];

/// One PR's trajectory point for one batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSample {
    /// Batched ops per invocation.
    pub batch: usize,
    /// Wall-clock throughput.
    pub ops_per_sec: f64,
    /// Heap allocations per op.
    pub allocs_per_op: f64,
}

/// One history entry: a PR × mode trajectory snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// PR number the entry was recorded under.
    pub pr: u64,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// `YYYY-MM-DD` the run happened.
    pub date: String,
    /// Per-batch measurements present in the entry.
    pub samples: Vec<TrendSample>,
}

impl TrendPoint {
    fn sample(&self, batch: usize) -> Option<&TrendSample> {
        self.samples.iter().find(|s| s.batch == batch)
    }
}

/// Parses the history entries out of a `BENCH_trajectory.json` artifact.
///
/// The workspace is offline (no serde), so this is the same bracket-depth
/// scanning the artifact writer uses: tolerant of field order, intolerant
/// of malformed numbers.
pub fn parse_history(json: &str) -> Result<Vec<TrendPoint>, String> {
    let entries = crate::trajectory::history_entries(json)
        .ok_or("no \"history\" array in the artifact — run `experiments trajectory` first")?;
    let mut points = Vec::with_capacity(entries.len());
    for entry in &entries {
        let pr = num_field(entry, "pr").ok_or_else(|| format!("entry without pr: {entry}"))?;
        let mode = str_field(entry, "mode").unwrap_or_else(|| "unknown".into());
        let date = str_field(entry, "date").unwrap_or_default();
        let mut samples = Vec::new();
        if let Some(series) = array_field(entry, "series") {
            for obj in split_objects(&series) {
                let (Some(batch), Some(ops)) =
                    (num_field(&obj, "batch"), num_field(&obj, "ops_per_sec"))
                else {
                    continue;
                };
                samples.push(TrendSample {
                    batch: batch as usize,
                    ops_per_sec: ops,
                    allocs_per_op: num_field(&obj, "allocs_per_op").unwrap_or(0.0),
                });
            }
        }
        points.push(TrendPoint {
            pr: pr as u64,
            mode,
            date,
            samples,
        });
    }
    Ok(points)
}

/// Picks the mode to chart: the one with the most history points, ties
/// broken toward `full` (absolute smoke and full numbers are not
/// comparable, so they never share an axis).
pub fn chart_mode(points: &[TrendPoint]) -> Option<String> {
    let mut modes: Vec<&str> = points.iter().map(|p| p.mode.as_str()).collect();
    modes.sort_unstable();
    modes.dedup();
    modes
        .into_iter()
        .max_by_key(|m| {
            let count = points.iter().filter(|p| p.mode == *m).count();
            (count, *m == "full")
        })
        .map(str::to_string)
}

/// Renders `BENCH_trend.svg` from the artifact text.
pub fn render_trend_svg(artifact_json: &str) -> Result<String, String> {
    let all = parse_history(artifact_json)?;
    let mode = chart_mode(&all).ok_or("history array is empty — nothing to chart")?;
    let mut points: Vec<TrendPoint> = all.into_iter().filter(|p| p.mode == mode).collect();
    points.sort_by_key(|p| p.pr);
    points.dedup_by_key(|p| p.pr);
    if points.is_empty() {
        return Err("history array is empty — nothing to chart".into());
    }
    Ok(render_panels(&points, &mode))
}

// ---- layout ------------------------------------------------------------

const WIDTH: f64 = 960.0;
const PANEL_H: f64 = 252.0;
const MARGIN_L: f64 = 84.0;
const MARGIN_R: f64 = 132.0;
const HEADER_H: f64 = 78.0;
const PANEL_GAP: f64 = 64.0;
const FOOTER_H: f64 = 34.0;
const FONT: &str = "system-ui, -apple-system, 'Segoe UI', sans-serif";

struct Panel<'a> {
    title: &'a str,
    top: f64,
    value: fn(&TrendSample) -> f64,
    format: fn(f64) -> String,
}

fn render_panels(points: &[TrendPoint], mode: &str) -> String {
    let height = HEADER_H + 2.0 * PANEL_H + PANEL_GAP + FOOTER_H;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {WIDTH} {height}\" font-family=\"{FONT}\" role=\"img\" \
         aria-label=\"Performance trajectory across PRs\">"
    );
    let _ = writeln!(
        svg,
        "<rect width=\"{WIDTH}\" height=\"{height}\" fill=\"{SURFACE}\"/>"
    );

    // Header: title, subtitle, legend.
    let _ = writeln!(
        svg,
        "<text x=\"{MARGIN_L}\" y=\"30\" fill=\"{INK}\" font-size=\"17\" \
         font-weight=\"600\">Performance trajectory</text>"
    );
    let last = points.last().expect("non-empty");
    let first = points.first().expect("non-empty");
    let _ = writeln!(
        svg,
        "<text x=\"{MARGIN_L}\" y=\"50\" fill=\"{INK_2}\" font-size=\"12\">batched \
         invocation throughput and allocations per op, {mode} mode, PR {} \u{2192} PR {}{}\
         </text>",
        first.pr,
        last.pr,
        if last.date.is_empty() {
            String::new()
        } else {
            format!(" (latest {})", last.date)
        }
    );
    let mut lx = MARGIN_L;
    for (i, batch) in TREND_BATCHES.iter().enumerate() {
        let color = SERIES_COLORS[i];
        let _ = writeln!(
            svg,
            "<line x1=\"{lx}\" y1=\"64\" x2=\"{}\" y2=\"64\" stroke=\"{color}\" \
             stroke-width=\"2\" stroke-linecap=\"round\"/>",
            lx + 18.0
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"68\" fill=\"{INK_2}\" font-size=\"12\">batch={batch}</text>",
            lx + 24.0
        );
        lx += 24.0 + 9.0 * (7 + batch.to_string().len()) as f64 + 24.0;
    }

    let panels = [
        Panel {
            title: "Throughput (ops/sec)",
            top: HEADER_H,
            value: |s| s.ops_per_sec,
            format: compact,
        },
        Panel {
            title: "Heap allocations per op",
            top: HEADER_H + PANEL_H + PANEL_GAP,
            value: |s| s.allocs_per_op,
            format: |v| format!("{v:.1}"),
        },
    ];
    for panel in &panels {
        render_panel(&mut svg, points, panel);
    }

    let _ = writeln!(
        svg,
        "<text x=\"{MARGIN_L}\" y=\"{}\" fill=\"{MUTED}\" font-size=\"11\">source: \
         BENCH_trajectory.json history \u{00b7} rendered by `experiments trend`</text>",
        height - 12.0
    );
    svg.push_str("</svg>\n");
    svg
}

fn render_panel(svg: &mut String, points: &[TrendPoint], panel: &Panel) {
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = PANEL_H - 58.0;
    let top = panel.top + 34.0;
    let bottom = top + plot_h;

    let max = points
        .iter()
        .flat_map(|p| &p.samples)
        .filter(|s| TREND_BATCHES.contains(&s.batch))
        .map(panel.value)
        .fold(0.0f64, f64::max);
    let max = nice_ceil(max.max(1e-9));
    let x = |i: usize| {
        if points.len() == 1 {
            MARGIN_L + plot_w / 2.0
        } else {
            MARGIN_L + plot_w * i as f64 / (points.len() - 1) as f64
        }
    };
    let y = |v: f64| bottom - (v / max) * plot_h;

    let _ = writeln!(
        svg,
        "<text x=\"{MARGIN_L}\" y=\"{}\" fill=\"{INK}\" font-size=\"13\" \
         font-weight=\"600\">{}</text>",
        panel.top + 16.0,
        panel.title
    );

    // Hairline grid + tick labels on clean fractions of the nice max.
    for tick in 0..=4u32 {
        let v = max * f64::from(tick) / 4.0;
        let ty = y(v);
        let _ = writeln!(
            svg,
            "<line x1=\"{MARGIN_L}\" y1=\"{ty:.1}\" x2=\"{:.1}\" y2=\"{ty:.1}\" \
             stroke=\"{}\" stroke-width=\"1\"/>",
            MARGIN_L + plot_w,
            if tick == 0 { BASELINE } else { GRID }
        );
        let _ = writeln!(
            svg,
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{MUTED}\" font-size=\"11\" \
             text-anchor=\"end\" style=\"font-variant-numeric: tabular-nums\">{}</text>",
            MARGIN_L - 10.0,
            ty + 4.0,
            (panel.format)(v)
        );
    }

    // X tick labels: PR numbers (thin out when dense).
    let step = (points.len() / 12).max(1);
    for (i, p) in points.iter().enumerate() {
        if i % step != 0 && i + 1 != points.len() {
            continue;
        }
        let _ = writeln!(
            svg,
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{MUTED}\" font-size=\"11\" \
             text-anchor=\"middle\" style=\"font-variant-numeric: tabular-nums\">PR {}</text>",
            x(i),
            bottom + 18.0,
            p.pr
        );
    }

    // Series: 2px line, ≥8px markers ringed in the surface color, direct
    // end-label in ink (identity from the adjacent colored mark).
    let mut end_labels: Vec<EndLabel> = Vec::new();
    for (slot, &batch) in TREND_BATCHES.iter().enumerate() {
        let color = SERIES_COLORS[slot];
        let line: Vec<(usize, &TrendSample)> = points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.sample(batch).map(|s| (i, s)))
            .collect();
        if line.is_empty() {
            continue;
        }
        if line.len() > 1 {
            let path: Vec<String> = line
                .iter()
                .map(|(i, s)| format!("{:.1},{:.1}", x(*i), y((panel.value)(s))))
                .collect();
            let _ = writeln!(
                svg,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" \
                 stroke-linejoin=\"round\" stroke-linecap=\"round\"/>",
                path.join(" ")
            );
        }
        for (i, s) in &line {
            let _ = writeln!(
                svg,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"{color}\" \
                 stroke=\"{SURFACE}\" stroke-width=\"2\"><title>PR {} \u{00b7} batch={batch} \
                 \u{00b7} {}</title></circle>",
                x(*i),
                y((panel.value)(s)),
                points[*i].pr,
                (panel.format)((panel.value)(s)),
            );
        }
        let (last_i, last_s) = line.last().expect("non-empty line");
        end_labels.push(EndLabel {
            x: x(*last_i) + 10.0,
            y: y((panel.value)(last_s)) + 4.0,
            text: format!(
                "batch={batch} \u{00b7} {}",
                (panel.format)((panel.value)(last_s))
            ),
        });
    }

    // Direct end-labels, nudged apart so series that finish at nearby
    // values stay readable (then emitted in ink, identity from the line
    // the label sits beside).
    resolve_label_collisions(&mut end_labels, top + 10.0, bottom + 4.0);
    for label in &end_labels {
        let _ = writeln!(
            svg,
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{INK_2}\" font-size=\"12\">{}</text>",
            label.x, label.y, label.text
        );
    }
}

/// A direct end-label pending collision resolution.
struct EndLabel {
    x: f64,
    y: f64,
    text: String,
}

/// Minimum vertical separation between stacked end-labels (12px text).
const LABEL_GAP: f64 = 14.0;

/// Pushes vertically overlapping labels apart to [`LABEL_GAP`] spacing,
/// keeping every label inside `[top, bottom]`. One downward sweep opens
/// gaps below; the clamp + upward sweep recovers room at the bottom edge.
fn resolve_label_collisions(labels: &mut [EndLabel], top: f64, bottom: f64) {
    labels.sort_by(|a, b| a.y.total_cmp(&b.y));
    for i in 1..labels.len() {
        let min_y = labels[i - 1].y + LABEL_GAP;
        if labels[i].y < min_y {
            labels[i].y = min_y;
        }
    }
    for i in (0..labels.len()).rev() {
        let max_y = if i + 1 == labels.len() {
            bottom
        } else {
            labels[i + 1].y - LABEL_GAP
        };
        labels[i].y = labels[i].y.min(max_y).max(top);
    }
}

/// Rounds up to the nearest 1/2/2.5/5 × 10^k — clean axis maxima.
fn nice_ceil(v: f64) -> f64 {
    let exp = v.log10().floor();
    let base = 10f64.powf(exp);
    let frac = v / base;
    let nice = if frac <= 1.0 {
        1.0
    } else if frac <= 2.0 {
        2.0
    } else if frac <= 2.5 {
        2.5
    } else if frac <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * base
}

/// Compact value formatting for axis ticks and labels (12.9K, 4.2M).
fn compact(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else if v >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

// ---- tiny JSON field scanners (offline workspace — no serde) -----------

fn num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The text inside `"key": [...]` (bracket-depth matched).
fn array_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let open = at + obj[at..].find('[')?;
    let mut depth = 0i32;
    for (i, c) in obj[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(obj[open + 1..open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits depth-0 `{...}` objects out of array-interior text.
fn split_objects(inner: &str) -> Vec<String> {
    let mut objects = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '{' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth -= 1;
                current.push(c);
                if depth == 0 {
                    objects.push(std::mem::take(&mut current));
                }
            }
            _ if depth > 0 => current.push(c),
            _ => {}
        }
    }
    objects
}

/// Where the rendered chart lives: the repository root, next to the JSON
/// artifact it is derived from.
pub fn trend_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trend.svg")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pr: u64, mode: &str, scale: f64) -> String {
        let series = TREND_BATCHES
            .iter()
            .map(|b| {
                format!(
                    "{{\"batch\": {b}, \"ops_per_sec\": {:.1}, \"p99_ns\": 900, \
                     \"allocs_per_op\": {:.3}}}",
                    scale * *b as f64,
                    40.0 / *b as f64
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"pr\": {pr}, \"mode\": \"{mode}\", \"date\": \"2026-08-0{pr}\", \
             \"cores\": 8, \"series\": [{series}], \"shard_series\": []}}"
        )
    }

    fn artifact(entries: &[String]) -> String {
        format!("{{\"history\": [\n    {}\n  ]}}\n", entries.join(",\n    "))
    }

    #[test]
    fn colliding_end_labels_are_pushed_apart_within_the_panel() {
        let mk = |y: f64| EndLabel {
            x: 0.0,
            y,
            text: String::new(),
        };
        // Two labels 6px apart near the bottom edge: the lower one can't
        // move down, so the upper one must give way.
        let mut labels = vec![mk(196.0), mk(190.0)];
        resolve_label_collisions(&mut labels, 10.0, 200.0);
        assert!(labels[1].y - labels[0].y >= LABEL_GAP);
        assert!(labels.iter().all(|l| (10.0..=200.0).contains(&l.y)));
        // Far-apart labels stay put.
        let mut labels = vec![mk(30.0), mk(120.0)];
        resolve_label_collisions(&mut labels, 10.0, 200.0);
        assert_eq!((labels[0].y, labels[1].y), (30.0, 120.0));
    }

    #[test]
    fn parses_history_points_with_all_samples() {
        let json = artifact(&[entry(6, "smoke", 1000.0), entry(7, "smoke", 1100.0)]);
        let points = parse_history(&json).expect("parse");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].pr, 6);
        assert_eq!(points[0].samples.len(), TREND_BATCHES.len());
        let b16 = points[1].sample(16).expect("batch=16 sample");
        assert!((b16.ops_per_sec - 17_600.0).abs() < 0.5);
        assert!((b16.allocs_per_op - 2.5).abs() < 1e-9);
    }

    #[test]
    fn chart_mode_prefers_majority_then_full() {
        let smoke_heavy = parse_history(&artifact(&[
            entry(5, "smoke", 1.0),
            entry(6, "smoke", 1.0),
            entry(7, "full", 1.0),
        ]))
        .unwrap();
        assert_eq!(chart_mode(&smoke_heavy).as_deref(), Some("smoke"));
        let tied =
            parse_history(&artifact(&[entry(6, "smoke", 1.0), entry(7, "full", 1.0)])).unwrap();
        assert_eq!(chart_mode(&tied).as_deref(), Some("full"));
    }

    #[test]
    fn renders_two_panels_with_lines_markers_and_labels() {
        let json = artifact(&[
            entry(5, "smoke", 900.0),
            entry(6, "smoke", 1000.0),
            entry(7, "smoke", 1150.0),
        ]);
        let svg = render_trend_svg(&json).expect("render");
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 6, "3 series × 2 panels");
        assert_eq!(
            svg.matches("<circle").count(),
            18,
            "3 points × 3 series × 2 panels"
        );
        assert!(svg.contains("Throughput (ops/sec)"));
        assert!(svg.contains("Heap allocations per op"));
        for color in SERIES_COLORS {
            assert!(svg.contains(color), "series color {color} present");
        }
        // Legend + direct end-labels (the relief for the sub-3:1 aqua slot).
        assert!(svg.matches("batch=64").count() >= 3);
        assert!(svg.contains("PR 5") && svg.contains("PR 7"));
        // Dual-axis ban: every axis tick belongs to exactly one panel.
        assert!(svg.contains("smoke mode"));
    }

    #[test]
    fn single_point_history_renders_markers_without_lines() {
        let svg = render_trend_svg(&artifact(&[entry(7, "smoke", 1000.0)])).expect("render");
        assert_eq!(svg.matches("<polyline").count(), 0);
        assert_eq!(svg.matches("<circle").count(), 6, "3 series × 2 panels");
    }

    #[test]
    fn mixed_modes_never_share_an_axis() {
        let json = artifact(&[
            entry(5, "full", 50_000.0),
            entry(6, "smoke", 1000.0),
            entry(7, "smoke", 1100.0),
        ]);
        let svg = render_trend_svg(&json).expect("render");
        assert!(svg.contains("smoke mode"), "majority mode charted");
        assert!(!svg.contains("PR 5"), "full-mode point excluded");
    }

    #[test]
    fn empty_history_is_a_clean_error() {
        assert!(render_trend_svg("{\"history\": []}").is_err());
        assert!(render_trend_svg("{}").is_err());
    }

    #[test]
    fn nice_ceil_lands_on_clean_values() {
        assert_eq!(nice_ceil(17.0), 20.0);
        assert_eq!(nice_ceil(3.0), 5.0);
        assert_eq!(nice_ceil(99.0), 100.0);
        assert_eq!(nice_ceil(210.0), 250.0);
        assert_eq!(nice_ceil(1.0), 1.0);
    }
}
