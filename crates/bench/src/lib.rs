//! Experiment harness regenerating every figure of the paper.
//!
//! The paper's figures are schematic protocol diagrams, not measured plots;
//! each experiment here quantifies the claim behind one figure (or section)
//! — see `DESIGN.md` for the full index and `EXPERIMENTS.md` for recorded
//! paper-vs-measured results. Run them with:
//!
//! ```text
//! cargo run -p groupview-bench --bin experiments --release [e1..e12|all]
//! ```
//!
//! Every experiment is a pure function of its seeds: re-running reproduces
//! the tables bit-for-bit.

pub mod experiments;
pub mod tracefile;
pub mod trajectory;
pub mod trend;

pub use crate::experiments::{all_experiments, run_experiment, Experiment};
pub use crate::trajectory::{TrajectoryConfig, TrajectoryReport};
pub use crate::trend::{parse_history, render_trend_svg, TrendPoint, TrendSample};
