//! The `experiments trajectory --trace` artifacts: runs a canned scenario
//! traced, validates the Chrome trace in-binary, and reports where to
//! write `BENCH_trace.json` (Perfetto / `chrome://tracing`) and
//! `BENCH_trace.jsonl` (one span or sim event per line).

use groupview_obs::TraceSummary;
use groupview_scenario::{canned_scenarios, run_scenario_traced, TraceBundle};

/// The canned scenario the trace artifact captures: a crash the
/// replication layer must mask, so the trace shows bind/invoke/multicast
/// spans, a crash instant, lost messages attributed to the actions they
/// interrupted, and the recovery traffic.
pub const TRACE_SCENARIO: &str = "active/masked_server_crash";
/// The seed the trace artifact uses (any seed works; fixing one keeps the
/// committed artifact reproducible).
pub const TRACE_SEED: u64 = 7;

/// A captured, validated trace ready to write to disk.
pub struct TraceArtifacts {
    /// The Chrome trace-event JSON text.
    pub chrome_json: String,
    /// The JSONL dump text.
    pub jsonl: String,
    /// What the in-binary validator counted.
    pub summary: TraceSummary,
    /// Whether the scenario itself passed its checks.
    pub passed: bool,
}

/// Runs [`TRACE_SCENARIO`] traced and validates the rendered Chrome trace
/// in-binary. Returns an error if the scenario is missing or the trace
/// fails validation — CI treats either as a broken exporter.
pub fn capture() -> Result<TraceArtifacts, String> {
    let scenario = canned_scenarios()
        .into_iter()
        .find(|s| s.name == TRACE_SCENARIO)
        .ok_or_else(|| format!("canned scenario {TRACE_SCENARIO:?} not found"))?;
    let run = run_scenario_traced(&scenario, TRACE_SEED);
    let passed = run.report.passed();
    let bundle = TraceBundle::solo(run);
    let chrome_json = bundle.chrome_json();
    let summary = groupview_obs::validate_chrome_trace(&chrome_json)
        .map_err(|e| format!("chrome trace failed in-binary validation: {e}"))?;
    Ok(TraceArtifacts {
        chrome_json,
        jsonl: bundle.jsonl(),
        summary,
        passed,
    })
}

/// Where the Chrome trace artifact lives: the repository root.
pub fn chrome_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trace.json")
}

/// Where the JSONL dump lives: the repository root.
pub fn jsonl_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trace.jsonl")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_a_validated_trace_with_spans_and_events() {
        let artifacts = capture().expect("capture");
        assert!(artifacts.passed, "the canned scenario passes");
        assert!(artifacts.summary.spans > 0, "phase spans present");
        assert!(artifacts.summary.instants > 0, "sim events present");
        assert!(artifacts.summary.tracks > 1, "node + phase tracks");
        assert!(artifacts.chrome_json.contains("\"traceEvents\""));
        assert!(artifacts.jsonl.lines().count() > 0);
        // The crash the scenario masks must be visible in the trace.
        assert!(artifacts.chrome_json.contains("\"crash\""));
    }
}
