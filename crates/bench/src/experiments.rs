//! The twelve experiments (E1–E12), one per paper figure/section.
//!
//! Each experiment is a deterministic function returning one or more
//! [`TextTable`]s. `DESIGN.md` maps experiments to paper figures;
//! `EXPERIMENTS.md` records the measured output next to the paper's claim.

use groupview_core::{BindingScheme, ExcludePolicy};
use groupview_group::comms::DeliveryMode;
use groupview_group::member::RecordingMember;
use groupview_group::GroupComms;
use groupview_replication::{Counter, CounterOp, ReplicationPolicy, System};
use groupview_scenario::run_plan;
use groupview_sim::{Bytes, NetConfig, NodeId, Sim, SimConfig};
use groupview_store::Uid;
use groupview_workload::table::{fmt_f64, fmt_pct};
use groupview_workload::{FaultAction, FaultScript, RunMetrics, TextTable, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// A named experiment.
pub struct Experiment {
    /// Identifier (`e1`..`e12`).
    pub id: &'static str,
    /// The paper figure or section it quantifies.
    pub figure: &'static str,
    /// The paper's qualitative claim, paraphrased.
    pub claim: &'static str,
    /// Runs the experiment.
    pub run: fn() -> Vec<TextTable>,
}

/// All experiments in order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            figure: "Figure 1 / §2.3(2)",
            claim: "without reliable+ordered delivery, a group member's failure \
                    mid-reply makes client replicas diverge; with it, never",
            run: e1,
        },
        Experiment {
            id: "e2",
            figure: "Figure 2 / §3.2(1)",
            claim: "an unreplicated object (|Sv|=|St|=1) is unavailable whenever \
                    its node is down; affected actions abort",
            run: e2,
        },
        Experiment {
            id: "e3",
            figure: "Figure 3 / §3.2(2)",
            claim: "replicating only the state (|St|=k) keeps the object available \
                    across store crashes at the price of k-fold commit copies",
            run: e3,
        },
        Experiment {
            id: "e4",
            figure: "Figure 4 / §3.2(3)",
            claim: "with |Sv'|=k active servers, up to k-1 server failures are \
                    masked during execution; invocation cost grows with k",
            run: e4,
        },
        Experiment {
            id: "e5",
            figure: "Figure 5 / §3.2(4)",
            claim: "the general case combines both: availability improves along \
                    both the |Sv| and |St| axes",
            run: e5,
        },
        Experiment {
            id: "e6",
            figure: "Figure 6 / §4.1.2",
            claim: "under the standard scheme Sv is static, so every client \
                    rediscovers dead servers 'the hard way' at every bind",
            run: e6,
        },
        Experiment {
            id: "e7",
            figure: "Figure 7 / §4.1.3(i)",
            claim: "independent top-level actions keep Sv relatively up to date \
                    (dead servers pruned once) at the cost of use-list updates; \
                    client crashes leak counts until the cleanup daemon runs",
            run: e7,
        },
        Experiment {
            id: "e8",
            figure: "Figure 8 / §4.1.3(ii)",
            claim: "nested top-level actions achieve the same database hygiene \
                    from within the client action",
            run: e8,
        },
        Experiment {
            id: "e9",
            figure: "§4.2.1",
            claim: "promoting a read lock to write for Exclude aborts whenever \
                    other readers exist; the exclude-write lock never does",
            run: e9,
        },
        Experiment {
            id: "e10",
            figure: "§2.3(3)",
            claim: "commit-time Exclude prevents later clients from binding to \
                    stale replicas; without it they silently read stale state",
            run: e10,
        },
        Experiment {
            id: "e11",
            figure: "§4.1.2 + §4.2 recovery",
            claim: "a recovered node re-joins via Insert/Include, which are \
                    delayed exactly as long as clients hold conflicting locks",
            run: e11,
        },
        Experiment {
            id: "e12",
            figure: "§2.3(2)(i-iii)",
            claim: "active replication masks server crashes at the highest \
                    message cost; coordinator-cohort masks them with failover; \
                    single-copy passive aborts the affected actions",
            run: e12,
        },
        Experiment {
            id: "e13",
            figure: "§5 (concluding remarks / future work)",
            claim: "server data can live in a traditional non-atomic name \
                    server — removing lock interference between binders and \
                    administrators — while the transactional Object State \
                    database alone still guarantees consistent binding",
            run: e13,
        },
    ]
}

/// Runs one experiment by id (`"e1"`..`"e12"`).
pub fn run_experiment(id: &str) -> Option<Vec<TextTable>> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)())
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Builds a world: node 0 naming, `servers`+`stores` as given, and returns
/// `objects` counters registered on them.
fn build_world(
    seed: u64,
    nodes: usize,
    policy: ReplicationPolicy,
    scheme: BindingScheme,
    sv: &[NodeId],
    st: &[NodeId],
    objects: usize,
) -> (System, Vec<Uid>) {
    let sys = System::builder(seed)
        .nodes(nodes)
        .policy(policy)
        .scheme(scheme)
        .build();
    let uids = (0..objects)
        .map(|_| {
            sys.create_object(Box::new(Counter::new(0)), sv, st)
                .expect("create object")
        })
        .collect();
    (sys, uids)
}

/// Drives `spec` with a step-keyed fault script through the scenario
/// runner — the single execution engine that replaced the legacy
/// `workload::Driver` (bit-for-bit identical runs; see the scenario
/// crate's parity suite).
fn run_script(sys: &System, spec: &WorkloadSpec, script: FaultScript) -> RunMetrics {
    run_plan(sys, spec, &script.into()).metrics
}

/// Generates a crash/recover script: each step, while the node is up, it
/// crashes with probability `p` and recovers `down_for` steps later.
fn random_crash_script(seed: u64, node: NodeId, steps: u64, p: f64, down_for: u64) -> FaultScript {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut script = FaultScript::new();
    let mut down_until = 0u64;
    for step in 1..=steps {
        if step < down_until {
            continue;
        }
        if rng.random::<f64>() < p {
            script = script
                .at(step, FaultAction::CrashNode(node))
                .at(step + down_for, FaultAction::RecoverNode(node));
            down_until = step + down_for + 1;
        }
    }
    script
}

// ---------------------------------------------------------------------------
// E1 — Figure 1: divergence without reliable ordered delivery
// ---------------------------------------------------------------------------

fn e1() -> Vec<TextTable> {
    let mut crash_table = TextTable::new(
        "E1a: sender crashes after delivering 1 of 2 replies (300 seeded trials)",
        &["delivery", "trials", "divergent", "divergence"],
    );
    for (mode, name) in [
        (DeliveryMode::Unreliable, "unreliable"),
        (DeliveryMode::ReliableOrdered, "reliable-ordered"),
    ] {
        let trials = 300;
        let mut divergent = 0;
        for t in 0..trials {
            if e1_trial(1_000 + t, mode, 0.0) {
                divergent += 1;
            }
        }
        crash_table.row(vec![
            name.into(),
            trials.to_string(),
            divergent.to_string(),
            fmt_pct(divergent as f64 / trials as f64),
        ]);
    }

    let mut drop_table = TextTable::new(
        "E1b: lossy network, no sender crash (300 seeded trials per cell)",
        &["delivery", "drop p", "divergent", "divergence"],
    );
    for (mode, name) in [
        (DeliveryMode::Unreliable, "unreliable"),
        (DeliveryMode::ReliableOrdered, "reliable-ordered"),
    ] {
        for p in [0.05, 0.15, 0.30] {
            let trials = 300;
            let mut divergent = 0;
            for t in 0..trials {
                if e1_trial(9_000 + t, mode, p) {
                    divergent += 1;
                }
            }
            drop_table.row(vec![
                name.into(),
                format!("{p:.2}"),
                divergent.to_string(),
                fmt_pct(divergent as f64 / trials as f64),
            ]);
        }
    }
    vec![crash_table, drop_table]
}

/// One Figure-1 trial: GA = {n1, n2}; B = n3 multicasts its reply. With
/// `crash` semantics (drop probability 0), B dies after its first delivery.
/// Returns whether A1 and A2 diverged.
fn e1_trial(seed: u64, mode: DeliveryMode, drop_p: f64) -> bool {
    let sim = Sim::new(
        SimConfig::new(seed)
            .with_nodes(4)
            .with_net(NetConfig::default().with_drop_probability(drop_p)),
    );
    let comms = GroupComms::new(&sim);
    let ga = comms.create_group(mode);
    let a1 = Rc::new(RefCell::new(RecordingMember::default()));
    let a2 = Rc::new(RefCell::new(RecordingMember::default()));
    comms.join(ga, n(1), a1.clone()).unwrap();
    comms.join(ga, n(2), a2.clone()).unwrap();
    let b = n(3);
    if drop_p == 0.0 {
        sim.crash_after_sends(b, 1);
    }
    let _ = comms.multicast(ga, b, &Bytes::from_static(b"reply"));
    let diverged = a1.borrow().log != a2.borrow().log;
    diverged
}

// ---------------------------------------------------------------------------
// E2 — Figure 2: the unreplicated baseline
// ---------------------------------------------------------------------------

fn e2() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E2: |Sv|=|St|=1 baseline — availability vs crash probability of the object's node",
        &[
            "crash p/step",
            "attempts",
            "commits",
            "availability",
            "bind aborts",
            "invoke aborts",
            "commit aborts",
        ],
    );
    for (i, p) in [0.0, 0.01, 0.05, 0.10, 0.20].into_iter().enumerate() {
        let (sys, uids) = build_world(
            2_000 + i as u64,
            4,
            ReplicationPolicy::SingleCopyPassive,
            BindingScheme::Standard,
            &[n(1)],
            &[n(1)],
            1,
        );
        let script = random_crash_script(3_000 + i as u64, n(1), 400, p, 4);
        let spec = WorkloadSpec::new(uids, vec![n(2)])
            .clients(1)
            .actions_per_client(60)
            .ops_per_action(2)
            .replicas(1);
        let m = run_script(&sys, &spec, script);
        table.row(vec![
            format!("{p:.2}"),
            m.attempts.to_string(),
            m.commits.to_string(),
            fmt_pct(m.availability()),
            m.abort_bind.to_string(),
            m.abort_invoke.to_string(),
            m.abort_commit.to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// E3 — Figure 3: |Sv|=1, |St|=k (single-copy passive with replicated state)
// ---------------------------------------------------------------------------

fn e3() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E3: |Sv|=1, |St|=k — one store crashes mid-run (recovering later)",
        &[
            "|St|",
            "availability",
            "mean msgs/action",
            "mean latency us",
            "stores excluded",
            "St size at end",
        ],
    );
    for k in 1..=5usize {
        let stores: Vec<NodeId> = (1..=k as u32).map(n).collect();
        let (sys, uids) = build_world(
            2_100 + k as u64,
            9,
            ReplicationPolicy::SingleCopyPassive,
            BindingScheme::Standard,
            &[n(1)],
            &stores,
            1,
        );
        // The last store in St crashes at step 10 and recovers at step 60.
        let victim = stores[k - 1];
        let script = FaultScript::new()
            .at(10, FaultAction::CrashNode(victim))
            .at(60, FaultAction::RecoverNode(victim));
        let spec = WorkloadSpec::new(uids.clone(), vec![n(7)])
            .clients(1)
            .actions_per_client(50)
            .ops_per_action(2)
            .replicas(1);
        let m = run_script(&sys, &spec, script);
        let st_len = sys.naming().state_db.entry(uids[0]).map_or(0, |e| e.len());
        table.row(vec![
            k.to_string(),
            fmt_pct(m.availability()),
            fmt_f64(m.action_messages.mean()),
            fmt_f64(m.action_latency_us.mean()),
            sys.naming().state_db.ops().excluded_nodes.to_string(),
            st_len.to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// E4 — Figure 4: |Sv|=k, |St|=1 (replicated servers, active replication)
// ---------------------------------------------------------------------------

fn e4() -> Vec<TextTable> {
    // E4a: one bound server crashes mid-run (recovering later). k=1 has no
    // spare to mask the failure; k>=2 rides it out.
    let mut masking = TextTable::new(
        "E4a: |Sv|=k, |St|=1 active replication — one bound server crashes mid-run",
        &[
            "|Sv|",
            "availability",
            "mean msgs/action",
            "mean latency us",
        ],
    );
    for k in 1..=5usize {
        let servers: Vec<NodeId> = (1..=k as u32).map(n).collect();
        let (sys, uids) = build_world(
            2_200 + k as u64,
            9,
            ReplicationPolicy::Active,
            BindingScheme::Standard,
            &servers,
            &[n(6)],
            1,
        );
        let script = FaultScript::new()
            .at(10, FaultAction::CrashNode(servers[k - 1]))
            .at(80, FaultAction::RecoverNode(servers[k - 1]));
        let spec = WorkloadSpec::new(uids, vec![n(7)])
            .clients(1)
            .actions_per_client(50)
            .ops_per_action(2)
            .replicas(k);
        let m = run_script(&sys, &spec, script);
        masking.row(vec![
            k.to_string(),
            fmt_pct(m.availability()),
            fmt_f64(m.action_messages.mean()),
            fmt_f64(m.action_latency_us.mean()),
        ]);
    }

    // E4b: k=4 fixed; crash 0..4 servers (no recovery). Availability
    // survives up to k-1 failures and collapses at k.
    let mut threshold = TextTable::new(
        "E4b: |Sv|=4 — availability vs number of crashed servers (none recover)",
        &["crashed", "availability", "bind aborts", "invoke aborts"],
    );
    for crashed in 0..=4usize {
        let servers: Vec<NodeId> = (1..=4).map(n).collect();
        let (sys, uids) = build_world(
            2_250 + crashed as u64,
            9,
            ReplicationPolicy::Active,
            BindingScheme::Standard,
            &servers,
            &[n(6)],
            1,
        );
        let mut script = FaultScript::new();
        for (i, &victim) in servers.iter().take(crashed).enumerate() {
            script = script.at(10 + 6 * i as u64, FaultAction::CrashNode(victim));
        }
        let spec = WorkloadSpec::new(uids, vec![n(7)])
            .clients(1)
            .actions_per_client(40)
            .ops_per_action(2)
            .replicas(4);
        let m = run_script(&sys, &spec, script);
        threshold.row(vec![
            crashed.to_string(),
            fmt_pct(m.availability()),
            m.abort_bind.to_string(),
            m.abort_invoke.to_string(),
        ]);
    }
    vec![masking, threshold]
}

// ---------------------------------------------------------------------------
// E5 — Figure 5: the general |Sv| x |St| surface
// ---------------------------------------------------------------------------

fn e5() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E5: availability over (|Sv|, |St|) with one server + one store crash mid-run",
        &["|Sv| \\ |St|", "1", "2", "3", "4"],
    );
    for sv_k in 1..=4usize {
        let mut cells = vec![sv_k.to_string()];
        for st_k in 1..=4usize {
            let servers: Vec<NodeId> = (1..=sv_k as u32).map(n).collect();
            let stores: Vec<NodeId> = (5..5 + st_k as u32).map(n).collect();
            let (sys, uids) = build_world(
                2_300 + (sv_k * 10 + st_k) as u64,
                11,
                ReplicationPolicy::Active,
                BindingScheme::Standard,
                &servers,
                &stores,
                1,
            );
            // Crash the last server and the last store; recover both later.
            let script = FaultScript::new()
                .at(8, FaultAction::CrashNode(servers[sv_k - 1]))
                .at(12, FaultAction::CrashNode(stores[st_k - 1]))
                .at(50, FaultAction::RecoverNode(servers[sv_k - 1]))
                .at(52, FaultAction::RecoverNode(stores[st_k - 1]));
            let spec = WorkloadSpec::new(uids, vec![n(9)])
                .clients(1)
                .actions_per_client(40)
                .ops_per_action(2)
                .replicas(sv_k);
            let m = run_script(&sys, &spec, script);
            cells.push(fmt_pct(m.availability()));
        }
        table.row(cells);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// E6/E7/E8 — Figures 6-8: the three database access schemes
// ---------------------------------------------------------------------------

/// Shared sweep: 4 server nodes of which `crashed` are down from the start,
/// 8 clients binding with k=2.
fn scheme_sweep_row(scheme: BindingScheme, crashed: usize, seed: u64) -> Vec<String> {
    let servers: Vec<NodeId> = (1..=4).map(n).collect();
    let stores = vec![n(5), n(6)];
    let (sys, uids) = build_world(
        seed,
        10,
        ReplicationPolicy::Active,
        scheme,
        &servers,
        &stores,
        8, // one object per client on average: binding costs dominate, not
           // object-lock contention
    );
    let mut script = FaultScript::new();
    for &victim in servers.iter().take(crashed) {
        script = script.at(1, FaultAction::CrashNode(victim));
    }
    let spec = WorkloadSpec::new(uids.clone(), vec![n(7), n(8), n(9)])
        .clients(8)
        .actions_per_client(10)
        .ops_per_action(1)
        .replicas(2)
        .passivate_between_actions();
    let m = run_script(&sys, &spec, script);
    let sv_len = sys
        .naming()
        .server_db
        .entry(uids[0])
        .map_or(0, |e| e.servers.len());
    vec![
        crashed.to_string(),
        m.attempts.to_string(),
        fmt_pct(m.availability()),
        m.probe_failures.to_string(),
        fmt_f64(m.probe_failures as f64 / m.attempts as f64),
        m.servers_removed.to_string(),
        m.bind_retries.to_string(),
        fmt_f64(m.action_messages.mean()),
        sv_len.to_string(),
    ]
}

const SCHEME_HEADERS: [&str; 9] = [
    "crashed servers",
    "actions",
    "availability",
    "dead probes",
    "probes/action",
    "Sv removals",
    "bind retries",
    "mean msgs/action",
    "|Sv| at end",
];

fn e6() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E6: standard scheme (Fig 6) — every client pays for dead servers",
        &SCHEME_HEADERS,
    );
    for (i, crashed) in [0usize, 1, 2].into_iter().enumerate() {
        table.row(scheme_sweep_row(
            BindingScheme::Standard,
            crashed,
            2_600 + i as u64,
        ));
    }
    vec![table]
}

fn e7() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E7: independent top-level actions (Fig 7) — dead servers pruned once",
        &SCHEME_HEADERS,
    );
    for (i, crashed) in [0usize, 1, 2].into_iter().enumerate() {
        table.row(scheme_sweep_row(
            BindingScheme::IndependentTopLevel,
            crashed,
            2_700 + i as u64,
        ));
    }

    // Client-crash leak: two clients die mid-action; the daemon reclaims.
    let mut leak = TextTable::new(
        "E7b: client crashes leak use-list entries until a cleanup sweep",
        &[
            "clients crashed",
            "leaked bindings",
            "reclaimed by sweep",
            "quiescent after",
        ],
    );
    let servers: Vec<NodeId> = (1..=4).map(n).collect();
    let (sys, uids) = build_world(
        2_750,
        10,
        ReplicationPolicy::Active,
        BindingScheme::IndependentTopLevel,
        &servers,
        &[n(5), n(6)],
        1,
    );
    let script = FaultScript::new()
        .at(2, FaultAction::CrashClient(0))
        .at(4, FaultAction::CrashClient(1));
    let spec = WorkloadSpec::new(uids.clone(), vec![n(7), n(8), n(9)])
        .clients(6)
        .actions_per_client(8)
        .ops_per_action(2)
        .replicas(2);
    let m = run_script(&sys, &spec, script);
    // The daemon sweeps after the run; clients 0 and 1 are dead.
    let report = sys.cleanup().sweep(|c| c.raw() > 1);
    let quiescent = uids.iter().all(|&uid| {
        sys.naming()
            .server_db
            .entry(uid)
            .is_some_and(|e| e.is_quiescent())
    });
    leak.row(vec![
        "2".into(),
        m.leaked_bindings.to_string(),
        report.reclaimed().to_string(),
        quiescent.to_string(),
    ]);
    vec![table, leak]
}

fn e8() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E8: nested top-level actions (Fig 8) — same hygiene from inside the action",
        &SCHEME_HEADERS,
    );
    for (i, crashed) in [0usize, 1, 2].into_iter().enumerate() {
        table.row(scheme_sweep_row(
            BindingScheme::NestedTopLevel,
            crashed,
            2_800 + i as u64,
        ));
    }

    let mut cmp = TextTable::new(
        "E8b: schemes side by side (1 of 4 servers crashed)",
        &[
            "scheme",
            "availability",
            "dead probes",
            "probes/action",
            "mean msgs/action",
        ],
    );
    for scheme in BindingScheme::ALL {
        let row = scheme_sweep_row(scheme, 1, 2_850 + scheme as u64);
        cmp.row(vec![
            scheme.to_string(),
            row[2].clone(),
            row[3].clone(),
            row[4].clone(),
            row[7].clone(),
        ]);
    }
    vec![table, cmp]
}

// ---------------------------------------------------------------------------
// E9 — §4.2.1: lock promotion vs exclude-write lock
// ---------------------------------------------------------------------------

fn e9() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E9: commit-time Exclude under R concurrent readers (20 trials each)",
        &[
            "readers",
            "promote-to-write commits",
            "exclude-write commits",
        ],
    );
    for readers in [0usize, 1, 2, 4, 8] {
        let mut cells = vec![readers.to_string()];
        for policy in [
            ExcludePolicy::PromoteToWrite,
            ExcludePolicy::ExcludeWriteLock,
        ] {
            let trials = 20;
            let mut ok = 0;
            for t in 0..trials {
                if e9_trial(4_000 + t, readers, policy) {
                    ok += 1;
                }
            }
            cells.push(format!("{ok}/{trials}"));
        }
        table.row(cells);
    }
    vec![table]
}

/// One E9 trial: `readers` clients hold read locks on the St entry while a
/// writer commits with one store down (forcing an Exclude). Returns whether
/// the writer committed.
fn e9_trial(seed: u64, readers: usize, policy: ExcludePolicy) -> bool {
    let sys = System::builder(seed)
        .nodes(14)
        .policy(ReplicationPolicy::Active)
        .exclude_policy(policy)
        .build();
    let uid = sys
        .create_object(Box::new(Counter::new(0)), &[n(1), n(2)], &[n(1), n(2)])
        .expect("create");
    // Readers activate read-only and keep their actions open: activation's
    // nested GetView leaves each holding a read lock on the St entry. (They
    // do not invoke — the contention under test is on the database entry,
    // not on the object itself.)
    let mut open = Vec::new();
    for r in 0..readers {
        let reader = sys.client(n(3 + r as u32));
        let action = reader.begin_action();
        let _group = reader
            .activate_read_only(action, uid, 1)
            .expect("reader activates");
        open.push((reader, action));
    }
    // The writer mutates; one store crashes; commit needs Exclude.
    let writer = sys.client(n(12));
    let counter = writer.open::<Counter>(uid);
    let action = writer.begin_action();
    counter.activate(action, 1).expect("writer activates");
    counter
        .invoke(action, CounterOp::Add(1))
        .expect("writer writes");
    sys.sim().crash(n(2));
    let committed = writer.commit(action).is_ok();
    for (reader, action) in open {
        let _ = reader.commit(action);
    }
    committed
}

// ---------------------------------------------------------------------------
// E10 — §2.3(3): Exclude prevents stale bindings
// ---------------------------------------------------------------------------

fn e10() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E10: stale-binding prevention (150 seeded trials per variant)",
        &[
            "variant",
            "fresh reads",
            "stale reads",
            "correctly unavailable",
        ],
    );
    for ablate in [false, true] {
        let trials = 150;
        let mut fresh = 0;
        let mut stale = 0;
        let mut unavailable = 0;
        for t in 0..trials {
            match e10_trial(5_000 + t, ablate) {
                E10Outcome::Fresh => fresh += 1,
                E10Outcome::Stale => stale += 1,
                E10Outcome::Unavailable => unavailable += 1,
            }
        }
        table.row(vec![
            if ablate {
                "exclude DISABLED (ablation)"
            } else {
                "exclude enabled (paper)"
            }
            .into(),
            fresh.to_string(),
            stale.to_string(),
            unavailable.to_string(),
        ]);
    }
    vec![table]
}

enum E10Outcome {
    Fresh,
    Stale,
    Unavailable,
}

/// One E10 trial: a commit happens while store n2 is down; n2 later comes
/// back *without* running the Include protocol while n1 is down. A reader
/// then tries to use the object.
fn e10_trial(seed: u64, ablate: bool) -> E10Outcome {
    let mut builder = System::builder(seed)
        .nodes(5)
        .policy(ReplicationPolicy::Active);
    if ablate {
        builder = builder.ablate_disable_exclude();
    }
    let sys = builder.build();
    let uid = sys
        .create_object(Box::new(Counter::new(0)), &[n(3), n(4)], &[n(1), n(2)])
        .expect("create");
    // Writer commits value 7 while n2 (a store) is down.
    sys.sim().crash(n(2));
    let writer = sys.client(n(3));
    let counter = writer.open::<Counter>(uid);
    let action = writer.begin_action();
    counter.activate(action, 1).expect("activate");
    counter.invoke(action, CounterOp::Add(7)).expect("write");
    if writer.commit(action).is_err() {
        return E10Outcome::Unavailable;
    }
    // Passivate so the reader must reload from a store.
    assert!(sys.try_passivate(uid));
    // The stale store returns (no recovery protocol!), the fresh one dies.
    sys.sim().recover(n(2));
    sys.sim().crash(n(1));
    // A new client binds and reads.
    let reader = sys.client(n(4));
    let observer = reader.open::<Counter>(uid);
    let action = reader.begin_action();
    match observer.activate_read_only(action, 1) {
        Ok(_) => match observer.invoke(action, CounterOp::Get) {
            Ok(value) => {
                let _ = reader.commit(action);
                if value == 7 {
                    E10Outcome::Fresh
                } else {
                    E10Outcome::Stale
                }
            }
            Err(_) => {
                reader.abort(action);
                E10Outcome::Unavailable
            }
        },
        Err(_) => {
            reader.abort(action);
            E10Outcome::Unavailable
        }
    }
}

// ---------------------------------------------------------------------------
// E11 — recovery re-inclusion latency under load
// ---------------------------------------------------------------------------

fn e11() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E11: attempts until a recovered store is re-Included, under reader load",
        &[
            "concurrent readers",
            "recovery attempts",
            "virtual ms to inclusion",
        ],
    );
    for load in [0usize, 2, 4, 6] {
        let (attempts, ms) = e11_trial(6_000 + load as u64, load);
        table.row(vec![load.to_string(), attempts.to_string(), fmt_f64(ms)]);
    }
    vec![table]
}

/// Crash a store, commit past it (excluding it), then measure how many
/// recovery attempts its re-`Include` takes while `load` readers come and go
/// (each holds the St read lock while its action is open).
fn e11_trial(seed: u64, load: usize) -> (u64, f64) {
    let sys = System::builder(seed)
        .nodes(12)
        .policy(ReplicationPolicy::Active)
        .build();
    let uid = sys
        .create_object(
            Box::new(Counter::new(0)),
            &[n(1), n(2), n(3)],
            &[n(1), n(2), n(3)],
        )
        .expect("create");
    sys.sim().crash(n(3));
    let writer = sys.client(n(10));
    let counter = writer.open::<Counter>(uid);
    let action = writer.begin_action();
    counter.activate(action, 2).expect("activate");
    counter.invoke(action, CounterOp::Add(1)).expect("write");
    writer.commit(action).expect("commit excludes n3");
    assert_eq!(sys.naming().state_db.entry(uid).unwrap().len(), 2);

    // Reader churn: each reader keeps an action open across iterations,
    // closing and reopening with 50% probability per step.
    let readers: Vec<_> = (0..load).map(|r| sys.client(n(4 + r as u32))).collect();
    let mut open: Vec<Option<groupview_actions::ActionId>> = vec![None; load];

    sys.sim().recover(n(3));
    let start = sys.sim().now();
    let mut attempts = 0u64;
    loop {
        // Churn the readers first.
        for (i, reader) in readers.iter().enumerate() {
            if let Some(a) = open[i] {
                if sys.sim().chance(0.5) {
                    let _ = reader.commit(a);
                    open[i] = None;
                }
            } else if sys.sim().chance(0.8) {
                let a = reader.begin_action();
                if reader.activate_read_only(a, uid, 1).is_ok() {
                    open[i] = Some(a);
                } else {
                    reader.abort(a);
                }
            }
        }
        attempts += 1;
        let report = sys.recovery().recover_store(n(3));
        if report.fully_recovered() {
            break;
        }
        if attempts > 500 {
            break; // safety net
        }
    }
    for (i, reader) in readers.iter().enumerate() {
        if let Some(a) = open[i] {
            let _ = reader.commit(a);
        }
    }
    let elapsed = sys.sim().now().since(start);
    (attempts, elapsed.as_micros() as f64 / 1_000.0)
}

// ---------------------------------------------------------------------------
// E12 — the three replication policies under a server crash
// ---------------------------------------------------------------------------

fn e12() -> Vec<TextTable> {
    let mut table = TextTable::new(
        "E12: replication policies — one of three servers crashes mid-run, later recovers",
        &[
            "policy",
            "attempts",
            "availability",
            "invoke aborts",
            "mean msgs/action",
            "mean latency us",
            "p95 latency us",
        ],
    );
    for policy in ReplicationPolicy::ALL {
        let (sys, uids) = build_world(
            7_000 + policy as u64,
            8,
            policy,
            BindingScheme::Standard,
            &[n(1), n(2), n(3)],
            &[n(1), n(2), n(3)],
            8,
        );
        let script = FaultScript::new()
            .at(12, FaultAction::CrashNode(n(1)))
            .at(60, FaultAction::RecoverNode(n(1)));
        let spec = WorkloadSpec::new(uids, vec![n(4), n(5), n(6)])
            .clients(4)
            .actions_per_client(30)
            .ops_per_action(2)
            .replicas(3);
        let m = run_script(&sys, &spec, script);
        table.row(vec![
            policy.to_string(),
            m.attempts.to_string(),
            fmt_pct(m.availability()),
            m.abort_invoke.to_string(),
            fmt_f64(m.action_messages.mean()),
            fmt_f64(m.action_latency_us.mean()),
            m.action_latency_us.p95().to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// E13 — §5: the non-atomic name server extension
// ---------------------------------------------------------------------------

fn e13() -> Vec<TextTable> {
    // E13a: an administrator changes the degree of replication while
    // clients keep long-running actions open. Under the standard scheme the
    // clients' read locks on the server entry refuse the admin's writes;
    // the non-atomic cache accepts every update instantly.
    let mut admin = TextTable::new(
        "E13a: replication-degree changes racing long client actions (60 rounds)",
        &[
            "scheme",
            "admin attempts",
            "admin successes",
            "success rate",
        ],
    );
    for scheme in [BindingScheme::Standard, BindingScheme::CachedNameServer] {
        let (attempts, successes) = e13_admin_trial(8_000, scheme);
        admin.row(vec![
            scheme.to_string(),
            attempts.to_string(),
            successes.to_string(),
            fmt_pct(successes as f64 / attempts as f64),
        ]);
    }

    // E13b: the safety half of the conjecture — rerun E10's stale-binding
    // scenario under the cached scheme (with the transactional state
    // database intact): still zero stale reads.
    let mut safety = TextTable::new(
        "E13b: E10's stale-binding scenario under the cached scheme (150 trials)",
        &[
            "scheme",
            "fresh reads",
            "stale reads",
            "correctly unavailable",
        ],
    );
    for scheme in [BindingScheme::Standard, BindingScheme::CachedNameServer] {
        let trials = 150;
        let (mut fresh, mut stale, mut unavailable) = (0, 0, 0);
        for t in 0..trials {
            match e13_safety_trial(8_500 + t, scheme) {
                E10Outcome::Fresh => fresh += 1,
                E10Outcome::Stale => stale += 1,
                E10Outcome::Unavailable => unavailable += 1,
            }
        }
        safety.row(vec![
            scheme.to_string(),
            fresh.to_string(),
            stale.to_string(),
            unavailable.to_string(),
        ]);
    }
    vec![admin, safety]
}

/// Clients hold actions open on the object while an administrator tries to
/// extend `Sv` each round. Returns `(admin attempts, admin successes)`.
fn e13_admin_trial(seed: u64, scheme: BindingScheme) -> (u64, u64) {
    let sys = System::builder(seed)
        .nodes(10)
        .policy(ReplicationPolicy::Active)
        .scheme(scheme)
        .build();
    let uid = sys
        .create_object(Box::new(Counter::new(0)), &[n(1), n(2)], &[n(1), n(2)])
        .expect("create");
    let clients: Vec<_> = (0..3).map(|i| sys.client(n(4 + i))).collect();
    let mut open: Vec<Option<groupview_actions::ActionId>> = vec![None; clients.len()];
    let mut attempts = 0u64;
    let mut successes = 0u64;
    let spare = n(3); // the node the admin adds/removes as a server site
    let mut listed = false;
    for _round in 0..60 {
        // Client churn: most of the time at least one action is open,
        // holding (under the standard scheme) a read lock on the entry.
        for (i, client) in clients.iter().enumerate() {
            if let Some(a) = open[i] {
                if sys.sim().chance(0.3) {
                    let _ = client.commit(a);
                    open[i] = None;
                }
            } else if sys.sim().chance(0.8) {
                let a = client.begin_action();
                if client.activate(a, uid, 2).is_ok() {
                    open[i] = Some(a);
                } else {
                    client.abort(a);
                }
            }
        }
        // The administrator toggles the spare server's membership.
        attempts += 1;
        if scheme.uses_server_cache() {
            let cache = sys.server_cache().expect("cache present").local();
            if listed {
                cache.record_failure(uid, spare);
            } else {
                cache.record_server(uid, spare);
            }
            listed = !listed;
            successes += 1; // non-atomic updates cannot be refused
        } else {
            let action = sys.tx().begin_top(n(0));
            let result = if listed {
                sys.naming()
                    .server_db
                    .remove(action, uid, spare)
                    .map(|_| ())
            } else {
                sys.naming()
                    .server_db
                    .insert(action, uid, spare)
                    .map(|_| ())
            };
            match result {
                Ok(()) if sys.tx().commit(action).is_ok() => {
                    listed = !listed;
                    successes += 1;
                }
                _ => sys.tx().abort(action),
            }
        }
    }
    for (i, client) in clients.iter().enumerate() {
        if let Some(a) = open[i] {
            let _ = client.commit(a);
        }
    }
    (attempts, successes)
}

/// The E10 scenario parameterised by scheme (exclude enabled).
fn e13_safety_trial(seed: u64, scheme: BindingScheme) -> E10Outcome {
    let sys = System::builder(seed)
        .nodes(5)
        .policy(ReplicationPolicy::Active)
        .scheme(scheme)
        .build();
    let uid = sys
        .create_object(Box::new(Counter::new(0)), &[n(3), n(4)], &[n(1), n(2)])
        .expect("create");
    sys.sim().crash(n(2));
    let writer = sys.client(n(3));
    let counter = writer.open::<Counter>(uid);
    let action = writer.begin_action();
    if counter.activate(action, 1).is_err() {
        writer.abort(action);
        return E10Outcome::Unavailable;
    }
    if counter.invoke(action, CounterOp::Add(7)).is_err() || writer.commit(action).is_err() {
        return E10Outcome::Unavailable;
    }
    assert!(sys.try_passivate(uid));
    sys.sim().recover(n(2));
    sys.sim().crash(n(1));
    let reader = sys.client(n(4));
    let observer = reader.open::<Counter>(uid);
    let action = reader.begin_action();
    match observer.activate_read_only(action, 1) {
        Ok(_) => match observer.invoke(action, CounterOp::Get) {
            Ok(value) => {
                let _ = reader.commit(action);
                if value == 7 {
                    E10Outcome::Fresh
                } else {
                    E10Outcome::Stale
                }
            }
            Err(_) => {
                reader.abort(action);
                E10Outcome::Unavailable
            }
        },
        Err(_) => {
            reader.abort(action);
            E10Outcome::Unavailable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_index_is_complete() {
        let all = all_experiments();
        assert_eq!(all.len(), 13);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.id, format!("e{}", i + 1));
            assert!(!e.figure.is_empty());
            assert!(!e.claim.is_empty());
        }
        assert!(run_experiment("nope").is_none());
    }

    #[test]
    fn e1_divergence_shape() {
        let tables = e1();
        let text = tables[0].to_string();
        // Unreliable mode diverges every time; reliable never.
        assert!(
            text.contains("unreliable") && text.contains("100.0%"),
            "{text}"
        );
        assert!(
            text.contains("reliable-ordered") && text.contains("0.0%"),
            "{text}"
        );
    }

    #[test]
    fn e9_crossover_shape() {
        let tables = e9();
        let text = tables[0].to_string();
        let cells_of = |prefix: &str| -> Vec<String> {
            text.lines()
                .find(|l| l.trim_start_matches('|').trim_start().starts_with(prefix))
                .unwrap_or_else(|| panic!("row {prefix} missing in {text}"))
                .split('|')
                .map(|c| c.trim().to_string())
                .collect()
        };
        // With zero readers both policies commit everything...
        let zero = cells_of("0 ");
        assert_eq!(&zero[2], "20/20", "{text}");
        assert_eq!(&zero[3], "20/20", "{text}");
        // ...with readers present, promote-to-write always aborts while
        // exclude-write always commits.
        let eight = cells_of("8 ");
        assert_eq!(&eight[2], "0/20", "{text}");
        assert_eq!(&eight[3], "20/20", "{text}");
    }

    #[test]
    fn e10_exclusion_prevents_staleness() {
        let tables = e10();
        let text = tables[0].to_string();
        let lines: Vec<&str> = text.lines().collect();
        let enabled = lines.iter().find(|l| l.contains("enabled")).unwrap();
        let disabled = lines.iter().find(|l| l.contains("DISABLED")).unwrap();
        // Paper protocol: zero stale reads.
        let enabled_cells: Vec<&str> = enabled.split('|').map(str::trim).collect();
        assert_eq!(
            enabled_cells[3], "0",
            "stale reads with exclude on: {enabled}"
        );
        // Ablation: staleness appears.
        let disabled_cells: Vec<&str> = disabled.split('|').map(str::trim).collect();
        let stale: u32 = disabled_cells[3].parse().unwrap();
        assert!(stale > 100, "ablation must show stale reads: {disabled}");
    }
}
