//! Server replicas: activated copies of persistent objects.

use crate::object::{InvokeResult, ReplicaObject, TypeRegistry};
use crate::wire;
use groupview_sim::{Bytes, NodeId, Sim, WireEncoder};
use groupview_store::{ObjectState, TypeTag, Uid, Version, Volatile};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// Entries kept in the per-replica operation dedup ring. Operation ids are
/// globally monotone and a retry can only happen *inside* the invocation
/// that issued the id (coordinator failover re-sends the in-flight frame;
/// the simulator is single-threaded, so nothing interleaves), which makes
/// anything but the most recent entries unreachable. Bounding the ring also
/// bounds how many pooled reply buffers a replica pins: evicted replies
/// return their storage to the [`WireEncoder`] pool, keeping steady-state
/// reply encoding allocation-free.
const APPLIED_CAP: usize = 8;

/// Bounded at-most-once cache: `op_id → (reply, mutated)`, newest last.
#[derive(Default)]
struct AppliedRing {
    entries: VecDeque<(u64, Bytes, bool)>,
}

impl AppliedRing {
    fn get(&self, op_id: u64) -> Option<(&Bytes, bool)> {
        self.entries
            .iter()
            .find(|(id, _, _)| *id == op_id)
            .map(|(_, reply, mutated)| (reply, *mutated))
    }

    fn insert(&mut self, op_id: u64, reply: Bytes, mutated: bool) {
        if let Some(slot) = self.entries.iter_mut().find(|(id, _, _)| *id == op_id) {
            *slot = (op_id, reply, mutated);
            return;
        }
        if self.entries.len() == APPLIED_CAP {
            self.entries.pop_front();
        }
        self.entries.push_back((op_id, reply, mutated));
    }

    fn remove(&mut self, op_id: u64) {
        self.entries.retain(|(id, _, _)| *id != op_id);
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The loaded, volatile part of a replica.
struct Loaded {
    obj: Box<dyn ReplicaObject>,
    base_version: Version,
    /// Operation dedup cache (bounded; see [`AppliedRing`]). Suppresses
    /// re-execution when a client retries an operation after a coordinator
    /// failover that already applied it (checkpoint included the effect).
    /// Replies are shared [`Bytes`], so caching costs a refcount, not a
    /// copy.
    applied: AppliedRing,
}

impl fmt::Debug for Loaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Loaded")
            .field("base_version", &self.base_version)
            .field("applied", &self.applied.len())
            .finish()
    }
}

/// An activated copy of an object at one server node.
///
/// The object's in-memory state is **volatile** (wrapped in
/// [`Volatile`]): a crash of the hosting node silently discards it, and the
/// next activation reloads from an object store — exactly the paper's
/// passive-object/activation model (§2.2).
#[derive(Debug)]
pub struct ServerReplica {
    uid: Uid,
    node: NodeId,
    /// Monotone count of state loads from an object store — the replica's
    /// state **lineage**. A crash-then-reload (by any later activation)
    /// produces a replica that is byte-plausible but belongs to a different
    /// lineage: it has lost every uncommitted operation of the actions
    /// bound to the previous incarnation. Activations pin the incarnation
    /// of every bound replica; invoke/commit paths refuse replicas whose
    /// incarnation no longer matches, so an in-flight action whose replica
    /// was reborn underneath it aborts instead of silently losing its own
    /// updates. (Found by the scenario oracle under `send_window_crashes`:
    /// a server armed to crash mid-reply was reloaded by a concurrent
    /// activation, and the original action kept invoking against the
    /// reborn copy.)
    incarnation: u64,
    state: Volatile<Option<Loaded>>,
}

impl ServerReplica {
    /// Creates an unloaded replica of `uid` at `node`.
    pub fn new(sim: &Sim, uid: Uid, node: NodeId) -> Self {
        ServerReplica {
            uid,
            node,
            incarnation: 0,
            state: Volatile::new(sim, node),
        }
    }

    /// The current state lineage (see the field docs). Checkpoint installs
    /// and undo restores continue a lineage; only [`ServerReplica::load`]
    /// starts a new one.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The object this replica serves.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// The node hosting this replica.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the replica currently holds a loaded state (crash-aware).
    pub fn is_loaded(&mut self, sim: &Sim) -> bool {
        self.state.get(sim).is_some()
    }

    /// Loads the replica from a stored state.
    ///
    /// Returns `false` when the state's class is not in `types` (the node
    /// lacks the object's code, §3.1).
    pub fn load(&mut self, sim: &Sim, state: &ObjectState, types: &TypeRegistry) -> bool {
        let Some(obj) = types.decode(state.type_tag, &state.data) else {
            return false;
        };
        self.incarnation += 1;
        self.state.set(
            sim,
            Some(Loaded {
                obj,
                base_version: state.version,
                applied: AppliedRing::default(),
            }),
        );
        true
    }

    /// Unloads the replica (passivation: "destroying the server", §2.3(3)).
    pub fn unload(&mut self, sim: &Sim) {
        self.state.set(sim, None);
    }

    /// Executes an operation with at-most-once semantics per `op_id`,
    /// writing the reply through the pooled `enc`. Returns `None` when no
    /// state is loaded.
    ///
    /// An id carrying [`wire::BATCH_FLAG`] marks `op` as a batch body
    /// (`[count][len, op]*`): the whole batch applies as one at-most-once
    /// unit — one dedup entry, one aggregate [`wire::BatchReply`]-framed
    /// reply — so a client retry after coordinator failover can never
    /// re-execute a prefix of an already-applied batch.
    pub fn invoke(
        &mut self,
        sim: &Sim,
        enc: &WireEncoder,
        op_id: u64,
        op: &[u8],
    ) -> Option<InvokeResult> {
        let loaded = self.state.get_mut(sim).as_mut()?;
        if let Some((reply, _mutated)) = loaded.applied.get(op_id) {
            // Duplicate delivery: return the cached reply without mutating
            // (and without reporting a fresh mutation).
            return Some(InvokeResult::read(reply.clone()));
        }
        let result = if op_id & wire::BATCH_FLAG != 0 {
            Self::apply_batch(loaded, enc, op)?
        } else {
            loaded.obj.invoke(op, enc)
        };
        loaded
            .applied
            .insert(op_id, result.reply.clone(), result.mutated);
        Some(result)
    }

    /// Applies a batch body: validates the whole frame first (a malformed
    /// batch rejects without mutating anything, like a malformed single
    /// frame), then applies each op in order and aggregates the replies
    /// into one pooled [`wire::BatchReply`] frame. `mutated` is the OR
    /// across the batch, so an all-reads batch still takes the paper's
    /// read optimisation at commit.
    fn apply_batch(loaded: &mut Loaded, enc: &WireEncoder, body: &[u8]) -> Option<InvokeResult> {
        let ranges = wire::split_frames(body)?;
        let mut replies = Vec::with_capacity(ranges.len());
        let mut mutated = false;
        for range in ranges {
            let res = loaded.obj.invoke(&body[range], enc);
            mutated |= res.mutated;
            replies.push(res.reply);
        }
        let reply = enc.encode_with(|buf| {
            wire::write_frames(replies.iter().map(|b| b.as_slice()), buf);
        });
        Some(InvokeResult { reply, mutated })
    }

    /// A snapshot of the current (possibly uncommitted) state, tagged with
    /// the replica's base (last committed) version. The returned state's
    /// data is a pooled, shared buffer: cloning it per cohort or per store
    /// participant shares, not copies, and the buffer's storage returns to
    /// `enc`'s pool when the last clone drops.
    pub fn snapshot_state(&mut self, sim: &Sim, enc: &WireEncoder) -> Option<ObjectState> {
        let loaded = self.state.get_mut(sim).as_mut()?;
        Some(ObjectState {
            type_tag: loaded.obj.type_tag(),
            version: loaded.base_version,
            data: loaded.obj.snapshot(enc),
        })
    }

    /// The last committed version this replica is based on.
    pub fn base_version(&mut self, sim: &Sim) -> Option<Version> {
        self.state.get_mut(sim).as_ref().map(|l| l.base_version)
    }

    /// Records that the surrounding action committed at `version`.
    pub fn mark_committed(&mut self, sim: &Sim, version: Version) {
        if let Some(loaded) = self.state.get_mut(sim).as_mut() {
            loaded.base_version = version;
        }
    }

    /// Installs a coordinator checkpoint: full state plus the dedup entry
    /// of the operation that produced it. A same-class loaded replica is
    /// restored **in place** ([`ReplicaObject::restore`]); only an unloaded
    /// (or, defensively, differently-tagged) replica decodes a fresh box.
    pub fn install_checkpoint(
        &mut self,
        sim: &Sim,
        state: &ObjectState,
        op_entry: Option<(u64, Bytes, bool)>,
        types: &TypeRegistry,
    ) -> bool {
        if !types.knows(state.type_tag) {
            return false;
        }
        let cell = self.state.get_mut(sim);
        match cell.as_mut() {
            Some(loaded) if loaded.obj.type_tag() == state.type_tag => {
                loaded.obj.restore(&state.data);
                loaded.base_version = state.version;
                if let Some((op_id, reply, mutated)) = op_entry {
                    loaded.applied.insert(op_id, reply, mutated);
                }
            }
            _ => {
                let Some(obj) = types.decode(state.type_tag, &state.data) else {
                    return false;
                };
                let mut applied = AppliedRing::default();
                if let Some((op_id, reply, mutated)) = op_entry {
                    applied.insert(op_id, reply, mutated);
                }
                *cell = Some(Loaded {
                    obj,
                    base_version: state.version,
                    applied,
                });
            }
        }
        true
    }

    /// Restores the object's data (undo of uncommitted invocations); the
    /// base version and dedup cache are preserved, but the undone
    /// operations' cache entries are dropped so a retry re-executes them.
    /// Same-class restores happen in place, without decoding a fresh box.
    pub fn restore_data(
        &mut self,
        sim: &Sim,
        tag: TypeTag,
        data: &[u8],
        undone_ops: &[u64],
        types: &TypeRegistry,
    ) -> bool {
        let Some(loaded) = self.state.get_mut(sim).as_mut() else {
            return false;
        };
        if loaded.obj.type_tag() == tag {
            loaded.obj.restore(data);
        } else {
            let Some(obj) = types.decode(tag, data) else {
                return false;
            };
            loaded.obj = obj;
        }
        for op in undone_ops {
            loaded.applied.remove(*op);
        }
        true
    }
}

/// Shared handle to a replica.
pub type ReplicaHandle = Rc<RefCell<ServerReplica>>;

/// Registry of all activated replicas, keyed by `(object, node)`.
#[derive(Clone, Default)]
pub struct ReplicaRegistry {
    inner: Rc<RefCell<HashMap<(Uid, NodeId), ReplicaHandle>>>,
}

impl fmt::Debug for ReplicaRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaRegistry")
            .field("replicas", &self.inner.borrow().len())
            .finish()
    }
}

impl ReplicaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ReplicaRegistry::default()
    }

    /// The replica of `uid` at `node`, creating an unloaded one if absent.
    pub fn get_or_create(&self, sim: &Sim, uid: Uid, node: NodeId) -> ReplicaHandle {
        self.inner
            .borrow_mut()
            .entry((uid, node))
            .or_insert_with(|| Rc::new(RefCell::new(ServerReplica::new(sim, uid, node))))
            .clone()
    }

    /// The replica of `uid` at `node`, if one was ever activated.
    pub fn get(&self, uid: Uid, node: NodeId) -> Option<ReplicaHandle> {
        self.inner.borrow().get(&(uid, node)).cloned()
    }

    /// All replicas of `uid`, sorted by node.
    pub fn replicas_of(&self, uid: Uid) -> Vec<(NodeId, ReplicaHandle)> {
        let mut v: Vec<(NodeId, ReplicaHandle)> = self
            .inner
            .borrow()
            .iter()
            .filter(|((u, _), _)| *u == uid)
            .map(|(&(_, n), h)| (n, h.clone()))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Drops the single replica of `uid` at `node`, if present. Migration
    /// uses this after a move commits: the expelled incarnation must not
    /// linger as an activation target on the old host.
    pub fn remove_at(&self, uid: Uid, node: NodeId) -> bool {
        self.inner.borrow_mut().remove(&(uid, node)).is_some()
    }

    /// Drops every replica of `uid` (passivation).
    pub fn remove_object(&self, uid: Uid) -> usize {
        let mut inner = self.inner.borrow_mut();
        let before = inner.len();
        inner.retain(|&(u, _), _| u != uid);
        before - inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Counter, CounterOp};
    use groupview_sim::SimConfig;

    fn world() -> (Sim, TypeRegistry) {
        (
            Sim::new(SimConfig::new(3).with_nodes(3)),
            TypeRegistry::with_builtins(),
        )
    }

    fn enc() -> WireEncoder {
        WireEncoder::new()
    }

    fn counter_state(v: i64) -> ObjectState {
        ObjectState::initial(Counter::TYPE_TAG, Counter::new(v).snapshot(&enc()))
    }

    #[test]
    fn load_invoke_snapshot_cycle() {
        let (sim, types) = world();
        let enc = enc();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(0));
        assert!(!r.is_loaded(&sim));
        assert!(r.invoke(&sim, &enc, 1, &CounterOp::Get.encode()).is_none());
        assert!(r.load(&sim, &counter_state(10), &types));
        assert!(r.is_loaded(&sim));
        let res = r
            .invoke(&sim, &enc, 1, &CounterOp::Add(5).encode())
            .unwrap();
        assert!(res.mutated);
        assert_eq!(CounterOp::decode_reply(&res.reply), Some(15));
        let snap = r.snapshot_state(&sim, &enc).unwrap();
        assert_eq!(snap.version, Version::INITIAL, "base version until commit");
        assert_eq!(Counter::decode(&snap.data).value(), 15);
        assert_eq!(r.uid(), Uid::from_raw(1));
        assert_eq!(r.node(), NodeId::new(0));
    }

    #[test]
    fn crash_discards_loaded_state() {
        let (sim, types) = world();
        let n = NodeId::new(1);
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), n);
        r.load(&sim, &counter_state(5), &types);
        sim.crash(n);
        sim.recover(n);
        assert!(!r.is_loaded(&sim), "volatile state lost");
        assert!(r.snapshot_state(&sim, &enc()).is_none());
        assert!(r.base_version(&sim).is_none());
    }

    #[test]
    fn duplicate_op_ids_execute_once() {
        let (sim, types) = world();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(0));
        let enc = enc();
        r.load(&sim, &counter_state(0), &types);
        let op = CounterOp::Add(1).encode();
        let first = r.invoke(&sim, &enc, 42, &op).unwrap();
        assert!(first.mutated);
        let dup = r.invoke(&sim, &enc, 42, &op).unwrap();
        assert!(!dup.mutated, "duplicate must not report a new mutation");
        assert_eq!(dup.reply, first.reply, "cached reply returned");
        let check = r.invoke(&sim, &enc, 43, &CounterOp::Get.encode()).unwrap();
        assert_eq!(CounterOp::decode_reply(&check.reply), Some(1));
    }

    #[test]
    fn batch_applies_in_order_and_dedups_whole_batch() {
        let (sim, types) = world();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(0));
        let enc = enc();
        r.load(&sim, &counter_state(0), &types);
        let ops = [
            CounterOp::Add(1).encode(),
            CounterOp::Get.encode(),
            CounterOp::Add(10).encode(),
        ];
        let op_refs: Vec<&[u8]> = ops.iter().map(|o| o.as_slice()).collect();
        let frame = wire::BatchMsgCodec::encode_parts(&enc, 5 | wire::BATCH_FLAG, &op_refs);
        let body = &frame.as_slice()[crate::wire::GROUP_MSG_HEADER_BYTES..];

        let first = r.invoke(&sim, &enc, 5 | wire::BATCH_FLAG, body).unwrap();
        assert!(first.mutated, "batch contains writes");
        let replies = wire::read_frames(&first.reply).expect("framed reply");
        assert_eq!(replies.len(), 3, "one reply per op, in op order");
        assert_eq!(CounterOp::decode_reply(&replies[0]), Some(1));
        assert_eq!(CounterOp::decode_reply(&replies[1]), Some(1));
        assert_eq!(CounterOp::decode_reply(&replies[2]), Some(11));

        // Redelivery of the same batch id executes nothing.
        let dup = r.invoke(&sim, &enc, 5 | wire::BATCH_FLAG, body).unwrap();
        assert!(!dup.mutated, "duplicate batch must not re-execute");
        assert_eq!(dup.reply, first.reply, "cached aggregate reply");
        let check = r.invoke(&sim, &enc, 6, &CounterOp::Get.encode()).unwrap();
        assert_eq!(CounterOp::decode_reply(&check.reply), Some(11));
    }

    #[test]
    fn malformed_batch_rejects_without_mutating() {
        let (sim, types) = world();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(0));
        let enc = enc();
        r.load(&sim, &counter_state(7), &types);
        // Count promises two ops but the body holds none.
        let body = 2u32.to_le_bytes();
        assert!(r.invoke(&sim, &enc, 9 | wire::BATCH_FLAG, &body).is_none());
        let check = r.invoke(&sim, &enc, 10, &CounterOp::Get.encode()).unwrap();
        assert_eq!(
            CounterOp::decode_reply(&check.reply),
            Some(7),
            "state untouched"
        );
    }

    #[test]
    fn mark_committed_updates_base_version() {
        let (sim, types) = world();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(0));
        r.load(&sim, &counter_state(0), &types);
        r.mark_committed(&sim, Version::new(3));
        assert_eq!(r.base_version(&sim), Some(Version::new(3)));
        assert_eq!(
            r.snapshot_state(&sim, &enc()).unwrap().version,
            Version::new(3)
        );
    }

    #[test]
    fn checkpoint_installs_state_and_dedup_entry() {
        let (sim, types) = world();
        let mut cohort = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(1));
        cohort.load(&sim, &counter_state(0), &types);
        // Coordinator applied op 7 producing value 9; cohort installs.
        let enc = enc();
        let chk = ObjectState {
            type_tag: Counter::TYPE_TAG,
            version: Version::INITIAL,
            data: Counter::new(9).snapshot(&enc),
        };
        assert!(cohort.install_checkpoint(
            &sim,
            &chk,
            Some((7, Bytes::from(9i64.to_le_bytes().to_vec()), true)),
            &types
        ));
        // A retried op 7 at the (now promoted) cohort is deduped.
        let res = cohort
            .invoke(&sim, &enc, 7, &CounterOp::Add(9).encode())
            .unwrap();
        assert!(!res.mutated);
        assert_eq!(CounterOp::decode_reply(&res.reply), Some(9));
        let get = cohort
            .invoke(&sim, &enc, 8, &CounterOp::Get.encode())
            .unwrap();
        assert_eq!(CounterOp::decode_reply(&get.reply), Some(9));
    }

    #[test]
    fn checkpoint_onto_unloaded_replica_loads_it() {
        let (sim, types) = world();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(1));
        assert!(r.install_checkpoint(&sim, &counter_state(4), None, &types));
        assert!(r.is_loaded(&sim));
    }

    #[test]
    fn restore_data_undoes_and_forgets_ops() {
        let (sim, types) = world();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(0));
        let enc = enc();
        r.load(&sim, &counter_state(10), &types);
        let before = r.snapshot_state(&sim, &enc).unwrap();
        r.invoke(&sim, &enc, 5, &CounterOp::Add(100).encode())
            .unwrap();
        assert!(r.restore_data(&sim, before.type_tag, &before.data, &[5], &types));
        let v = r.invoke(&sim, &enc, 6, &CounterOp::Get.encode()).unwrap();
        assert_eq!(CounterOp::decode_reply(&v.reply), Some(10));
        // Op 5 can run again after the undo.
        let again = r
            .invoke(&sim, &enc, 5, &CounterOp::Add(1).encode())
            .unwrap();
        assert!(again.mutated);
    }

    #[test]
    fn unknown_type_refuses_load() {
        let (sim, _) = world();
        let empty = TypeRegistry::default();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(0));
        assert!(!r.load(&sim, &counter_state(1), &empty));
        assert!(!r.is_loaded(&sim));
    }

    #[test]
    fn registry_lifecycle() {
        let (sim, _types) = world();
        let reg = ReplicaRegistry::new();
        let uid = Uid::from_raw(1);
        assert!(reg.get(uid, NodeId::new(0)).is_none());
        let h1 = reg.get_or_create(&sim, uid, NodeId::new(0));
        let h2 = reg.get_or_create(&sim, uid, NodeId::new(0));
        assert!(Rc::ptr_eq(&h1, &h2), "same replica handle");
        reg.get_or_create(&sim, uid, NodeId::new(1));
        reg.get_or_create(&sim, Uid::from_raw(2), NodeId::new(1));
        assert_eq!(reg.replicas_of(uid).len(), 2);
        assert_eq!(reg.remove_object(uid), 2);
        assert!(reg.replicas_of(uid).is_empty());
        assert!(reg.get(Uid::from_raw(2), NodeId::new(1)).is_some());
    }

    #[test]
    fn incarnation_counts_loads_only() {
        let (sim, types) = world();
        let n = NodeId::new(1);
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), n);
        assert_eq!(r.incarnation(), 0);
        r.load(&sim, &counter_state(5), &types);
        assert_eq!(r.incarnation(), 1, "a load starts a new lineage");
        // Within-lineage transitions don't bump: checkpoint, undo, commit.
        r.install_checkpoint(&sim, &counter_state(9), None, &types);
        let snap = r.snapshot_state(&sim, &enc()).unwrap();
        r.restore_data(&sim, snap.type_tag, &snap.data, &[], &types);
        r.mark_committed(&sim, Version::new(2));
        assert_eq!(r.incarnation(), 1);
        // A crash alone doesn't either — the reload after it does.
        sim.crash(n);
        sim.recover(n);
        assert_eq!(r.incarnation(), 1);
        assert!(!r.is_loaded(&sim));
        r.load(&sim, &counter_state(5), &types);
        assert_eq!(r.incarnation(), 2, "the reborn replica is a new lineage");
    }

    #[test]
    fn unload_passivates() {
        let (sim, types) = world();
        let mut r = ServerReplica::new(&sim, Uid::from_raw(1), NodeId::new(0));
        r.load(&sim, &counter_state(1), &types);
        r.unload(&sim);
        assert!(!r.is_loaded(&sim));
    }
}
