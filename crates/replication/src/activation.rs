//! Object activation (paper §3.2, Figures 2–5).
//!
//! "Activating `A` will consist of creating a server at the node ∈ SvA and
//! loading the state from any node ∈ StA" — generalised here to every
//! `|Sv| × |St|` configuration:
//!
//! 1. **Join or select.** If the object is already activated (live, loaded
//!    replicas exist), the client "must be bound to all of the functioning
//!    servers ∈ SvA'" — it joins the *existing* activation set, which is
//!    what keeps all activated copies mutually consistent across client
//!    actions. Only a passive object gets a fresh server selection.
//! 2. Bind through the configured scheme ([`groupview_core::Binder`]),
//!    which also maintains use lists / prunes dead servers per Figures 6–8.
//! 3. Fetch `St(A)` via `GetView`, run as a nested action so the read lock
//!    on the state entry is held by the client action (needed later for the
//!    commit-time `Exclude`).
//! 4. For a fresh activation, load every bound replica from any reachable
//!    store in `St` — stores hold only committed states, so a fresh
//!    activation can never observe uncommitted or stale data.
//! 5. For active replication, enrol all replicas in the object's reliable
//!    ordered multicast group.

use crate::error::ActivateError;
use crate::invoke::{ObjectGroup, ReplicaMember};
use crate::policy::ReplicationPolicy;
use crate::system::System;
use groupview_actions::ActionId;
use groupview_core::BindRequest;
use groupview_group::DeliveryMode;
use groupview_obs::Phase;
use groupview_sim::{ClientId, NodeId};
use groupview_store::Uid;
use std::cell::RefCell;
use std::rc::Rc;

impl System {
    /// The object's current activation set: nodes with live, loaded
    /// replicas. Empty for passive objects.
    pub(crate) fn activation_set(&self, uid: Uid) -> Vec<NodeId> {
        let inner = &self.inner;
        inner
            .registry
            .replicas_of(uid)
            .into_iter()
            .filter(|(node, handle)| {
                inner.sim.is_up(*node) && handle.borrow_mut().is_loaded(&inner.sim)
            })
            .map(|(node, _)| node)
            .collect()
    }

    /// Activates `uid` for a client action; see the module docs. Trace
    /// events caused by activation messages are attributed to `action`.
    pub(crate) fn do_activate(
        &self,
        action: ActionId,
        client: ClientId,
        client_node: NodeId,
        uid: Uid,
        replicas: usize,
        read_only: bool,
    ) -> Result<ObjectGroup, ActivateError> {
        self.inner.sim.with_active_action(action.raw(), || {
            self.do_activate_inner(action, client, client_node, uid, replicas, read_only)
        })
    }

    fn do_activate_inner(
        &self,
        action: ActionId,
        client: ClientId,
        client_node: NodeId,
        uid: Uid,
        replicas: usize,
        read_only: bool,
    ) -> Result<ObjectGroup, ActivateError> {
        let inner = &self.inner;
        // Single-copy passive activates exactly one copy (§2.3(2)(iii)).
        let k = match inner.policy {
            ReplicationPolicy::SingleCopyPassive => 1,
            _ => replicas.max(1),
        };
        let mut req = BindRequest::new(client, client_node, uid).with_replicas(k);
        if read_only {
            req = req.read_only();
        }
        // Join the existing activation, if any (§3.2: bind to all of SvA').
        let joined = self.activation_set(uid);
        let fresh = joined.is_empty();
        if !fresh {
            req = req.with_required(joined.clone());
        }
        let bind_start = inner.sim.now().as_micros();
        let binding = inner.binder.bind(action, &req)?;
        inner.obs.span(
            action.raw(),
            Phase::Bind,
            bind_start,
            inner.sim.now().as_micros(),
        );

        // Any member of the previous activation that this binding could NOT
        // reach (crashed or partitioned) will miss the coming operations:
        // expel it — unload its replica so it can never re-enter the
        // activation set with stale state. Its next activation reloads the
        // committed state from the object stores.
        for &node in &joined {
            if !binding.servers.contains(&node) {
                if let Some(handle) = inner.registry.get(uid, node) {
                    handle.borrow_mut().unload(&inner.sim);
                }
            }
        }

        // GetView as a nested action of the client action: the read lock on
        // the St entry is inherited and held to the client's end.
        let viewer = binding.servers.first().copied().unwrap_or(client_node);
        let probe_start = inner.sim.now().as_micros();
        let nested = inner.tx.begin_nested(action);
        let st_entry = match inner.naming.get_view_from(viewer, nested, uid) {
            Ok(e) => {
                inner.tx.commit(nested)?;
                inner.obs.span(
                    action.raw(),
                    Phase::Probe,
                    probe_start,
                    inner.sim.now().as_micros(),
                );
                e
            }
            Err(e) => {
                inner.tx.abort(nested);
                return Err(ActivateError::Db(e));
            }
        };

        // Fresh activation: load every bound replica from the object stores.
        // (A joined activation binds only loaded replicas by construction.)
        if fresh {
            for &server in &binding.servers {
                let replica = inner.registry.get_or_create(&inner.sim, uid, server);
                if replica.borrow_mut().is_loaded(&inner.sim) {
                    continue;
                }
                let mut loaded = false;
                for &src in &st_entry.stores {
                    if let Ok(state) = inner.stores.read_remote(server, src, uid) {
                        if !replica.borrow_mut().load(&inner.sim, &state, &inner.types) {
                            return Err(ActivateError::UnknownType(uid));
                        }
                        loaded = true;
                        break;
                    }
                }
                if !loaded {
                    return Err(ActivateError::NoState(uid));
                }
            }
        }

        // Pin the state lineage of every bound replica: a later reload (a
        // reborn copy after a crash) bumps the incarnation, and this
        // action's invoke/commit paths refuse the mismatch instead of
        // silently losing the action's uncommitted updates.
        let incarnations: Vec<(NodeId, u64)> = binding
            .servers
            .iter()
            .map(|&server| {
                let inc = inner
                    .registry
                    .get(uid, server)
                    .map_or(0, |r| r.borrow().incarnation());
                (server, inc)
            })
            .collect();

        // Active replication: enrol replicas in the object's group, and
        // evict members that are no longer part of the activation (e.g. a
        // node that crashed and recovered: it is up again, but its replica
        // lost its volatile state and must not receive operations until a
        // fresh activation reloads it).
        let comms_group = if inner.policy == ReplicationPolicy::Active {
            let mut groups = inner.active_groups.borrow_mut();
            let gid = if fresh {
                // A fresh activation starts a new lineage, so it also gets
                // a fresh multicast group. Destroying the previous group
                // makes any action still bound to the dead activation fail
                // its next multicast outright — it must abort anyway, and
                // this keeps its operations from ever executing on the
                // reborn replicas.
                if let Some(old) = groups.remove(&uid) {
                    inner.comms.destroy_group(old);
                }
                let gid = inner.comms.create_group(DeliveryMode::ReliableOrdered);
                groups.insert(uid, gid);
                gid
            } else {
                *groups
                    .entry(uid)
                    .or_insert_with(|| inner.comms.create_group(DeliveryMode::ReliableOrdered))
            };
            drop(groups);
            if let Ok(view) = inner.comms.view(gid) {
                for member in view.members {
                    if !binding.servers.contains(&member) {
                        let _ = inner.comms.leave(gid, member);
                    }
                }
            }
            for (&server, &(_, incarnation)) in binding.servers.iter().zip(&incarnations) {
                let replica = inner.registry.get_or_create(&inner.sim, uid, server);
                let member = ReplicaMember::new(&inner.sim, &inner.wire, replica, incarnation);
                let _ = inner.comms.join(gid, server, Rc::new(RefCell::new(member)));
            }
            Some(gid)
        } else {
            None
        };

        Ok(ObjectGroup {
            uid,
            policy: inner.policy,
            servers: binding.servers.clone(),
            st_nodes: st_entry.stores,
            comms_group,
            req,
            binding,
            incarnations,
        })
    }
}
