//! Operation invocation under the three replication policies (§2.3(2)).
//!
//! Every policy shares one wire discipline: the operation is encoded into a
//! single pooled [`GroupMsg`] frame per invocation, and that frame — not a
//! fresh vector per RPC closure — travels to however many replicas the
//! policy involves. Replies and checkpoints come back as shared buffers
//! too; see `docs/WIRE.md` for the ownership rules.

use crate::error::InvokeError;
use crate::policy::ReplicationPolicy;
use crate::replica::ReplicaHandle;
use crate::system::System;
use crate::wire::{
    read_frames, BatchMsgCodec, GroupMsgCodec, MemberReply, MemberReplyCodec, BATCH_FLAG,
};
use groupview_actions::{ActionId, LockKey, LockMode};
use groupview_core::{BindRequest, Binding};
use groupview_group::{GroupId, GroupMember};
use groupview_obs::{Counter as ObsCounter, Phase};
use groupview_sim::wire::Codec;
use groupview_sim::{Bytes, NodeId, Sim, WireEncoder};
use groupview_store::{SnapshotCodec, Uid};
use std::fmt;

/// Lock namespace for object-level concurrency control (the databases use
/// spaces 1 and 2; see [`groupview_core::keys`]).
pub const OBJECT_SPACE: u16 = 3;

/// The lock key serialising operations on `uid` itself.
pub fn object_key(uid: Uid) -> LockKey {
    LockKey::new(OBJECT_SPACE, uid.raw())
}

/// A client's handle to an activated object: the bound servers plus the
/// `St` view captured (and read-locked) at activation.
#[derive(Debug, Clone)]
pub struct ObjectGroup {
    /// The object.
    pub uid: Uid,
    /// The replication policy the object is activated under.
    pub policy: ReplicationPolicy,
    /// The bound servers (`Sv'`).
    pub servers: Vec<NodeId>,
    /// `St(A)` as read at activation (its entry stays read-locked by the
    /// client action, so it cannot change underneath).
    pub st_nodes: Vec<NodeId>,
    /// The multicast group (active replication only).
    pub(crate) comms_group: Option<GroupId>,
    /// The original bind request (needed for binding completion).
    pub(crate) req: BindRequest,
    /// The binding (registration state, statistics).
    pub(crate) binding: Binding,
    /// The state lineage of every bound replica, pinned at activation
    /// (see [`crate::ServerReplica::incarnation`]): invoke and commit
    /// refuse replicas that were reborn (crashed and reloaded by a later
    /// activation) underneath this action.
    pub(crate) incarnations: Vec<(NodeId, u64)>,
}

impl ObjectGroup {
    /// The binding statistics recorded when this group was activated.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// The incarnation pinned for `node` at activation.
    pub(crate) fn pinned_incarnation(&self, node: NodeId) -> Option<u64> {
        self.incarnations
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, inc)| inc)
    }

    /// Whether `node`'s replica still belongs to the lineage this action
    /// bound: up, present, and of the pinned incarnation.
    fn same_lineage(&self, sys: &System, node: NodeId) -> bool {
        let inner = &sys.inner;
        inner.sim.is_up(node)
            && self.pinned_incarnation(node).is_some_and(|pinned| {
                inner
                    .registry
                    .get(self.uid, node)
                    .is_some_and(|r| r.borrow().incarnation() == pinned)
            })
    }
}

/// Adapter making a [`ReplicaHandle`] a multicast group member.
pub(crate) struct ReplicaMember {
    sim: Sim,
    wire: WireEncoder,
    replica: ReplicaHandle,
    /// The lineage this membership was enrolled for: a reborn replica
    /// (reloaded by a later activation) answers "not loaded" instead of
    /// executing operations that belong to the previous incarnation.
    expected_incarnation: u64,
}

impl ReplicaMember {
    pub(crate) fn new(
        sim: &Sim,
        wire: &WireEncoder,
        replica: ReplicaHandle,
        expected_incarnation: u64,
    ) -> Self {
        ReplicaMember {
            sim: sim.clone(),
            wire: wire.clone(),
            replica,
            expected_incarnation,
        }
    }
}

impl fmt::Debug for ReplicaMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaMember").finish_non_exhaustive()
    }
}

impl GroupMember for ReplicaMember {
    fn deliver(&mut self, _seq: u64, msg: &Bytes) -> Bytes {
        let reply = if self.replica.borrow().incarnation() != self.expected_incarnation {
            MemberReply::NotLoaded
        } else {
            match GroupMsgCodec::decode(msg) {
                Some(m) => MemberReply::from(
                    self.replica
                        .borrow_mut()
                        .invoke(&self.sim, &self.wire, m.op_id, &m.op),
                ),
                None => MemberReply::NotLoaded,
            }
        };
        MemberReplyCodec::encode(&self.wire, &reply)
    }
}

impl System {
    /// Invokes `op` on the activated object behind `group`, on behalf of
    /// `action`, declaring write (`true`) or read-only (`false`) intent for
    /// object-level concurrency control. Trace events caused by invocation
    /// messages are attributed to `action`.
    pub(crate) fn do_invoke(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        op: &[u8],
        write_intent: bool,
    ) -> Result<Bytes, InvokeError> {
        self.inner.sim.with_active_action(action.raw(), || {
            self.do_invoke_inner(action, group, op, write_intent)
        })
    }

    fn do_invoke_inner(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        op: &[u8],
        write_intent: bool,
    ) -> Result<Bytes, InvokeError> {
        let inner = &self.inner;
        let invoke_start = inner.sim.now().as_micros();
        inner.obs.add(ObsCounter::Invokes, 1);
        for &server in &group.servers {
            inner.obs.record_node_invoke(server.raw());
        }
        let mode = if write_intent {
            LockMode::Write
        } else {
            LockMode::Read
        };
        inner.tx.lock(action, object_key(group.uid), mode)?;
        let op_id = self.next_op_id();
        if write_intent {
            self.push_object_undo(action, group, op_id)?;
        }
        // The only encode of this operation: one pooled frame shared by
        // every replica the policy touches (and by the retry loop of the
        // coordinator-cohort policy). Its buffer returns to the pool when
        // the last reference drops at the end of this call.
        let msg = GroupMsgCodec::encode_parts(&inner.wire, op_id, op);
        let (reply, mutated) = self.dispatch_policy(action, group, &msg)?;
        if mutated {
            self.mark_dirty(action, group.uid);
        }
        inner.obs.span(
            action.raw(),
            Phase::Invoke,
            invoke_start,
            inner.sim.now().as_micros(),
        );
        Ok(reply)
    }

    /// The replicated leg of an invocation: route the encoded frame through
    /// the group's policy, recording the multicast/RPC span and counter.
    fn dispatch_policy(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        msg: &Bytes,
    ) -> Result<(Bytes, bool), InvokeError> {
        let inner = &self.inner;
        let mcast_start = inner.sim.now().as_micros();
        let result = match group.policy {
            ReplicationPolicy::Active => {
                inner.obs.add(ObsCounter::Multicasts, 1);
                self.invoke_active(group, msg)?
            }
            ReplicationPolicy::CoordinatorCohort => {
                inner.obs.add(ObsCounter::Rpcs, 1);
                self.invoke_cohort(group, msg)?
            }
            ReplicationPolicy::SingleCopyPassive => {
                inner.obs.add(ObsCounter::Rpcs, 1);
                self.invoke_single(group, msg)?
            }
        };
        inner.obs.span(
            action.raw(),
            Phase::Multicast,
            mcast_start,
            inner.sim.now().as_micros(),
        );
        Ok(result)
    }

    /// Invokes a batch of operations on the activated object behind
    /// `group` as **one** replicated unit: one lock acquisition, one
    /// (flagged) operation id, one undo snapshot, one pooled wire frame,
    /// one policy round, and one dirty-marking — `do_invoke`'s per-op
    /// overhead is paid once per batch. The returned replies are
    /// index-aligned with `ops`. An empty batch is a no-op that touches
    /// neither locks nor the wire.
    pub(crate) fn do_invoke_batch(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        ops: &[&[u8]],
        write_intent: bool,
    ) -> Result<Vec<Bytes>, InvokeError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        self.inner.sim.with_active_action(action.raw(), || {
            self.do_invoke_batch_inner(action, group, ops, write_intent)
        })
    }

    fn do_invoke_batch_inner(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        ops: &[&[u8]],
        write_intent: bool,
    ) -> Result<Vec<Bytes>, InvokeError> {
        let inner = &self.inner;
        let invoke_start = inner.sim.now().as_micros();
        inner.obs.add(ObsCounter::Invokes, 1);
        inner.obs.add(ObsCounter::BatchOps, ops.len() as u64);
        for &server in &group.servers {
            inner.obs.record_node_invoke(server.raw());
        }
        let mode = if write_intent {
            LockMode::Write
        } else {
            LockMode::Read
        };
        inner.tx.lock(action, object_key(group.uid), mode)?;
        let batch_id = self.next_op_id() | BATCH_FLAG;
        if write_intent {
            // One snapshot undoes the whole batch: abort restores the
            // pre-batch state and forgets the single batch-granularity
            // dedup entry.
            self.push_object_undo(action, group, batch_id)?;
        }
        // The only encode of this batch: one pooled frame shared by every
        // replica the policy touches.
        let msg = BatchMsgCodec::encode_parts(&inner.wire, batch_id, ops);
        let (reply, mutated) = self.dispatch_policy(action, group, &msg)?;
        if mutated {
            self.mark_dirty(action, group.uid);
        }
        let replies = read_frames(&reply).ok_or(InvokeError::MalformedReply(group.uid))?;
        if replies.len() != ops.len() {
            return Err(InvokeError::MalformedReply(group.uid));
        }
        inner.obs.span(
            action.raw(),
            Phase::Invoke,
            invoke_start,
            inner.sim.now().as_micros(),
        );
        Ok(replies)
    }

    /// Logs this write into the action's undo arena so an abort restores
    /// every live same-lineage replica of the group's object to its
    /// pre-transaction state. The *first* write per (action, object) logs a
    /// snapshot entry with the pinned `(node, incarnation)` pairs; every
    /// later write appends only a `(uid, op_id)` record — amortised zero
    /// allocations per op. Reborn replicas (a different incarnation than
    /// the action bound) belong to other activations; the abort-time
    /// [`groupview_actions::UndoApplier`] re-checks incarnations and skips
    /// them.
    fn push_object_undo(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        op_id: u64,
    ) -> Result<(), groupview_actions::TxError> {
        let inner = &self.inner;
        let uid = group.uid;
        if !inner.tx.undo_logged(action, uid.raw()) {
            let mut snapshot = None;
            for &node in &group.servers {
                if !group.same_lineage(self, node) {
                    continue;
                }
                let handle = inner.registry.get(uid, node).expect("lineage checked");
                if !handle.borrow_mut().is_loaded(&inner.sim) {
                    continue;
                }
                // One snapshot restores every replica (all loaded copies
                // are mutually consistent).
                let state = handle
                    .borrow_mut()
                    .snapshot_state(&inner.sim, &inner.wire)
                    .expect("checked loaded");
                snapshot = Some((state.type_tag, state.data));
                break;
            }
            let Some((tag, data)) = snapshot else {
                return Ok(()); // nothing loaded — nothing to undo
            };
            let servers = group.servers.iter().filter_map(|&node| {
                if !group.same_lineage(self, node) {
                    return None;
                }
                let loaded = inner
                    .registry
                    .get(uid, node)
                    .is_some_and(|h| h.borrow_mut().is_loaded(&inner.sim));
                if !loaded {
                    return None;
                }
                Some((node.raw(), group.pinned_incarnation(node)?))
            });
            inner
                .tx
                .log_undo_snapshot(action, uid.raw(), tag.raw(), servers, &data)?;
        }
        inner.tx.log_undo_op(action, uid.raw(), op_id)
    }

    /// §2.3(2)(i): every replica processes the op via reliable ordered
    /// multicast; crashed replicas are masked while at least one survives.
    fn invoke_active(
        &self,
        group: &ObjectGroup,
        msg: &Bytes,
    ) -> Result<(Bytes, bool), InvokeError> {
        let inner = &self.inner;
        let gid = group
            .comms_group
            .ok_or(InvokeError::AllReplicasFailed(group.uid))?;
        let _ = inner.comms.prune_dead_members(gid);
        let outcome = inner
            .comms
            .multicast(gid, group.req.client_node, msg)
            .map_err(InvokeError::Group)?;
        // Virtual synchrony: a live member that nevertheless missed the
        // delivery (network partition) no longer holds current state — it
        // must be expelled from the activated group, or a later activation
        // could join its stale copy. Its next activation reloads from the
        // object stores.
        for &node in &outcome.missed {
            if let Some(handle) = inner.registry.get(group.uid, node) {
                handle.borrow_mut().unload(&inner.sim);
            }
            let _ = inner.comms.leave(gid, node);
        }
        // Use the first reply from a member that actually holds state; a
        // member that lost its volatile state answers "not loaded" and is
        // ignored (it is evicted at the next activation). The returned
        // payload is a zero-copy slice of the member's reply frame.
        let mut saw_unloaded = false;
        for (_, reply) in &outcome.replies {
            match MemberReplyCodec::decode(reply) {
                Some(MemberReply::Loaded(r)) => return Ok((r.reply, r.mutated)),
                Some(MemberReply::NotLoaded) => saw_unloaded = true,
                None => {}
            }
        }
        if saw_unloaded {
            Err(InvokeError::NotLoaded(group.uid))
        } else {
            Err(InvokeError::AllReplicasFailed(group.uid))
        }
    }

    /// §2.3(2)(ii): the coordinator (lowest-id live loaded replica)
    /// processes and checkpoints to the cohorts; on its failure a cohort is
    /// elected and the operation retried (deduplicated by `op_id`).
    fn invoke_cohort(
        &self,
        group: &ObjectGroup,
        msg: &Bytes,
    ) -> Result<(Bytes, bool), InvokeError> {
        let inner = &self.inner;
        let uid = group.uid;
        // At most one retry per server: each failure removes a coordinator.
        for _ in 0..=group.servers.len() {
            // Only replicas of the pinned lineage may coordinate: a reborn
            // replica (reloaded from the stores by a later activation) is
            // loaded and alive, but has lost this action's uncommitted
            // operations — electing it would silently roll them back.
            let coordinator = group
                .servers
                .iter()
                .copied()
                .filter(|&s| {
                    group.same_lineage(self, s)
                        && inner
                            .registry
                            .get(uid, s)
                            .is_some_and(|r| r.borrow_mut().is_loaded(&inner.sim))
                })
                .min();
            let Some(coord) = coordinator else {
                return Err(InvokeError::AllReplicasFailed(uid));
            };

            // Checkpoints go only to cohorts that still hold a *loaded*
            // replica. A member that was expelled from the activation (its
            // bind probe failed, or it missed an earlier checkpoint) must
            // stay unloaded until a fresh activation reloads it from the
            // object stores — re-installing state here would resurrect it
            // into the activation set behind a concurrent action's back,
            // and a later activation could then elect it (stale) as
            // coordinator, silently losing committed updates. (Found by the
            // scenario oracle under `cohort/lossy_window`.)
            let cohorts: Vec<NodeId> = group
                .servers
                .iter()
                .copied()
                .filter(|&s| {
                    s != coord
                        && group.same_lineage(self, s)
                        && inner
                            .registry
                            .get(uid, s)
                            .is_some_and(|r| r.borrow_mut().is_loaded(&inner.sim))
                })
                .collect();
            let replica = inner.registry.get(uid, coord).expect("checked loaded");
            let sim = inner.sim.clone();
            let registry = inner.registry.clone();
            let types = inner.types.clone();
            let wire = inner.wire.clone();
            // Borrowed by the handler (rpc handlers are plain `FnOnce`s, not
            // boxed), so the common no-miss case allocates nothing.
            let missed_cohorts: std::cell::RefCell<Vec<NodeId>> =
                std::cell::RefCell::new(Vec::new());
            let missed_in_handler = &missed_cohorts;
            let result =
                inner
                    .sim
                    .rpc_payload(group.req.client_node, coord, msg, 64, move |frame| {
                        let m = GroupMsgCodec::decode(frame)?;
                        let result = replica.borrow_mut().invoke(&sim, &wire, m.op_id, &m.op);
                        if let Some(res) = &result {
                            if res.mutated {
                                // Checkpoint the new state to every cohort:
                                // encode ONE snapshot frame and push the same
                                // buffer to all of them; each cohort decodes a
                                // zero-copy view.
                                let snapshot = replica.borrow_mut().snapshot_state(&sim, &wire);
                                if let Some(state) = snapshot {
                                    let frame = SnapshotCodec::encode(&wire, &state);
                                    for &cohort in &cohorts {
                                        // Pre-filtered loaded above; a missing
                                        // handle means the cohort was expelled
                                        // concurrently and must stay out.
                                        let Some(target) = registry.get(uid, cohort) else {
                                            continue;
                                        };
                                        let entry = Some((m.op_id, res.reply.clone(), res.mutated));
                                        let types = &types;
                                        let sim_inner = &sim;
                                        if sim
                                            .send_oneway_payload(coord, cohort, &frame, |payload| {
                                                if let Some(chk) = SnapshotCodec::decode(payload) {
                                                    target.borrow_mut().install_checkpoint(
                                                        sim_inner, &chk, entry, types,
                                                    );
                                                }
                                            })
                                            .is_err()
                                            && sim.is_up(cohort)
                                        {
                                            // Live but unreachable (partition):
                                            // the cohort missed this checkpoint
                                            // and must leave the activated group.
                                            missed_in_handler.borrow_mut().push(cohort);
                                        }
                                    }
                                }
                            }
                        }
                        result
                    });
            // Expel cohorts that missed the checkpoint (stale copies).
            for &node in missed_cohorts.borrow().iter() {
                if let Some(handle) = inner.registry.get(uid, node) {
                    handle.borrow_mut().unload(&inner.sim);
                }
            }
            match result {
                Ok(Some(res)) => return Ok((res.reply, res.mutated)),
                Ok(None) => return Err(InvokeError::NotLoaded(uid)),
                Err(_) => continue, // coordinator failed; elect the next one
            }
        }
        Err(InvokeError::AllReplicasFailed(uid))
    }

    /// §2.3(2)(iii): the single activated copy processes; its failure means
    /// the action must abort.
    fn invoke_single(
        &self,
        group: &ObjectGroup,
        msg: &Bytes,
    ) -> Result<(Bytes, bool), InvokeError> {
        let inner = &self.inner;
        let uid = group.uid;
        let server = *group
            .servers
            .first()
            .ok_or(InvokeError::ServerFailed(uid))?;
        let replica = inner
            .registry
            .get(uid, server)
            .ok_or(InvokeError::NotLoaded(uid))?;
        let pinned = group.pinned_incarnation(server).unwrap_or(0);
        let sim = inner.sim.clone();
        let wire = inner.wire.clone();
        let result = inner
            .sim
            .rpc_payload(group.req.client_node, server, msg, 64, move |frame| {
                // Server-side lineage check: a reborn copy (the server
                // crashed — losing this action's uncommitted updates — and
                // a later activation reloaded it from the stores) is not
                // the copy this action bound; it refuses the call instead
                // of executing on the wrong state, and per §2.3(2)(iii)
                // the action aborts. The refusal costs a normal round
                // trip, like any other server reply.
                if replica.borrow().incarnation() != pinned {
                    return None;
                }
                GroupMsgCodec::decode(frame)
                    .and_then(|m| replica.borrow_mut().invoke(&sim, &wire, m.op_id, &m.op))
            });
        match result {
            Ok(Some(res)) => Ok((res.reply, res.mutated)),
            Ok(None) => Err(InvokeError::NotLoaded(uid)),
            Err(_) => Err(InvokeError::ServerFailed(uid)),
        }
    }
}
