//! Operation invocation under the three replication policies (§2.3(2)).

use crate::error::InvokeError;
use crate::object::InvokeResult;
use crate::policy::ReplicationPolicy;
use crate::replica::ReplicaHandle;
use crate::system::System;
use groupview_actions::{ActionId, LockKey, LockMode};
use groupview_core::{BindRequest, Binding};
use groupview_group::{GroupId, GroupMember};
use groupview_sim::{NodeId, Sim};
use groupview_store::Uid;
use std::fmt;

/// Lock namespace for object-level concurrency control (the databases use
/// spaces 1 and 2; see [`groupview_core::keys`]).
pub const OBJECT_SPACE: u16 = 3;

/// The lock key serialising operations on `uid` itself.
pub fn object_key(uid: Uid) -> LockKey {
    LockKey::new(OBJECT_SPACE, uid.raw())
}

/// A client's handle to an activated object: the bound servers plus the
/// `St` view captured (and read-locked) at activation.
#[derive(Debug, Clone)]
pub struct ObjectGroup {
    /// The object.
    pub uid: Uid,
    /// The replication policy the object is activated under.
    pub policy: ReplicationPolicy,
    /// The bound servers (`Sv'`).
    pub servers: Vec<NodeId>,
    /// `St(A)` as read at activation (its entry stays read-locked by the
    /// client action, so it cannot change underneath).
    pub st_nodes: Vec<NodeId>,
    /// The multicast group (active replication only).
    pub(crate) comms_group: Option<GroupId>,
    /// The original bind request (needed for binding completion).
    pub(crate) req: BindRequest,
    /// The binding (registration state, statistics).
    pub(crate) binding: Binding,
}

impl ObjectGroup {
    /// The binding statistics recorded when this group was activated.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }
}

/// Adapter making a [`ReplicaHandle`] a multicast group member.
pub(crate) struct ReplicaMember {
    sim: Sim,
    replica: ReplicaHandle,
}

impl ReplicaMember {
    pub(crate) fn new(sim: &Sim, replica: ReplicaHandle) -> Self {
        ReplicaMember {
            sim: sim.clone(),
            replica,
        }
    }
}

impl fmt::Debug for ReplicaMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaMember").finish_non_exhaustive()
    }
}

impl GroupMember for ReplicaMember {
    fn deliver(&mut self, _seq: u64, msg: &[u8]) -> Vec<u8> {
        let Some((op_id, op)) = decode_group_msg(msg) else {
            return encode_member_reply(None);
        };
        let result = self.replica.borrow_mut().invoke(&self.sim, op_id, op);
        encode_member_reply(result)
    }
}

/// `[op_id: u64 LE][op bytes]`
fn encode_group_msg(op_id: u64, op: &[u8]) -> Vec<u8> {
    let mut v = op_id.to_le_bytes().to_vec();
    v.extend_from_slice(op);
    v
}

fn decode_group_msg(msg: &[u8]) -> Option<(u64, &[u8])> {
    let op_id = u64::from_le_bytes(msg.get(..8)?.try_into().ok()?);
    Some((op_id, msg.get(8..)?))
}

/// `[status: 0 ok / 1 not-loaded][mutated: 0/1][reply bytes]`
fn encode_member_reply(result: Option<InvokeResult>) -> Vec<u8> {
    match result {
        Some(r) => {
            let mut v = vec![0u8, u8::from(r.mutated)];
            v.extend_from_slice(&r.reply);
            v
        }
        None => vec![1u8, 0u8],
    }
}

fn decode_member_reply(bytes: &[u8]) -> Option<(bool, bool, Vec<u8>)> {
    let loaded = *bytes.first()? == 0;
    let mutated = *bytes.get(1)? == 1;
    Some((loaded, mutated, bytes.get(2..)?.to_vec()))
}

impl System {
    /// Invokes `op` on the activated object behind `group`, on behalf of
    /// `action`, declaring write (`true`) or read-only (`false`) intent for
    /// object-level concurrency control.
    pub(crate) fn do_invoke(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        op: &[u8],
        write_intent: bool,
    ) -> Result<Vec<u8>, InvokeError> {
        let inner = &self.inner;
        let mode = if write_intent {
            LockMode::Write
        } else {
            LockMode::Read
        };
        inner.tx.lock(action, object_key(group.uid), mode)?;
        let op_id = self.next_op_id();
        if write_intent {
            self.push_object_undo(action, group.uid, op_id)?;
        }
        let (reply, mutated) = match group.policy {
            ReplicationPolicy::Active => self.invoke_active(group, op_id, op)?,
            ReplicationPolicy::CoordinatorCohort => self.invoke_cohort(group, op_id, op)?,
            ReplicationPolicy::SingleCopyPassive => self.invoke_single(group, op_id, op)?,
        };
        if mutated {
            self.mark_dirty(action, group.uid);
        }
        Ok(reply)
    }

    /// Registers an undo that restores every live replica of `uid` to its
    /// pre-operation state if the action later aborts.
    fn push_object_undo(
        &self,
        action: ActionId,
        uid: Uid,
        op_id: u64,
    ) -> Result<(), groupview_actions::TxError> {
        let inner = &self.inner;
        let mut snapshot = None;
        let mut handles = Vec::new();
        for (node, handle) in inner.registry.replicas_of(uid) {
            if !inner.sim.is_up(node) {
                continue;
            }
            let snap = handle.borrow_mut().snapshot_state(&inner.sim);
            if let Some(state) = snap {
                if snapshot.is_none() {
                    snapshot = Some((state.type_tag, state.data));
                }
                handles.push(handle);
            }
        }
        let Some((tag, data)) = snapshot else {
            return Ok(()); // nothing loaded — nothing to undo
        };
        let sim = inner.sim.clone();
        let types = inner.types.clone();
        inner.tx.push_undo(action, move || {
            for handle in &handles {
                handle
                    .borrow_mut()
                    .restore_data(&sim, tag, &data, &[op_id], &types);
            }
        })
    }

    /// §2.3(2)(i): every replica processes the op via reliable ordered
    /// multicast; crashed replicas are masked while at least one survives.
    fn invoke_active(
        &self,
        group: &ObjectGroup,
        op_id: u64,
        op: &[u8],
    ) -> Result<(Vec<u8>, bool), InvokeError> {
        let inner = &self.inner;
        let gid = group
            .comms_group
            .ok_or(InvokeError::AllReplicasFailed(group.uid))?;
        let _ = inner.comms.refresh_view(gid);
        let msg = encode_group_msg(op_id, op);
        let outcome = inner
            .comms
            .multicast(gid, group.req.client_node, &msg)
            .map_err(|_| InvokeError::AllReplicasFailed(group.uid))?;
        // Virtual synchrony: a live member that nevertheless missed the
        // delivery (network partition) no longer holds current state — it
        // must be expelled from the activated group, or a later activation
        // could join its stale copy. Its next activation reloads from the
        // object stores.
        for &node in &outcome.missed {
            if let Some(handle) = inner.registry.get(group.uid, node) {
                handle.borrow_mut().unload(&inner.sim);
            }
            let _ = inner.comms.leave(gid, node);
        }
        // Use the first reply from a member that actually holds state; a
        // member that lost its volatile state answers "not loaded" and is
        // ignored (it is evicted at the next activation).
        let mut saw_unloaded = false;
        for (_, reply) in &outcome.replies {
            match decode_member_reply(reply) {
                Some((true, mutated, payload)) => return Ok((payload, mutated)),
                Some((false, _, _)) => saw_unloaded = true,
                None => {}
            }
        }
        if saw_unloaded {
            Err(InvokeError::NotLoaded(group.uid))
        } else {
            Err(InvokeError::AllReplicasFailed(group.uid))
        }
    }

    /// §2.3(2)(ii): the coordinator (lowest-id live loaded replica)
    /// processes and checkpoints to the cohorts; on its failure a cohort is
    /// elected and the operation retried (deduplicated by `op_id`).
    fn invoke_cohort(
        &self,
        group: &ObjectGroup,
        op_id: u64,
        op: &[u8],
    ) -> Result<(Vec<u8>, bool), InvokeError> {
        let inner = &self.inner;
        let uid = group.uid;
        // At most one retry per server: each failure removes a coordinator.
        for _ in 0..=group.servers.len() {
            let coordinator = group
                .servers
                .iter()
                .copied()
                .filter(|&s| {
                    inner.sim.is_up(s)
                        && inner
                            .registry
                            .get(uid, s)
                            .is_some_and(|r| r.borrow_mut().is_loaded(&inner.sim))
                })
                .min();
            let Some(coord) = coordinator else {
                return Err(InvokeError::AllReplicasFailed(uid));
            };
            let cohorts: Vec<NodeId> = group
                .servers
                .iter()
                .copied()
                .filter(|&s| s != coord && inner.sim.is_up(s))
                .collect();
            let replica = inner.registry.get(uid, coord).expect("checked loaded");
            let sim = inner.sim.clone();
            let registry = inner.registry.clone();
            let types = inner.types.clone();
            let op_vec = op.to_vec();
            let missed_cohorts: std::rc::Rc<std::cell::RefCell<Vec<NodeId>>> =
                std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let missed_in_handler = missed_cohorts.clone();
            let result =
                inner
                    .sim
                    .rpc(group.req.client_node, coord, op.len() + 24, 64, move || {
                        let result = replica.borrow_mut().invoke(&sim, op_id, &op_vec);
                        if let Some(res) = &result {
                            if res.mutated {
                                // Checkpoint the new state to every cohort.
                                let snapshot = replica.borrow_mut().snapshot_state(&sim);
                                if let Some(state) = snapshot {
                                    for &cohort in &cohorts {
                                        let target = registry.get_or_create(&sim, uid, cohort);
                                        let state = state.clone();
                                        let entry = Some((op_id, res.reply.clone(), res.mutated));
                                        let types = types.clone();
                                        let sim_inner = sim.clone();
                                        if sim
                                            .send_oneway(
                                                coord,
                                                cohort,
                                                state.wire_size(),
                                                move || {
                                                    target.borrow_mut().install_checkpoint(
                                                        &sim_inner, &state, entry, &types,
                                                    );
                                                },
                                            )
                                            .is_err()
                                            && sim.is_up(cohort)
                                        {
                                            // Live but unreachable (partition):
                                            // the cohort missed this checkpoint
                                            // and must leave the activated group.
                                            missed_in_handler.borrow_mut().push(cohort);
                                        }
                                    }
                                }
                            }
                        }
                        result
                    });
            // Expel cohorts that missed the checkpoint (stale copies).
            for &node in missed_cohorts.borrow().iter() {
                if let Some(handle) = inner.registry.get(uid, node) {
                    handle.borrow_mut().unload(&inner.sim);
                }
            }
            match result {
                Ok(Some(res)) => return Ok((res.reply, res.mutated)),
                Ok(None) => return Err(InvokeError::NotLoaded(uid)),
                Err(_) => continue, // coordinator failed; elect the next one
            }
        }
        Err(InvokeError::AllReplicasFailed(uid))
    }

    /// §2.3(2)(iii): the single activated copy processes; its failure means
    /// the action must abort.
    fn invoke_single(
        &self,
        group: &ObjectGroup,
        op_id: u64,
        op: &[u8],
    ) -> Result<(Vec<u8>, bool), InvokeError> {
        let inner = &self.inner;
        let uid = group.uid;
        let server = *group
            .servers
            .first()
            .ok_or(InvokeError::ServerFailed(uid))?;
        let replica = inner
            .registry
            .get(uid, server)
            .ok_or(InvokeError::NotLoaded(uid))?;
        let sim = inner.sim.clone();
        let op_vec = op.to_vec();
        let result = inner.sim.rpc(
            group.req.client_node,
            server,
            op.len() + 24,
            64,
            move || replica.borrow_mut().invoke(&sim, op_id, &op_vec),
        );
        match result {
            Ok(Some(res)) => Ok((res.reply, res.mutated)),
            Ok(None) => Err(InvokeError::NotLoaded(uid)),
            Err(_) => Err(InvokeError::ServerFailed(uid)),
        }
    }
}
