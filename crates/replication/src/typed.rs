//! The typed object API: `ObjectType` classes and `Handle<O>` clients.
//!
//! The paper's model is *typed* persistent objects — counters, accounts,
//! directories — invoked through atomic actions, yet the byte-level client
//! surface ([`Client::invoke`]) asks every call site to encode operations
//! and decode replies by hand. This module closes that gap in two pieces:
//!
//! * [`ObjectType`] extends [`ReplicaObject`] with the *class-level* codec
//!   contract: an `Op` type, a `Reply` type, and encode/decode functions
//!   for both. The three built-in classes ([`Counter`], [`KvMap`],
//!   [`Account`]) implement it, and the scenario engine's oracle and
//!   workload generators dispatch through it instead of keeping parallel
//!   per-class match arms.
//! * [`Handle`]`<O>` is a typed client surface for one object:
//!   `handle.invoke(action, CounterOp::Add(10))? -> i64`, with the
//!   read/write lock intent inferred from the operation
//!   ([`ObjectType::op_is_read_only`]) and the operation encoded into a
//!   pooled wire frame (no caller-side `Vec<u8>` per call).
//!
//! The raw-bytes [`Client::invoke`]/[`Client::invoke_read`] surface stays
//! available as an escape hatch for workloads that record or replay
//! encoded histories. See `docs/OBJECTS.md` for the full design.

use crate::error::{ActivateError, InvokeError};
use crate::invoke::ObjectGroup;
use crate::object::{Account, AccountOp, Counter, CounterOp, KvMap, KvOp, ReplicaObject};
use crate::system::Client;
use groupview_actions::ActionId;
use groupview_store::{TypeTag, Uid};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

/// A persistent object class: the replica behaviour of [`ReplicaObject`]
/// plus the typed operation/reply codec contract client surfaces need.
///
/// Implementations must keep `encode_op`/`decode_op` and
/// `encode_reply`/`decode_reply` exact inverses, and the reply wire format
/// identical to what [`ReplicaObject::invoke`] produces — property-tested
/// for the built-in classes in `tests/typed_properties.rs`.
pub trait ObjectType: ReplicaObject + Sized + 'static {
    /// The class's operation type (e.g. [`CounterOp`]).
    type Op: fmt::Debug + Clone + PartialEq;
    /// The class's decoded reply type (e.g. `i64` for counters).
    type Reply: fmt::Debug + Clone + PartialEq;

    /// The stable class tag ([`ReplicaObject::type_tag`] of every instance).
    const TAG: TypeTag;

    /// Appends the wire encoding of `op` to `buf` (composes with the
    /// pooled `WireEncoder`).
    fn encode_op(op: &Self::Op, buf: &mut Vec<u8>);

    /// Decodes an operation; `None` for malformed input.
    fn decode_op(bytes: &[u8]) -> Option<Self::Op>;

    /// Whether `op` is read-only (drives the object lock mode and the
    /// commit-time no-copy optimisation).
    fn op_is_read_only(op: &Self::Op) -> bool;

    /// Appends the wire encoding of `reply` to `buf` — the same bytes the
    /// class's [`ReplicaObject::invoke`] writes for the operation that
    /// produced it.
    fn encode_reply(reply: &Self::Reply, buf: &mut Vec<u8>);

    /// Decodes the reply to `op`; `None` for malformed bytes. The reply
    /// format may depend on the operation (a [`KvOp::Len`] reply is a
    /// count, a [`KvOp::Get`] reply a value), so decoding is op-contextual.
    fn decode_reply(op: &Self::Op, reply: &[u8]) -> Option<Self::Reply>;

    /// Convenience: the wire encoding of `op` as a fresh vector (cold
    /// paths; hot paths encode through a pooled frame).
    fn op_vec(op: &Self::Op) -> Vec<u8> {
        let mut buf = Vec::new();
        Self::encode_op(op, &mut buf);
        buf
    }

    /// Convenience: the wire encoding of `reply` as a fresh vector.
    fn reply_vec(reply: &Self::Reply) -> Vec<u8> {
        let mut buf = Vec::new();
        Self::encode_reply(reply, &mut buf);
        buf
    }

    /// Human-readable decode of encoded op bytes (oracle diagnostics).
    fn describe_op(bytes: &[u8]) -> String {
        format!("{:?}", Self::decode_op(bytes))
    }
}

// ---------------------------------------------------------------------------
// Built-in class implementations
// ---------------------------------------------------------------------------

impl ObjectType for Counter {
    type Op = CounterOp;
    type Reply = i64;

    const TAG: TypeTag = Counter::TYPE_TAG;

    fn encode_op(op: &CounterOp, buf: &mut Vec<u8>) {
        match op {
            CounterOp::Get => buf.push(0),
            CounterOp::Add(d) => {
                buf.push(1);
                buf.extend_from_slice(&d.to_le_bytes());
            }
        }
    }

    fn decode_op(bytes: &[u8]) -> Option<CounterOp> {
        CounterOp::decode(bytes)
    }

    fn op_is_read_only(op: &CounterOp) -> bool {
        matches!(op, CounterOp::Get)
    }

    fn encode_reply(reply: &i64, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&reply.to_le_bytes());
    }

    fn decode_reply(_op: &CounterOp, reply: &[u8]) -> Option<i64> {
        CounterOp::decode_reply(reply)
    }
}

/// A typed [`KvMap`] reply: values for `Get`/`Put`/`Delete` (empty when the
/// key was absent), a count for `Len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvReply {
    /// The value read, or the previous value of a `Put`/`Delete` (empty
    /// string when there was none).
    Value(String),
    /// The entry count of a `Len`.
    Len(u64),
}

impl KvReply {
    /// The carried value, if this is a [`KvReply::Value`].
    pub fn value(&self) -> Option<&str> {
        match self {
            KvReply::Value(v) => Some(v),
            KvReply::Len(_) => None,
        }
    }

    /// The carried count, if this is a [`KvReply::Len`].
    pub fn count(&self) -> Option<u64> {
        match self {
            KvReply::Value(_) => None,
            KvReply::Len(n) => Some(*n),
        }
    }
}

impl ObjectType for KvMap {
    type Op = KvOp;
    type Reply = KvReply;

    const TAG: TypeTag = KvMap::TYPE_TAG;

    fn encode_op(op: &KvOp, buf: &mut Vec<u8>) {
        // Delegate to the escape-hatch encoder (one source of truth for the
        // wire layout); KvOp encoding builds nested strings anyway.
        buf.extend_from_slice(&op.encode());
    }

    fn decode_op(bytes: &[u8]) -> Option<KvOp> {
        KvOp::decode(bytes)
    }

    fn op_is_read_only(op: &KvOp) -> bool {
        matches!(op, KvOp::Get(_) | KvOp::Len)
    }

    fn encode_reply(reply: &KvReply, buf: &mut Vec<u8>) {
        match reply {
            KvReply::Value(v) => buf.extend_from_slice(v.as_bytes()),
            KvReply::Len(n) => buf.extend_from_slice(&n.to_le_bytes()),
        }
    }

    fn decode_reply(op: &KvOp, reply: &[u8]) -> Option<KvReply> {
        match op {
            KvOp::Len => Some(KvReply::Len(u64::from_le_bytes(
                reply.get(..8)?.try_into().ok()?,
            ))),
            KvOp::Get(_) | KvOp::Put(..) | KvOp::Delete(_) => {
                Some(KvReply::Value(std::str::from_utf8(reply).ok()?.to_string()))
            }
        }
    }
}

/// Derives an [`ObjectType`] impl for a class whose operations follow the
/// workspace's standard wire shape: one discriminant byte, then an optional
/// fixed-width little-endian integer payload, with replies that are a single
/// fixed-width little-endian integer. [`Counter`] and [`Account`] fit this
/// shape; [`KvMap`] (string payloads, op-contextual replies) does not and
/// keeps its hand-written impl.
///
/// ```rust
/// use groupview_replication::{object_class, ObjectType};
/// # use groupview_replication::{Account, AccountOp};
/// // The Account impl in this crate is exactly:
/// // object_class! {
/// //     impl ObjectType for Account {
/// //         type Op = AccountOp;
/// //         type Reply = u64;
/// //         const TAG = Account::TYPE_TAG;
/// //         ops {
/// //             0 => Balance: read,
/// //             1 => Deposit(u64): write,
/// //             2 => Withdraw(u64): write,
/// //         }
/// //     }
/// // }
/// assert_eq!(Account::op_vec(&AccountOp::Deposit(7)), AccountOp::Deposit(7).encode());
/// ```
///
/// The generated codec is bit-identical to the hand-written layout:
/// `encode_op` emits `[disc][payload.to_le_bytes()]`, `decode_op` reads the
/// payload from bytes `1..1+size_of::<P>()` (trailing bytes ignored, short
/// or unknown input decodes to `None`), and the reply codec is
/// `Reply::to_le_bytes`/`from_le_bytes`. Payload types must be `Copy`
/// integers (anything with `to_le_bytes`/`from_le_bytes`).
#[macro_export]
macro_rules! object_class {
    (
        impl ObjectType for $class:ty {
            type Op = $op:ident;
            type Reply = $reply:ty;
            const TAG = $tag:expr;
            ops {
                $( $disc:literal => $variant:ident $(($payload:ty))? : $mode:ident ),+ $(,)?
            }
        }
    ) => {
        impl $crate::ObjectType for $class {
            type Op = $op;
            type Reply = $reply;

            const TAG: $crate::__TypeTag = $tag;

            fn encode_op(op: &$op, buf: &mut Vec<u8>) {
                $( $crate::object_class!(@encode_arm op, buf, $disc, $op, $variant $(, $payload)?); )+
            }

            fn decode_op(bytes: &[u8]) -> Option<$op> {
                match *bytes.first()? {
                    $( $disc => $crate::object_class!(@decode_arm bytes, $op, $variant $(, $payload)?), )+
                    _ => None,
                }
            }

            fn op_is_read_only(op: &$op) -> bool {
                $( $crate::object_class!(@read_arm op, $op, $variant, $mode); )+
                unreachable!("operation not listed in object_class! ops")
            }

            fn encode_reply(reply: &$reply, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&reply.to_le_bytes());
            }

            fn decode_reply(_op: &$op, reply: &[u8]) -> Option<$reply> {
                Some(<$reply>::from_le_bytes(
                    reply.get(..core::mem::size_of::<$reply>())?.try_into().ok()?,
                ))
            }
        }
    };

    // -- internal: one encode_op arm (unit / payload variant) --------------
    (@encode_arm $val:ident, $buf:ident, $disc:literal, $op:ident, $variant:ident) => {
        if matches!($val, $op::$variant { .. }) {
            $buf.push($disc);
            return;
        }
    };
    (@encode_arm $val:ident, $buf:ident, $disc:literal, $op:ident, $variant:ident, $payload:ty) => {
        if let $op::$variant(payload) = $val {
            $buf.push($disc);
            $buf.extend_from_slice(&payload.to_le_bytes());
            return;
        }
    };

    // -- internal: one decode_op arm ---------------------------------------
    (@decode_arm $bytes:ident, $op:ident, $variant:ident) => {
        Some($op::$variant)
    };
    (@decode_arm $bytes:ident, $op:ident, $variant:ident, $payload:ty) => {
        Some($op::$variant(<$payload>::from_le_bytes(
            $bytes
                .get(1..1 + core::mem::size_of::<$payload>())?
                .try_into()
                .ok()?,
        )))
    };

    // -- internal: one op_is_read_only arm ---------------------------------
    (@read_arm $val:ident, $op:ident, $variant:ident, read) => {
        if matches!($val, $op::$variant { .. }) {
            return true;
        }
    };
    (@read_arm $val:ident, $op:ident, $variant:ident, write) => {
        if matches!($val, $op::$variant { .. }) {
            return false;
        }
    };
}

// Account is the macro's proof of use: the derived codec must stay
// bit-identical to the hand-written one it replaced (pinned by the
// `tests/typed_properties.rs` codec properties and the oracle's replay of
// recorded account histories).
object_class! {
    impl ObjectType for Account {
        type Op = AccountOp;
        type Reply = u64;
        const TAG = Account::TYPE_TAG;
        ops {
            0 => Balance: read,
            1 => Deposit(u64): write,
            2 => Withdraw(u64): write,
        }
    }
}

// ---------------------------------------------------------------------------
// TypedUid and Handle
// ---------------------------------------------------------------------------

/// A [`Uid`] carrying its object class at the type level, as returned by
/// `System::create_typed`. Opening it yields a [`Handle`] of the right
/// class without a turbofish.
///
/// The marker is `fn() -> O` rather than `O`: a `TypedUid` names a class,
/// it does not own an instance, so it stays `Send + Sync + Copy` for
/// every class — routed sharded calls ship it across shard threads.
pub struct TypedUid<O: ObjectType> {
    uid: Uid,
    _class: PhantomData<fn() -> O>,
}

impl<O: ObjectType> TypedUid<O> {
    /// Asserts (unchecked) that `uid` names an object of class `O` — the
    /// escape hatch for uids recovered from directories or specs. A wrong
    /// assertion surfaces as garbled typed replies, exactly like the raw
    /// byte surface would.
    pub fn assume(uid: Uid) -> Self {
        TypedUid {
            uid,
            _class: PhantomData,
        }
    }

    /// The underlying uid.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// Opens a typed handle for this object on `client`.
    pub fn open(&self, client: &Client) -> Handle<O> {
        client.open::<O>(self.uid)
    }
}

impl<O: ObjectType> Clone for TypedUid<O> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<O: ObjectType> Copy for TypedUid<O> {}

impl<O: ObjectType> fmt::Debug for TypedUid<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypedUid({})", self.uid)
    }
}

impl<O: ObjectType> fmt::Display for TypedUid<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.uid.fmt(f)
    }
}

impl<O: ObjectType> From<TypedUid<O>> for Uid {
    fn from(t: TypedUid<O>) -> Uid {
        t.uid
    }
}

/// A typed client surface for one persistent object.
///
/// Obtained from [`Client::open`] (or [`TypedUid::open`]); one handle can
/// serve any number of sequential actions. Per action, [`Handle::activate`]
/// (or [`Handle::activate_read_only`]) binds the object, then
/// [`Handle::invoke`] runs typed operations:
///
/// ```rust
/// use groupview_replication::{Counter, CounterOp, System};
///
/// let sys = System::builder(7).nodes(5).build();
/// let nodes = sys.sim().nodes();
/// let uid = sys
///     .create_typed(Counter::new(0), &nodes[1..4], &nodes[1..4])
///     .expect("create");
/// let client = sys.client(nodes[4]);
/// let counter = uid.open(&client);
///
/// let action = client.begin_action();
/// counter.activate(action, 2).expect("activate");
/// let value = counter.invoke(action, CounterOp::Add(10)).expect("invoke");
/// assert_eq!(value, 10);
/// client.commit(action).expect("commit");
/// ```
///
/// The lock intent (read vs write) is inferred from the operation, and the
/// operation is encoded straight into a pooled wire frame — typed calls
/// allocate *less* than the raw byte surface, not more.
pub struct Handle<O: ObjectType> {
    client: Client,
    uid: Uid,
    /// The activated group per in-flight action (keyed by raw action id);
    /// refcounted so the per-invoke lookup is a pointer bump, not a clone
    /// of the group's server/store/incarnation vectors.
    groups: RefCell<HashMap<u64, Rc<ObjectGroup>>>,
    _class: PhantomData<O>,
}

impl<O: ObjectType> fmt::Debug for Handle<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Handle")
            .field("uid", &self.uid)
            .field("client", &self.client)
            .finish()
    }
}

impl<O: ObjectType> Handle<O> {
    pub(crate) fn new(client: Client, uid: Uid) -> Self {
        Handle {
            client,
            uid,
            groups: RefCell::new(HashMap::new()),
            _class: PhantomData,
        }
    }

    /// The object this handle serves.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// The client this handle invokes through.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Activates the object for `action` with up to `replicas` servers
    /// (read-write). Returns the bound group for inspection; the handle
    /// also remembers it for [`Handle::invoke`].
    ///
    /// # Errors
    ///
    /// See [`Client::activate`]; on error the action should be aborted.
    pub fn activate(
        &self,
        action: ActionId,
        replicas: usize,
    ) -> Result<ObjectGroup, ActivateError> {
        let group = self.client.activate(action, self.uid, replicas)?;
        self.groups
            .borrow_mut()
            .insert(action.raw(), Rc::new(group.clone()));
        Ok(group)
    }

    /// Activates the object for `action` read-only (enables the
    /// bind-anywhere and commit-time no-copy optimisations).
    ///
    /// # Errors
    ///
    /// See [`Client::activate_read_only`].
    pub fn activate_read_only(
        &self,
        action: ActionId,
        replicas: usize,
    ) -> Result<ObjectGroup, ActivateError> {
        let group = self.client.activate_read_only(action, self.uid, replicas)?;
        self.groups
            .borrow_mut()
            .insert(action.raw(), Rc::new(group.clone()));
        Ok(group)
    }

    /// Adopts an already-activated `group` (e.g. from
    /// [`Client::activate_by_name`]) so typed invokes can run against it.
    ///
    /// # Panics
    ///
    /// Panics if the group belongs to a different object.
    pub fn adopt(&self, action: ActionId, group: ObjectGroup) {
        assert_eq!(group.uid, self.uid, "group belongs to a different object");
        self.remember(action, group);
    }

    /// Records an activation, first dropping entries whose actions have
    /// finished — committed or aborted actions can never be invoked again
    /// (ids are monotone, never reused), so this keeps the handle's map
    /// bounded by the client's live actions.
    fn remember(&self, action: ActionId, group: ObjectGroup) {
        let mut groups = self.groups.borrow_mut();
        groups.retain(|&raw, _| self.client.action_is_live(raw));
        groups.insert(action.raw(), Rc::new(group));
    }

    /// Invokes a typed operation on behalf of `action`, choosing the
    /// read/write lock intent from the operation itself, and decodes the
    /// typed reply.
    ///
    /// # Errors
    ///
    /// See [`InvokeError`]; additionally
    /// [`InvokeError::MalformedReply`] when the reply bytes do not decode
    /// as an `O::Reply` (a class contract violation). Invoking without a
    /// prior [`Handle::activate`] for this action reports
    /// [`InvokeError::NotActivated`].
    pub fn invoke(&self, action: ActionId, op: O::Op) -> Result<O::Reply, InvokeError> {
        let group = self
            .groups
            .borrow()
            .get(&action.raw())
            .cloned()
            .ok_or(InvokeError::NotActivated(self.uid))?;
        // One pooled frame for the encoded op; released back to the pool
        // when the invocation finishes.
        let op_frame = self.client.wire().encode_with(|buf| O::encode_op(&op, buf));
        let reply = if O::op_is_read_only(&op) {
            self.client.invoke_read(action, &group, &op_frame)?
        } else {
            self.client.invoke(action, &group, &op_frame)?
        };
        O::decode_reply(&op, &reply).ok_or(InvokeError::MalformedReply(self.uid))
    }

    /// Invokes a batch of typed operations as **one** replicated unit on
    /// behalf of `action`: one object lock, one wire frame, one undo
    /// snapshot, and one commit-time write-back for the whole batch.
    /// Replies come back index-aligned with `ops`.
    ///
    /// The lock intent is the **strongest** across the batch: a batch is
    /// read-only (concurrent readers allowed, commit-time state copy
    /// skipped) only when *every* op in it is read-only — one write op
    /// upgrades the whole batch to a write lock. An empty batch returns
    /// `Ok(vec![])` without touching the object.
    ///
    /// # Errors
    ///
    /// See [`Handle::invoke`]; an error leaves none of the batch's effects
    /// visible once the action aborts (the batch undoes as one unit).
    pub fn invoke_batch(
        &self,
        action: ActionId,
        ops: &[O::Op],
    ) -> Result<Vec<O::Reply>, InvokeError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let group = self
            .groups
            .borrow()
            .get(&action.raw())
            .cloned()
            .ok_or(InvokeError::NotActivated(self.uid))?;
        let write = !ops.iter().all(O::op_is_read_only);
        // One pooled frame per op; all released when the batch finishes.
        let frames: Vec<_> = ops
            .iter()
            .map(|op| self.client.wire().encode_with(|buf| O::encode_op(op, buf)))
            .collect();
        let frame_refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let replies = if write {
            self.client.invoke_batch(action, &group, &frame_refs)?
        } else {
            self.client.invoke_batch_read(action, &group, &frame_refs)?
        };
        ops.iter()
            .zip(&replies)
            .map(|(op, reply)| {
                O::decode_reply(op, reply).ok_or(InvokeError::MalformedReply(self.uid))
            })
            .collect()
    }

    /// Drops the remembered group for an action immediately (optional:
    /// finished actions' entries are pruned automatically at the next
    /// activation; this frees the group's refcount right away).
    pub fn forget(&self, action: ActionId) {
        self.groups.borrow_mut().remove(&action.raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codecs_roundtrip_through_the_trait() {
        let op = CounterOp::Add(-7);
        assert_eq!(Counter::decode_op(&Counter::op_vec(&op)), Some(op));
        assert!(Counter::op_is_read_only(&CounterOp::Get));
        assert!(!Counter::op_is_read_only(&CounterOp::Add(1)));

        let op = KvOp::Put("k".into(), "v".into());
        assert_eq!(KvMap::decode_op(&KvMap::op_vec(&op)), Some(op));
        assert!(KvMap::op_is_read_only(&KvOp::Len));
        assert!(!KvMap::op_is_read_only(&KvOp::Delete("k".into())));

        let op = AccountOp::Withdraw(9);
        assert_eq!(Account::decode_op(&Account::op_vec(&op)), Some(op));
        assert!(Account::op_is_read_only(&AccountOp::Balance));
        assert!(!Account::op_is_read_only(&AccountOp::Deposit(1)));
    }

    #[test]
    fn reply_codecs_roundtrip_through_the_trait() {
        let r = -42i64;
        assert_eq!(
            Counter::decode_reply(&CounterOp::Get, &Counter::reply_vec(&r)),
            Some(r)
        );
        let r = KvReply::Value("hello".into());
        assert_eq!(
            KvMap::decode_reply(&KvOp::Get("k".into()), &KvMap::reply_vec(&r)),
            Some(r)
        );
        let r = KvReply::Len(3);
        assert_eq!(
            KvMap::decode_reply(&KvOp::Len, &KvMap::reply_vec(&r)),
            Some(r)
        );
        let r = 77u64;
        assert_eq!(
            Account::decode_reply(&AccountOp::Balance, &Account::reply_vec(&r)),
            Some(r)
        );
    }

    #[test]
    fn kv_reply_accessors() {
        assert_eq!(KvReply::Value("v".into()).value(), Some("v"));
        assert_eq!(KvReply::Value("v".into()).count(), None);
        assert_eq!(KvReply::Len(2).count(), Some(2));
        assert_eq!(KvReply::Len(2).value(), None);
    }

    #[test]
    fn describe_op_is_informative() {
        assert!(Counter::describe_op(&Counter::op_vec(&CounterOp::Add(3))).contains("Add"));
        assert!(Account::describe_op(b"\xff").contains("None"));
    }

    #[test]
    fn typed_uid_is_copy_and_displays_like_its_uid() {
        let t = TypedUid::<Counter>::assume(Uid::from_raw(9));
        let t2 = t;
        assert_eq!(t.uid(), t2.uid());
        assert_eq!(t.to_string(), Uid::from_raw(9).to_string());
        assert!(format!("{t:?}").contains("TypedUid"));
        assert_eq!(Uid::from(t), Uid::from_raw(9));
    }
}
