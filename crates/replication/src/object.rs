//! The object model: what a persistent replicated object is made of.
//!
//! An object "is an instance of some class" whose operations "have access to
//! the instance variables and can thus modify the internal state" (§2.2).
//! Server nodes need "access to the executable binary of the code for the
//! object's methods" (§3.1) — in this reproduction, a [`TypeRegistry`] entry
//! mapping the stored [`TypeTag`] to a decode function.
//!
//! Three ready-made classes exercise the system in examples, tests, and
//! benchmarks: [`Counter`], [`KvMap`], and [`Account`]. All use explicit
//! little-endian byte encodings so that snapshots are deterministic and
//! self-contained (no serialization framework needed on the wire).

use groupview_sim::{Bytes, WireEncoder};
use groupview_store::TypeTag;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

/// Outcome of invoking an operation on an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeResult {
    /// Reply bytes returned to the client (reference-counted: cloning the
    /// result — into dedup caches, checkpoint entries, reply frames —
    /// shares the buffer).
    pub reply: Bytes,
    /// Whether the operation modified the object's state. Drives the
    /// paper's read optimisation: unmodified objects skip the commit-time
    /// state copy entirely.
    pub mutated: bool,
}

impl InvokeResult {
    /// A read-only result.
    pub fn read(reply: impl Into<Bytes>) -> Self {
        InvokeResult {
            reply: reply.into(),
            mutated: false,
        }
    }

    /// A state-changing result.
    pub fn wrote(reply: impl Into<Bytes>) -> Self {
        InvokeResult {
            reply: reply.into(),
            mutated: true,
        }
    }
}

/// A persistent replicated object's in-memory behaviour.
///
/// Implementations must be deterministic: active replication executes every
/// operation at every replica and relies on identical results.
///
/// The trait is **encoder-aware**: replies and snapshots are written through
/// the caller's pooled [`WireEncoder`] and returned as frozen [`Bytes`], so
/// the object boundary allocates nothing in steady state (see
/// `docs/OBJECTS.md` for the encoder-ownership rules). Implementations must
/// not hold on to the encoder beyond the call.
pub trait ReplicaObject {
    /// The stable tag identifying this class in object stores.
    fn type_tag(&self) -> TypeTag;

    /// Executes one encoded operation, writing the reply into a frame
    /// borrowed from `enc`. Malformed operations must be harmless reads.
    fn invoke(&mut self, op: &[u8], enc: &WireEncoder) -> InvokeResult;

    /// Encodes the full state for checkpointing / commit processing into a
    /// frame borrowed from `enc`.
    fn snapshot(&self, enc: &WireEncoder) -> Bytes;

    /// Replaces this object's state with a decoded snapshot, **in place**
    /// (undo restores and checkpoint installs reuse the live instance
    /// instead of decoding into a fresh box). Decoding is lenient, like the
    /// class decoders: malformed bytes restore a well-defined default.
    fn restore(&mut self, data: &[u8]);

    /// Clones the object behind the trait.
    fn boxed_clone(&self) -> Box<dyn ReplicaObject>;
}

/// Decodes stored bytes back into a live object.
pub type DecodeFn = fn(&[u8]) -> Box<dyn ReplicaObject>;

/// Registry mapping [`TypeTag`]s to decoders — the analogue of server nodes
/// holding the class code.
#[derive(Clone, Default)]
pub struct TypeRegistry {
    inner: Rc<RefCell<HashMap<TypeTag, DecodeFn>>>,
}

impl fmt::Debug for TypeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypeRegistry")
            .field("types", &self.inner.borrow().len())
            .finish()
    }
}

impl TypeRegistry {
    /// Creates a registry preloaded with the built-in classes
    /// ([`Counter`], [`KvMap`], [`Account`]).
    pub fn with_builtins() -> Self {
        let reg = TypeRegistry::default();
        reg.register(Counter::TYPE_TAG, Counter::decode_boxed);
        reg.register(KvMap::TYPE_TAG, KvMap::decode_boxed);
        reg.register(Account::TYPE_TAG, Account::decode_boxed);
        reg
    }

    /// Registers (or replaces) a decoder for `tag`.
    pub fn register(&self, tag: TypeTag, decode: DecodeFn) {
        self.inner.borrow_mut().insert(tag, decode);
    }

    /// Decodes `data` as an instance of `tag`, if the class is known.
    pub fn decode(&self, tag: TypeTag, data: &[u8]) -> Option<Box<dyn ReplicaObject>> {
        self.inner.borrow().get(&tag).map(|f| f(data))
    }

    /// Whether `tag` has a registered decoder.
    pub fn knows(&self, tag: TypeTag) -> bool {
        self.inner.borrow().contains_key(&tag)
    }
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A signed counter — the simplest useful persistent object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counter {
    value: i64,
}

/// Operations on a [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOp {
    /// Read the current value (read-only).
    Get,
    /// Add a delta (mutating); replies with the new value.
    Add(i64),
}

impl CounterOp {
    /// Encodes the operation.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            CounterOp::Get => vec![0],
            CounterOp::Add(d) => {
                let mut v = vec![1];
                v.extend_from_slice(&d.to_le_bytes());
                v
            }
        }
    }

    /// Decodes an operation; `None` for malformed input.
    pub fn decode(bytes: &[u8]) -> Option<CounterOp> {
        match bytes.first()? {
            0 => Some(CounterOp::Get),
            1 => Some(CounterOp::Add(i64::from_le_bytes(
                bytes.get(1..9)?.try_into().ok()?,
            ))),
            _ => None,
        }
    }

    /// Decodes a counter reply.
    pub fn decode_reply(reply: &[u8]) -> Option<i64> {
        Some(i64::from_le_bytes(reply.get(..8)?.try_into().ok()?))
    }
}

impl Counter {
    /// The class tag of counters.
    pub const TYPE_TAG: TypeTag = TypeTag::new(1);

    /// Creates a counter with an initial value.
    pub fn new(value: i64) -> Self {
        Counter { value }
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Decodes a snapshot.
    pub fn decode(data: &[u8]) -> Counter {
        let value = data
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .map(i64::from_le_bytes)
            .unwrap_or(0);
        Counter { value }
    }

    fn decode_boxed(data: &[u8]) -> Box<dyn ReplicaObject> {
        Box::new(Counter::decode(data))
    }
}

impl ReplicaObject for Counter {
    fn type_tag(&self) -> TypeTag {
        Self::TYPE_TAG
    }

    fn invoke(&mut self, op: &[u8], enc: &WireEncoder) -> InvokeResult {
        match CounterOp::decode(op) {
            Some(CounterOp::Get) => InvokeResult::read(
                enc.encode_with(|b| b.extend_from_slice(&self.value.to_le_bytes())),
            ),
            Some(CounterOp::Add(d)) => {
                self.value += d;
                InvokeResult::wrote(
                    enc.encode_with(|b| b.extend_from_slice(&self.value.to_le_bytes())),
                )
            }
            None => InvokeResult::read(Bytes::new()),
        }
    }

    fn snapshot(&self, enc: &WireEncoder) -> Bytes {
        enc.encode_with(|b| b.extend_from_slice(&self.value.to_le_bytes()))
    }

    fn restore(&mut self, data: &[u8]) {
        *self = Counter::decode(data);
    }

    fn boxed_clone(&self) -> Box<dyn ReplicaObject> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// KvMap
// ---------------------------------------------------------------------------

/// A small ordered key-value map (string keys and values).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvMap {
    entries: BTreeMap<String, String>,
}

/// Operations on a [`KvMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key (read-only); replies with the value or empty.
    Get(String),
    /// Write a key (mutating); replies with the previous value or empty.
    Put(String, String),
    /// Delete a key (mutating); replies with the removed value or empty.
    Delete(String),
    /// Number of entries (read-only); replies with a LE u64.
    Len,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
    *pos += 4;
    let s = std::str::from_utf8(bytes.get(*pos..*pos + len)?).ok()?;
    *pos += len;
    Some(s.to_string())
}

impl KvOp {
    /// Encodes the operation.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        match self {
            KvOp::Get(k) => {
                v.push(0);
                put_str(&mut v, k);
            }
            KvOp::Put(k, val) => {
                v.push(1);
                put_str(&mut v, k);
                put_str(&mut v, val);
            }
            KvOp::Delete(k) => {
                v.push(2);
                put_str(&mut v, k);
            }
            KvOp::Len => v.push(3),
        }
        v
    }

    /// Decodes an operation; `None` for malformed input.
    pub fn decode(bytes: &[u8]) -> Option<KvOp> {
        let mut pos = 1;
        match bytes.first()? {
            0 => Some(KvOp::Get(get_str(bytes, &mut pos)?)),
            1 => Some(KvOp::Put(
                get_str(bytes, &mut pos)?,
                get_str(bytes, &mut pos)?,
            )),
            2 => Some(KvOp::Delete(get_str(bytes, &mut pos)?)),
            3 => Some(KvOp::Len),
            _ => None,
        }
    }
}

impl KvMap {
    /// The class tag of key-value maps.
    pub const TYPE_TAG: TypeTag = TypeTag::new(2);

    /// Creates an empty map.
    pub fn new() -> Self {
        KvMap::default()
    }

    /// Reads a key directly (for assertions in tests).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Decodes a snapshot.
    pub fn decode(data: &[u8]) -> KvMap {
        let mut entries = BTreeMap::new();
        let mut pos = 0;
        let Some(count) = data
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
        else {
            return KvMap::default();
        };
        pos += 8;
        for _ in 0..count {
            let Some(k) = get_str(data, &mut pos) else {
                break;
            };
            let Some(v) = get_str(data, &mut pos) else {
                break;
            };
            entries.insert(k, v);
        }
        KvMap { entries }
    }

    fn decode_boxed(data: &[u8]) -> Box<dyn ReplicaObject> {
        Box::new(KvMap::decode(data))
    }
}

impl ReplicaObject for KvMap {
    fn type_tag(&self) -> TypeTag {
        Self::TYPE_TAG
    }

    fn invoke(&mut self, op: &[u8], enc: &WireEncoder) -> InvokeResult {
        match KvOp::decode(op) {
            Some(KvOp::Get(k)) => InvokeResult::read(enc.encode_with(|b| {
                b.extend_from_slice(self.entries.get(&k).map_or("", String::as_str).as_bytes())
            })),
            Some(KvOp::Put(k, v)) => {
                let prev = self.entries.insert(k, v).unwrap_or_default();
                InvokeResult::wrote(enc.encode_with(|b| b.extend_from_slice(prev.as_bytes())))
            }
            Some(KvOp::Delete(k)) => {
                let prev = self.entries.remove(&k).unwrap_or_default();
                InvokeResult::wrote(enc.encode_with(|b| b.extend_from_slice(prev.as_bytes())))
            }
            Some(KvOp::Len) => {
                InvokeResult::read(enc.encode_with(|b| {
                    b.extend_from_slice(&(self.entries.len() as u64).to_le_bytes())
                }))
            }
            None => InvokeResult::read(Bytes::new()),
        }
    }

    fn snapshot(&self, enc: &WireEncoder) -> Bytes {
        enc.encode_with(|v| {
            v.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
            for (k, val) in &self.entries {
                put_str(v, k);
                put_str(v, val);
            }
        })
    }

    fn restore(&mut self, data: &[u8]) {
        *self = KvMap::decode(data);
    }

    fn boxed_clone(&self) -> Box<dyn ReplicaObject> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Account
// ---------------------------------------------------------------------------

/// A bank account with an overdraft-protected balance — the classic atomic
/// action workload (used by `examples/bank_transfers`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Account {
    balance: u64,
}

/// Operations on an [`Account`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountOp {
    /// Read the balance (read-only).
    Balance,
    /// Add funds (mutating); replies with the new balance.
    Deposit(u64),
    /// Remove funds (mutating). Replies with the new balance, or with
    /// `u64::MAX` if the balance was insufficient (no state change).
    Withdraw(u64),
}

impl AccountOp {
    /// Reply marker for a refused withdrawal.
    pub const REFUSED: u64 = u64::MAX;

    /// Encodes the operation.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AccountOp::Balance => vec![0],
            AccountOp::Deposit(a) => {
                let mut v = vec![1];
                v.extend_from_slice(&a.to_le_bytes());
                v
            }
            AccountOp::Withdraw(a) => {
                let mut v = vec![2];
                v.extend_from_slice(&a.to_le_bytes());
                v
            }
        }
    }

    /// Decodes an operation; `None` for malformed input.
    pub fn decode(bytes: &[u8]) -> Option<AccountOp> {
        let amount =
            |b: &[u8]| -> Option<u64> { Some(u64::from_le_bytes(b.get(1..9)?.try_into().ok()?)) };
        match bytes.first()? {
            0 => Some(AccountOp::Balance),
            1 => Some(AccountOp::Deposit(amount(bytes)?)),
            2 => Some(AccountOp::Withdraw(amount(bytes)?)),
            _ => None,
        }
    }

    /// Decodes an account reply.
    pub fn decode_reply(reply: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(reply.get(..8)?.try_into().ok()?))
    }
}

impl Account {
    /// The class tag of accounts.
    pub const TYPE_TAG: TypeTag = TypeTag::new(3);

    /// Opens an account with an initial balance.
    pub fn new(balance: u64) -> Self {
        Account { balance }
    }

    /// The current balance.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Decodes a snapshot.
    pub fn decode(data: &[u8]) -> Account {
        let balance = data
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        Account { balance }
    }

    fn decode_boxed(data: &[u8]) -> Box<dyn ReplicaObject> {
        Box::new(Account::decode(data))
    }
}

impl ReplicaObject for Account {
    fn type_tag(&self) -> TypeTag {
        Self::TYPE_TAG
    }

    fn invoke(&mut self, op: &[u8], enc: &WireEncoder) -> InvokeResult {
        let reply = |v: u64| enc.encode_with(|b| b.extend_from_slice(&v.to_le_bytes()));
        match AccountOp::decode(op) {
            Some(AccountOp::Balance) => InvokeResult::read(reply(self.balance)),
            Some(AccountOp::Deposit(a)) => {
                self.balance += a;
                InvokeResult::wrote(reply(self.balance))
            }
            Some(AccountOp::Withdraw(a)) => {
                if a > self.balance {
                    InvokeResult::read(reply(AccountOp::REFUSED))
                } else {
                    self.balance -= a;
                    InvokeResult::wrote(reply(self.balance))
                }
            }
            None => InvokeResult::read(Bytes::new()),
        }
    }

    fn snapshot(&self, enc: &WireEncoder) -> Bytes {
        enc.encode_with(|b| b.extend_from_slice(&self.balance.to_le_bytes()))
    }

    fn restore(&mut self, data: &[u8]) {
        *self = Account::decode(data);
    }

    fn boxed_clone(&self) -> Box<dyn ReplicaObject> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc() -> WireEncoder {
        WireEncoder::new()
    }

    #[test]
    fn counter_ops_roundtrip_and_apply() {
        let enc = enc();
        let mut c = Counter::new(10);
        let r = c.invoke(&CounterOp::Add(5).encode(), &enc);
        assert!(r.mutated);
        assert_eq!(CounterOp::decode_reply(&r.reply), Some(15));
        let r = c.invoke(&CounterOp::Get.encode(), &enc);
        assert!(!r.mutated);
        assert_eq!(CounterOp::decode_reply(&r.reply), Some(15));
        assert_eq!(c.value(), 15);
        assert_eq!(
            CounterOp::decode(&CounterOp::Add(-3).encode()),
            Some(CounterOp::Add(-3))
        );
        assert_eq!(CounterOp::decode(&[9]), None);
    }

    #[test]
    fn counter_snapshot_roundtrip() {
        let c = Counter::new(-42);
        let restored = Counter::decode(&c.snapshot(&enc()));
        assert_eq!(restored, c);
        assert_eq!(c.type_tag(), Counter::TYPE_TAG);
    }

    #[test]
    fn kv_ops_roundtrip_and_apply() {
        let enc = enc();
        let mut m = KvMap::new();
        assert!(m.is_empty());
        let r = m.invoke(&KvOp::Put("k1".into(), "v1".into()).encode(), &enc);
        assert!(r.mutated);
        assert!(r.reply.is_empty(), "no previous value");
        let r = m.invoke(&KvOp::Get("k1".into()).encode(), &enc);
        assert!(!r.mutated);
        assert_eq!(r.reply, b"v1");
        let r = m.invoke(&KvOp::Put("k1".into(), "v2".into()).encode(), &enc);
        assert_eq!(r.reply, b"v1", "previous value returned");
        let r = m.invoke(&KvOp::Len.encode(), &enc);
        assert_eq!(
            u64::from_le_bytes(r.reply.as_slice().try_into().unwrap()),
            1
        );
        let r = m.invoke(&KvOp::Delete("k1".into()).encode(), &enc);
        assert!(r.mutated);
        assert_eq!(r.reply, b"v2");
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn kv_op_encoding_roundtrip() {
        for op in [
            KvOp::Get("a".into()),
            KvOp::Put("key".into(), "value".into()),
            KvOp::Delete("x".into()),
            KvOp::Len,
        ] {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(KvOp::decode(&[77]), None);
    }

    #[test]
    fn kv_snapshot_roundtrip() {
        let enc = enc();
        let mut m = KvMap::new();
        m.invoke(&KvOp::Put("a".into(), "1".into()).encode(), &enc);
        m.invoke(&KvOp::Put("b".into(), "2".into()).encode(), &enc);
        let restored = KvMap::decode(&m.snapshot(&enc));
        assert_eq!(restored, m);
        assert_eq!(restored.get("b"), Some("2"));
    }

    #[test]
    fn account_ops_apply_with_overdraft_protection() {
        let enc = enc();
        let mut a = Account::new(100);
        let r = a.invoke(&AccountOp::Withdraw(30).encode(), &enc);
        assert!(r.mutated);
        assert_eq!(AccountOp::decode_reply(&r.reply), Some(70));
        let r = a.invoke(&AccountOp::Withdraw(1000).encode(), &enc);
        assert!(!r.mutated, "refused withdrawal must not mutate");
        assert_eq!(AccountOp::decode_reply(&r.reply), Some(AccountOp::REFUSED));
        let r = a.invoke(&AccountOp::Deposit(10).encode(), &enc);
        assert_eq!(AccountOp::decode_reply(&r.reply), Some(80));
        let r = a.invoke(&AccountOp::Balance.encode(), &enc);
        assert!(!r.mutated);
        assert_eq!(a.balance(), 80);
        assert_eq!(
            AccountOp::decode(&AccountOp::Withdraw(5).encode()),
            Some(AccountOp::Withdraw(5))
        );
    }

    #[test]
    fn account_snapshot_roundtrip() {
        let a = Account::new(12345);
        assert_eq!(Account::decode(&a.snapshot(&enc())), a);
    }

    #[test]
    fn registry_decodes_builtins() {
        let enc = enc();
        let reg = TypeRegistry::with_builtins();
        assert!(reg.knows(Counter::TYPE_TAG));
        assert!(reg.knows(KvMap::TYPE_TAG));
        assert!(reg.knows(Account::TYPE_TAG));
        assert!(!reg.knows(TypeTag::new(99)));
        let c = Counter::new(7);
        let mut decoded = reg.decode(Counter::TYPE_TAG, &c.snapshot(&enc)).unwrap();
        let r = decoded.invoke(&CounterOp::Get.encode(), &enc);
        assert_eq!(CounterOp::decode_reply(&r.reply), Some(7));
        assert!(reg.decode(TypeTag::new(99), b"").is_none());
    }

    #[test]
    fn boxed_clone_is_independent() {
        let enc = enc();
        let mut a = Counter::new(1);
        let b = a.boxed_clone();
        a.invoke(&CounterOp::Add(1).encode(), &enc);
        assert_eq!(a.value(), 2);
        assert_eq!(Counter::decode(&b.snapshot(&enc)).value(), 1);
    }

    #[test]
    fn restore_replaces_state_in_place() {
        let enc = enc();
        let mut c = Counter::new(1);
        c.restore(&Counter::new(9).snapshot(&enc));
        assert_eq!(c.value(), 9);
        c.restore(b"garbage");
        assert_eq!(c.value(), 0, "lenient decode restores the default");
        let mut m = KvMap::new();
        m.invoke(&KvOp::Put("k".into(), "v".into()).encode(), &enc);
        let snap = m.snapshot(&enc);
        m.invoke(&KvOp::Delete("k".into()).encode(), &enc);
        m.restore(&snap);
        assert_eq!(m.get("k"), Some("v"));
        let mut a = Account::new(3);
        a.restore(&Account::new(77).snapshot(&enc));
        assert_eq!(a.balance(), 77);
    }

    #[test]
    fn replies_come_from_the_encoder_pool() {
        let enc = enc();
        let mut c = Counter::new(0);
        drop(c.invoke(&CounterOp::Add(1).encode(), &enc));
        assert!(enc.pooled() >= 1, "dropped reply returned to the pool");
        let before = groupview_sim::wire::stats();
        for _ in 0..50 {
            drop(c.invoke(&CounterOp::Add(1).encode(), &enc));
        }
        assert_eq!(
            groupview_sim::wire::stats().since(before).buffer_allocs,
            0,
            "steady-state replies must not allocate"
        );
    }

    #[test]
    fn malformed_ops_are_harmless_reads() {
        let enc = enc();
        let mut c = Counter::new(5);
        assert!(!c.invoke(&[], &enc).mutated);
        let mut m = KvMap::new();
        assert!(!m.invoke(&[255, 0, 0], &enc).mutated);
        let mut a = Account::new(5);
        assert!(!a.invoke(&[9], &enc).mutated);
    }
}
