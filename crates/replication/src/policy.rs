//! The paper's three object replication policies (§2.3(2)).

use std::fmt;

/// How activated replicas of an object process operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicationPolicy {
    /// §2.3(2)(i): "more than one copy of a passive object is activated on
    /// distinct nodes and all activated copies perform processing." Requires
    /// reliable ordered group communication; masks up to `k−1` replica
    /// failures.
    Active,
    /// §2.3(2)(ii): "only one replica, the coordinator, carries out
    /// processing. The coordinator regularly checkpoints its state to the
    /// remaining replicas, the cohorts." On coordinator failure a cohort is
    /// elected to continue.
    CoordinatorCohort,
    /// §2.3(2)(iii): "only a single copy is activated; the activated copy
    /// regularly checkpoints its state to the object stores ... as a part of
    /// the commit processing, so if the activated copy fails, then the
    /// application must abort the affected atomic action."
    SingleCopyPassive,
}

impl ReplicationPolicy {
    /// All policies, for parameter sweeps.
    pub const ALL: [ReplicationPolicy; 3] = [
        ReplicationPolicy::Active,
        ReplicationPolicy::CoordinatorCohort,
        ReplicationPolicy::SingleCopyPassive,
    ];

    /// Whether the policy activates more than one server replica.
    pub fn replicates_servers(self) -> bool {
        !matches!(self, ReplicationPolicy::SingleCopyPassive)
    }

    /// Whether a single server crash mid-action forces the client to abort.
    pub fn crash_aborts_action(self) -> bool {
        matches!(self, ReplicationPolicy::SingleCopyPassive)
    }
}

impl fmt::Display for ReplicationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationPolicy::Active => write!(f, "active"),
            ReplicationPolicy::CoordinatorCohort => write!(f, "coordinator-cohort"),
            ReplicationPolicy::SingleCopyPassive => write!(f, "single-copy-passive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_properties() {
        assert!(ReplicationPolicy::Active.replicates_servers());
        assert!(ReplicationPolicy::CoordinatorCohort.replicates_servers());
        assert!(!ReplicationPolicy::SingleCopyPassive.replicates_servers());
        assert!(ReplicationPolicy::SingleCopyPassive.crash_aborts_action());
        assert!(!ReplicationPolicy::Active.crash_aborts_action());
        assert_eq!(ReplicationPolicy::ALL.len(), 3);
        assert_eq!(ReplicationPolicy::Active.to_string(), "active");
    }
}
