//! The `System` façade: the public API a downstream user programs against.

use crate::error::{ActivateError, CommitError, InvokeError};
use crate::invoke::ObjectGroup;
use crate::object::{ReplicaObject, TypeRegistry};
use crate::policy::ReplicationPolicy;
use crate::replica::ReplicaRegistry;
use crate::tx::Tx;
use crate::typed::{Handle, ObjectType, TypedUid};
use groupview_actions::{ActionId, StoreWriteParticipant, TxSystem};
use groupview_core::{
    Binder, BindingScheme, CleanupDaemon, DbError, Directory, ExcludePolicy, NamingService,
    RecoveryManager, RemoteDirectory, RemoteServerCache, ServerCache,
};
use groupview_group::{GroupComms, GroupId};
use groupview_obs::{MetricsSnapshot, NodeLoad, Phase, Registry as ObsRegistry};
use groupview_sim::wire::{self, WireStats};
use groupview_sim::{Bytes, ClientId, NetConfig, NodeId, Sim, SimConfig, WireEncoder};
use groupview_store::{ObjectState, Stores, Uid, UidGen, Version};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

pub(crate) struct SystemInner {
    pub(crate) sim: Sim,
    pub(crate) stores: Stores,
    pub(crate) tx: TxSystem,
    pub(crate) comms: GroupComms,
    pub(crate) naming: NamingService,
    pub(crate) binder: Binder,
    pub(crate) registry: ReplicaRegistry,
    pub(crate) types: TypeRegistry,
    pub(crate) recovery: RecoveryManager,
    pub(crate) cleanup: CleanupDaemon,
    pub(crate) directory: RemoteDirectory,
    pub(crate) server_cache: Option<RemoteServerCache>,
    pub(crate) policy: ReplicationPolicy,
    pub(crate) exclude_policy: ExcludePolicy,
    pub(crate) exclude_enabled: bool,
    pub(crate) active_groups: RefCell<HashMap<Uid, GroupId>>,
    /// Shared scratch-buffer pool for every wire encode in the system
    /// (operation frames, member replies, checkpoint snapshots).
    pub(crate) wire: WireEncoder,
    /// Observability registry shared with the action service; disabled by
    /// default (see [`SystemBuilder::observe`]).
    pub(crate) obs: ObsRegistry,
    /// This thread's wire counters as of the last absorption into `obs`
    /// (the counters are thread-local and monotonic; the mark turns them
    /// into per-system deltas).
    wire_mark: Cell<WireStats>,
    /// Sim trace-ring drop count as of the last absorption into `obs`.
    dropped_mark: Cell<u64>,
    uid_gen: RefCell<UidGen>,
    next_op: Cell<u64>,
    next_client: Cell<u32>,
    dirty: RefCell<HashSet<(u64, u64)>>,
}

/// A complete persistent-replicated-object system over a simulated world.
///
/// Construct with [`System::builder`]; create objects with
/// [`System::create_object`]; obtain per-application [`Client`] handles with
/// [`System::client`]. See the [crate docs](crate) for a full example.
#[derive(Clone)]
pub struct System {
    pub(crate) inner: Rc<SystemInner>,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("policy", &self.inner.policy)
            .field("scheme", &self.inner.binder.scheme())
            .field("nodes", &self.inner.sim.num_nodes())
            .finish()
    }
}

/// Configures and builds a [`System`].
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    seed: u64,
    nodes: usize,
    scheme: BindingScheme,
    policy: ReplicationPolicy,
    exclude_policy: ExcludePolicy,
    net: NetConfig,
    naming_node: u32,
    trace: bool,
    exclude_enabled: bool,
    observe: bool,
}

impl SystemBuilder {
    /// Number of nodes in the world (default 4). Node 0 hosts the naming
    /// service unless overridden.
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// The database access scheme (default [`BindingScheme::Standard`], as
    /// in Arjuna: "by default, standard atomic actions are used").
    pub fn scheme(mut self, scheme: BindingScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// The replication policy (default [`ReplicationPolicy::Active`]).
    pub fn policy(mut self, policy: ReplicationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// How commit-time `Exclude` locks the state entry (default
    /// [`ExcludePolicy::ExcludeWriteLock`], the paper's recommendation).
    pub fn exclude_policy(mut self, p: ExcludePolicy) -> Self {
        self.exclude_policy = p;
        self
    }

    /// Network model overrides.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Which node hosts the naming service (default node 0).
    pub fn naming_node(mut self, node: NodeId) -> Self {
        self.naming_node = node.raw();
        self
    }

    /// **Ablation only**: disables the commit-time `Exclude` protocol, so
    /// `St` keeps listing stores that missed state copies. This deliberately
    /// breaks the paper's §2.3(3) guarantee — experiment E10 uses it to
    /// measure how many stale bindings the protocol prevents.
    pub fn ablate_disable_exclude(mut self) -> Self {
        self.exclude_enabled = false;
        self
    }

    /// Enables simulation event tracing.
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables the observability registry: causal action spans and protocol
    /// counters are recorded (see [`System::obs`] and
    /// [`System::metrics_snapshot`]). Off by default — recording calls are
    /// inlined no-ops that never allocate, and an observed run is
    /// bit-for-bit identical to an unobserved one (recording only reads the
    /// virtual clock).
    pub fn observe(mut self) -> Self {
        self.observe = true;
        self
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 nodes are requested or the naming node is out
    /// of range.
    pub fn build(self) -> System {
        assert!(self.nodes >= 2, "a groupview system needs at least 2 nodes");
        assert!(
            (self.naming_node as usize) < self.nodes,
            "naming node out of range"
        );
        let mut cfg = SimConfig::new(self.seed)
            .with_nodes(self.nodes)
            .with_net(self.net);
        if self.trace {
            cfg = cfg.with_trace();
        }
        let sim = Sim::new(cfg);
        let stores = Stores::new(&sim);
        let tx = TxSystem::new(&sim, &stores);
        let obs = ObsRegistry::new();
        if self.observe {
            obs.set_enabled(true);
        }
        tx.set_observer(&obs);
        let comms = GroupComms::new(&sim);
        let naming_node = NodeId::new(self.naming_node);
        let naming = NamingService::new(&sim, &tx, naming_node);
        let binder = Binder::new(&sim, &naming, self.scheme);
        let recovery = RecoveryManager::new(&sim, &naming, &stores);
        let cleanup = CleanupDaemon::new(&sim, &naming);
        let directory = RemoteDirectory::new(&sim, naming_node, Directory::new(&tx));
        let server_cache = if self.scheme.uses_server_cache() {
            Some(RemoteServerCache::new(
                &sim,
                naming_node,
                ServerCache::new(),
            ))
        } else {
            None
        };
        let binder = match &server_cache {
            Some(cache) => binder.with_cache(cache.clone()),
            None => binder,
        };
        let recovery = match &server_cache {
            Some(cache) => recovery.with_cache(cache.clone()),
            None => recovery,
        };
        let sys = System {
            inner: Rc::new(SystemInner {
                registry: ReplicaRegistry::new(),
                types: TypeRegistry::with_builtins(),
                policy: self.policy,
                exclude_policy: self.exclude_policy,
                exclude_enabled: self.exclude_enabled,
                active_groups: RefCell::new(HashMap::new()),
                wire: WireEncoder::new(),
                obs,
                wire_mark: Cell::new(wire::stats()),
                dropped_mark: Cell::new(0),
                uid_gen: RefCell::new(UidGen::new(naming_node)),
                next_op: Cell::new(1),
                next_client: Cell::new(0),
                dirty: RefCell::new(HashSet::new()),
                sim,
                stores,
                tx,
                comms,
                naming,
                binder,
                recovery,
                cleanup,
                directory,
                server_cache,
            }),
        };
        // The abort-time undo path: arena entries restore replicas through
        // the registry. Installed after the inner Rc exists because the
        // applier shares the registry and class table it holds.
        sys.inner
            .tx
            .set_undo_applier(Rc::new(crate::undo::ReplicaUndoApplier::new(
                sys.inner.sim.clone(),
                sys.inner.registry.clone(),
                sys.inner.types.clone(),
            )));
        sys
    }
}

impl System {
    /// Starts building a system with the given deterministic seed.
    pub fn builder(seed: u64) -> SystemBuilder {
        SystemBuilder {
            seed,
            nodes: 4,
            scheme: BindingScheme::Standard,
            policy: ReplicationPolicy::Active,
            exclude_policy: ExcludePolicy::ExcludeWriteLock,
            net: NetConfig::default(),
            naming_node: 0,
            trace: false,
            exclude_enabled: true,
            observe: false,
        }
    }

    // ----- accessors -----------------------------------------------------

    /// The simulation world.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The object store registry.
    pub fn stores(&self) -> &Stores {
        &self.inner.stores
    }

    /// The atomic action service.
    pub fn tx(&self) -> &TxSystem {
        &self.inner.tx
    }

    /// The observability registry (disabled unless the system was built
    /// with [`SystemBuilder::observe`]).
    pub fn obs(&self) -> &ObsRegistry {
        &self.inner.obs
    }

    /// Builds a [`MetricsSnapshot`] of everything observed so far, after
    /// absorbing this thread's wire-pool counters and the sim's trace-ring
    /// drop count into the registry.
    ///
    /// Must be called on the thread that ran the system (always true for
    /// this `!Send` type): wire counters are thread-local, which is exactly
    /// why sharded runs call this on each shard thread and merge the
    /// snapshots — a single-thread read would under-report every foreign
    /// shard's wire traffic.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let inner = &self.inner;
        let cur = wire::stats();
        let delta = cur.since(inner.wire_mark.get());
        inner.wire_mark.set(cur);
        inner
            .obs
            .record_wire(delta.buffer_allocs, delta.pool_reuses, delta.bytes_copied);
        let dropped = inner.sim.trace_dropped();
        inner
            .obs
            .record_trace_dropped(dropped - inner.dropped_mark.get());
        inner.dropped_mark.set(dropped);
        let mut snap = inner.obs.snapshot();
        // Fold the sim's per-node delivered-byte counters into the node
        // load table: invokes and locks are recorded by the protocol
        // layers, bytes by the network model. Only when observing — a
        // disabled registry must yield the all-empty snapshot.
        if inner.obs.is_enabled() {
            for node in inner.sim.nodes() {
                let (bytes_in, bytes_out) = inner.sim.node_traffic(node);
                snap.absorb_node_load(&NodeLoad {
                    node: node.raw(),
                    bytes_in,
                    bytes_out,
                    ..NodeLoad::default()
                });
            }
        }
        snap
    }

    /// The naming-and-binding service.
    pub fn naming(&self) -> &NamingService {
        &self.inner.naming
    }

    /// The client-side binder.
    pub fn binder(&self) -> &Binder {
        &self.inner.binder
    }

    /// The group communication service.
    pub fn comms(&self) -> &GroupComms {
        &self.inner.comms
    }

    /// The replica registry.
    pub fn registry(&self) -> &ReplicaRegistry {
        &self.inner.registry
    }

    /// The class registry (pre-loaded with the built-in classes).
    pub fn types(&self) -> &TypeRegistry {
        &self.inner.types
    }

    /// The recovery manager.
    pub fn recovery(&self) -> &RecoveryManager {
        &self.inner.recovery
    }

    /// The use-list cleanup daemon.
    pub fn cleanup(&self) -> &CleanupDaemon {
        &self.inner.cleanup
    }

    /// The name directory (user-given names → UIDs, §2.2), hosted at the
    /// naming node.
    pub fn directory(&self) -> &RemoteDirectory {
        &self.inner.directory
    }

    /// The non-atomic server cache, present only under
    /// [`BindingScheme::CachedNameServer`] (the paper's §5 extension).
    pub fn server_cache(&self) -> Option<&RemoteServerCache> {
        self.inner.server_cache.as_ref()
    }

    /// Creates a persistent object *and binds a name to it* in one atomic
    /// action: if any part fails, neither the object nor the name exists.
    ///
    /// # Errors
    ///
    /// See [`System::create_object`]; additionally
    /// [`DbError::AlreadyExists`] if the name is taken.
    ///
    /// # Panics
    ///
    /// Panics if `sv` or `st` is empty.
    pub fn create_named_object(
        &self,
        name: &str,
        object: Box<dyn ReplicaObject>,
        sv: &[NodeId],
        st: &[NodeId],
    ) -> Result<Uid, DbError> {
        assert!(!sv.is_empty(), "an object needs at least one server node");
        assert!(!st.is_empty(), "an object needs at least one store node");
        let inner = &self.inner;
        let uid = inner.uid_gen.borrow_mut().next_uid();
        let initial = ObjectState::initial(object.type_tag(), object.snapshot(&inner.wire));
        let action = inner.tx.begin_top(inner.naming.node());
        let result = (|| {
            inner.directory.local().bind_name(action, name, uid)?;
            inner
                .naming
                .register_object(action, uid, sv.to_vec(), st.to_vec())?;
            for &node in st {
                inner.stores.add_store(node);
                let participant = StoreWriteParticipant::new(
                    &inner.sim,
                    &inner.stores,
                    inner.naming.node(),
                    node,
                    TxSystem::token(action),
                    vec![(uid, initial.clone())],
                );
                inner.tx.add_participant(action, Box::new(participant))?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                inner.tx.commit(action)?;
                if let Some(cache) = &inner.server_cache {
                    cache.local().seed(uid, sv.to_vec());
                }
                Ok(uid)
            }
            Err(e) => {
                inner.tx.abort(action);
                Err(e)
            }
        }
    }

    /// The replication policy in force.
    pub fn policy(&self) -> ReplicationPolicy {
        self.inner.policy
    }

    /// The binding scheme in force.
    pub fn scheme(&self) -> BindingScheme {
        self.inner.binder.scheme()
    }

    // ----- object lifecycle ------------------------------------------------

    /// Creates a persistent object: registers it in both databases with
    /// server set `sv` and store set `st`, and durably writes its initial
    /// state to every store in `st` — all in one atomic action. Nodes in
    /// `st` are equipped with object stores if they lack one.
    ///
    /// # Errors
    ///
    /// Database or commit failures abort the creation atomically.
    ///
    /// # Panics
    ///
    /// Panics if `sv` or `st` is empty.
    pub fn create_object(
        &self,
        object: Box<dyn ReplicaObject>,
        sv: &[NodeId],
        st: &[NodeId],
    ) -> Result<Uid, DbError> {
        assert!(!sv.is_empty(), "an object needs at least one server node");
        assert!(!st.is_empty(), "an object needs at least one store node");
        let inner = &self.inner;
        let uid = inner.uid_gen.borrow_mut().next_uid();
        let initial = ObjectState::initial(object.type_tag(), object.snapshot(&inner.wire));
        let action = inner.tx.begin_top(inner.naming.node());
        if let Err(e) = inner
            .naming
            .register_object(action, uid, sv.to_vec(), st.to_vec())
        {
            inner.tx.abort(action);
            return Err(e);
        }
        for &node in st {
            inner.stores.add_store(node);
            let participant = StoreWriteParticipant::new(
                &inner.sim,
                &inner.stores,
                inner.naming.node(),
                node,
                TxSystem::token(action),
                vec![(uid, initial.clone())],
            );
            if let Err(e) = inner.tx.add_participant(action, Box::new(participant)) {
                inner.tx.abort(action);
                return Err(DbError::Tx(e));
            }
        }
        inner.tx.commit(action)?;
        if let Some(cache) = &inner.server_cache {
            cache.local().seed(uid, sv.to_vec());
        }
        Ok(uid)
    }

    /// Creates a persistent object of a typed class, returning a
    /// [`TypedUid`] that opens class-correct [`Handle`]s without a
    /// turbofish. The typed counterpart of [`System::create_object`].
    ///
    /// # Errors
    ///
    /// See [`System::create_object`].
    ///
    /// # Panics
    ///
    /// Panics if `sv` or `st` is empty.
    pub fn create_typed<O: ObjectType>(
        &self,
        initial: O,
        sv: &[NodeId],
        st: &[NodeId],
    ) -> Result<TypedUid<O>, DbError> {
        self.create_object(Box::new(initial), sv, st)
            .map(TypedUid::assume)
    }

    /// Creates a typed persistent object *and binds a name to it* in one
    /// atomic action. The typed counterpart of
    /// [`System::create_named_object`].
    ///
    /// # Errors
    ///
    /// See [`System::create_named_object`].
    ///
    /// # Panics
    ///
    /// Panics if `sv` or `st` is empty.
    pub fn create_typed_named<O: ObjectType>(
        &self,
        name: &str,
        initial: O,
        sv: &[NodeId],
        st: &[NodeId],
    ) -> Result<TypedUid<O>, DbError> {
        self.create_named_object(name, Box::new(initial), sv, st)
            .map(TypedUid::assume)
    }

    /// Advances the uid generator past uids this world does not own,
    /// stopping with the next uid to be allocated satisfying `owns`.
    ///
    /// Every shard of a [`ShardedSystem`](crate::shard::ShardedSystem)
    /// walks the *same* deterministic uid sequence; by skipping uids the
    /// router assigns to other shards, the shards carve the sequence into
    /// disjoint, router-aligned slices without ever talking to each other.
    /// With a single shard nothing is foreign, so nothing is skipped and
    /// uid allocation is bit-for-bit identical to an unsharded world.
    ///
    /// # Panics
    ///
    /// Panics if no owned uid appears within 2^16 steps (a router that
    /// starves a shard is a bug, not a workload).
    pub fn skip_foreign_uids(&self, owns: impl Fn(Uid) -> bool) {
        let mut gen = self.inner.uid_gen.borrow_mut();
        for _ in 0..(1 << 16) {
            if owns(gen.clone().next_uid()) {
                return;
            }
            gen.next_uid();
        }
        panic!("no uid owned by this shard within 2^16 steps: router starves the shard");
    }

    /// Hands out a client handle running at `node`, with a fresh client id.
    pub fn client(&self, node: NodeId) -> Client {
        let id = ClientId::new(self.inner.next_client.get());
        self.inner.next_client.set(id.raw() + 1);
        self.client_with_id(id, node)
    }

    /// A client handle with an explicit id (workload drivers).
    pub fn client_with_id(&self, id: ClientId, node: NodeId) -> Client {
        Client {
            sys: self.clone(),
            id,
            node,
            groups: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    /// Passivates `uid` if it is quiescent: no use-list entries, and no
    /// in-flight action holds a lock on the object or its database entries
    /// (§2.3(3): "an active copy of an object which is no longer in use
    /// will be said to be in a quiescent state; a quiescent object can
    /// passivate itself by destroying the server"). Unloads and drops all
    /// replicas and destroys the multicast group. Returns whether
    /// passivation happened.
    pub fn try_passivate(&self, uid: Uid) -> bool {
        let inner = &self.inner;
        let quiescent = inner
            .naming
            .server_db
            .entry(uid)
            .is_none_or(|e| e.is_quiescent());
        if !quiescent {
            return false;
        }
        let in_use = !inner
            .tx
            .lock_holders(crate::invoke::object_key(uid))
            .is_empty()
            || !inner
                .tx
                .lock_holders(groupview_core::keys::state_entry_key(uid))
                .is_empty()
            || !inner
                .tx
                .lock_holders(groupview_core::keys::server_entry_key(uid))
                .is_empty();
        if in_use {
            return false;
        }
        inner.registry.remove_object(uid);
        if let Some(gid) = inner.active_groups.borrow_mut().remove(&uid) {
            inner.comms.destroy_group(gid);
        }
        true
    }

    // ----- internal bookkeeping -------------------------------------------

    pub(crate) fn next_op_id(&self) -> u64 {
        let id = self.inner.next_op.get();
        self.inner.next_op.set(id + 1);
        id
    }

    pub(crate) fn mark_dirty(&self, action: ActionId, uid: Uid) {
        self.inner
            .dirty
            .borrow_mut()
            .insert((action.raw(), uid.raw()));
    }

    pub(crate) fn is_dirty(&self, action: ActionId, uid: Uid) -> bool {
        self.inner
            .dirty
            .borrow()
            .contains(&(action.raw(), uid.raw()))
    }

    pub(crate) fn clear_dirty(&self, action: ActionId) {
        self.inner
            .dirty
            .borrow_mut()
            .retain(|&(a, _)| a != action.raw());
    }

    pub(crate) fn bump_replica_versions(&self, group: &ObjectGroup, version: Version) {
        for &(node, pinned) in &group.incarnations {
            if !self.inner.sim.is_up(node) {
                continue;
            }
            if let Some(handle) = self.inner.registry.get(group.uid, node) {
                // A reborn replica belongs to a later activation's lineage;
                // this action's commit says nothing about its base version.
                if handle.borrow().incarnation() != pinned {
                    continue;
                }
                handle.borrow_mut().mark_committed(&self.inner.sim, version);
            }
        }
    }
}

/// A client application: runs atomic actions against persistent objects.
///
/// Obtained from [`System::client`]. All methods are deterministic given
/// the world's seed.
#[derive(Clone)]
pub struct Client {
    sys: System,
    id: ClientId,
    node: NodeId,
    /// Object groups activated per action, awaiting binding completion.
    groups: Rc<RefCell<HashMap<u64, Vec<ObjectGroup>>>>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("node", &self.node)
            .finish()
    }
}

impl Client {
    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Begins a typed multi-object transaction (see [`Tx`]): each
    /// [`Tx::invoke`](crate::Tx::invoke) auto-activates and applies under
    /// one top-level action, [`Tx::commit`](crate::Tx::commit) drives the
    /// store two-phase commit once over the union of touched objects.
    pub fn begin(&self) -> Tx {
        let action = self.begin_action();
        let now = self.sys.inner.sim.now().as_micros();
        self.sys
            .inner
            .obs
            .span(action.raw(), Phase::TxBegin, now, now);
        Tx::new(self.clone(), action)
    }

    /// Begins a top-level atomic action on the raw surface (thread the
    /// returned [`ActionId`] through activate/invoke/commit by hand; the
    /// typed [`Client::begin`] builder wraps exactly this).
    pub fn begin_action(&self) -> ActionId {
        self.sys.inner.tx.begin_top(self.node)
    }

    /// The system this client belongs to (typed surfaces record spans and
    /// read the clock through it).
    pub(crate) fn sys(&self) -> &System {
        &self.sys
    }

    /// Whether `other` shares this client's activation bookkeeping (clones
    /// of one client do; independently created clients do not).
    pub(crate) fn shares_groups(&self, other: &Client) -> bool {
        Rc::ptr_eq(&self.groups, &other.groups)
    }

    /// The system-wide pooled wire encoder (typed handles encode operations
    /// through it).
    pub(crate) fn wire(&self) -> &WireEncoder {
        &self.sys.inner.wire
    }

    /// Whether the action with this raw id is still active (typed handles
    /// use it to prune activations of finished actions).
    pub(crate) fn action_is_live(&self, raw: u64) -> bool {
        self.sys.inner.tx.is_active(ActionId::from_raw(raw))
    }

    /// Opens a typed [`Handle`] for `uid`, asserting it belongs to class
    /// `O` (see [`TypedUid::assume`] for the trust model; uids from
    /// [`System::create_typed`] carry their class and can use
    /// [`TypedUid::open`] instead).
    pub fn open<O: ObjectType>(&self, uid: Uid) -> Handle<O> {
        Handle::new(self.clone(), uid)
    }

    /// Resolves `name` through the directory, activates the object for
    /// `action`, and returns a typed [`Handle`] with the activation already
    /// adopted — the typed counterpart of [`Client::activate_by_name`].
    ///
    /// # Errors
    ///
    /// See [`Client::activate_by_name`].
    pub fn open_by_name<O: ObjectType>(
        &self,
        action: ActionId,
        name: &str,
        replicas: usize,
    ) -> Result<Handle<O>, ActivateError> {
        let group = self.activate_by_name(action, name, replicas)?;
        let handle = self.open::<O>(group.uid);
        handle.adopt(action, group);
        Ok(handle)
    }

    /// Resolves a name through the directory (a nested action of `action`,
    /// per the paper's lookup-then-bind flow) and activates the object.
    ///
    /// # Errors
    ///
    /// [`ActivateError::Db`] for unknown names or directory failures, plus
    /// everything [`Client::activate`] can report.
    pub fn activate_by_name(
        &self,
        action: ActionId,
        name: &str,
        replicas: usize,
    ) -> Result<ObjectGroup, ActivateError> {
        let nested = self.sys.inner.tx.begin_nested(action);
        let uid = match self
            .sys
            .inner
            .directory
            .lookup_from(self.node, nested, name)
        {
            Ok(uid) => {
                self.sys.inner.tx.commit(nested)?;
                uid
            }
            Err(e) => {
                self.sys.inner.tx.abort(nested);
                return Err(ActivateError::Db(e));
            }
        };
        self.activate(action, uid, replicas)
    }

    /// Activates `uid` with up to `replicas` servers for read-write use,
    /// binding according to the system's scheme and loading passive state
    /// from the object stores as needed.
    ///
    /// # Errors
    ///
    /// See [`ActivateError`]; per the paper a failed binding means the
    /// client action must abort ([`Client::abort`]).
    pub fn activate(
        &self,
        action: ActionId,
        uid: Uid,
        replicas: usize,
    ) -> Result<ObjectGroup, ActivateError> {
        let group = self
            .sys
            .do_activate(action, self.id, self.node, uid, replicas, false)?;
        self.groups
            .borrow_mut()
            .entry(action.raw())
            .or_default()
            .push(group.clone());
        Ok(group)
    }

    /// Activates `uid` for read-only use (enables the standard scheme's
    /// bind-anywhere optimisation and, with [`Client::invoke_read`], the
    /// commit-time no-copy optimisation).
    ///
    /// # Errors
    ///
    /// See [`Client::activate`].
    pub fn activate_read_only(
        &self,
        action: ActionId,
        uid: Uid,
        replicas: usize,
    ) -> Result<ObjectGroup, ActivateError> {
        let group = self
            .sys
            .do_activate(action, self.id, self.node, uid, replicas, true)?;
        self.groups
            .borrow_mut()
            .entry(action.raw())
            .or_default()
            .push(group.clone());
        Ok(group)
    }

    /// Invokes a state-changing operation (object write lock).
    ///
    /// The reply is a shared [`Bytes`] buffer (usually a zero-copy slice of
    /// the replica's reply frame); it dereferences to `&[u8]` for decoding.
    ///
    /// # Errors
    ///
    /// See [`InvokeError`]; on error the action should be aborted.
    pub fn invoke(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        op: &[u8],
    ) -> Result<Bytes, InvokeError> {
        self.sys.do_invoke(action, group, op, true)
    }

    /// Invokes a read-only operation (object read lock; concurrent readers
    /// allowed).
    ///
    /// # Errors
    ///
    /// See [`InvokeError`].
    pub fn invoke_read(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        op: &[u8],
    ) -> Result<Bytes, InvokeError> {
        self.sys.do_invoke(action, group, op, false)
    }

    /// Invokes a batch of state-changing operations as one replicated
    /// unit (object write lock, one wire frame, one undo snapshot, one
    /// write-back at commit). Replies are index-aligned with `ops`; an
    /// empty batch returns an empty vector without touching the object.
    ///
    /// This is the raw escape hatch under [`crate::Handle::invoke_batch`],
    /// which additionally picks the lock intent from the ops themselves.
    ///
    /// # Errors
    ///
    /// See [`InvokeError`]; on error the action should be aborted.
    pub fn invoke_batch(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        ops: &[&[u8]],
    ) -> Result<Vec<Bytes>, InvokeError> {
        self.sys.do_invoke_batch(action, group, ops, true)
    }

    /// Invokes a batch of read-only operations as one replicated unit
    /// (object read lock; concurrent readers allowed).
    ///
    /// # Errors
    ///
    /// See [`InvokeError`].
    pub fn invoke_batch_read(
        &self,
        action: ActionId,
        group: &ObjectGroup,
        ops: &[&[u8]],
    ) -> Result<Vec<Bytes>, InvokeError> {
        self.sys.do_invoke_batch(action, group, ops, false)
    }

    /// Commits the action: copies every modified object's new state to all
    /// functioning stores in its `St` (excluding the rest), runs two-phase
    /// commit, and completes bindings per the scheme.
    ///
    /// # Errors
    ///
    /// On any error the action has been aborted and all its effects undone.
    pub fn commit(&self, action: ActionId) -> Result<(), CommitError> {
        let sys = &self.sys;
        let groups = self
            .groups
            .borrow_mut()
            .remove(&action.raw())
            .unwrap_or_default();

        // Binding completion and commit-time write-back all send messages
        // on behalf of this action; attribute their trace events to it.
        sys.sim().with_active_action(action.raw(), || {
            // Figure 8: Decrement runs as a nested top-level action *inside*
            // the client action. A contended decrement is left to the cleanup
            // daemon rather than failing the commit.
            if sys.scheme() == BindingScheme::NestedTopLevel {
                for g in &groups {
                    let _ = sys.inner.binder.complete(Some(action), &g.req, &g.binding);
                }
            }

            // Commit-time state copy (with Exclude) for modified objects —
            // one staging pass over the union of touched objects, so every
            // store receives a multi-object transaction's full write-set
            // under its single transaction token.
            let mut committed_versions: Vec<(usize, Version)> = Vec::new();
            let dirty_indices: Vec<usize> = (0..groups.len())
                .filter(|&i| sys.is_dirty(action, groups[i].uid))
                .collect();
            if !dirty_indices.is_empty() {
                let dirty_groups: Vec<&ObjectGroup> =
                    dirty_indices.iter().map(|&i| &groups[i]).collect();
                match sys.do_writeback(action, &dirty_groups) {
                    Ok(versions) => {
                        committed_versions = dirty_indices.into_iter().zip(versions).collect();
                    }
                    Err(e) => {
                        sys.inner.tx.abort(action);
                        self.finish_bindings(&groups);
                        sys.clear_dirty(action);
                        return Err(e);
                    }
                }
            }

            match sys.inner.tx.commit(action) {
                Ok(()) => {
                    for (i, version) in committed_versions {
                        sys.bump_replica_versions(&groups[i], version);
                    }
                    if sys.scheme() == BindingScheme::IndependentTopLevel {
                        self.finish_bindings(&groups);
                    }
                    sys.clear_dirty(action);
                    Ok(())
                }
                Err(e) => {
                    self.finish_bindings(&groups);
                    sys.clear_dirty(action);
                    Err(CommitError::Tx(e))
                }
            }
        })
    }

    /// Aborts the action, undoing all its effects, and completes any
    /// registered bindings (the Decrement of Figures 7/8).
    pub fn abort(&self, action: ActionId) {
        let groups = self
            .groups
            .borrow_mut()
            .remove(&action.raw())
            .unwrap_or_default();
        self.sys.inner.tx.abort(action);
        self.finish_bindings(&groups);
        self.sys.clear_dirty(action);
    }

    /// Simulates this client crashing mid-action: the action is aborted by
    /// the system (its node noticed the broken binding) but **no binding
    /// completion runs** — use lists stay incremented until the cleanup
    /// daemon reclaims them. Returns the leaked group count.
    pub fn crash_without_cleanup(&self, action: ActionId) -> usize {
        let groups = self
            .groups
            .borrow_mut()
            .remove(&action.raw())
            .unwrap_or_default();
        self.sys.inner.tx.abort(action);
        self.sys.clear_dirty(action);
        groups.iter().filter(|g| g.binding.registered).count()
    }

    /// Best-effort binding completion for the independent scheme (and as a
    /// fallback for nested-top-level after the action ended).
    fn finish_bindings(&self, groups: &[ObjectGroup]) {
        if self.sys.scheme() == BindingScheme::NestedTopLevel {
            // Already completed inside the action (or deliberately leaked).
            return;
        }
        for g in groups {
            if g.binding.registered {
                let _ = self.sys.inner.binder.complete(None, &g.req, &g.binding);
            }
        }
    }
}
