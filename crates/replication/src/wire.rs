//! Wire codecs for the replication protocol's frame types.
//!
//! Operations travel to replicas as [`GroupMsg`] frames (multicast to the
//! whole group for active replication, RPC'd to the coordinator for
//! coordinator-cohort, RPC'd to the single copy for single-copy passive) —
//! one frame is encoded per invocation and shared by every receiver.
//! Replicas answer with [`MemberReply`] frames. Batched invocations travel
//! as [`BatchMsg`] frames — layout-compatible with `GroupMsg` (the high bit
//! of the id marks the frame as a batch), so every transport path carries
//! them unchanged — and are answered with [`BatchReply`] frames inside the
//! `MemberReply` envelope. All codecs decode payloads as zero-copy slices
//! of the incoming frame.
//!
//! Checkpoint snapshots use [`groupview_store::SnapshotCodec`].

use crate::object::InvokeResult;
use groupview_sim::wire::{Bytes, Codec};

/// Header size of a [`GroupMsg`] frame (the operation id).
pub const GROUP_MSG_HEADER_BYTES: usize = 8;

/// High bit of the operation id, set when the frame body is a batch
/// (`[count u32][len u32, op]*`) rather than a single op. Operation ids
/// start at 1 and are allocated sequentially, so real ids never carry
/// this bit on their own.
pub const BATCH_FLAG: u64 = 1 << 63;

/// An operation frame: `[op_id: u64 LE][op bytes]`.
///
/// The `op_id` drives per-replica at-most-once deduplication (a client
/// retry after coordinator failover must not re-execute an operation the
/// checkpoint already applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMsg {
    /// System-wide unique operation id.
    pub op_id: u64,
    /// The encoded operation, as the object class understands it.
    pub op: Bytes,
}

/// Codec for [`GroupMsg`] frames.
pub struct GroupMsgCodec;

/// The one place that knows the frame layout; both encode entry points
/// delegate here so they cannot drift apart.
fn write_group_msg(op_id: u64, op: &[u8], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&op_id.to_le_bytes());
    buf.extend_from_slice(op);
}

impl GroupMsgCodec {
    /// Encodes a frame directly from an operation id and a borrowed op
    /// slice, without first wrapping the op in a [`Bytes`]. This is the
    /// hot-path entry: one pooled frame per invocation.
    pub fn encode_parts(encoder: &groupview_sim::WireEncoder, op_id: u64, op: &[u8]) -> Bytes {
        encoder.encode_with(|buf| write_group_msg(op_id, op, buf))
    }
}

impl Codec for GroupMsgCodec {
    type Item = GroupMsg;

    fn encode_into(item: &GroupMsg, buf: &mut Vec<u8>) {
        write_group_msg(item.op_id, &item.op, buf);
    }

    fn decode(bytes: &Bytes) -> Option<GroupMsg> {
        let op_id = u64::from_le_bytes(bytes.get(..GROUP_MSG_HEADER_BYTES)?.try_into().ok()?);
        Some(GroupMsg {
            op_id,
            op: bytes.slice(GROUP_MSG_HEADER_BYTES..),
        })
    }
}

/// A replica's answer to an operation frame:
/// `[status: 0 ok / 1 not-loaded][mutated: 0/1][reply bytes]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberReply {
    /// The replica executed the operation.
    Loaded(InvokeResult),
    /// The replica holds no loaded state (it lost its volatile copy, or the
    /// frame was malformed); the caller must treat the member as stale.
    NotLoaded,
}

impl From<Option<InvokeResult>> for MemberReply {
    fn from(result: Option<InvokeResult>) -> MemberReply {
        match result {
            Some(r) => MemberReply::Loaded(r),
            None => MemberReply::NotLoaded,
        }
    }
}

/// Codec for [`MemberReply`] frames.
pub struct MemberReplyCodec;

impl Codec for MemberReplyCodec {
    type Item = MemberReply;

    fn encode_into(item: &MemberReply, buf: &mut Vec<u8>) {
        match item {
            MemberReply::Loaded(r) => {
                buf.push(0);
                buf.push(u8::from(r.mutated));
                buf.extend_from_slice(&r.reply);
            }
            MemberReply::NotLoaded => buf.extend_from_slice(&[1, 0]),
        }
    }

    fn decode(bytes: &Bytes) -> Option<MemberReply> {
        let loaded = *bytes.first()? == 0;
        let mutated = *bytes.get(1)? == 1;
        Some(if loaded {
            MemberReply::Loaded(InvokeResult {
                reply: bytes.slice(2..),
                mutated,
            })
        } else {
            MemberReply::NotLoaded
        })
    }
}

/// Writes a length-prefixed frame list: `[count: u32 LE][(len: u32 LE,
/// item bytes) * count]`. Shared by the [`BatchMsg`] body and
/// [`BatchReply`], so the two layouts cannot drift apart.
pub fn write_frames<I, T>(items: I, buf: &mut Vec<u8>)
where
    I: ExactSizeIterator<Item = T>,
    T: AsRef<[u8]>,
{
    buf.extend_from_slice(
        &u32::try_from(items.len())
            .expect("frame count fits u32")
            .to_le_bytes(),
    );
    for item in items {
        let item = item.as_ref();
        buf.extend_from_slice(
            &u32::try_from(item.len())
                .expect("frame length fits u32")
                .to_le_bytes(),
        );
        buf.extend_from_slice(item);
    }
}

/// Parses a frame list written by [`write_frames`], returning the byte
/// range of each frame within `body`. Returns `None` on any truncation — a
/// count that promises more frames than the body holds, a length that
/// overruns the buffer, or trailing garbage after the last frame. This is
/// the validate-before-apply entry: a replica splits the batch body with
/// this before executing anything, so a malformed batch rejects without
/// mutating state.
pub fn split_frames(body: &[u8]) -> Option<Vec<std::ops::Range<usize>>> {
    let count = u32::from_le_bytes(body.get(..4)?.try_into().ok()?) as usize;
    let mut frames = Vec::with_capacity(count.min(body.len() / 4 + 1));
    let mut at = 4usize;
    for _ in 0..count {
        let len = u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        body.get(at..at + len)?;
        frames.push(at..at + len);
        at += len;
    }
    if at != body.len() {
        return None; // trailing bytes: reject rather than silently ignore
    }
    Some(frames)
}

/// Decodes a frame list written by [`write_frames`] into zero-copy
/// sub-slices of `bytes`.
///
/// Every returned [`Bytes`] shares the frame's refcounted storage: the
/// sub-slices stay valid for as long as any clone of them lives, but the
/// pooled buffer behind the frame is only recycled once **all** of them
/// drop (see `docs/WIRE.md`, "Encoder ownership").
pub fn read_frames(bytes: &Bytes) -> Option<Vec<Bytes>> {
    Some(
        split_frames(bytes)?
            .into_iter()
            .map(|range| bytes.slice(range))
            .collect(),
    )
}

/// A batched operation frame:
/// `[batch_id: u64 LE, high bit set][count: u32 LE][(len: u32 LE, op)*]`.
///
/// Layout-compatible with [`GroupMsg`]: the first 8 bytes decode as the
/// operation id, so multicast, RPC, and dedup paths treat a batch exactly
/// like a single op until the replica inspects [`BATCH_FLAG`]. The whole
/// batch shares one id — retry deduplication and cohort checkpoints work
/// at batch granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMsg {
    /// Batch id; [`BATCH_FLAG`] is always set.
    pub batch_id: u64,
    /// The encoded operations, in invocation order.
    pub ops: Vec<Bytes>,
}

/// Codec for [`BatchMsg`] frames.
pub struct BatchMsgCodec;

impl BatchMsgCodec {
    /// Encodes a batch frame from an already-flagged batch id and borrowed
    /// op slices — one pooled frame per batch, the hot-path entry.
    pub fn encode_parts(
        encoder: &groupview_sim::WireEncoder,
        batch_id: u64,
        ops: &[&[u8]],
    ) -> Bytes {
        debug_assert!(batch_id & BATCH_FLAG != 0, "batch id must carry BATCH_FLAG");
        encoder.encode_with(|buf| {
            buf.extend_from_slice(&batch_id.to_le_bytes());
            write_frames(ops.iter().copied(), buf);
        })
    }
}

impl Codec for BatchMsgCodec {
    type Item = BatchMsg;

    fn encode_into(item: &BatchMsg, buf: &mut Vec<u8>) {
        debug_assert!(
            item.batch_id & BATCH_FLAG != 0,
            "batch id must carry BATCH_FLAG"
        );
        buf.extend_from_slice(&item.batch_id.to_le_bytes());
        write_frames(item.ops.iter().map(|b| b.as_slice()), buf);
    }

    fn decode(bytes: &Bytes) -> Option<BatchMsg> {
        let batch_id = u64::from_le_bytes(bytes.get(..GROUP_MSG_HEADER_BYTES)?.try_into().ok()?);
        if batch_id & BATCH_FLAG == 0 {
            return None; // a single-op GroupMsg, not a batch
        }
        let ops = read_frames(&bytes.slice(GROUP_MSG_HEADER_BYTES..))?;
        Some(BatchMsg { batch_id, ops })
    }
}

/// A replica's aggregate answer to a [`BatchMsg`]: the per-op replies in
/// op order, framed with [`write_frames`]. Travels as the payload of a
/// [`MemberReply::Loaded`] envelope, so the policy-level reply handling
/// (first-loaded-wins, NotLoaded expulsion) is unchanged for batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReply {
    /// Per-operation replies, index-aligned with the batch's ops.
    pub replies: Vec<Bytes>,
}

/// Codec for [`BatchReply`] frames.
pub struct BatchReplyCodec;

impl Codec for BatchReplyCodec {
    type Item = BatchReply;

    fn encode_into(item: &BatchReply, buf: &mut Vec<u8>) {
        write_frames(item.replies.iter().map(|b| b.as_slice()), buf);
    }

    fn decode(bytes: &Bytes) -> Option<BatchReply> {
        Some(BatchReply {
            replies: read_frames(bytes)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::wire::{self, WireEncoder};

    #[test]
    fn group_msg_roundtrip_slices_the_frame() {
        let enc = WireEncoder::new();
        let msg = GroupMsg {
            op_id: 0xDEAD_BEEF,
            op: Bytes::from_static(b"add(1)"),
        };
        let frame = GroupMsgCodec::encode(&enc, &msg);
        let before = wire::stats();
        let decoded = GroupMsgCodec::decode(&frame).expect("well-formed");
        assert_eq!(wire::stats(), before, "zero-copy decode");
        assert_eq!(decoded, msg);
        assert_eq!(
            decoded.op.as_slice().as_ptr(),
            frame.as_slice()[GROUP_MSG_HEADER_BYTES..].as_ptr()
        );
        assert!(GroupMsgCodec::decode(&frame.slice(..7)).is_none());
    }

    #[test]
    fn member_reply_roundtrips_all_shapes() {
        let enc = WireEncoder::new();
        for reply in [
            MemberReply::NotLoaded,
            MemberReply::Loaded(InvokeResult::read(Vec::new())),
            MemberReply::Loaded(InvokeResult::wrote(vec![1, 2, 3])),
        ] {
            let frame = MemberReplyCodec::encode(&enc, &reply);
            assert_eq!(MemberReplyCodec::decode(&frame), Some(reply));
        }
        assert!(MemberReplyCodec::decode(&Bytes::from_static(b"")).is_none());
        assert!(MemberReplyCodec::decode(&Bytes::from_static(b"\x00")).is_none());
    }

    #[test]
    fn member_reply_from_option() {
        assert_eq!(MemberReply::from(None), MemberReply::NotLoaded);
        let r = InvokeResult::read(vec![4]);
        assert_eq!(MemberReply::from(Some(r.clone())), MemberReply::Loaded(r));
    }

    #[test]
    fn batch_msg_roundtrip_slices_the_frame() {
        let enc = WireEncoder::new();
        let ops: [&[u8]; 3] = [b"add(1)", b"", b"get"];
        let frame = BatchMsgCodec::encode_parts(&enc, 7 | BATCH_FLAG, &ops);
        let before = wire::stats();
        let decoded = BatchMsgCodec::decode(&frame).expect("well-formed");
        assert_eq!(
            wire::stats().buffer_allocs,
            before.buffer_allocs,
            "zero-copy decode"
        );
        assert_eq!(decoded.batch_id, 7 | BATCH_FLAG);
        assert_eq!(decoded.ops.len(), 3);
        for (got, want) in decoded.ops.iter().zip(ops) {
            assert_eq!(got.as_slice(), want);
        }
        // Every decoded op is a sub-slice of the frame's storage.
        assert_eq!(
            decoded.ops[0].as_slice().as_ptr(),
            frame.as_slice()[GROUP_MSG_HEADER_BYTES + 4 + 4..].as_ptr()
        );
        // A batch frame still decodes as a GroupMsg (flag in op_id).
        let as_single = GroupMsgCodec::decode(&frame).expect("layout-compatible");
        assert_eq!(as_single.op_id, 7 | BATCH_FLAG);
        // A single-op frame is not a batch.
        let single = GroupMsgCodec::encode_parts(&enc, 7, b"add(1)");
        assert!(BatchMsgCodec::decode(&single).is_none());
    }

    #[test]
    fn batch_msg_rejects_truncation_and_trailing_bytes() {
        let enc = WireEncoder::new();
        let ops: [&[u8]; 2] = [b"abcd", b"efgh"];
        let frame = BatchMsgCodec::encode_parts(&enc, 1 | BATCH_FLAG, &ops);
        for cut in 0..frame.len() {
            assert!(
                BatchMsgCodec::decode(&frame.slice(..cut)).is_none(),
                "truncated at {cut} must be rejected"
            );
        }
        let mut padded = frame.as_slice().to_vec();
        padded.push(0);
        assert!(
            BatchMsgCodec::decode(&Bytes::from(padded)).is_none(),
            "trailing bytes must be rejected"
        );
    }

    #[test]
    fn batch_reply_roundtrips_empty_and_many() {
        let enc = WireEncoder::new();
        for replies in [
            Vec::new(),
            vec![Bytes::from_static(b"")],
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"bc")],
        ] {
            let reply = BatchReply { replies };
            let frame = BatchReplyCodec::encode(&enc, &reply);
            assert_eq!(BatchReplyCodec::decode(&frame), Some(reply));
        }
        assert!(BatchReplyCodec::decode(&Bytes::from_static(b"\x01")).is_none());
    }
}
