//! Wire codecs for the replication protocol's two frame types.
//!
//! Operations travel to replicas as [`GroupMsg`] frames (multicast to the
//! whole group for active replication, RPC'd to the coordinator for
//! coordinator-cohort, RPC'd to the single copy for single-copy passive) —
//! one frame is encoded per invocation and shared by every receiver.
//! Replicas answer with [`MemberReply`] frames. Both codecs decode
//! payloads as zero-copy slices of the incoming frame.
//!
//! Checkpoint snapshots use [`groupview_store::SnapshotCodec`].

use crate::object::InvokeResult;
use groupview_sim::wire::{Bytes, Codec};

/// Header size of a [`GroupMsg`] frame (the operation id).
pub const GROUP_MSG_HEADER_BYTES: usize = 8;

/// An operation frame: `[op_id: u64 LE][op bytes]`.
///
/// The `op_id` drives per-replica at-most-once deduplication (a client
/// retry after coordinator failover must not re-execute an operation the
/// checkpoint already applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMsg {
    /// System-wide unique operation id.
    pub op_id: u64,
    /// The encoded operation, as the object class understands it.
    pub op: Bytes,
}

/// Codec for [`GroupMsg`] frames.
pub struct GroupMsgCodec;

/// The one place that knows the frame layout; both encode entry points
/// delegate here so they cannot drift apart.
fn write_group_msg(op_id: u64, op: &[u8], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&op_id.to_le_bytes());
    buf.extend_from_slice(op);
}

impl GroupMsgCodec {
    /// Encodes a frame directly from an operation id and a borrowed op
    /// slice, without first wrapping the op in a [`Bytes`]. This is the
    /// hot-path entry: one pooled frame per invocation.
    pub fn encode_parts(encoder: &groupview_sim::WireEncoder, op_id: u64, op: &[u8]) -> Bytes {
        encoder.encode_with(|buf| write_group_msg(op_id, op, buf))
    }
}

impl Codec for GroupMsgCodec {
    type Item = GroupMsg;

    fn encode_into(item: &GroupMsg, buf: &mut Vec<u8>) {
        write_group_msg(item.op_id, &item.op, buf);
    }

    fn decode(bytes: &Bytes) -> Option<GroupMsg> {
        let op_id = u64::from_le_bytes(bytes.get(..GROUP_MSG_HEADER_BYTES)?.try_into().ok()?);
        Some(GroupMsg {
            op_id,
            op: bytes.slice(GROUP_MSG_HEADER_BYTES..),
        })
    }
}

/// A replica's answer to an operation frame:
/// `[status: 0 ok / 1 not-loaded][mutated: 0/1][reply bytes]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberReply {
    /// The replica executed the operation.
    Loaded(InvokeResult),
    /// The replica holds no loaded state (it lost its volatile copy, or the
    /// frame was malformed); the caller must treat the member as stale.
    NotLoaded,
}

impl From<Option<InvokeResult>> for MemberReply {
    fn from(result: Option<InvokeResult>) -> MemberReply {
        match result {
            Some(r) => MemberReply::Loaded(r),
            None => MemberReply::NotLoaded,
        }
    }
}

/// Codec for [`MemberReply`] frames.
pub struct MemberReplyCodec;

impl Codec for MemberReplyCodec {
    type Item = MemberReply;

    fn encode_into(item: &MemberReply, buf: &mut Vec<u8>) {
        match item {
            MemberReply::Loaded(r) => {
                buf.push(0);
                buf.push(u8::from(r.mutated));
                buf.extend_from_slice(&r.reply);
            }
            MemberReply::NotLoaded => buf.extend_from_slice(&[1, 0]),
        }
    }

    fn decode(bytes: &Bytes) -> Option<MemberReply> {
        let loaded = *bytes.first()? == 0;
        let mutated = *bytes.get(1)? == 1;
        Some(if loaded {
            MemberReply::Loaded(InvokeResult {
                reply: bytes.slice(2..),
                mutated,
            })
        } else {
            MemberReply::NotLoaded
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::wire::{self, WireEncoder};

    #[test]
    fn group_msg_roundtrip_slices_the_frame() {
        let enc = WireEncoder::new();
        let msg = GroupMsg {
            op_id: 0xDEAD_BEEF,
            op: Bytes::from_static(b"add(1)"),
        };
        let frame = GroupMsgCodec::encode(&enc, &msg);
        let before = wire::stats();
        let decoded = GroupMsgCodec::decode(&frame).expect("well-formed");
        assert_eq!(wire::stats(), before, "zero-copy decode");
        assert_eq!(decoded, msg);
        assert_eq!(
            decoded.op.as_slice().as_ptr(),
            frame.as_slice()[GROUP_MSG_HEADER_BYTES..].as_ptr()
        );
        assert!(GroupMsgCodec::decode(&frame.slice(..7)).is_none());
    }

    #[test]
    fn member_reply_roundtrips_all_shapes() {
        let enc = WireEncoder::new();
        for reply in [
            MemberReply::NotLoaded,
            MemberReply::Loaded(InvokeResult::read(Vec::new())),
            MemberReply::Loaded(InvokeResult::wrote(vec![1, 2, 3])),
        ] {
            let frame = MemberReplyCodec::encode(&enc, &reply);
            assert_eq!(MemberReplyCodec::decode(&frame), Some(reply));
        }
        assert!(MemberReplyCodec::decode(&Bytes::from_static(b"")).is_none());
        assert!(MemberReplyCodec::decode(&Bytes::from_static(b"\x00")).is_none());
    }

    #[test]
    fn member_reply_from_option() {
        assert_eq!(MemberReply::from(None), MemberReply::NotLoaded);
        let r = InvokeResult::read(vec![4]);
        assert_eq!(MemberReply::from(Some(r.clone())), MemberReply::Loaded(r));
    }
}
