//! Commit-time state copy with `Exclude` (§2.3(3), §3.2, §4.2).
//!
//! "At commit time, an attempt is made to copy the state of the object at α
//! to the object stores of all the nodes ∈ StA. To ensure that StA contains
//! the names of only those nodes with mutually consistent states of A, the
//! names of all those nodes for which the copy operation failed must be
//! removed from StA."
//!
//! The copy is the *prepare* phase of the store write: each store in `St`
//! durably stages the new state; stores that cannot be reached are
//! `Exclude`d from `St` within the same client action (so the exclusion
//! commits or aborts atomically with the state change). The staged writes
//! then ride the action's two-phase commit via pre-prepared participants.
//!
//! Failure rules straight from the paper:
//! * every store down → the action must abort ([`CommitError::AllStoresFailed`]);
//! * the `Exclude` lock refused (plain-write promotion under concurrent
//!   readers) → the action must abort ([`CommitError::Exclude`]);
//! * the object was never modified → no copy at all (read optimisation).

use crate::error::CommitError;
use crate::invoke::ObjectGroup;
use crate::system::System;
use groupview_actions::{ActionId, Participant, StoreWriteParticipant, TxSystem};
use groupview_sim::NodeId;
use groupview_store::{ObjectState, Version};

/// Wraps an already-prepared store write so the action's two-phase commit
/// does not prepare it twice.
struct PrePrepared {
    inner: StoreWriteParticipant,
}

impl Participant for PrePrepared {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn prepare(&mut self) -> bool {
        true // staged during write-back
    }

    fn commit(&mut self) -> bool {
        self.inner.commit()
    }

    fn abort(&mut self) {
        self.inner.abort();
    }
}

impl System {
    /// Stages the modified state of `group`'s object on every functioning
    /// store in `St`, excluding the unreachable ones, and registers the
    /// staged writes with `action`'s two-phase commit. Returns the version
    /// the object will have once the action commits.
    pub(crate) fn do_writeback(
        &self,
        action: ActionId,
        group: &ObjectGroup,
    ) -> Result<Version, CommitError> {
        let inner = &self.inner;
        let uid = group.uid;

        // The final (uncommitted) state from a surviving replica the action
        // actually wrote through (the bound set Sv'). Only replicas of the
        // lineage pinned at activation qualify: a reborn copy (crashed and
        // reloaded from the stores by a later activation) holds the last
        // *committed* state without this action's operations — committing
        // its snapshot would silently discard them.
        let mut final_state: Option<ObjectState> = None;
        for &node in &group.servers {
            let Some(pinned) = group.pinned_incarnation(node) else {
                continue;
            };
            if !inner.sim.is_up(node) {
                continue;
            }
            let Some(handle) = inner.registry.get(uid, node) else {
                continue;
            };
            if handle.borrow().incarnation() != pinned {
                continue;
            }
            let snapshot = handle.borrow_mut().snapshot_state(&inner.sim, &inner.wire);
            if let Some(state) = snapshot {
                final_state = Some(state);
                break;
            }
        }
        let base = final_state.ok_or(CommitError::NoFinalState(uid))?;
        let new_version = base.version.next();
        let new_state = ObjectState {
            type_tag: base.type_tag,
            version: new_version,
            data: base.data,
        };

        let token = TxSystem::token(action);
        let coordinator = inner
            .tx
            .client_node(action)
            .unwrap_or(group.req.client_node);

        // Stage on every store in St; collect failures with their sources.
        let mut prepared: Vec<StoreWriteParticipant> = Vec::new();
        let mut failed: Vec<NodeId> = Vec::new();
        let mut last_fault = None;
        for &st_node in &group.st_nodes {
            let mut participant = StoreWriteParticipant::new(
                &inner.sim,
                &inner.stores,
                coordinator,
                st_node,
                token,
                vec![(uid, new_state.clone())],
            );
            match participant.try_prepare() {
                Ok(()) => prepared.push(participant),
                Err(fault) => {
                    failed.push(st_node);
                    last_fault = Some(fault);
                }
            }
        }

        if prepared.is_empty() {
            // "all the nodes ∈ StA are down" — the action must abort. The
            // carried fault lets metrics attribute the abort to the crash.
            return Err(CommitError::AllStoresFailed {
                uid,
                last: last_fault.expect("st_nodes is never empty"),
            });
        }

        if !failed.is_empty() && inner.exclude_enabled {
            // Exclude the missed stores within this same action. The client
            // already holds a read lock on the entry (taken at activation);
            // the policy decides whether this is a write promotion or the
            // paper's exclude-write lock.
            if let Err(e) = inner.naming.exclude_from(
                coordinator,
                action,
                &[(uid, failed.clone())],
                inner.exclude_policy,
            ) {
                for mut p in prepared {
                    p.abort();
                }
                return Err(CommitError::Exclude(e));
            }
        }

        for participant in prepared {
            inner
                .tx
                .add_participant(action, Box::new(PrePrepared { inner: participant }))
                .map_err(CommitError::Tx)?;
        }
        Ok(new_version)
    }
}
