//! Commit-time state copy with `Exclude` (§2.3(3), §3.2, §4.2).
//!
//! "At commit time, an attempt is made to copy the state of the object at α
//! to the object stores of all the nodes ∈ StA. To ensure that StA contains
//! the names of only those nodes with mutually consistent states of A, the
//! names of all those nodes for which the copy operation failed must be
//! removed from StA."
//!
//! The copy is the *prepare* phase of the store write: each store in `St`
//! durably stages the new state; stores that cannot be reached are
//! `Exclude`d from `St` within the same client action (so the exclusion
//! commits or aborts atomically with the state change). The staged writes
//! then ride the action's two-phase commit via pre-prepared participants.
//!
//! Failure rules straight from the paper:
//! * every store down → the action must abort ([`CommitError::AllStoresFailed`]);
//! * the `Exclude` lock refused (plain-write promotion under concurrent
//!   readers) → the action must abort ([`CommitError::Exclude`]);
//! * the object was never modified → no copy at all (read optimisation).

use crate::error::CommitError;
use crate::invoke::ObjectGroup;
use crate::system::System;
use groupview_actions::{ActionId, Participant, StoreWriteParticipant, TxSystem};
use groupview_sim::NodeId;
use groupview_store::{ObjectState, Uid, Version};

/// Wraps an already-prepared store write so the action's two-phase commit
/// does not prepare it twice.
struct PrePrepared {
    inner: StoreWriteParticipant,
}

impl Participant for PrePrepared {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn prepare(&mut self) -> bool {
        true // staged during write-back
    }

    fn commit(&mut self) -> bool {
        self.inner.commit()
    }

    fn abort(&mut self) {
        self.inner.abort();
    }
}

impl System {
    /// Stages the modified state of every `groups` object on every
    /// functioning store in its `St`, excluding the unreachable ones, and
    /// registers the staged writes with `action`'s two-phase commit.
    /// Returns the version each object will have once the action commits,
    /// parallel to `groups`.
    ///
    /// The staging is **one participant per store node over the union of
    /// touched objects**: a store's intent log keeps one staged write-set
    /// per transaction token, so a multi-object transaction must hand each
    /// store all of its writes at once — per-object participants would
    /// overwrite each other's staged sets and commit only the last object.
    pub(crate) fn do_writeback(
        &self,
        action: ActionId,
        groups: &[&ObjectGroup],
    ) -> Result<Vec<Version>, CommitError> {
        let inner = &self.inner;

        // The final (uncommitted) state of each object, from a surviving
        // replica the action actually wrote through (the bound set Sv').
        // Only replicas of the lineage pinned at activation qualify: a
        // reborn copy (crashed and reloaded from the stores by a later
        // activation) holds the last *committed* state without this
        // action's operations — committing its snapshot would silently
        // discard them.
        let mut new_states: Vec<ObjectState> = Vec::with_capacity(groups.len());
        let mut versions: Vec<Version> = Vec::with_capacity(groups.len());
        for group in groups {
            let uid = group.uid;
            let mut final_state: Option<ObjectState> = None;
            for &node in &group.servers {
                let Some(pinned) = group.pinned_incarnation(node) else {
                    continue;
                };
                if !inner.sim.is_up(node) {
                    continue;
                }
                let Some(handle) = inner.registry.get(uid, node) else {
                    continue;
                };
                if handle.borrow().incarnation() != pinned {
                    continue;
                }
                let snapshot = handle.borrow_mut().snapshot_state(&inner.sim, &inner.wire);
                if let Some(state) = snapshot {
                    final_state = Some(state);
                    break;
                }
            }
            let base = final_state.ok_or(CommitError::NoFinalState(uid))?;
            let new_version = base.version.next();
            versions.push(new_version);
            new_states.push(ObjectState {
                type_tag: base.type_tag,
                version: new_version,
                data: base.data,
            });
        }

        let token = TxSystem::token(action);
        let coordinator = inner
            .tx
            .client_node(action)
            .unwrap_or_else(|| groups[0].req.client_node);

        // The union of store nodes across all touched objects, first-seen
        // order (so the single-object message sequence is unchanged).
        let mut store_nodes: Vec<NodeId> = Vec::new();
        for group in groups {
            for &st_node in &group.st_nodes {
                if !store_nodes.contains(&st_node) {
                    store_nodes.push(st_node);
                }
            }
        }

        // Stage one write-set per store; collect failures with sources.
        let mut prepared: Vec<StoreWriteParticipant> = Vec::new();
        let mut failed: Vec<NodeId> = Vec::new();
        let mut last_fault = None;
        for &st_node in &store_nodes {
            let writes: Vec<(Uid, ObjectState)> = groups
                .iter()
                .zip(&new_states)
                .filter(|(g, _)| g.st_nodes.contains(&st_node))
                .map(|(g, state)| (g.uid, state.clone()))
                .collect();
            let mut participant = StoreWriteParticipant::new(
                &inner.sim,
                &inner.stores,
                coordinator,
                st_node,
                token,
                writes,
            );
            match participant.try_prepare() {
                Ok(()) => prepared.push(participant),
                Err(fault) => {
                    failed.push(st_node);
                    last_fault = Some(fault);
                }
            }
        }

        // Per-object verdicts: any object whose *entire* `St` missed the
        // copy dooms the action ("all the nodes ∈ StA are down" — the
        // action must abort; the carried fault lets metrics attribute the
        // abort to the crash). Partially missed objects exclude the missed
        // stores instead.
        let mut exclusions: Vec<(Uid, Vec<NodeId>)> = Vec::new();
        let mut doomed: Option<CommitError> = None;
        for group in groups {
            let missed: Vec<NodeId> = group
                .st_nodes
                .iter()
                .copied()
                .filter(|node| failed.contains(node))
                .collect();
            if missed.len() == group.st_nodes.len() {
                doomed = Some(CommitError::AllStoresFailed {
                    uid: group.uid,
                    last: last_fault.expect("st_nodes is never empty"),
                });
                break;
            }
            if !missed.is_empty() {
                exclusions.push((group.uid, missed));
            }
        }
        if let Some(e) = doomed {
            for mut p in prepared {
                p.abort();
            }
            return Err(e);
        }

        if !exclusions.is_empty() && inner.exclude_enabled {
            // Exclude the missed stores within this same action. The client
            // already holds a read lock on the entries (taken at
            // activation); the policy decides whether this is a write
            // promotion or the paper's exclude-write lock.
            if let Err(e) =
                inner
                    .naming
                    .exclude_from(coordinator, action, &exclusions, inner.exclude_policy)
            {
                for mut p in prepared {
                    p.abort();
                }
                return Err(CommitError::Exclude(e));
            }
        }

        for participant in prepared {
            inner
                .tx
                .add_participant(action, Box::new(PrePrepared { inner: participant }))
                .map_err(CommitError::Tx)?;
        }
        Ok(versions)
    }
}
