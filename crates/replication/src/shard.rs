//! Sharded worlds: N fully independent [`System`]s on N OS threads.
//!
//! The paper's machinery is embarrassingly partitionable — objects, their
//! directory entries, and their replica groups all key off UIDs — so the
//! scale-out story is *worlds*, not locks: a [`ShardRouter`] carves the
//! UID space into N disjoint slices, and a [`ShardedSystem`] runs one
//! complete world per slice, each owned **exclusively** by its own OS
//! thread. Per-shard state stays single-threaded `Rc<RefCell<…>>` exactly
//! as in a solo run; nothing on the hot path takes a lock.
//!
//! What crosses threads is messages only:
//!
//! * **jobs in** — closures shipped to a shard over its mailbox
//!   (an spsc-style [`std::sync::mpsc`] channel: callers on one side, the
//!   shard's event loop on the other);
//! * **replies out** — `Send` values (frames, typed replies, metrics)
//!   fanned back over per-call reply channels.
//!
//! The compile-time `send_boundary` test modules in sim/store/core/
//! replication pin exactly this split: boundary types are `Send`, worlds
//! are not.
//!
//! # UID alignment
//!
//! Shards never coordinate, yet every object must live on the shard its
//! UID routes to. The trick is that every shard walks the *same*
//! deterministic UID sequence and skips the entries the router assigns
//! elsewhere ([`System::skip_foreign_uids`]): shard `s` allocates exactly
//! the subsequence `{u : route(u) = s}`, so allocation and routing agree
//! by construction and the slices are disjoint. With one shard nothing is
//! foreign and nothing is skipped, which is why `shards = 1` reproduces a
//! solo world **bit for bit** (pinned by the scenario parity test).
//!
//! # Membership changes
//!
//! Elastic membership (the `groupview-membership` crate) adds, drains,
//! and rebalances **nodes inside one world** — it moves *replicas*, never
//! objects between shards. Routing is a pure total function of the UID
//! alone (see [`ShardRouter`]), so growing or shrinking a shard's node
//! set cannot re-route an existing UID: a migrated object keeps its shard
//! home, only its replica placement within that world changes. UIDs
//! minted by freshly added nodes (higher creator ids) route like any
//! other. `tests/shard_router_properties.rs` pins both properties —
//! membership-change stability and new-creator totality — alongside the
//! classic totality/disjointness/re-keying suite.
//!
//! See `docs/SHARDING.md` for the full design discussion.

use crate::error::{ActivateError, CommitError, InvokeError};
use crate::system::{Client, System, SystemBuilder};
use crate::tx::{Tx, TxOpError};
use crate::typed::{ObjectType, TypedUid};
use groupview_core::DbError;
use groupview_sim::NodeId;
use groupview_store::Uid;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Routers
// ---------------------------------------------------------------------------

/// Partitions the UID space across `shards()` worlds.
///
/// A router must be a **pure total function** of the UID: every UID maps
/// to exactly one shard in `0..shards()`, the same shard every time, on
/// every thread (`Send + Sync`, no interior state). The property tests in
/// this module pin totality, disjointness, and stability under re-keying
/// for the two built-in routers.
pub trait ShardRouter: Send + Sync {
    /// Number of shards this router partitions across.
    fn shards(&self) -> usize;

    /// The owning shard for `uid`, in `0..self.shards()`.
    fn route(&self, uid: Uid) -> usize;
}

/// Routes by a Fibonacci hash of the raw UID: spreads consecutive UIDs
/// across shards (load balance over locality).
#[derive(Debug, Clone)]
pub struct HashRouter {
    shards: usize,
}

impl HashRouter {
    /// A hash router over `shards` worlds.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a router needs at least one shard");
        HashRouter { shards }
    }
}

impl ShardRouter for HashRouter {
    fn shards(&self) -> usize {
        self.shards
    }

    fn route(&self, uid: Uid) -> usize {
        // Fibonacci multiplicative hash (2^64 / φ); the high bits mix the
        // per-node counter in the low bits of the UID well.
        let h = uid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards
    }
}

/// Routes contiguous blocks of each creator's sequence space round-robin:
/// shard `= (sequence / block) % shards`. Keeps runs of consecutively
/// created objects together (locality over balance).
#[derive(Debug, Clone)]
pub struct RangeRouter {
    shards: usize,
    block: u64,
}

impl RangeRouter {
    /// A range router over `shards` worlds with the given block length.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `block` is 0.
    pub fn new(shards: usize, block: u64) -> Self {
        assert!(shards > 0, "a router needs at least one shard");
        assert!(block > 0, "a range block must be non-empty");
        RangeRouter { shards, block }
    }
}

impl ShardRouter for RangeRouter {
    fn shards(&self) -> usize {
        self.shards
    }

    fn route(&self, uid: Uid) -> usize {
        ((uid.sequence() / self.block) % self.shards as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// ShardedSystem
// ---------------------------------------------------------------------------

/// The world state resident on one shard thread: a complete [`System`]
/// plus a resident [`Client`] (hosted on the world's last node, the
/// conventional client host in this repo's worlds). Jobs shipped through
/// [`ShardedSystem::exec`] borrow it for their whole run — the thread is
/// the sole owner, so no synchronisation guards any of it.
pub struct ShardWorld {
    sys: System,
    client: Client,
    index: usize,
}

impl ShardWorld {
    /// This shard's world.
    pub fn sys(&self) -> &System {
        &self.sys
    }

    /// The shard's resident client (one per shard, created at launch).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// This shard's index in `0..shards`.
    pub fn index(&self) -> usize {
        self.index
    }
}

type Job = Box<dyn FnOnce(&ShardWorld) + Send>;

struct ShardHandle {
    mailbox: mpsc::Sender<Job>,
    thread: Option<JoinHandle<()>>,
}

/// N independent worlds on N OS threads behind a [`ShardRouter`].
///
/// Construct with [`ShardedSystem::launch`]. Work reaches a shard either
/// as routed typed calls ([`ShardedSystem::client`]) or as whole closures
/// ([`ShardedSystem::exec`] / [`ShardedSystem::exec_all`]) for drive loops
/// that should run shard-local without a channel crossing per operation.
/// Dropping the system closes every mailbox and joins the threads.
pub struct ShardedSystem {
    router: Arc<dyn ShardRouter>,
    shards: Vec<ShardHandle>,
    next_create: AtomicUsize,
}

impl fmt::Debug for ShardedSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSystem")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedSystem {
    /// Launches one thread per router shard, each building its own world
    /// from a clone of `builder` (same seed: the worlds are identical
    /// replicas of the empty state and diverge only through the objects
    /// routed to them).
    ///
    /// # Panics
    ///
    /// Panics if a shard thread cannot be spawned.
    pub fn launch(builder: SystemBuilder, router: Arc<dyn ShardRouter>) -> Self {
        let shards = (0..router.shards())
            .map(|index| {
                let builder = builder.clone();
                let (mailbox, jobs) = mpsc::channel::<Job>();
                let thread = std::thread::Builder::new()
                    .name(format!("shard-{index}"))
                    .spawn(move || {
                        let sys = builder.build();
                        let client_host = NodeId::new(sys.sim().num_nodes() as u32 - 1);
                        let world = ShardWorld {
                            client: sys.client(client_host),
                            sys,
                            index,
                        };
                        while let Ok(job) = jobs.recv() {
                            job(&world);
                        }
                    })
                    .expect("spawn shard thread");
                ShardHandle {
                    mailbox,
                    thread: Some(thread),
                }
            })
            .collect();
        ShardedSystem {
            router,
            shards,
            next_create: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The router partitioning the UID space.
    pub fn router(&self) -> &Arc<dyn ShardRouter> {
        &self.router
    }

    /// Runs `f` on shard `shard`'s thread against its world and blocks
    /// for the result. This is the primitive everything else routes
    /// through; use it directly for shard-local drive loops that should
    /// not pay a channel crossing per operation.
    ///
    /// # Panics
    ///
    /// Panics if the shard index is out of range or the shard thread died
    /// (a job panicked on it).
    pub fn exec<R, F>(&self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&ShardWorld) -> R + Send + 'static,
    {
        let (reply, result) = mpsc::channel();
        self.shards[shard]
            .mailbox
            .send(Box::new(move |world: &ShardWorld| {
                // A dropped receiver just means the caller stopped waiting.
                let _ = reply.send(f(world));
            }))
            .unwrap_or_else(|_| panic!("shard {shard} thread is gone"));
        result
            .recv()
            .unwrap_or_else(|_| panic!("shard {shard} died running a job"))
    }

    /// Runs `f` concurrently on **every** shard and collects the results
    /// in shard order. All shards start before any is awaited, so N
    /// shard-local drive loops overlap on N threads — this is the
    /// scaling primitive the trajectory bench measures.
    ///
    /// # Panics
    ///
    /// Panics if any shard thread died.
    pub fn exec_all<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&ShardWorld) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let receivers: Vec<_> = (0..self.shards.len())
            .map(|shard| {
                let f = Arc::clone(&f);
                let (reply, result) = mpsc::channel();
                self.shards[shard]
                    .mailbox
                    .send(Box::new(move |world: &ShardWorld| {
                        let _ = reply.send(f(world));
                    }))
                    .unwrap_or_else(|_| panic!("shard {shard} thread is gone"));
                result
            })
            .collect();
        receivers
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                rx.recv()
                    .unwrap_or_else(|_| panic!("shard {shard} died running a job"))
            })
            .collect()
    }

    /// Creates a typed object on the next shard round-robin. The creating
    /// shard first skips UIDs the router assigns elsewhere, so the object's
    /// UID routes back to its home shard by construction.
    ///
    /// # Errors
    ///
    /// See [`System::create_typed`].
    pub fn create_typed<O>(
        &self,
        initial: O,
        sv: &[NodeId],
        st: &[NodeId],
    ) -> Result<TypedUid<O>, DbError>
    where
        O: ObjectType + Send + 'static,
    {
        let shard = self.next_create.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.create_typed_on(shard, initial, sv, st)
    }

    /// Creates a typed object on a specific shard (UID-aligned, as in
    /// [`ShardedSystem::create_typed`]).
    ///
    /// # Errors
    ///
    /// See [`System::create_typed`].
    ///
    /// # Panics
    ///
    /// Panics if the created UID does not route back to `shard` — a
    /// router that is not a pure function of the UID.
    pub fn create_typed_on<O>(
        &self,
        shard: usize,
        initial: O,
        sv: &[NodeId],
        st: &[NodeId],
    ) -> Result<TypedUid<O>, DbError>
    where
        O: ObjectType + Send + 'static,
    {
        let router = Arc::clone(&self.router);
        let (sv, st) = (sv.to_vec(), st.to_vec());
        self.exec(shard, move |world| {
            world
                .sys()
                .skip_foreign_uids(|uid| router.route(uid) == shard);
            let typed = world.sys().create_typed(initial, &sv, &st)?;
            assert_eq!(
                router.route(typed.uid()),
                shard,
                "router moved {} off its creating shard",
                typed.uid()
            );
            Ok(typed)
        })
    }

    /// A routed client façade over this system: every call becomes one
    /// atomic action on the owning shard.
    pub fn client(&self, replicas: usize) -> ShardedClient<'_> {
        ShardedClient {
            system: self,
            replicas,
        }
    }
}

impl Drop for ShardedSystem {
    fn drop(&mut self) {
        // Closing the mailboxes ends every shard loop; join to surface
        // shard panics at the owner rather than losing them.
        let threads: Vec<_> = self
            .shards
            .drain(..)
            .filter_map(|mut s| {
                drop(s.mailbox);
                s.thread.take()
            })
            .collect();
        for t in threads {
            if let Err(payload) = t.join() {
                if std::thread::panicking() {
                    continue; // already unwinding; don't double-panic
                }
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ShardedClient
// ---------------------------------------------------------------------------

/// Any failure of a routed one-action call.
#[derive(Debug)]
pub enum ShardError {
    /// Activation (binding) failed; the action was aborted.
    Activate(ActivateError),
    /// The invocation failed; the action was aborted.
    Invoke(InvokeError),
    /// Commit failed (the action is already aborted per commit semantics).
    Commit(CommitError),
    /// A [`ShardedClient::transact`] named objects owned by two different
    /// shards. Cross-shard two-phase commit is not implemented — split the
    /// transaction, or route the objects to one shard. Refused before any
    /// shard work starts, so nothing needs undoing.
    CrossShard {
        /// The transaction's home shard (owner of its first object).
        home: usize,
        /// The offending object and the shard that owns it.
        uid: Uid,
        /// The owning shard of `uid`.
        other: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Activate(e) => write!(f, "activate: {e}"),
            ShardError::Invoke(e) => write!(f, "invoke: {e}"),
            ShardError::Commit(e) => write!(f, "commit: {e}"),
            ShardError::CrossShard { home, uid, other } => write!(
                f,
                "transaction spans shards: {uid} lives on shard {other}, not home shard {home}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// Routes typed calls to the shard owning each UID, one atomic action per
/// call (begin → activate → invoke → commit on the shard's resident
/// client). Obtained from [`ShardedSystem::client`].
///
/// This is the correctness surface: cross-shard traffic stays explicit
/// messages. Throughput-critical loops should ship whole drive loops with
/// [`ShardedSystem::exec_all`] instead and stay shard-local.
#[derive(Debug, Clone, Copy)]
pub struct ShardedClient<'s> {
    system: &'s ShardedSystem,
    replicas: usize,
}

impl ShardedClient<'_> {
    /// The shard that owns `uid`.
    pub fn shard_of(&self, uid: Uid) -> usize {
        self.system.router.route(uid)
    }

    /// Invokes one typed operation as one atomic action on the owning
    /// shard and returns the decoded reply.
    ///
    /// # Errors
    ///
    /// See [`ShardError`]; on error the action was aborted on the shard.
    pub fn invoke<O>(&self, uid: TypedUid<O>, op: O::Op) -> Result<O::Reply, ShardError>
    where
        O: ObjectType + 'static,
        O::Op: Send,
        O::Reply: Send + 'static,
    {
        let replicas = self.replicas;
        self.system.exec(self.shard_of(uid.uid()), move |world| {
            let client = world.client();
            let handle = uid.open(client);
            let action = client.begin_action();
            if let Err(e) = handle.activate(action, replicas) {
                client.abort(action);
                return Err(ShardError::Activate(e));
            }
            let reply = match handle.invoke(action, op) {
                Ok(reply) => reply,
                Err(e) => {
                    client.abort(action);
                    return Err(ShardError::Invoke(e));
                }
            };
            client.commit(action).map_err(ShardError::Commit)?;
            Ok(reply)
        })
    }

    /// Invokes a batch of typed operations on one object as one atomic
    /// action on its owning shard (one object lock, one wire frame, one
    /// undo snapshot — see [`crate::Handle::invoke_batch`]). Replies come
    /// back index-aligned.
    ///
    /// # Errors
    ///
    /// See [`ShardError`]; on error none of the batch's effects survive.
    pub fn invoke_batch<O>(
        &self,
        uid: TypedUid<O>,
        ops: Vec<O::Op>,
    ) -> Result<Vec<O::Reply>, ShardError>
    where
        O: ObjectType + 'static,
        O::Op: Send,
        O::Reply: Send + 'static,
    {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let replicas = self.replicas;
        self.system.exec(self.shard_of(uid.uid()), move |world| {
            let client = world.client();
            let handle = uid.open(client);
            let action = client.begin_action();
            if let Err(e) = handle.activate(action, replicas) {
                client.abort(action);
                return Err(ShardError::Activate(e));
            }
            let replies = match handle.invoke_batch(action, &ops) {
                Ok(replies) => replies,
                Err(e) => {
                    client.abort(action);
                    return Err(ShardError::Invoke(e));
                }
            };
            client.commit(action).map_err(ShardError::Commit)?;
            Ok(replies)
        })
    }

    /// Runs a typed multi-object transaction on the shard owning every
    /// object in `uids`: `body` receives a [`Tx`] on the shard's thread
    /// (open handles against [`Tx::client`]), and a successful return
    /// commits it. An `Err` from `body` — or a panic — aborts the
    /// transaction and restores every touched object.
    ///
    /// All objects must live on **one** shard: cross-shard transactions are
    /// refused up front with [`ShardError::CrossShard`] (distributed 2PC
    /// across worlds is a non-goal of the sharding layer; see
    /// `docs/SHARDING.md`).
    ///
    /// # Errors
    ///
    /// [`ShardError::CrossShard`] before any work; otherwise the
    /// transaction's own activate/invoke/commit failures.
    ///
    /// # Panics
    ///
    /// Panics if `uids` is empty.
    pub fn transact<R, F>(&self, uids: &[Uid], body: F) -> Result<R, ShardError>
    where
        R: Send + 'static,
        F: FnOnce(&mut Tx) -> Result<R, TxOpError> + Send + 'static,
    {
        let home = self.shard_of(*uids.first().expect("a transaction needs objects"));
        for &uid in &uids[1..] {
            let other = self.shard_of(uid);
            if other != home {
                return Err(ShardError::CrossShard { home, uid, other });
            }
        }
        let replicas = self.replicas;
        self.system.exec(home, move |world| {
            let mut tx = world.client().begin().with_replicas(replicas);
            match body(&mut tx) {
                Ok(r) => {
                    tx.commit().map_err(ShardError::Commit)?;
                    Ok(r)
                }
                Err(e) => {
                    tx.abort();
                    Err(match e {
                        TxOpError::Activate(a) => ShardError::Activate(a),
                        TxOpError::Invoke(i) => ShardError::Invoke(i),
                    })
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Counter, CounterOp};
    use crate::policy::ReplicationPolicy;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn small_system(shards: usize) -> ShardedSystem {
        let builder = System::builder(42)
            .nodes(5)
            .policy(ReplicationPolicy::Active);
        ShardedSystem::launch(builder, Arc::new(HashRouter::new(shards)))
    }

    #[test]
    fn sharded_system_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedSystem>();
        assert_send_sync::<HashRouter>();
        assert_send_sync::<RangeRouter>();
        assert_send_sync::<ShardError>();
    }

    #[test]
    fn exec_runs_on_the_owning_thread_with_a_live_world() {
        let sys = small_system(2);
        let nodes = sys.exec(1, |world| {
            assert_eq!(world.index(), 1);
            world.sys().sim().num_nodes()
        });
        assert_eq!(nodes, 5);
    }

    #[test]
    fn exec_all_reaches_every_shard_in_order() {
        let sys = small_system(4);
        let indices = sys.exec_all(|world| world.index());
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn created_objects_route_back_to_their_shard_and_ops_flow() {
        let sys = small_system(3);
        let servers: Vec<NodeId> = (1..=3).map(n).collect();
        let client = sys.client(3);
        let mut uids = Vec::new();
        for i in 0..12i64 {
            let uid = sys
                .create_typed(Counter::new(i), &servers, &servers)
                .expect("create");
            assert_eq!(
                sys.router().route(uid.uid()),
                (i as usize) % 3,
                "round-robin creation must land router-aligned"
            );
            uids.push((uid, i));
        }
        for &(uid, base) in &uids {
            let reply = client.invoke(uid, CounterOp::Add(5)).expect("invoke");
            assert_eq!(reply, base + 5);
        }
        // A batch stays one replicated unit on the owning shard.
        let (uid, base) = uids[7];
        let replies = client
            .invoke_batch(uid, vec![CounterOp::Add(1); 4])
            .expect("batch");
        assert_eq!(replies, vec![base + 6, base + 7, base + 8, base + 9]);
    }

    #[test]
    fn shard_uid_slices_are_disjoint() {
        let sys = small_system(4);
        let servers: Vec<NodeId> = (1..=3).map(n).collect();
        let mut seen = std::collections::HashSet::new();
        for i in 0..32i64 {
            let uid = sys
                .create_typed(Counter::new(i), &servers, &servers)
                .expect("create");
            assert!(seen.insert(uid.uid()), "duplicate uid across shards");
        }
    }

    #[test]
    fn hash_router_is_total_and_stable() {
        for shards in [1usize, 2, 3, 4, 8] {
            let a = HashRouter::new(shards);
            let b = HashRouter::new(shards);
            for raw in 0..4096u64 {
                let uid = Uid::from_raw(raw | (3 << 40));
                let s = a.route(uid);
                assert!(s < shards, "route out of range");
                // Re-keying: a freshly built router with the same shard
                // count routes identically (pure function of the uid).
                assert_eq!(s, b.route(uid));
            }
        }
    }

    #[test]
    fn range_router_keeps_blocks_together() {
        let r = RangeRouter::new(4, 16);
        for block in 0..32u64 {
            let home = r.route(Uid::from_raw(block * 16));
            assert!(home < 4);
            for off in 0..16u64 {
                assert_eq!(r.route(Uid::from_raw(block * 16 + off)), home);
            }
        }
    }

    #[test]
    fn single_shard_skips_nothing() {
        // The parity cornerstone: with one shard every uid is owned, so
        // allocation is identical to a solo world.
        let solo = System::builder(9).nodes(4).build();
        let sharded = small_system(1);
        let servers = vec![n(1), n(2)];
        for i in 0..8i64 {
            let a = solo
                .create_typed(Counter::new(i), &servers, &servers)
                .expect("solo create");
            let b = sharded
                .create_typed(Counter::new(i), &servers, &servers)
                .expect("sharded create");
            assert_eq!(a.uid(), b.uid(), "shard=1 must allocate identically");
        }
    }
}
