//! The typed multi-object transaction surface: [`Tx`].
//!
//! The paper's central abstraction is the atomic action that touches
//! *several* persistent replicated objects; the raw surface exposes it as
//! an [`ActionId`] threaded by hand through activate/invoke/commit calls.
//! [`Tx`] packages that thread: [`Client::begin`] opens a top-level action
//! and returns a builder, each [`Tx::invoke`] auto-activates the object on
//! first touch and applies a typed operation under the *same* action (all
//! three replication policies), and [`Tx::commit`] drives the existing
//! store two-phase commit once over the union of touched objects:
//!
//! ```rust
//! use groupview_replication::{Account, AccountOp, System};
//!
//! let sys = System::builder(7).nodes(5).build();
//! let nodes = sys.sim().nodes();
//! let a = sys.create_typed(Account::new(100), &nodes[1..4], &nodes[1..4]).unwrap();
//! let b = sys.create_typed(Account::new(100), &nodes[1..4], &nodes[1..4]).unwrap();
//! let client = sys.client(nodes[4]);
//! let (from, to) = (a.open(&client), b.open(&client));
//!
//! let mut tx = client.begin();
//! tx.invoke(&from, AccountOp::Withdraw(10)).unwrap();
//! tx.invoke(&to, AccountOp::Deposit(10)).unwrap();
//! tx.commit().unwrap();
//! ```
//!
//! Abort (explicit [`Tx::abort`], an error return, or just dropping the
//! builder) replays the action's undo-log arena in reverse, restoring every
//! touched object to its pre-transaction state. A one-object `Tx` is
//! bit-for-bit identical to the manual `begin_action`/`activate`/`invoke`
//! path — pinned by `tests/typed_properties.rs`.

use crate::error::{ActivateError, CommitError, InvokeError};
use crate::system::Client;
use crate::typed::{Handle, ObjectType};
use groupview_actions::ActionId;
use groupview_obs::Phase;
use std::error::Error;
use std::fmt;

/// Any failure of a [`Tx::invoke`]: the auto-activation or the invocation
/// itself. Either way the transaction should be dropped (or
/// [`Tx::abort`]ed) — its effects so far are undone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxOpError {
    /// Activating the object for this transaction failed.
    Activate(ActivateError),
    /// The operation itself failed.
    Invoke(InvokeError),
}

impl TxOpError {
    /// Whether this failure was caused by node/network failures, as opposed
    /// to ordinary lock contention between live transactions (see
    /// [`InvokeError::is_failure_caused`]).
    pub fn is_failure_caused(&self) -> bool {
        match self {
            TxOpError::Activate(e) => e.is_failure_caused(),
            TxOpError::Invoke(e) => e.is_failure_caused(),
        }
    }
}

impl fmt::Display for TxOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxOpError::Activate(e) => write!(f, "transaction activate: {e}"),
            TxOpError::Invoke(e) => write!(f, "transaction invoke: {e}"),
        }
    }
}

impl Error for TxOpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TxOpError::Activate(e) => Some(e),
            TxOpError::Invoke(e) => Some(e),
        }
    }
}

impl From<ActivateError> for TxOpError {
    fn from(e: ActivateError) -> Self {
        TxOpError::Activate(e)
    }
}

impl From<InvokeError> for TxOpError {
    fn from(e: InvokeError) -> Self {
        TxOpError::Invoke(e)
    }
}

/// A typed multi-object transaction in progress. Obtained from
/// [`Client::begin`]; see the [module docs](self) for the lifecycle.
///
/// The builder owns its top-level [`ActionId`]. Consuming methods
/// ([`Tx::commit`], [`Tx::abort`]) finish the action; dropping an
/// unfinished `Tx` aborts it, so an early `?` return can never leak locks.
pub struct Tx {
    client: Client,
    action: ActionId,
    /// Server cap for auto-activations (default: all functioning servers).
    replicas: usize,
    /// Objects auto-activated so far (raw uids; transactions touch a
    /// handful of objects, so a scan beats a map).
    activated: Vec<u64>,
    done: bool,
}

impl fmt::Debug for Tx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tx")
            .field("action", &self.action)
            .field("objects", &self.activated.len())
            .finish()
    }
}

impl Tx {
    pub(crate) fn new(client: Client, action: ActionId) -> Self {
        Tx {
            client,
            action,
            replicas: usize::MAX,
            activated: Vec::new(),
            done: false,
        }
    }

    /// Caps auto-activations at `n` server replicas per object (the default
    /// binds all functioning servers, the paper's §3.2 rule).
    pub fn with_replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// The underlying action id — the escape hatch for mixing raw-surface
    /// calls (named activation, batches) into this transaction.
    pub fn action(&self) -> ActionId {
        self.action
    }

    /// The client this transaction runs on (open handles against it).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Number of objects this transaction has activated so far.
    pub fn object_count(&self) -> usize {
        self.activated.len()
    }

    /// Invokes a typed operation under this transaction, activating the
    /// object first if this is its first touch. The read/write lock intent
    /// is inferred from the operation; every object is activated
    /// read-write, since a later op in the same transaction may write it.
    ///
    /// # Errors
    ///
    /// See [`TxOpError`]. On error the transaction should be dropped or
    /// aborted; committing after a failed invoke is allowed only if the
    /// caller knows the failure left no partial effect (e.g. a refused
    /// lock).
    ///
    /// # Panics
    ///
    /// Panics if `handle` was opened on a different client — transactions
    /// and their handles must share one client's activation bookkeeping, or
    /// commit-time write-back would miss the object.
    pub fn invoke<O: ObjectType>(
        &mut self,
        handle: &Handle<O>,
        op: O::Op,
    ) -> Result<O::Reply, TxOpError> {
        assert!(
            self.client.shares_groups(handle.client()),
            "handle for {} belongs to a different client than this transaction",
            handle.uid()
        );
        let sys = self.client.sys();
        let start = sys.sim().now().as_micros();
        if !self.activated.contains(&handle.uid().raw()) {
            handle.activate(self.action, self.replicas)?;
            self.activated.push(handle.uid().raw());
        }
        let reply = handle.invoke(self.action, op)?;
        sys.obs().span(
            self.action.raw(),
            Phase::TxInvoke,
            start,
            sys.sim().now().as_micros(),
        );
        Ok(reply)
    }

    /// Commits the transaction: one store two-phase commit over the union
    /// of touched objects; all-or-nothing.
    ///
    /// # Errors
    ///
    /// See [`CommitError`]; on error the action has been aborted and every
    /// touched object restored.
    pub fn commit(mut self) -> Result<(), CommitError> {
        self.done = true;
        let sys = self.client.sys().clone();
        let start = sys.sim().now().as_micros();
        let result = self.client.commit(self.action);
        sys.obs().span(
            self.action.raw(),
            Phase::TxCommit,
            start,
            sys.sim().now().as_micros(),
        );
        result
    }

    /// Aborts the transaction, restoring every touched object (the undo
    /// arena replays in reverse).
    pub fn abort(mut self) {
        self.done = true;
        self.client.abort(self.action);
    }

    /// Relinquishes the transaction **without** finishing it: returns the
    /// action id and disarms the drop-abort. This models a client crash —
    /// the action's locks and bindings stay behind exactly as a dying
    /// process would leave them, for [`Client::crash_without_cleanup`] and
    /// the cleanup machinery to account for. Not an API for normal flows;
    /// prefer [`Tx::abort`].
    pub fn leak(mut self) -> ActionId {
        self.done = true;
        self.action
    }
}

impl Drop for Tx {
    fn drop(&mut self) {
        if !self.done {
            self.client.abort(self.action);
        }
    }
}
