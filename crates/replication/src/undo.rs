//! The replication-side [`UndoApplier`]: restores replicas from undo-log
//! arena entries when an action aborts.
//!
//! The arena (see [`groupview_actions::UndoArena`]) records object
//! identities, pinned `(node, incarnation)` pairs, and snapshot bytes — no
//! replica handles. This applier closes the loop at abort time: it
//! re-resolves each handle through the [`ReplicaRegistry`], re-checks the
//! pinned incarnation (a reborn replica belongs to a later activation's
//! lineage and must not be touched — in either direction), and restores the
//! first-write snapshot in place, forgetting every op id the transaction
//! applied so a retry re-executes them.

use crate::object::TypeRegistry;
use crate::replica::ReplicaRegistry;
use groupview_actions::UndoApplier;
use groupview_sim::{NodeId, Sim};
use groupview_store::{TypeTag, Uid};

/// Installed into the action service by `SystemBuilder::build`; one per
/// world, shared by every transaction's abort path.
pub(crate) struct ReplicaUndoApplier {
    sim: Sim,
    registry: ReplicaRegistry,
    types: TypeRegistry,
}

impl ReplicaUndoApplier {
    pub(crate) fn new(sim: Sim, registry: ReplicaRegistry, types: TypeRegistry) -> Self {
        ReplicaUndoApplier {
            sim,
            registry,
            types,
        }
    }
}

impl UndoApplier for ReplicaUndoApplier {
    fn undo(&self, key: u64, tag: u32, servers: &[(u32, u64)], op_ids: &[u64], snapshot: &[u8]) {
        let uid = Uid::from_raw(key);
        for &(node_raw, pinned) in servers {
            let node = NodeId::new(node_raw);
            let Some(handle) = self.registry.get(uid, node) else {
                continue; // expelled or passivated since the write
            };
            if handle.borrow().incarnation() != pinned {
                continue; // reborn since: another activation's state
            }
            handle.borrow_mut().restore_data(
                &self.sim,
                TypeTag::new(tag),
                snapshot,
                op_ids,
                &self.types,
            );
        }
    }
}
