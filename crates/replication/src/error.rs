//! Errors of the replication layer.

use groupview_actions::{PrepareFault, TxError};
use groupview_core::{BindError, DbError};
use groupview_group::GroupError;
use groupview_sim::NetError;
use groupview_store::Uid;
use std::error::Error;
use std::fmt;

/// Failures of object activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivateError {
    /// Binding to servers failed.
    Bind(BindError),
    /// No store in `St` could supply the object's state.
    NoState(Uid),
    /// The stored state's class is not registered at the server node.
    UnknownType(Uid),
    /// A naming-database failure.
    Db(DbError),
}

impl ActivateError {
    /// Whether this failure was caused by node/network failures, as opposed
    /// to ordinary lock contention between live clients (the activation
    /// counterpart of [`InvokeError::is_failure_caused`]).
    pub fn is_failure_caused(&self) -> bool {
        match self {
            ActivateError::Bind(BindError::Contention) => false,
            ActivateError::Bind(BindError::Db(db)) | ActivateError::Db(db) => !db.is_lock_refused(),
            ActivateError::Bind(BindError::Tx(tx)) => !matches!(tx, TxError::LockRefused { .. }),
            ActivateError::Bind(BindError::NoServers { .. })
            | ActivateError::NoState(_)
            | ActivateError::UnknownType(_) => true,
        }
    }
}

impl fmt::Display for ActivateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivateError::Bind(e) => write!(f, "activation failed to bind: {e}"),
            ActivateError::NoState(uid) => {
                write!(f, "no store could supply the state of {uid}")
            }
            ActivateError::UnknownType(uid) => {
                write!(f, "no registered class for the stored state of {uid}")
            }
            ActivateError::Db(e) => write!(f, "activation database failure: {e}"),
        }
    }
}

impl Error for ActivateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ActivateError::Bind(e) => Some(e),
            ActivateError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BindError> for ActivateError {
    fn from(e: BindError) -> Self {
        ActivateError::Bind(e)
    }
}

impl From<DbError> for ActivateError {
    fn from(e: DbError) -> Self {
        ActivateError::Db(e)
    }
}

impl From<TxError> for ActivateError {
    fn from(e: TxError) -> Self {
        ActivateError::Db(DbError::Tx(e))
    }
}

/// Failures of operation invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeError {
    /// The object-level lock was refused or the action is dead.
    Tx(TxError),
    /// The group-communication layer refused the multicast, carrying the
    /// concrete failure (unknown group, sender down, no live members) for
    /// diagnostics instead of collapsing everything into
    /// [`InvokeError::AllReplicasFailed`].
    Group(GroupError),
    /// Every bound replica has failed (retry/election genuinely
    /// exhausted); the action must abort.
    AllReplicasFailed(Uid),
    /// The single activated copy failed (single-copy passive policy);
    /// per §2.3(2)(iii) the action must abort.
    ServerFailed(Uid),
    /// A replica exists but holds no loaded state (activation raced a
    /// crash); the action should abort and retry.
    NotLoaded(Uid),
    /// A typed `Handle` invoked without activating the object for this
    /// action first (client programming error, not a system failure).
    NotActivated(Uid),
    /// A typed `Handle` received reply bytes that do not decode as the
    /// class's reply type — a violation of the `ObjectType` codec contract.
    MalformedReply(Uid),
}

impl InvokeError {
    /// Whether this failure was caused by node/replica failures (as opposed
    /// to ordinary lock contention between live clients). Workload metrics
    /// use this to tell "a crash made the action abort" apart from "two
    /// writers raced". Typed-surface contract violations
    /// ([`InvokeError::NotActivated`], [`InvokeError::MalformedReply`]) are
    /// client bugs, not crashes, and count as neither.
    pub fn is_failure_caused(&self) -> bool {
        !matches!(
            self,
            InvokeError::Tx(TxError::LockRefused { .. })
                | InvokeError::NotActivated(_)
                | InvokeError::MalformedReply(_)
        )
    }
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::Tx(e) => write!(f, "invocation failed: {e}"),
            InvokeError::Group(e) => write!(f, "invocation multicast failed: {e}"),
            InvokeError::AllReplicasFailed(uid) => {
                write!(f, "all replicas of {uid} have failed")
            }
            InvokeError::ServerFailed(uid) => write!(f, "the server for {uid} has failed"),
            InvokeError::NotLoaded(uid) => write!(f, "replica of {uid} lost its state"),
            InvokeError::NotActivated(uid) => {
                write!(f, "{uid} was not activated for this action")
            }
            InvokeError::MalformedReply(uid) => {
                write!(
                    f,
                    "reply from {uid} does not decode as its class's reply type"
                )
            }
        }
    }
}

impl Error for InvokeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InvokeError::Tx(e) => Some(e),
            InvokeError::Group(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TxError> for InvokeError {
    fn from(e: TxError) -> Self {
        InvokeError::Tx(e)
    }
}

impl From<GroupError> for InvokeError {
    fn from(e: GroupError) -> Self {
        InvokeError::Group(e)
    }
}

/// Failures of client-action commit (including commit-time write-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitError {
    /// Every store in `St` failed the commit-time state copy; nothing can
    /// persist. Carries the source of the *last* store-write failure so
    /// metrics and oracles can attribute the abort (all-stores-down vs a
    /// refused write).
    AllStoresFailed {
        /// The object whose state could not be copied anywhere.
        uid: Uid,
        /// Why the last attempted store failed its prepare.
        last: PrepareFault,
    },
    /// The commit-time `Exclude` could not obtain its lock — per §4.2.1 the
    /// client action must abort.
    Exclude(DbError),
    /// The underlying two-phase commit failed.
    Tx(TxError),
    /// A surviving replica could not supply the final state.
    NoFinalState(Uid),
}

impl CommitError {
    /// Whether this failure was caused by node/store failures, as opposed to
    /// ordinary lock contention between live clients (the commit-time
    /// counterpart of [`InvokeError::is_failure_caused`]). Workload metrics
    /// and the scenario oracle use this to tell "a crash made the commit
    /// fail" apart from "the exclude lock was refused by a concurrent
    /// reader".
    pub fn is_failure_caused(&self) -> bool {
        match self {
            // Every store unreachable is always failure-caused; a refused
            // write with no network failure anywhere is a store-side
            // rejection, not a crash.
            CommitError::AllStoresFailed { last, .. } => last.is_failure_caused(),
            CommitError::NoFinalState(_) => true,
            CommitError::Exclude(e) => !e.is_lock_refused(),
            CommitError::Tx(e) => !matches!(e, TxError::LockRefused { .. }),
        }
    }
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::AllStoresFailed { uid, last } => {
                write!(f, "no store in St({uid}) accepted the new state ({last})")
            }
            CommitError::Exclude(e) => write!(f, "commit-time exclude failed: {e}"),
            CommitError::Tx(e) => write!(f, "commit failed: {e}"),
            CommitError::NoFinalState(uid) => {
                write!(
                    f,
                    "no surviving replica could supply the final state of {uid}"
                )
            }
        }
    }
}

impl Error for CommitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CommitError::Exclude(e) => Some(e),
            CommitError::Tx(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TxError> for CommitError {
    fn from(e: TxError) -> Self {
        CommitError::Tx(e)
    }
}

impl From<NetError> for InvokeError {
    fn from(e: NetError) -> Self {
        InvokeError::Tx(TxError::Net(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let uid = Uid::from_raw(4);
        assert!(ActivateError::NoState(uid).to_string().contains("state"));
        assert!(ActivateError::UnknownType(uid)
            .to_string()
            .contains("class"));
        assert!(InvokeError::AllReplicasFailed(uid)
            .to_string()
            .contains("replicas"));
        assert!(InvokeError::ServerFailed(uid)
            .to_string()
            .contains("server"));
        assert!(InvokeError::NotLoaded(uid).to_string().contains("state"));
        assert!(InvokeError::NotActivated(uid)
            .to_string()
            .contains("activated"));
        assert!(InvokeError::MalformedReply(uid)
            .to_string()
            .contains("decode"));
        assert!(!InvokeError::NotActivated(uid).is_failure_caused());
        assert!(!InvokeError::MalformedReply(uid).is_failure_caused());
        assert!(CommitError::AllStoresFailed {
            uid,
            last: PrepareFault::Net(NetError::Timeout)
        }
        .to_string()
        .contains("store"));
        assert!(CommitError::NoFinalState(uid).to_string().contains("final"));
    }

    #[test]
    fn activate_error_failure_taxonomy() {
        let uid = Uid::from_raw(4);
        assert!(ActivateError::Bind(BindError::NoServers { probed: 2 }).is_failure_caused());
        assert!(ActivateError::NoState(uid).is_failure_caused());
        assert!(ActivateError::Db(DbError::Net(NetError::Timeout)).is_failure_caused());
        assert!(!ActivateError::Bind(BindError::Contention).is_failure_caused());
        let refused = TxError::LockRefused {
            key: groupview_actions::LockKey::new(1, 1),
            requested: groupview_actions::LockMode::Write,
            held: groupview_actions::LockMode::Read,
        };
        assert!(!ActivateError::Bind(BindError::Tx(refused)).is_failure_caused());
        assert!(!ActivateError::Db(DbError::Tx(refused)).is_failure_caused());
    }

    #[test]
    fn commit_error_failure_taxonomy() {
        let uid = Uid::from_raw(4);
        // Crash-caused: stores unreachable, lost final state, net failures.
        assert!(CommitError::AllStoresFailed {
            uid,
            last: PrepareFault::Net(NetError::NodeDown(groupview_sim::NodeId::new(1)))
        }
        .is_failure_caused());
        assert!(CommitError::NoFinalState(uid).is_failure_caused());
        assert!(CommitError::Tx(TxError::PrepareFailed {
            node: groupview_sim::NodeId::new(2)
        })
        .is_failure_caused());
        assert!(CommitError::Exclude(DbError::Net(NetError::Timeout)).is_failure_caused());
        // Contention: refused locks anywhere in the chain.
        let refused = TxError::LockRefused {
            key: groupview_actions::LockKey::new(3, 1),
            requested: groupview_actions::LockMode::Write,
            held: groupview_actions::LockMode::Read,
        };
        assert!(!CommitError::Tx(refused).is_failure_caused());
        assert!(!CommitError::Exclude(DbError::Tx(refused)).is_failure_caused());
        // A locally refused write with no crash is not failure-caused.
        assert!(!CommitError::AllStoresFailed {
            uid,
            last: PrepareFault::Refused(groupview_sim::NodeId::new(3))
        }
        .is_failure_caused());
    }

    #[test]
    fn conversions() {
        let e: ActivateError = BindError::Contention.into();
        assert_eq!(e, ActivateError::Bind(BindError::Contention));
        let e: ActivateError = DbError::NotFound(Uid::from_raw(1)).into();
        assert!(matches!(e, ActivateError::Db(_)));
        let e: InvokeError = NetError::Timeout.into();
        assert!(matches!(e, InvokeError::Tx(TxError::Net(_))));
        let g: InvokeError =
            GroupError::NoLiveMembers(groupview_group::GroupId::from_raw(2)).into();
        assert!(matches!(g, InvokeError::Group(_)));
        assert!(g.is_failure_caused());
        assert!(g.to_string().contains("multicast"));
        assert!(Error::source(&g).is_some(), "source chain preserved");
        assert!(
            InvokeError::Tx(TxError::Net(NetError::Timeout)).is_failure_caused(),
            "a lost database RPC is a failure, not contention"
        );
        let refused = InvokeError::Tx(TxError::LockRefused {
            key: groupview_actions::LockKey::new(3, 1),
            requested: groupview_actions::LockMode::Write,
            held: groupview_actions::LockMode::Read,
        });
        assert!(!refused.is_failure_caused(), "contention is not a failure");
        let e: CommitError = TxError::NotActive(groupview_actions::ActionId::from_raw(1)).into();
        assert!(matches!(e, CommitError::Tx(_)));
    }
}
