//! Replica management for `groupview`.
//!
//! This crate turns the substrates (simulation, stores, actions, groups) and
//! the naming service into a usable persistent-replicated-object system. It
//! implements §2.3(2) of the paper — the three **object replication
//! policies**:
//!
//! * [`ReplicationPolicy::Active`]: all bound replicas execute every
//!   operation, delivered through reliable totally-ordered multicast; up to
//!   `k−1` replica failures are masked.
//! * [`ReplicationPolicy::CoordinatorCohort`]: one replica (the lowest-id
//!   live one) executes and checkpoints its state to the cohorts; on
//!   coordinator failure a cohort is elected and the operation is retried
//!   (duplicate execution is suppressed by operation ids).
//! * [`ReplicationPolicy::SingleCopyPassive`]: a single activated copy; its
//!   failure aborts the client action; the new state reaches all stores in
//!   `St` only at commit.
//!
//! and §3.2's activation/commit machinery for every `|Sv| × |St|`
//! configuration (Figures 2–5): activation loads state from any store in
//! `St`; commit copies the new state to all functioning stores in `St` and
//! **`Exclude`s the rest** so later bindings can never see stale data; the
//! read optimisation skips the copy entirely when the object was not
//! modified.
//!
//! The entry point is [`System`] (built with [`SystemBuilder`]), its
//! per-application [`Client`] handles, and the typed [`Handle`] surface
//! ([`ObjectType`] classes — operations in, decoded replies out):
//!
//! ```rust
//! use groupview_replication::{System, Counter, CounterOp};
//!
//! let mut sys = System::builder(7).nodes(5).build();
//! let nodes = sys.sim().nodes();
//! let uid = sys
//!     .create_typed(Counter::new(0), &nodes[1..4], &nodes[1..4])
//!     .expect("create");
//!
//! let client = sys.client(nodes[4]);
//! let counter = uid.open(&client);
//! let action = client.begin_action();
//! counter.activate(action, 2).expect("activate");
//! assert_eq!(counter.invoke(action, CounterOp::Add(5)).expect("invoke"), 5);
//! client.commit(action).expect("commit");
//! ```

pub mod activation;
pub mod error;
pub mod invoke;
pub mod object;
pub mod policy;
pub mod replica;
pub mod shard;
pub mod system;
pub mod tx;
pub mod typed;
pub(crate) mod undo;
pub mod wire;
pub mod writeback;

pub use crate::error::{ActivateError, CommitError, InvokeError};
pub use crate::invoke::ObjectGroup;
pub use crate::object::{
    Account, AccountOp, Counter, CounterOp, InvokeResult, KvMap, KvOp, ReplicaObject, TypeRegistry,
};
pub use crate::policy::ReplicationPolicy;
pub use crate::replica::{ReplicaRegistry, ServerReplica};
pub use crate::shard::{
    HashRouter, RangeRouter, ShardError, ShardRouter, ShardWorld, ShardedClient, ShardedSystem,
};
pub use crate::system::{Client, System, SystemBuilder};
pub use crate::tx::{Tx, TxOpError};
pub use crate::typed::{Handle, KvReply, ObjectType, TypedUid};

pub use crate::wire::{
    BatchMsg, BatchMsgCodec, BatchReply, BatchReplyCodec, GroupMsg, GroupMsgCodec, MemberReply,
    MemberReplyCodec, BATCH_FLAG,
};
/// Support for the [`object_class!`] macro's expansion; not public API.
#[doc(hidden)]
pub use groupview_store::TypeTag as __TypeTag;

/// Compile-time proof that replication values crossing a shard-thread
/// boundary are `Send`. [`System`]/[`Client`]/[`Handle`] are shard-local
/// by design (`Rc<RefCell<…>>` worlds, no locks on the hot path); what
/// crosses threads is the message layer — frames, batch envelopes,
/// replies, and errors. The sharded façade itself lives in
/// [`shard`](crate::shard). See `docs/SHARDING.md`.
#[cfg(test)]
mod send_boundary {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn boundary_types_are_send() {
        assert_send::<InvokeError>();
        assert_send::<ActivateError>();
        assert_send::<CommitError>();
        assert_send::<GroupMsg>();
        assert_send::<MemberReply>();
        assert_send::<BatchMsg>();
        assert_send::<BatchReply>();
        assert_send::<InvokeResult>();
        assert_send::<CounterOp>();
        assert_send::<KvOp>();
        assert_send::<AccountOp>();
        assert_send::<KvReply>();
        assert_send::<TypedUid<Counter>>();
        assert_send::<ReplicationPolicy>();
    }
}
