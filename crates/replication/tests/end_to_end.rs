//! End-to-end scenarios across the whole replication stack.

use groupview_core::{BindingScheme, ExcludePolicy};
use groupview_replication::{
    Account, AccountOp, Counter, CounterOp, InvokeError, ReplicationPolicy, System,
};
use groupview_sim::NodeId;
use groupview_store::Version;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// 6 nodes: n0 naming, n1-n3 servers+stores, n4-n5 client nodes.
fn system(policy: ReplicationPolicy, scheme: BindingScheme) -> System {
    System::builder(77)
        .nodes(6)
        .policy(policy)
        .scheme(scheme)
        .build()
}

fn create_counter(sys: &System, value: i64) -> groupview_store::Uid {
    sys.create_object(
        Box::new(Counter::new(value)),
        &[n(1), n(2), n(3)],
        &[n(1), n(2), n(3)],
    )
    .expect("create object")
}

fn counter_value(sys: &System, uid: groupview_store::Uid, client_node: NodeId) -> i64 {
    let client = sys.client(client_node);
    let a = client.begin_action();
    let g = client.activate_read_only(a, uid, 1).expect("activate ro");
    let reply = client
        .invoke_read(a, &g, &CounterOp::Get.encode())
        .expect("read");
    client.commit(a).expect("commit read");
    CounterOp::decode_reply(&reply).expect("reply")
}

#[test]
fn full_cycle_all_policies() {
    for policy in ReplicationPolicy::ALL {
        let sys = system(policy, BindingScheme::Standard);
        let uid = create_counter(&sys, 100);
        let client = sys.client(n(4));
        let a = client.begin_action();
        let g = client.activate(a, uid, 2).expect("activate");
        let r = client
            .invoke(a, &g, &CounterOp::Add(11).encode())
            .expect("invoke");
        assert_eq!(CounterOp::decode_reply(&r), Some(111), "policy {policy}");
        client.commit(a).expect("commit");
        // All three stores hold the committed v1 state.
        for store in [n(1), n(2), n(3)] {
            let state = sys.stores().read_local(store, uid).expect("stored");
            assert_eq!(state.version, Version::new(1), "policy {policy}");
            assert_eq!(Counter::decode(&state.data).value(), 111);
        }
        assert_eq!(counter_value(&sys, uid, n(5)), 111);
    }
}

#[test]
fn abort_undoes_replica_state_and_stores() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    let uid = create_counter(&sys, 50);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 2).expect("activate");
    client
        .invoke(a, &g, &CounterOp::Add(999).encode())
        .expect("invoke");
    client.abort(a);
    // Replica in-memory state restored; stores untouched.
    assert_eq!(counter_value(&sys, uid, n(5)), 50);
    let state = sys.stores().read_local(n(1), uid).expect("stored");
    assert_eq!(state.version, Version::INITIAL);
    assert!(sys.tx().locks_empty(), "no stray locks after abort");
}

#[test]
fn active_replication_masks_server_crash_mid_action() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    let uid = create_counter(&sys, 0);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 3).expect("activate");
    client
        .invoke(a, &g, &CounterOp::Add(1).encode())
        .expect("op1");
    // One replica dies; the group masks it.
    sys.sim().crash(n(2));
    client
        .invoke(a, &g, &CounterOp::Add(1).encode())
        .expect("op2");
    client.commit(a).expect("commit despite replica crash");
    assert_eq!(counter_value(&sys, uid, n(5)), 2);
}

#[test]
fn coordinator_cohort_failover_mid_action() {
    let sys = system(
        ReplicationPolicy::CoordinatorCohort,
        BindingScheme::Standard,
    );
    let uid = create_counter(&sys, 0);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 3).expect("activate");
    client
        .invoke(a, &g, &CounterOp::Add(5).encode())
        .expect("op1");
    // The coordinator (lowest-id live loaded = n1) fails; a cohort that
    // received the checkpoint takes over transparently.
    sys.sim().crash(n(1));
    let r = client
        .invoke(a, &g, &CounterOp::Add(5).encode())
        .expect("op2 after failover");
    assert_eq!(CounterOp::decode_reply(&r), Some(10));
    client.commit(a).expect("commit");
    assert_eq!(counter_value(&sys, uid, n(5)), 10);
}

#[test]
fn single_copy_passive_crash_aborts_action() {
    let sys = system(
        ReplicationPolicy::SingleCopyPassive,
        BindingScheme::Standard,
    );
    let uid = create_counter(&sys, 7);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 3).expect("activate");
    assert_eq!(
        g.servers.len(),
        1,
        "single copy policy activates one server"
    );
    client
        .invoke(a, &g, &CounterOp::Add(1).encode())
        .expect("op1");
    sys.sim().crash(g.servers[0]);
    let err = client
        .invoke(a, &g, &CounterOp::Add(1).encode())
        .expect_err("server crashed");
    assert_eq!(err, InvokeError::ServerFailed(uid));
    client.abort(a);
    // Restart: a fresh activation succeeds on another server node and sees
    // only committed state.
    assert_eq!(counter_value(&sys, uid, n(5)), 7);
}

#[test]
fn commit_excludes_crashed_store_and_later_recovery_reincludes() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    let uid = create_counter(&sys, 0);
    // A store node (with no active replica bound) crashes before commit.
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 2).expect("activate"); // binds n1, n2
    assert_eq!(g.servers, vec![n(1), n(2)]);
    client
        .invoke(a, &g, &CounterOp::Add(42).encode())
        .expect("op");
    sys.sim().crash(n(3));
    client.commit(a).expect("commit succeeds without n3");
    // n3 was excluded from St.
    let st = sys.naming().state_db.entry(uid).expect("entry");
    assert_eq!(st.stores, vec![n(1), n(2)]);
    // Its stable store still has the stale v0 state.
    sys.sim().recover(n(3));
    let stale = sys.stores().read_local(n(3), uid).expect("stale state");
    assert_eq!(stale.version, Version::INITIAL);
    sys.sim().crash(n(3));
    // Recovery refreshes and re-includes.
    let report = sys.recovery().recover_node(n(3));
    assert_eq!(report.refreshed, vec![uid]);
    let st = sys.naming().state_db.entry(uid).expect("entry");
    assert_eq!(st.stores, vec![n(1), n(2), n(3)]);
    let fresh = sys.stores().read_local(n(3), uid).expect("fresh state");
    assert_eq!(fresh.version, Version::new(1));
    assert_eq!(Counter::decode(&fresh.data).value(), 42);
}

#[test]
fn read_only_action_skips_state_copy() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    let uid = create_counter(&sys, 5);
    // Note the store versions before.
    let v_before = sys.stores().read_local(n(1), uid).unwrap().version;
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate_read_only(a, uid, 1).expect("activate");
    client
        .invoke_read(a, &g, &CounterOp::Get.encode())
        .expect("read");
    client.commit(a).expect("commit");
    assert_eq!(
        sys.stores().read_local(n(1), uid).unwrap().version,
        v_before,
        "read optimisation: no copy to object stores"
    );
}

#[test]
fn all_stores_down_aborts_commit() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    let uid = create_counter(&sys, 0);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 2).expect("activate");
    client
        .invoke(a, &g, &CounterOp::Add(1).encode())
        .expect("op");
    // Every store node dies before commit. (The bound servers ARE the
    // store nodes here, so the final state still lives in... nowhere —
    // replicas are on the same crashed nodes.) Crash only stores' disks is
    // not possible: crash all three nodes.
    for i in [1, 2, 3] {
        sys.sim().crash(n(i));
    }
    let err = client.commit(a).expect_err("nothing can persist");
    // With the replicas gone too, the failure may surface as a missing
    // final state or as all stores failing — both mean "abort", and both
    // must be attributed to the crashes, not to contention.
    match err {
        groupview_replication::CommitError::AllStoresFailed { uid: u, .. }
        | groupview_replication::CommitError::NoFinalState(u) => assert_eq!(u, uid),
        other => panic!("unexpected commit error: {other}"),
    }
    assert!(err.is_failure_caused(), "crash-caused commit abort: {err}");
    assert!(sys.tx().locks_empty());
}

#[test]
fn independent_scheme_full_client_lifecycle() {
    let sys = system(
        ReplicationPolicy::Active,
        BindingScheme::IndependentTopLevel,
    );
    let uid = create_counter(&sys, 0);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 2).expect("activate");
    assert!(g.binding().registered);
    // Use lists are visible while the action runs.
    let entry = sys.naming().server_db.entry(uid).expect("entry");
    assert_eq!(entry.total_uses(), 2);
    client
        .invoke(a, &g, &CounterOp::Add(3).encode())
        .expect("op");
    client.commit(a).expect("commit");
    // Decrement ran after the action: quiescent again.
    let entry = sys.naming().server_db.entry(uid).expect("entry");
    assert!(entry.is_quiescent());
    assert_eq!(counter_value(&sys, uid, n(5)), 3);
}

#[test]
fn nested_top_level_scheme_full_client_lifecycle() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::NestedTopLevel);
    let uid = create_counter(&sys, 0);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 2).expect("activate");
    client
        .invoke(a, &g, &CounterOp::Add(3).encode())
        .expect("op");
    client.commit(a).expect("commit");
    assert!(sys.naming().server_db.entry(uid).unwrap().is_quiescent());
    assert_eq!(counter_value(&sys, uid, n(5)), 3);
}

#[test]
fn crashed_client_leak_reclaimed_by_cleanup_daemon() {
    let sys = system(
        ReplicationPolicy::Active,
        BindingScheme::IndependentTopLevel,
    );
    let uid = create_counter(&sys, 0);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 2).expect("activate");
    let _ = g;
    // The client crashes without decrementing.
    let leaked = client.crash_without_cleanup(a);
    assert_eq!(leaked, 1);
    let entry = sys.naming().server_db.entry(uid).unwrap();
    assert_eq!(entry.total_uses(), 2, "use lists leaked");
    // Insert (e.g. a recovered server) is refused while the leak persists.
    assert!(!entry.is_quiescent());
    // The daemon reclaims once it learns the client is dead.
    let report = sys.cleanup().sweep(|_| false);
    assert_eq!(report.reclaimed(), 2);
    assert!(sys.naming().server_db.entry(uid).unwrap().is_quiescent());
}

#[test]
fn passivation_after_quiescence() {
    let sys = system(
        ReplicationPolicy::Active,
        BindingScheme::IndependentTopLevel,
    );
    let uid = create_counter(&sys, 1);
    let client = sys.client(n(4));
    let a = client.begin_action();
    let g = client.activate(a, uid, 2).expect("activate");
    client
        .invoke(a, &g, &CounterOp::Add(1).encode())
        .expect("op");
    assert!(!sys.try_passivate(uid), "in use: cannot passivate");
    client.commit(a).expect("commit");
    assert!(sys.try_passivate(uid), "quiescent: passivated");
    assert!(sys.registry().replicas_of(uid).is_empty());
    // Re-activation reloads from stores and sees the committed value.
    assert_eq!(counter_value(&sys, uid, n(5)), 2);
}

#[test]
fn object_write_lock_serialises_writers() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    let uid = create_counter(&sys, 0);
    let c1 = sys.client(n(4));
    let c2 = sys.client(n(5));
    let a1 = c1.begin_action();
    let g1 = c1.activate(a1, uid, 2).expect("activate 1");
    c1.invoke(a1, &g1, &CounterOp::Add(1).encode())
        .expect("op 1");
    // Second writer is refused at the object lock.
    let a2 = c2.begin_action();
    let g2 = c2.activate(a2, uid, 2).expect("activate 2");
    let err = c2
        .invoke(a2, &g2, &CounterOp::Add(1).encode())
        .expect_err("write-write conflict");
    assert!(matches!(err, InvokeError::Tx(_)));
    c2.abort(a2);
    c1.commit(a1).expect("commit 1");
    // Now the second client can proceed.
    let a3 = c2.begin_action();
    let g3 = c2.activate(a3, uid, 2).expect("activate 3");
    c2.invoke(a3, &g3, &CounterOp::Add(1).encode())
        .expect("op 3");
    c2.commit(a3).expect("commit 3");
    assert_eq!(counter_value(&sys, uid, n(4)), 2);
}

#[test]
fn concurrent_readers_share_the_object() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    let uid = create_counter(&sys, 9);
    let c1 = sys.client(n(4));
    let c2 = sys.client(n(5));
    let a1 = c1.begin_action();
    let a2 = c2.begin_action();
    let g1 = c1.activate_read_only(a1, uid, 1).expect("activate 1");
    let g2 = c2.activate_read_only(a2, uid, 1).expect("activate 2");
    let r1 = c1
        .invoke_read(a1, &g1, &CounterOp::Get.encode())
        .expect("r1");
    let r2 = c2
        .invoke_read(a2, &g2, &CounterOp::Get.encode())
        .expect("r2");
    assert_eq!(CounterOp::decode_reply(&r1), Some(9));
    assert_eq!(CounterOp::decode_reply(&r2), Some(9));
    c1.commit(a1).expect("commit 1");
    c2.commit(a2).expect("commit 2");
}

#[test]
fn bank_transfer_is_atomic_across_two_objects() {
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    let alice = sys
        .create_object(Box::new(Account::new(100)), &[n(1), n(2)], &[n(1), n(2)])
        .expect("alice");
    let bob = sys
        .create_object(Box::new(Account::new(10)), &[n(2), n(3)], &[n(2), n(3)])
        .expect("bob");
    let client = sys.client(n(4));

    // Successful transfer.
    let a = client.begin_action();
    let ga = client.activate(a, alice, 2).expect("activate alice");
    let gb = client.activate(a, bob, 2).expect("activate bob");
    let w = client
        .invoke(a, &ga, &AccountOp::Withdraw(40).encode())
        .expect("withdraw");
    assert_eq!(AccountOp::decode_reply(&w), Some(60));
    client
        .invoke(a, &gb, &AccountOp::Deposit(40).encode())
        .expect("deposit");
    client.commit(a).expect("commit transfer");

    // Failed transfer aborts both legs.
    let b = client.begin_action();
    let ga = client.activate(b, alice, 2).expect("activate alice");
    let gb = client.activate(b, bob, 2).expect("activate bob");
    client
        .invoke(b, &ga, &AccountOp::Withdraw(10).encode())
        .expect("withdraw");
    client
        .invoke(b, &gb, &AccountOp::Deposit(10).encode())
        .expect("deposit");
    client.abort(b); // application decides to roll back

    // Balances: only the first transfer happened.
    let check = sys.client(n(5));
    let c = check.begin_action();
    let ga = check.activate_read_only(c, alice, 1).expect("alice ro");
    let gb = check.activate_read_only(c, bob, 1).expect("bob ro");
    let ra = check
        .invoke_read(c, &ga, &AccountOp::Balance.encode())
        .expect("balance a");
    let rb = check
        .invoke_read(c, &gb, &AccountOp::Balance.encode())
        .expect("balance b");
    check.commit(c).expect("commit check");
    assert_eq!(AccountOp::decode_reply(&ra), Some(60));
    assert_eq!(AccountOp::decode_reply(&rb), Some(50));
}

#[test]
fn exclude_policy_promote_aborts_under_concurrent_reader() {
    // §4.2.1: with plain write promotion the committing writer aborts when
    // readers share the St entry; with the exclude-write lock it succeeds.
    for (policy, expect_ok) in [
        (ExcludePolicy::PromoteToWrite, false),
        (ExcludePolicy::ExcludeWriteLock, true),
    ] {
        let sys = System::builder(78)
            .nodes(6)
            .policy(ReplicationPolicy::Active)
            .exclude_policy(policy)
            .build();
        let uid = create_counter(&sys, 0);
        // A reader holds a read lock on the St entry (via activation).
        let reader = sys.client(n(5));
        let ra = reader.begin_action();
        let _rg = reader.activate_read_only(ra, uid, 1).expect("reader");
        // The writer modifies and commits while a store is down → Exclude.
        let writer = sys.client(n(4));
        let wa = writer.begin_action();
        let wg = writer.activate(wa, uid, 1).expect("writer");
        writer
            .invoke(wa, &wg, &CounterOp::Add(1).encode())
            .expect("op");
        sys.sim().crash(n(3));
        let result = writer.commit(wa);
        assert_eq!(result.is_ok(), expect_ok, "policy {policy:?}");
        reader.commit(ra).expect("reader commit");
    }
}

#[test]
fn deterministic_same_seed_same_outcome() {
    let run = |seed: u64| {
        let sys = System::builder(seed)
            .nodes(6)
            .policy(ReplicationPolicy::Active)
            .build();
        let uid = create_counter(&sys, 0);
        let client = sys.client(n(4));
        for i in 0..5 {
            let a = client.begin_action();
            let g = client.activate(a, uid, 2).expect("activate");
            client
                .invoke(a, &g, &CounterOp::Add(i).encode())
                .expect("op");
            client.commit(a).expect("commit");
        }
        (
            counter_value(&sys, uid, n(5)),
            sys.sim().counters().delivered,
            sys.sim().now(),
        )
    };
    assert_eq!(run(123), run(123), "identical seeds, identical runs");
}

/// The paper's Figure 1 window, end to end: an in-flight action's server
/// crashes (losing the action's uncommitted update), a *concurrent*
/// activation reloads the replica from the committed stores, and the
/// original action tries to continue. The reborn copy is a different state
/// lineage — the action must abort (failure-attributed), never silently
/// continue against state that lost its own first operation. (Found by the
/// scenario oracle under the `send_window_crashes` nemesis.)
#[test]
fn reborn_replica_fails_the_in_flight_action() {
    for policy in [
        ReplicationPolicy::SingleCopyPassive,
        ReplicationPolicy::CoordinatorCohort,
        ReplicationPolicy::Active,
    ] {
        let sys = system(policy, BindingScheme::Standard);
        let uid = create_counter(&sys, 0);
        let a_client = sys.client(n(4));
        let action = a_client.begin_action();
        let group = a_client.activate(action, uid, 3).expect("activate A");
        let r = a_client
            .invoke(action, &group, &CounterOp::Add(1).encode())
            .expect("first op");
        assert_eq!(CounterOp::decode_reply(&r), Some(1), "policy {policy}");

        // Every bound server dies mid-action (uncommitted state lost) and
        // recovers; then another client's activation reloads the replicas
        // from the committed (value 0) stores.
        for &server in &[n(1), n(2), n(3)] {
            sys.sim().crash(server);
        }
        for &server in &[n(1), n(2), n(3)] {
            sys.recovery().recover_node(server);
        }
        let b_client = sys.client(n(5));
        let b_action = b_client.begin_action();
        let _b_group = b_client
            .activate_read_only(b_action, uid, 3)
            .expect("B reactivates the passive object");

        // A's next invoke must fail — the reborn replicas never see the op.
        let err = a_client
            .invoke(action, &group, &CounterOp::Add(1).encode())
            .expect_err("the in-flight action must not continue on reborn replicas");
        assert!(err.is_failure_caused(), "policy {policy}: {err}");
        a_client.abort(action);
        b_client.commit(b_action).expect("B commits its read");

        // Nothing of A's aborted action leaked into the committed state.
        assert_eq!(counter_value(&sys, uid, n(5)), 0, "policy {policy}");
    }
}

#[test]
fn observed_system_reports_spans_counters_and_wire_stats() {
    use groupview_obs::{Counter as ObsCounter, Phase};
    let sys = System::builder(77)
        .nodes(6)
        .policy(ReplicationPolicy::Active)
        .observe()
        .build();
    assert!(sys.obs().is_enabled());
    let uid = create_counter(&sys, 0);
    let client = sys.client(n(4));
    for i in 0..3 {
        let a = client.begin_action();
        let g = client.activate(a, uid, 2).expect("activate");
        client
            .invoke(a, &g, &CounterOp::Add(i).encode())
            .expect("invoke");
        client.commit(a).expect("commit");
    }
    let snap = sys.metrics_snapshot();
    assert_eq!(snap.worlds, 1);
    assert_eq!(snap.counter(ObsCounter::Invokes), 3);
    assert_eq!(snap.counter(ObsCounter::Multicasts), 3);
    assert!(snap.counter(ObsCounter::Commits) >= 3);
    assert_eq!(snap.phase(Phase::Invoke).count(), 3);
    assert_eq!(snap.phase(Phase::Bind).count(), 3);
    assert_eq!(snap.phase(Phase::Probe).count(), 3);
    assert_eq!(snap.phase(Phase::Multicast).count(), 3);
    assert!(
        snap.phase(Phase::Invoke).total_us() >= snap.phase(Phase::Multicast).total_us(),
        "the multicast leg nests inside the invoke span"
    );
    // Object creation + 3 ops moved real bytes through the wire pool.
    assert!(snap.wire_bytes_copied > 0);
    assert!(snap.wire_buffer_allocs + snap.wire_pool_reuses > 0);
    // Spans drain for export; a second snapshot keeps counters.
    let spans = sys.obs().take_spans();
    assert!(spans.len() as u64 >= snap.span_count());
    assert_eq!(sys.metrics_snapshot().counter(ObsCounter::Invokes), 3);
}

#[test]
fn unobserved_system_records_nothing() {
    use groupview_obs::Counter as ObsCounter;
    let sys = system(ReplicationPolicy::Active, BindingScheme::Standard);
    assert!(!sys.obs().is_enabled());
    let uid = create_counter(&sys, 5);
    assert_eq!(counter_value(&sys, uid, n(4)), 5);
    let snap = sys.metrics_snapshot();
    assert_eq!(snap.counter(ObsCounter::Invokes), 0);
    assert_eq!(snap.span_count(), 0);
    // Wire stats are still absorbed: sharded aggregation needs them even
    // with span recording off.
    assert!(snap.wire_bytes_copied > 0);
}
