//! Property tests for the wire layer: every codec round-trips arbitrary
//! payloads (including empty and >64 KiB buffers), and the shared-buffer
//! primitives (`clone`, `slice`, zero-copy decode) never allocate or copy —
//! asserted through the sim's wire allocation counter.

use groupview_replication::{
    BatchMsg, BatchMsgCodec, BatchReply, BatchReplyCodec, GroupMsg, GroupMsgCodec, InvokeResult,
    MemberReply, MemberReplyCodec, BATCH_FLAG,
};
use groupview_sim::wire::{self, Bytes, Codec, WireEncoder};
use groupview_store::{ObjectState, SnapshotCodec, TypeTag, Version};
use proptest::prelude::*;

/// Payload generator exercising the interesting size classes: empty, tiny,
/// typical, and >64 KiB (chunked so generation stays cheap — the content
/// pattern still differs per case via the seed byte).
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        1 => Just(Vec::new()),
        4 => prop::collection::vec(any::<u8>(), 1..64),
        2 => prop::collection::vec(any::<u8>(), 64..2048),
        1 => (any::<u8>(), 65_537usize..80_000).prop_map(|(seed, len)| {
            (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn group_msg_roundtrips_arbitrary_payloads(
        op_id in any::<u64>(),
        payload in payload_strategy(),
    ) {
        let enc = WireEncoder::new();
        let msg = GroupMsg { op_id, op: Bytes::from(payload.clone()) };
        let frame = GroupMsgCodec::encode(&enc, &msg);
        prop_assert_eq!(frame.len(), payload.len() + 8);
        let decoded = GroupMsgCodec::decode(&frame).expect("well-formed frame");
        prop_assert_eq!(decoded.op_id, op_id);
        prop_assert_eq!(&decoded.op, &payload);
        // Decoding is zero-copy: the op aliases the frame's storage.
        if !payload.is_empty() {
            prop_assert_eq!(
                decoded.op.as_slice().as_ptr(),
                frame.as_slice()[8..].as_ptr()
            );
        }
    }

    #[test]
    fn member_reply_roundtrips_arbitrary_payloads(
        payload in payload_strategy(),
        mutated in prop_oneof![Just(true), Just(false)],
        loaded in prop_oneof![4 => Just(true), 1 => Just(false)],
    ) {
        let enc = WireEncoder::new();
        let reply = if loaded {
            MemberReply::Loaded(InvokeResult {
                reply: Bytes::from(payload.clone()),
                mutated,
            })
        } else {
            MemberReply::NotLoaded
        };
        let frame = MemberReplyCodec::encode(&enc, &reply);
        let decoded = MemberReplyCodec::decode(&frame).expect("well-formed frame");
        prop_assert_eq!(decoded, reply);
    }

    #[test]
    fn snapshot_roundtrips_arbitrary_payloads(
        tag in any::<u32>(),
        version in any::<u64>(),
        payload in payload_strategy(),
    ) {
        let enc = WireEncoder::new();
        let state = ObjectState {
            type_tag: TypeTag::new(tag),
            version: Version::new(version),
            data: Bytes::from(payload.clone()),
        };
        let frame = SnapshotCodec::encode(&enc, &state);
        let decoded = SnapshotCodec::decode(&frame).expect("well-formed frame");
        prop_assert_eq!(decoded.type_tag, TypeTag::new(tag));
        prop_assert_eq!(decoded.version, Version::new(version));
        prop_assert_eq!(&decoded.data, &payload);
    }

    #[test]
    fn slice_and_clone_never_copy(
        payload in payload_strategy(),
        cuts in prop::collection::vec((0usize..10_000, 0usize..10_000), 1..8),
    ) {
        let buf = Bytes::from(payload);
        let before = wire::stats();
        let mut views = Vec::new();
        for (a, b) in cuts {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let lo = lo.min(buf.len());
            let hi = hi.min(buf.len());
            views.push(buf.slice(lo..hi));
            views.push(buf.clone());
        }
        // However many views were taken, the allocation counter must not
        // have moved: slicing and cloning share storage.
        prop_assert_eq!(wire::stats(), before, "slice/clone must never copy");
        for v in &views {
            prop_assert!(v.len() <= buf.len());
        }
    }

    #[test]
    fn batch_msg_roundtrips_op_lists(
        raw_id in any::<u64>(),
        ops in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 0..12),
    ) {
        let enc = WireEncoder::new();
        let batch_id = raw_id | BATCH_FLAG;
        let op_slices: Vec<&[u8]> = ops.iter().map(Vec::as_slice).collect();
        let frame = BatchMsgCodec::encode_parts(&enc, batch_id, &op_slices);
        let decoded = BatchMsgCodec::decode(&frame).expect("well-formed batch");
        prop_assert_eq!(decoded.batch_id, batch_id);
        prop_assert_eq!(decoded.ops.len(), ops.len());
        for (got, want) in decoded.ops.iter().zip(&ops) {
            prop_assert_eq!(got, want);
        }
        // The struct-level codec produces the identical frame.
        let msg = BatchMsg {
            batch_id,
            ops: ops.iter().map(|o| Bytes::from(o.clone())).collect(),
        };
        prop_assert_eq!(BatchMsgCodec::encode(&enc, &msg), frame);
    }

    #[test]
    fn batch_frames_reject_truncation_and_padding(
        raw_id in any::<u64>(),
        ops in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..6),
        cut in 0usize..10_000,
    ) {
        let enc = WireEncoder::new();
        let op_slices: Vec<&[u8]> = ops.iter().map(Vec::as_slice).collect();
        let frame = BatchMsgCodec::encode_parts(&enc, raw_id | BATCH_FLAG, &op_slices);
        // Any strict prefix is malformed (never a panic, never a value).
        let cut = cut % frame.len();
        prop_assert!(BatchMsgCodec::decode(&frame.slice(..cut)).is_none());
        // So is a frame with trailing garbage.
        let mut padded = frame.as_slice().to_vec();
        padded.push(0);
        prop_assert!(BatchMsgCodec::decode(&Bytes::from(padded)).is_none());
    }

    #[test]
    fn batch_reply_roundtrips_reply_lists(
        replies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..128), 0..12),
    ) {
        let enc = WireEncoder::new();
        let reply = BatchReply {
            replies: replies.iter().map(|r| Bytes::from(r.clone())).collect(),
        };
        let frame = BatchReplyCodec::encode(&enc, &reply);
        prop_assert_eq!(BatchReplyCodec::decode(&frame).expect("well-formed"), reply);
    }

    #[test]
    fn truncated_frames_never_panic(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..64,
    ) {
        let frame = Bytes::from(payload);
        let cut = cut.min(frame.len());
        let truncated = frame.slice(..cut);
        // Malformed input must yield None, never a panic.
        let _ = GroupMsgCodec::decode(&truncated);
        let _ = MemberReplyCodec::decode(&truncated);
        let _ = SnapshotCodec::decode(&truncated);
        let _ = BatchMsgCodec::decode(&truncated);
        let _ = BatchReplyCodec::decode(&truncated);
    }
}

#[test]
fn oversize_batch_roundtrips_zero_copy() {
    // A batch whose aggregate payload tops 64 KiB: one pooled frame, and
    // every decoded op aliases that frame's storage.
    let enc = WireEncoder::new();
    let ops: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 2048]).collect();
    assert!(ops.iter().map(Vec::len).sum::<usize>() > 65_536);
    let op_slices: Vec<&[u8]> = ops.iter().map(Vec::as_slice).collect();
    let frame = BatchMsgCodec::encode_parts(&enc, 7 | BATCH_FLAG, &op_slices);
    let before = wire::stats();
    let decoded = BatchMsgCodec::decode(&frame).expect("well-formed");
    assert_eq!(wire::stats(), before, "batch decode copies nothing");
    assert_eq!(decoded.ops.len(), 40);
    for (got, want) in decoded.ops.iter().zip(&ops) {
        assert_eq!(got, want);
    }
}

#[test]
fn oversize_frame_decodes_zero_copy_through_the_pool() {
    // A >64 KiB payload exercises the pool's buffer-growth path and the
    // zero-copy decode in one shot.
    let enc = WireEncoder::new();
    let big: Vec<u8> = (0..70_000u32).map(|i| i as u8).collect();
    let msg = GroupMsg {
        op_id: u64::MAX,
        op: Bytes::from(big.clone()),
    };
    let frame = GroupMsgCodec::encode(&enc, &msg);
    assert_eq!(frame.len(), 70_008);
    let before = wire::stats();
    let decoded = GroupMsgCodec::decode(&frame).expect("well-formed");
    assert_eq!(
        wire::stats(),
        before,
        "decode of a 68 KiB frame copies nothing"
    );
    assert_eq!(decoded.op, big);
    // Release the frame: the 70 KB scratch returns to the pool, and the
    // next encode of the same size allocates nothing.
    drop(frame);
    drop(decoded);
    let before = wire::stats();
    let frame = GroupMsgCodec::encode(&enc, &msg);
    assert_eq!(wire::stats().since(before).buffer_allocs, 0, "pool reuse");
    assert_eq!(frame.len(), 70_008);
}
