//! Property tests for the `ShardRouter` partition contract: for any shard
//! count, routing is **total** (every uid lands in `0..shards`), induces
//! **no overlap** (a pure function gives each uid exactly one home, so two
//! independently built routers must agree — re-keying the shard map
//! changes nothing), and every shard is actually **covered** by the uid
//! sequences worlds allocate. Range routers additionally keep whole
//! creation blocks together.

use groupview_replication::{HashRouter, RangeRouter, ShardRouter};
use groupview_store::Uid;
use proptest::prelude::*;

fn uid_strategy() -> impl Strategy<Value = Uid> {
    // Creator node in the high bits (as UidGen packs it), sequence below.
    (0u64..64, any::<u64>())
        .prop_map(|(node, seq)| Uid::from_raw((node << 40) | (seq & ((1 << 40) - 1))))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn hash_routing_is_total(uid in uid_strategy(), shards in 1usize..=16) {
        let r = HashRouter::new(shards);
        prop_assert!(r.route(uid) < shards);
    }

    #[test]
    fn range_routing_is_total(uid in uid_strategy(), shards in 1usize..=16, block in 1u64..1024) {
        let r = RangeRouter::new(shards, block);
        prop_assert!(r.route(uid) < shards);
    }

    #[test]
    fn routing_is_stable_under_rekeying(uid in uid_strategy(), shards in 1usize..=16) {
        // A rebuilt router (fresh shard map, same shard count) must route
        // identically: the route is a pure function of the uid, so no uid
        // can ever belong to two shards at once (no overlap) or move
        // between them across runs.
        let first = HashRouter::new(shards);
        let second = HashRouter::new(shards);
        prop_assert_eq!(first.route(uid), second.route(uid));
        let first = RangeRouter::new(shards, 8);
        let second = RangeRouter::new(shards, 8);
        prop_assert_eq!(first.route(uid), second.route(uid));
    }

    #[test]
    fn every_shard_is_covered_by_a_world_uid_sequence(
        node in 0u64..64,
        shards in 1usize..=8,
    ) {
        // Worlds allocate uids sequentially per creator; both routers must
        // give every shard a non-empty slice of that sequence, or a shard
        // world would sit empty forever (and `skip_foreign_uids` would
        // starve).
        let hash = HashRouter::new(shards);
        let range = RangeRouter::new(shards, 16);
        let mut hash_hit = vec![false; shards];
        let mut range_hit = vec![false; shards];
        for seq in 0..(shards as u64 * 64) {
            let uid = Uid::from_raw((node << 40) | seq);
            hash_hit[hash.route(uid)] = true;
            range_hit[range.route(uid)] = true;
        }
        prop_assert!(hash_hit.iter().all(|&hit| hit), "hash starves a shard");
        prop_assert!(range_hit.iter().all(|&hit| hit), "range starves a shard");
    }

    #[test]
    fn membership_changes_never_reroute_existing_uids(
        uids in proptest::collection::vec(uid_strategy(), 1..64),
        shards in 1usize..=16,
        adds in 1u64..8,
        block in 1u64..256,
    ) {
        // Elastic membership (crates/membership) adds, drains, and
        // rebalances *nodes* inside a world; routing must be blind to all
        // of it. Record every uid's home, then "change membership": uids
        // minted by freshly added creator nodes (ids beyond the original
        // world) appear, and the original creators notionally drain. No
        // recorded uid may move, and the newcomers' uids must still route
        // inside 0..shards.
        let hash = HashRouter::new(shards);
        let range = RangeRouter::new(shards, block);
        let before: Vec<(usize, usize)> =
            uids.iter().map(|&u| (hash.route(u), range.route(u))).collect();
        for k in 0..adds {
            // A fresh node's uids: creator id past the strategy's 0..64.
            let fresh = Uid::from_raw(((64 + k) << 40) | (k * 17));
            prop_assert!(hash.route(fresh) < shards, "new creator breaks totality");
            prop_assert!(range.route(fresh) < shards, "new creator breaks totality");
        }
        let after: Vec<(usize, usize)> =
            uids.iter().map(|&u| (hash.route(u), range.route(u))).collect();
        prop_assert_eq!(before, after, "a membership change re-routed an existing uid");
    }

    #[test]
    fn range_blocks_stay_together(
        node in 0u64..64,
        shards in 1usize..=16,
        block in 1u64..256,
        index in 0u64..512,
    ) {
        let r = RangeRouter::new(shards, block);
        let base = index * block;
        let home = r.route(Uid::from_raw((node << 40) | base));
        for off in 0..block {
            let uid = Uid::from_raw((node << 40) | (base + off));
            prop_assert_eq!(r.route(uid), home, "block split across shards");
        }
    }
}
