//! The typed transaction surface end to end.
//!
//! Three contracts of `Tx` (and its sharded wrapper) that the unit tests
//! can't pin alone:
//!
//! * **Deadlock-by-refusal**: two transactions locking `{A, B}` in opposite
//!   orders resolve by abort — strict two-phase locking refuses the second
//!   lock instead of waiting, so the classic deadlock cannot hang, and the
//!   refusal is classified as contention, never as a failure.
//! * **Parity**: a one-object `Tx` is bit-for-bit identical to the manual
//!   `begin_action`/`activate`/`invoke`/`commit` path — same typed reply,
//!   same simulated clock, same committed store bytes — under every
//!   replication policy (property-tested over amounts and seeds).
//! * **Sharded transactions**: `ShardedClient::transact` commits same-shard
//!   multi-object transactions, aborts (and restores) on a failed body, and
//!   refuses cross-shard uid sets up front with `ShardError::CrossShard`.

use groupview_replication::{
    Account, AccountOp, HashRouter, InvokeError, ReplicationPolicy, ShardError, ShardedSystem,
    System, TxOpError, TypedUid,
};
use groupview_sim::NodeId;
use proptest::prelude::*;
use std::sync::Arc;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

const POLICIES: [ReplicationPolicy; 3] = [
    ReplicationPolicy::Active,
    ReplicationPolicy::CoordinatorCohort,
    ReplicationPolicy::SingleCopyPassive,
];

/// Two transactions take `{A, B}` in opposite orders: each holds its first
/// lock, each is *refused* the other's (contention, not failure), both
/// abort cleanly, and a retry then commits. The test terminating at all is
/// the no-hang guarantee — refusal-not-waiting means there is no blocked
/// state to deadlock in.
#[test]
fn opposite_order_lock_transactions_resolve_by_abort_not_deadlock() {
    for policy in POLICIES {
        let sys = System::builder(7).nodes(6).policy(policy).build();
        let trio = [n(1), n(2), n(3)];
        let a = sys.create_typed(Account::new(100), &trio, &trio).unwrap();
        let b = sys.create_typed(Account::new(100), &trio, &trio).unwrap();
        let client1 = sys.client(n(4));
        let client2 = sys.client(n(5));

        let mut tx1 = client1.begin().with_replicas(2);
        let mut tx2 = client2.begin().with_replicas(2);
        let (a1, b1) = (a.open(&client1), b.open(&client1));
        let (a2, b2) = (a.open(&client2), b.open(&client2));

        // tx1 write-locks A; tx2 write-locks B.
        tx1.invoke(&a1, AccountOp::Withdraw(10))
            .expect("tx1 locks A");
        tx2.invoke(&b2, AccountOp::Withdraw(10))
            .expect("tx2 locks B");

        // Each now wants the other's object: both are refused immediately.
        let e1 = tx1.invoke(&b1, AccountOp::Deposit(10)).unwrap_err();
        let e2 = tx2.invoke(&a2, AccountOp::Deposit(10)).unwrap_err();
        for e in [&e1, &e2] {
            assert!(
                !e.is_failure_caused(),
                "{policy:?}: lock-order conflict must classify as contention, got {e}"
            );
        }
        tx1.abort();
        tx2.abort();

        // The aborts released both locks and undid both withdrawals: a
        // retry commits the full transfer against intact balances.
        let mut tx = client1.begin().with_replicas(2);
        assert_eq!(tx.invoke(&a1, AccountOp::Withdraw(10)).unwrap(), 90);
        assert_eq!(tx.invoke(&b1, AccountOp::Deposit(10)).unwrap(), 110);
        tx.commit().expect("retry commits");
    }
}

/// Everything observable about a committed one-object run: the typed
/// reply, the simulated clock (identical message schedules tick
/// identically), and the committed bytes on every store node.
fn run_fingerprint(sys: &System, reply: u64, uid: TypedUid<Account>) -> String {
    let states: Vec<_> = [n(1), n(2), n(3)]
        .iter()
        .map(|&node| format!("{:?}", sys.stores().read_local(node, uid.uid())))
        .collect();
    format!("reply={reply} now={:?} stores={states:?}", sys.sim().now())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A one-object `Tx` is the manual action path, bit for bit: same
    /// reply, same clock, same store bytes — including refused overdrafts
    /// (which skip the commit-time copy on both paths).
    #[test]
    fn one_object_tx_matches_manual_action_path_bit_for_bit(
        seed in 1u64..1_000,
        amount in 0u64..200, // initial balance is 100: covers REFUSED too
    ) {
        for policy in POLICIES {
            let build = || {
                let sys = System::builder(seed).nodes(6).policy(policy).build();
                let trio = [n(1), n(2), n(3)];
                let uid = sys.create_typed(Account::new(100), &trio, &trio).unwrap();
                (sys, uid)
            };

            // Manual: explicit action id threaded through the raw surface.
            let (sys_m, uid_m) = build();
            let client = sys_m.client(n(4));
            let handle = uid_m.open(&client);
            let action = client.begin_action();
            handle.activate(action, 2).expect("activate");
            let reply_m = handle.invoke(action, AccountOp::Withdraw(amount)).expect("invoke");
            client.commit(action).expect("commit");
            let manual = run_fingerprint(&sys_m, reply_m, uid_m);

            // Typed: the same operation through the Tx builder.
            let (sys_t, uid_t) = build();
            let client = sys_t.client(n(4));
            let handle = uid_t.open(&client);
            let mut tx = client.begin().with_replicas(2);
            let reply_t = tx.invoke(&handle, AccountOp::Withdraw(amount)).expect("tx invoke");
            tx.commit().expect("tx commit");
            let typed = run_fingerprint(&sys_t, reply_t, uid_t);

            prop_assert_eq!(
                manual, typed,
                "Tx diverged from the manual path under {:?}", policy
            );
        }
    }
}

/// Dropping an unfinished `Tx` aborts it: both legs of a transfer are
/// undone and the locks released.
#[test]
fn dropping_a_tx_aborts_and_restores_both_objects() {
    let sys = System::builder(3).nodes(6).build();
    let trio = [n(1), n(2), n(3)];
    let a = sys.create_typed(Account::new(100), &trio, &trio).unwrap();
    let b = sys.create_typed(Account::new(100), &trio, &trio).unwrap();
    let client = sys.client(n(4));
    let (ha, hb) = (a.open(&client), b.open(&client));

    let mut tx = client.begin().with_replicas(2);
    assert_eq!(tx.invoke(&ha, AccountOp::Withdraw(40)).unwrap(), 60);
    assert_eq!(tx.invoke(&hb, AccountOp::Deposit(40)).unwrap(), 140);
    drop(tx); // early return / panic path: the drop aborts

    let mut audit = client.begin().with_replicas(2);
    assert_eq!(audit.invoke(&ha, AccountOp::Balance).unwrap(), 100);
    assert_eq!(audit.invoke(&hb, AccountOp::Balance).unwrap(), 100);
    audit.commit().expect("audit commit");
}

#[test]
fn sharded_transact_commits_same_shard_and_refuses_cross_shard() {
    let builder = System::builder(42)
        .nodes(5)
        .policy(ReplicationPolicy::Active);
    let sys = ShardedSystem::launch(builder, Arc::new(HashRouter::new(2)));
    let trio = [n(1), n(2), n(3)];
    let a = sys
        .create_typed_on(0, Account::new(100), &trio, &trio)
        .unwrap();
    let b = sys
        .create_typed_on(0, Account::new(100), &trio, &trio)
        .unwrap();
    let c = sys
        .create_typed_on(1, Account::new(100), &trio, &trio)
        .unwrap();
    let client = sys.client(2);

    // Same shard: the transfer commits atomically on shard 0.
    let replies = client
        .transact(&[a.uid(), b.uid()], move |tx| {
            let from = a.open(tx.client());
            let to = b.open(tx.client());
            let w = tx.invoke(&from, AccountOp::Withdraw(30))?;
            let d = tx.invoke(&to, AccountOp::Deposit(30))?;
            Ok((w, d))
        })
        .expect("same-shard transaction");
    assert_eq!(replies, (70, 130));
    assert_eq!(client.invoke(a, AccountOp::Balance).unwrap(), 70);
    assert_eq!(client.invoke(b, AccountOp::Balance).unwrap(), 130);

    // A failed body aborts the transaction: the withdrawal is restored.
    let err = client
        .transact(&[a.uid()], move |tx| {
            let from = a.open(tx.client());
            tx.invoke(&from, AccountOp::Withdraw(70))?;
            Err::<(), _>(TxOpError::Invoke(InvokeError::NotActivated(from.uid())))
        })
        .unwrap_err();
    assert!(matches!(err, ShardError::Invoke(_)), "{err}");
    assert_eq!(client.invoke(a, AccountOp::Balance).unwrap(), 70);

    // Cross-shard: refused before any shard work, with both shards named.
    let err = client
        .transact(&[a.uid(), c.uid()], move |_tx| Ok(()))
        .unwrap_err();
    match err {
        ShardError::CrossShard { home, uid, other } => {
            assert_eq!(home, 0);
            assert_eq!(uid, c.uid());
            assert_eq!(other, 1);
        }
        other => panic!("expected CrossShard, got {other}"),
    }
    // Nothing moved.
    assert_eq!(client.invoke(a, AccountOp::Balance).unwrap(), 70);
    assert_eq!(client.invoke(c, AccountOp::Balance).unwrap(), 100);
}
