//! Property tests for the object classes: operation and snapshot codecs
//! round-trip for arbitrary inputs, and replica application matches a
//! direct model.

use groupview_replication::{Account, AccountOp, Counter, CounterOp, KvMap, KvOp, ReplicaObject};
use groupview_sim::WireEncoder;
use proptest::prelude::*;

fn enc() -> WireEncoder {
    WireEncoder::new()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn counter_op_roundtrip(delta in any::<i64>()) {
        for op in [CounterOp::Get, CounterOp::Add(delta)] {
            prop_assert_eq!(CounterOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn counter_model_equivalence(start in any::<i64>(), deltas in prop::collection::vec(-1_000i64..1_000, 0..20)) {
        let mut object = Counter::new(start);
        let mut model = start;
        for d in &deltas {
            let result = object.invoke(&CounterOp::Add(*d).encode(), &enc());
            model += d;
            prop_assert_eq!(CounterOp::decode_reply(&result.reply), Some(model));
            prop_assert!(result.mutated);
        }
        // Snapshot/decode preserves the final state exactly.
        let restored = Counter::decode(&object.snapshot(&enc()));
        prop_assert_eq!(restored.value(), model);
    }

    #[test]
    fn kv_op_roundtrip(key in "[a-zA-Z0-9/_.-]{0,24}", value in "\\PC{0,32}") {
        for op in [
            KvOp::Get(key.clone()),
            KvOp::Put(key.clone(), value.clone()),
            KvOp::Delete(key.clone()),
            KvOp::Len,
        ] {
            prop_assert_eq!(KvOp::decode(&op.encode()), Some(op.clone()));
        }
    }

    #[test]
    fn kv_model_equivalence(
        ops in prop::collection::vec(
            ("[a-d]", "\\PC{0,16}", 0u8..3),
            0..30,
        ),
    ) {
        let mut object = KvMap::new();
        let mut model = std::collections::BTreeMap::<String, String>::new();
        for (key, value, kind) in &ops {
            match kind {
                0 => {
                    let result = object.invoke(&KvOp::Put(key.clone(), value.clone()).encode(), &enc());
                    let prev = model.insert(key.clone(), value.clone()).unwrap_or_default();
                    prop_assert_eq!(result.reply, prev.into_bytes());
                    prop_assert!(result.mutated);
                }
                1 => {
                    let result = object.invoke(&KvOp::Get(key.clone()).encode(), &enc());
                    let expect = model.get(key).cloned().unwrap_or_default();
                    prop_assert_eq!(result.reply, expect.into_bytes());
                    prop_assert!(!result.mutated);
                }
                _ => {
                    let result = object.invoke(&KvOp::Delete(key.clone()).encode(), &enc());
                    let prev = model.remove(key).unwrap_or_default();
                    prop_assert_eq!(result.reply, prev.into_bytes());
                }
            }
        }
        // Snapshot round-trip equals the model.
        let restored = KvMap::decode(&object.snapshot(&enc()));
        prop_assert_eq!(restored.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(restored.get(k), Some(v.as_str()));
        }
    }

    #[test]
    fn account_op_roundtrip(amount in any::<u64>()) {
        for op in [
            AccountOp::Balance,
            AccountOp::Deposit(amount),
            AccountOp::Withdraw(amount),
        ] {
            prop_assert_eq!(AccountOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn account_never_overdraws(
        start in 0u64..1_000_000,
        ops in prop::collection::vec((0u8..2, 0u64..10_000), 0..30),
    ) {
        let mut object = Account::new(start);
        let mut model = start;
        for (kind, amount) in &ops {
            if *kind == 0 {
                let result = object.invoke(&AccountOp::Deposit(*amount).encode(), &enc());
                model += amount;
                prop_assert_eq!(AccountOp::decode_reply(&result.reply), Some(model));
            } else {
                let result = object.invoke(&AccountOp::Withdraw(*amount).encode(), &enc());
                if *amount > model {
                    prop_assert_eq!(
                        AccountOp::decode_reply(&result.reply),
                        Some(AccountOp::REFUSED)
                    );
                    prop_assert!(!result.mutated, "refused withdrawal must not mutate");
                } else {
                    model -= amount;
                    prop_assert_eq!(AccountOp::decode_reply(&result.reply), Some(model));
                }
            }
            prop_assert_eq!(object.balance(), model);
        }
        prop_assert_eq!(Account::decode(&object.snapshot(&enc())).balance(), model);
    }

    /// Garbage bytes never mutate any object and never panic.
    #[test]
    fn garbage_ops_are_harmless(bytes in prop::collection::vec(any::<u8>(), 0..40)) {
        // Skip inputs that happen to decode as valid mutating ops.
        let mut counter = Counter::new(5);
        if CounterOp::decode(&bytes).is_none() {
            prop_assert!(!counter.invoke(&bytes, &enc()).mutated);
            prop_assert_eq!(counter.value(), 5);
        }
        let mut kv = KvMap::new();
        if KvOp::decode(&bytes).is_none() {
            prop_assert!(!kv.invoke(&bytes, &enc()).mutated);
        }
        let mut account = Account::new(5);
        if AccountOp::decode(&bytes).is_none() {
            prop_assert!(!account.invoke(&bytes, &enc()).mutated);
        }
    }
}
