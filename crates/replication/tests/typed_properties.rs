//! Property tests for the `ObjectType` codec contract — op and reply
//! round-trips for all three built-in classes, including empty, boundary,
//! and >64KiB values — plus a regression test that a typed `Handle` reply
//! survives a crash-masked re-activation.

use groupview_replication::{
    Account, AccountOp, Counter, CounterOp, KvMap, KvOp, KvReply, ObjectType, ReplicaObject,
    ReplicationPolicy, System,
};
use groupview_sim::{NodeId, WireEncoder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Counter ops and replies round-trip through the trait codec for the
    /// full i64 range (boundary values included by the arbitrary strategy).
    #[test]
    fn counter_codecs_roundtrip(delta in any::<i64>(), reply in any::<i64>()) {
        for op in [CounterOp::Get, CounterOp::Add(delta)] {
            prop_assert_eq!(Counter::decode_op(&Counter::op_vec(&op)), Some(op));
            prop_assert_eq!(
                Counter::decode_reply(&op, &Counter::reply_vec(&reply)),
                Some(reply)
            );
        }
        prop_assert_eq!(Counter::decode_op(&[]), None);
        prop_assert_eq!(Counter::decode_reply(&CounterOp::Get, &[1, 2]), None);
    }

    /// KvMap ops round-trip for arbitrary keys/values; replies decode in op
    /// context (Len replies as counts, value replies as text).
    #[test]
    fn kv_codecs_roundtrip(key in "\\PC{0,24}", value in "\\PC{0,48}", count in any::<u64>()) {
        for op in [
            KvOp::Get(key.clone()),
            KvOp::Put(key.clone(), value.clone()),
            KvOp::Delete(key.clone()),
            KvOp::Len,
        ] {
            prop_assert_eq!(KvMap::decode_op(&KvMap::op_vec(&op)), Some(op.clone()));
        }
        let val = KvReply::Value(value.clone());
        prop_assert_eq!(
            KvMap::decode_reply(&KvOp::Get(key.clone()), &KvMap::reply_vec(&val)),
            Some(val.clone())
        );
        prop_assert_eq!(
            KvMap::decode_reply(&KvOp::Put(key.clone(), value.clone()), &KvMap::reply_vec(&val)),
            Some(val)
        );
        let len = KvReply::Len(count);
        prop_assert_eq!(
            KvMap::decode_reply(&KvOp::Len, &KvMap::reply_vec(&len)),
            Some(len)
        );
    }

    /// Account ops and replies round-trip across the whole u64 range,
    /// REFUSED marker included.
    #[test]
    fn account_codecs_roundtrip(amount in any::<u64>(), reply in any::<u64>()) {
        for op in [
            AccountOp::Balance,
            AccountOp::Deposit(amount),
            AccountOp::Withdraw(amount),
        ] {
            prop_assert_eq!(Account::decode_op(&Account::op_vec(&op)), Some(op));
            prop_assert_eq!(
                Account::decode_reply(&op, &Account::reply_vec(&reply)),
                Some(reply)
            );
        }
        prop_assert_eq!(
            Account::decode_reply(&AccountOp::Balance, &Account::reply_vec(&AccountOp::REFUSED)),
            Some(AccountOp::REFUSED)
        );
    }

    /// The reply bytes the live object writes through the encoder are
    /// exactly what `encode_reply` produces — the codec contract the typed
    /// handle relies on.
    #[test]
    fn object_replies_match_the_reply_codec(start in any::<i64>(), delta in -1_000i64..1_000) {
        let enc = WireEncoder::new();
        let mut c = Counter::new(start);
        let r = c.invoke(&Counter::op_vec(&CounterOp::Add(delta)), &enc);
        prop_assert_eq!(r.reply.as_slice(), Counter::reply_vec(&(start.wrapping_add(delta))).as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// `invoke_batch` replies are index-aligned with the submitted ops —
    /// under every replication policy, for mixed read/write batches, for
    /// all-read batches (which take the read-lock path), and for the empty
    /// batch.
    #[test]
    fn batch_replies_align_with_op_order_under_every_policy(
        deltas in prop::collection::vec(-1_000i64..1_000, 1..10),
    ) {
        for policy in [
            ReplicationPolicy::Active,
            ReplicationPolicy::CoordinatorCohort,
            ReplicationPolicy::SingleCopyPassive,
        ] {
            let sys = System::builder(31).nodes(6).policy(policy).build();
            let trio = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
            let uid = sys
                .create_typed(Counter::new(0), &trio, &trio)
                .expect("create");
            let client = sys.client(NodeId::new(4));
            let counter = uid.open(&client);
            let action = client.begin_action();
            counter.activate(action, 2).expect("activate");
            // Interleave Adds and Gets: each reply must reflect exactly the
            // ops before it in the batch, in order.
            let mut ops = Vec::new();
            let mut expected = Vec::new();
            let mut total = 0i64;
            for &d in &deltas {
                total += d;
                ops.push(CounterOp::Add(d));
                expected.push(total);
                ops.push(CounterOp::Get);
                expected.push(total);
            }
            let replies = counter.invoke_batch(action, &ops).expect("batch");
            prop_assert_eq!(&replies, &expected);
            // An all-read batch takes the read-lock path and still aligns.
            let replies = counter
                .invoke_batch(action, &[CounterOp::Get; 3])
                .expect("read batch");
            prop_assert_eq!(replies, vec![total; 3]);
            // The empty batch is a no-op with an empty reply vector.
            prop_assert_eq!(
                counter.invoke_batch(action, &[]).expect("empty batch"),
                Vec::<i64>::new()
            );
            client.commit(action).expect("commit");
        }
    }
}

/// Empty, boundary, and oversized (>64KiB) values survive the KvMap op and
/// reply codecs — the explicit sizes the satellite task calls out, pinned
/// deterministically on top of the property sweep.
#[test]
fn kv_codec_handles_empty_boundary_and_oversized_values() {
    let big = "x".repeat(100 * 1024); // > 64KiB
    for value in ["", "v", &big] {
        let op = KvOp::Put("key".into(), value.to_string());
        assert_eq!(KvMap::decode_op(&KvMap::op_vec(&op)), Some(op.clone()));
        let reply = KvReply::Value(value.to_string());
        let encoded = KvMap::reply_vec(&reply);
        assert_eq!(encoded.len(), value.len());
        assert_eq!(KvMap::decode_reply(&op, &encoded), Some(reply));
    }
    // Boundary counts for Len replies.
    for count in [0, 1, u64::MAX] {
        assert_eq!(
            KvMap::decode_reply(&KvOp::Len, &KvMap::reply_vec(&KvReply::Len(count))),
            Some(KvReply::Len(count))
        );
    }
}

/// A >64KiB value travels the full replicated path through a typed handle:
/// written in one action, read back typed in another.
#[test]
fn oversized_values_survive_the_full_typed_path() {
    let sys = System::builder(11).nodes(6).build();
    let trio = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
    let uid = sys
        .create_typed(KvMap::new(), &trio, &trio)
        .expect("create");
    let client = sys.client(NodeId::new(4));
    let shelf = uid.open(&client);
    let big = "y".repeat(80 * 1024);

    let action = client.begin_action();
    shelf.activate(action, 2).expect("activate");
    assert_eq!(
        shelf
            .invoke(action, KvOp::Put("blob".into(), big.clone()))
            .expect("put"),
        KvReply::Value(String::new())
    );
    client.commit(action).expect("commit");

    let action = client.begin_action();
    shelf.activate_read_only(action, 1).expect("activate");
    assert_eq!(
        shelf.invoke(action, KvOp::Get("blob".into())).expect("get"),
        KvReply::Value(big)
    );
    client.commit(action).expect("commit");
}

/// Regression: a typed `Handle` keeps returning correctly-decoded replies
/// across a crash that is masked by re-activation — the reply decoded after
/// the surviving replicas take over must reflect every committed update.
#[test]
fn typed_reply_survives_crash_masked_reactivation() {
    let sys = System::builder(23)
        .nodes(6)
        .policy(ReplicationPolicy::Active)
        .build();
    let trio = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
    let uid = sys
        .create_typed(Counter::new(0), &trio, &trio)
        .expect("create");
    let client = sys.client(NodeId::new(4));
    let counter = uid.open(&client);

    // Commit through two replicas.
    let action = client.begin_action();
    let group = counter.activate(action, 2).expect("activate");
    assert_eq!(counter.invoke(action, CounterOp::Add(7)).expect("add"), 7);
    client.commit(action).expect("commit");

    // Crash one bound replica; the next activation masks it.
    sys.sim().crash(group.servers[0]);
    let action = client.begin_action();
    let regrouped = counter.activate(action, 2).expect("re-activate");
    assert!(
        !regrouped.servers.contains(&group.servers[0]),
        "crashed server must not be re-bound"
    );
    assert_eq!(
        counter.invoke(action, CounterOp::Add(3)).expect("add"),
        10,
        "typed reply reflects the pre-crash committed state"
    );
    assert_eq!(counter.invoke(action, CounterOp::Get).expect("get"), 10);
    client.commit(action).expect("commit");

    // And once more after recovery, from a third client.
    sys.recovery().recover_node(group.servers[0]);
    let reader = sys.client(NodeId::new(5));
    let observer = uid.open(&reader);
    let action = reader.begin_action();
    observer.activate_read_only(action, 1).expect("activate");
    assert_eq!(observer.invoke(action, CounterOp::Get).expect("get"), 10);
    reader.commit(action).expect("commit");
}
