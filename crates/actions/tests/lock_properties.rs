//! Property tests for the lock manager: under arbitrary acquire/release
//! sequences, the table never grants incompatible locks to unrelated
//! actions, and bookkeeping never leaks.

use groupview_actions::lock::{LockManager, MapAncestry};
use groupview_actions::{ActionId, LockKey, LockMode};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Acquire { action: u64, key: u64, mode: u8 },
    ReleaseAll { action: u64 },
    Transfer { child: u64, parent: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u64..6, 0u64..4, 0u8..3).prop_map(|(action, key, mode)| Op::Acquire {
            action,
            key,
            mode
        }),
        2 => (0u64..6).prop_map(|action| Op::ReleaseAll { action }),
        1 => (0u64..6, 0u64..6).prop_map(|(child, parent)| Op::Transfer { child, parent }),
    ]
}

fn mode_of(byte: u8) -> LockMode {
    match byte {
        0 => LockMode::Read,
        1 => LockMode::ExcludeWrite,
        _ => LockMode::Write,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// No ancestry: the compatibility matrix must hold between every pair
    /// of holders of every key, at every step.
    #[test]
    fn granted_locks_are_pairwise_compatible(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let anc = MapAncestry::default();
        let mut lm = LockManager::new();
        for op in &ops {
            match *op {
                Op::Acquire { action, key, mode } => {
                    let _ = lm.acquire(
                        &anc,
                        ActionId::from_raw(action),
                        LockKey::new(1, key),
                        mode_of(mode),
                    );
                }
                Op::ReleaseAll { action } => lm.release_all(ActionId::from_raw(action)),
                Op::Transfer { child, parent } => {
                    if child != parent {
                        lm.transfer(ActionId::from_raw(child), ActionId::from_raw(parent));
                    }
                }
            }
            // Invariant: all holders of every key are pairwise compatible.
            for key in 0u64..4 {
                let holders = lm.holders(LockKey::new(1, key));
                for (i, &(ha, hm)) in holders.iter().enumerate() {
                    for &(hb, gm) in holders.iter().skip(i + 1) {
                        prop_assert!(
                            hm.compatible(gm),
                            "incompatible holders {ha}:{hm} and {hb}:{gm} on key {key}"
                        );
                    }
                }
                // And each action appears at most once per key.
                let mut seen = HashMap::new();
                for &(hid, _) in &holders {
                    prop_assert!(
                        seen.insert(hid, ()).is_none(),
                        "duplicate holder entry {hid} on key {key}"
                    );
                }
            }
        }
        // Releasing everything empties the table completely.
        for a in 0u64..6 {
            lm.release_all(ActionId::from_raw(a));
        }
        prop_assert!(lm.is_empty(), "lock table leaked entries");
    }

    /// With a linear ancestry chain, descendants may share with ancestors,
    /// but unrelated actions still never violate the matrix.
    #[test]
    fn ancestry_never_leaks_to_unrelated_actions(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        // Chain: 1 -> 0, 2 -> 1 (nested under each other); 3, 4, 5 unrelated.
        let mut anc = MapAncestry::default();
        anc.0.insert(ActionId::from_raw(1), ActionId::from_raw(0));
        anc.0.insert(ActionId::from_raw(2), ActionId::from_raw(1));
        let chain = [0u64, 1, 2];
        let mut lm = LockManager::new();
        for op in &ops {
            if let Op::Acquire { action, key, mode } = *op {
                let _ = lm.acquire(
                    &anc,
                    ActionId::from_raw(action),
                    LockKey::new(1, key),
                    mode_of(mode),
                );
            }
            for key in 0u64..4 {
                let holders = lm.holders(LockKey::new(1, key));
                for (i, &(ha, hm)) in holders.iter().enumerate() {
                    for &(hb, gm) in holders.iter().skip(i + 1) {
                        let related = chain.contains(&ha.raw()) && chain.contains(&hb.raw());
                        prop_assert!(
                            hm.compatible(gm) || related,
                            "unrelated incompatible holders {ha}:{hm} / {hb}:{gm}"
                        );
                    }
                }
            }
        }
    }

    /// Refusals never mutate the table: a refused request leaves every
    /// holder exactly as it was.
    #[test]
    fn refusal_leaves_table_unchanged(key in 0u64..4, mode in 0u8..3) {
        let anc = MapAncestry::default();
        let mut lm = LockManager::new();
        let k = LockKey::new(1, key);
        lm.acquire(&anc, ActionId::from_raw(1), k, LockMode::Write).unwrap();
        let before = lm.holders(k);
        let result = lm.acquire(&anc, ActionId::from_raw(2), k, mode_of(mode));
        prop_assert!(result.is_err(), "write lock must refuse everything");
        prop_assert_eq!(before, lm.holders(k));
        prop_assert_eq!(lm.keys_of(ActionId::from_raw(2)), Vec::<LockKey>::new());
    }
}
