//! Strict two-phase locking with the paper's type-specific lock modes.
//!
//! Database entries (one per object) are "concurrency controlled
//! independently using locks" (§4.1). Three modes exist:
//!
//! * `Read` — shared; taken by `GetServer`/`GetView`.
//! * `Write` — exclusive; taken by `Insert`/`Remove`/`Increment`/`Decrement`
//!   and by `Include`.
//! * `ExcludeWrite` — the paper's §4.2.1 extension: compatible with `Read`
//!   (but not with `Write` or another `ExcludeWrite`), so that a committing
//!   client can `Exclude` crashed stores from `St(A)` while other clients
//!   still hold read locks on the same entry.
//!
//! Conflicts are handled by **refusal**, not waiting: the requester learns
//! the lock was refused and (per the paper) aborts or retries. With no
//! waiting there is no deadlock.

use crate::action::ActionId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A lockable resource name.
///
/// `space` partitions key namespaces between subsystems (e.g. server-entry
/// vs state-entry tables); `key` identifies the entry, typically a UID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LockKey {
    space: u16,
    key: u64,
}

impl LockKey {
    /// Creates a key in the given namespace.
    pub const fn new(space: u16, key: u64) -> Self {
        LockKey { space, key }
    }

    /// The namespace of this key.
    pub const fn space(self) -> u16 {
        self.space
    }

    /// The entry identifier within the namespace.
    pub const fn key(self) -> u64 {
        self.key
    }
}

impl fmt::Display for LockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock({}:{})", self.space, self.key)
    }
}

/// Lock modes, ordered by strength: `Read < ExcludeWrite < Write`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared read access.
    Read,
    /// The paper's type-specific mode: may coexist with readers, excludes
    /// writers and other excluders. Used for `Exclude` at commit time.
    ExcludeWrite,
    /// Exclusive access.
    Write,
}

impl LockMode {
    /// Whether a holder in mode `self` permits a *different* action to
    /// acquire mode `other` on the same key.
    ///
    /// The matrix is symmetric:
    ///
    /// | held \ requested | Read | ExcludeWrite | Write |
    /// |---|---|---|---|
    /// | **Read**         | yes  | yes | no |
    /// | **ExcludeWrite** | yes  | no  | no |
    /// | **Write**        | no   | no  | no |
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (Read, Read) | (Read, ExcludeWrite) | (ExcludeWrite, Read)
        )
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Read => write!(f, "read"),
            LockMode::ExcludeWrite => write!(f, "exclude-write"),
            LockMode::Write => write!(f, "write"),
        }
    }
}

/// Provider of the *lock ancestry* of actions.
///
/// A nested action may acquire a lock that conflicts only with locks held by
/// its ancestors (Moss's rules): the ancestor is suspended while the child
/// runs, so no isolation is violated. Nested **top-level** actions have no
/// lock ancestry — they are independent.
pub trait Ancestry {
    /// The lock-parent of `a`: its parent for [`crate::ActionKind::Nested`]
    /// actions, `None` for top-level and nested-top-level actions.
    fn lock_parent(&self, a: ActionId) -> Option<ActionId>;

    /// Whether `anc` is a (transitive) lock-ancestor of `a`.
    fn is_lock_ancestor(&self, anc: ActionId, a: ActionId) -> bool {
        let mut cur = self.lock_parent(a);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.lock_parent(p);
        }
        false
    }
}

/// A flat ancestry map, convenient for tests and simple callers.
#[derive(Debug, Clone, Default)]
pub struct MapAncestry(pub HashMap<ActionId, ActionId>);

impl Ancestry for MapAncestry {
    fn lock_parent(&self, a: ActionId) -> Option<ActionId> {
        self.0.get(&a).copied()
    }
}

/// The lock table: strict 2PL with refusal on conflict.
///
/// Locks are held until explicitly released ([`LockManager::release_all`])
/// or transferred to a parent action ([`LockManager::transfer`]) — the
/// action manager does this at abort / commit, implementing strictness.
#[derive(Debug, Default)]
pub struct LockManager {
    table: HashMap<LockKey, Vec<(ActionId, LockMode)>>,
    by_action: HashMap<ActionId, HashSet<LockKey>>,
    refusals: u64,
    grants: u64,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Attempts to acquire (or upgrade to) `mode` on `key` for `action`.
    ///
    /// Conflicts with locks held by lock-ancestors of `action` are permitted
    /// (lock inheritance); a conflict with any other action refuses the
    /// request and leaves the table unchanged.
    ///
    /// # Errors
    ///
    /// Returns the strongest conflicting mode held by a non-ancestor.
    pub fn acquire(
        &mut self,
        ancestry: &dyn Ancestry,
        action: ActionId,
        key: LockKey,
        mode: LockMode,
    ) -> Result<(), LockMode> {
        let holders = self.table.entry(key).or_default();
        let mut own: Option<LockMode> = None;
        let mut conflict: Option<LockMode> = None;
        for &(hid, hmode) in holders.iter() {
            if hid == action {
                own = Some(hmode);
                continue;
            }
            if hmode.compatible(mode) {
                continue;
            }
            if ancestry.is_lock_ancestor(hid, action) {
                continue;
            }
            conflict = Some(conflict.map_or(hmode, |c: LockMode| c.max(hmode)));
        }
        if let Some(held) = conflict {
            self.refusals += 1;
            return Err(held);
        }
        match own {
            Some(existing) if existing >= mode => { /* already strong enough */ }
            Some(_) => {
                for h in holders.iter_mut() {
                    if h.0 == action {
                        h.1 = mode;
                    }
                }
            }
            None => {
                holders.push((action, mode));
                self.by_action.entry(action).or_default().insert(key);
            }
        }
        self.grants += 1;
        Ok(())
    }

    /// Releases every lock held by `action`.
    pub fn release_all(&mut self, action: ActionId) {
        if let Some(keys) = self.by_action.remove(&action) {
            for key in keys {
                if let Some(holders) = self.table.get_mut(&key) {
                    holders.retain(|&(hid, _)| hid != action);
                    if holders.is_empty() {
                        self.table.remove(&key);
                    }
                }
            }
        }
    }

    /// Transfers all of `child`'s locks to `parent` (nested-action commit).
    ///
    /// If the parent already holds a lock on the same key, it keeps the
    /// stronger of the two modes.
    pub fn transfer(&mut self, child: ActionId, parent: ActionId) {
        let Some(keys) = self.by_action.remove(&child) else {
            return;
        };
        for key in keys {
            let Some(holders) = self.table.get_mut(&key) else {
                continue;
            };
            let child_mode = holders
                .iter()
                .find(|&&(hid, _)| hid == child)
                .map(|&(_, m)| m);
            let Some(child_mode) = child_mode else {
                continue;
            };
            holders.retain(|&(hid, _)| hid != child);
            if let Some(entry) = holders.iter_mut().find(|(hid, _)| *hid == parent) {
                entry.1 = entry.1.max(child_mode);
            } else {
                holders.push((parent, child_mode));
                self.by_action.entry(parent).or_default().insert(key);
            }
        }
    }

    /// Current holders of `key`, in grant order.
    pub fn holders(&self, key: LockKey) -> Vec<(ActionId, LockMode)> {
        self.table.get(&key).cloned().unwrap_or_default()
    }

    /// The mode `action` holds on `key`, if any.
    pub fn mode_of(&self, action: ActionId, key: LockKey) -> Option<LockMode> {
        self.table
            .get(&key)?
            .iter()
            .find(|&&(hid, _)| hid == action)
            .map(|&(_, m)| m)
    }

    /// Keys currently locked by `action`.
    pub fn keys_of(&self, action: ActionId) -> Vec<LockKey> {
        let mut v: Vec<LockKey> = self
            .by_action
            .get(&action)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Whether no locks are held at all (invariant I5 after quiescence).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of locked keys.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Total granted requests (including upgrades and re-grants).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total refused requests.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }

    const K: LockKey = LockKey::new(1, 7);
    fn none() -> MapAncestry {
        MapAncestry::default()
    }

    #[test]
    fn compatibility_matrix_matches_the_paper() {
        use LockMode::*;
        assert!(Read.compatible(Read));
        assert!(Read.compatible(ExcludeWrite));
        assert!(ExcludeWrite.compatible(Read));
        assert!(!ExcludeWrite.compatible(ExcludeWrite));
        assert!(!Read.compatible(Write));
        assert!(!Write.compatible(Read));
        assert!(!Write.compatible(Write));
        assert!(!Write.compatible(ExcludeWrite));
        assert!(!ExcludeWrite.compatible(Write));
    }

    #[test]
    fn mode_strength_ordering() {
        assert!(LockMode::Read < LockMode::ExcludeWrite);
        assert!(LockMode::ExcludeWrite < LockMode::Write);
    }

    #[test]
    fn shared_readers_then_writer_refused() {
        let mut lm = LockManager::new();
        lm.acquire(&none(), a(1), K, LockMode::Read).unwrap();
        lm.acquire(&none(), a(2), K, LockMode::Read).unwrap();
        assert_eq!(
            lm.acquire(&none(), a(3), K, LockMode::Write),
            Err(LockMode::Read)
        );
        assert_eq!(lm.holders(K).len(), 2);
        assert_eq!(lm.refusals(), 1);
    }

    #[test]
    fn exclude_write_coexists_with_readers_only() {
        let mut lm = LockManager::new();
        lm.acquire(&none(), a(1), K, LockMode::Read).unwrap();
        lm.acquire(&none(), a(2), K, LockMode::ExcludeWrite)
            .unwrap();
        // another reader still fine
        lm.acquire(&none(), a(3), K, LockMode::Read).unwrap();
        // but a second excluder is refused
        assert_eq!(
            lm.acquire(&none(), a(4), K, LockMode::ExcludeWrite),
            Err(LockMode::ExcludeWrite)
        );
        // and a writer is refused
        assert!(lm.acquire(&none(), a(5), K, LockMode::Write).is_err());
    }

    #[test]
    fn read_to_write_promotion_requires_sole_holder() {
        let mut lm = LockManager::new();
        lm.acquire(&none(), a(1), K, LockMode::Read).unwrap();
        lm.acquire(&none(), a(2), K, LockMode::Read).unwrap();
        // a1 cannot promote while a2 reads...
        assert_eq!(
            lm.acquire(&none(), a(1), K, LockMode::Write),
            Err(LockMode::Read)
        );
        lm.release_all(a(2));
        // ...but can once alone.
        lm.acquire(&none(), a(1), K, LockMode::Write).unwrap();
        assert_eq!(lm.mode_of(a(1), K), Some(LockMode::Write));
    }

    #[test]
    fn read_to_exclude_write_promotion_coexists_with_readers() {
        // The §4.2.1 scenario: several readers share the entry; one of them
        // needs to Exclude at commit. With the exclude-write type the
        // promotion succeeds.
        let mut lm = LockManager::new();
        lm.acquire(&none(), a(1), K, LockMode::Read).unwrap();
        lm.acquire(&none(), a(2), K, LockMode::Read).unwrap();
        lm.acquire(&none(), a(1), K, LockMode::ExcludeWrite)
            .unwrap();
        assert_eq!(lm.mode_of(a(1), K), Some(LockMode::ExcludeWrite));
        assert_eq!(lm.mode_of(a(2), K), Some(LockMode::Read));
    }

    #[test]
    fn downgrade_requests_are_no_ops() {
        let mut lm = LockManager::new();
        lm.acquire(&none(), a(1), K, LockMode::Write).unwrap();
        lm.acquire(&none(), a(1), K, LockMode::Read).unwrap();
        assert_eq!(lm.mode_of(a(1), K), Some(LockMode::Write));
    }

    #[test]
    fn child_may_acquire_lock_held_by_ancestor() {
        let mut anc = MapAncestry::default();
        anc.0.insert(a(2), a(1)); // a2 nested in a1
        anc.0.insert(a(3), a(2)); // a3 nested in a2
        let mut lm = LockManager::new();
        lm.acquire(&anc, a(1), K, LockMode::Write).unwrap();
        // direct child and grandchild both allowed
        lm.acquire(&anc, a(2), K, LockMode::Write).unwrap();
        lm.acquire(&anc, a(3), K, LockMode::Read).unwrap();
        // unrelated action still refused
        assert!(lm.acquire(&anc, a(9), K, LockMode::Read).is_err());
    }

    #[test]
    fn sibling_is_not_an_ancestor() {
        let mut anc = MapAncestry::default();
        anc.0.insert(a(2), a(1));
        anc.0.insert(a(3), a(1));
        let mut lm = LockManager::new();
        lm.acquire(&anc, a(2), K, LockMode::Write).unwrap();
        assert!(lm.acquire(&anc, a(3), K, LockMode::Write).is_err());
    }

    #[test]
    fn transfer_moves_locks_to_parent_keeping_strongest() {
        let mut lm = LockManager::new();
        let k2 = LockKey::new(1, 8);
        lm.acquire(&none(), a(1), K, LockMode::Read).unwrap();
        lm.acquire(&none(), a(2), K, LockMode::Read).unwrap(); // shared with parent-to-be
        lm.acquire(&none(), a(2), k2, LockMode::Write).unwrap();
        lm.transfer(a(2), a(1));
        assert_eq!(lm.mode_of(a(1), K), Some(LockMode::Read));
        assert_eq!(lm.mode_of(a(1), k2), Some(LockMode::Write));
        assert_eq!(lm.mode_of(a(2), K), None);
        assert_eq!(lm.keys_of(a(2)), vec![]);
        let mut keys = lm.keys_of(a(1));
        keys.sort_unstable();
        assert_eq!(keys, vec![K, k2]);
    }

    #[test]
    fn transfer_upgrades_parent_mode() {
        // Parent reads; nested child (allowed via ancestry) writes. On the
        // child's commit the parent must end up holding the Write lock.
        let mut anc = MapAncestry::default();
        anc.0.insert(a(2), a(1));
        let mut lm = LockManager::new();
        lm.acquire(&anc, a(1), K, LockMode::Read).unwrap();
        lm.acquire(&anc, a(2), K, LockMode::Write).unwrap();
        lm.transfer(a(2), a(1));
        assert_eq!(lm.mode_of(a(1), K), Some(LockMode::Write));
        assert_eq!(lm.holders(K).len(), 1);
    }

    #[test]
    fn release_all_empties_table() {
        let mut lm = LockManager::new();
        lm.acquire(&none(), a(1), K, LockMode::Read).unwrap();
        lm.acquire(&none(), a(1), LockKey::new(2, 9), LockMode::Write)
            .unwrap();
        assert_eq!(lm.len(), 2);
        lm.release_all(a(1));
        assert!(lm.is_empty());
        assert_eq!(lm.grants(), 2);
    }

    #[test]
    fn lock_key_accessors_and_display() {
        let k = LockKey::new(3, 12);
        assert_eq!(k.space(), 3);
        assert_eq!(k.key(), 12);
        assert_eq!(k.to_string(), "lock(3:12)");
        assert!(LockMode::ExcludeWrite.to_string().contains("exclude"));
    }
}
